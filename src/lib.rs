//! # pwdft-rt
//!
//! A from-scratch Rust reproduction of *"Parallel Transport Time-Dependent
//! Density Functional Theory Calculations with Hybrid Functional on Summit"*
//! (Jia, Wang, Lin — SC'19, arXiv:1905.01348).
//!
//! Two layers:
//!
//! * **Layer A (real numerics)** — a complete plane-wave Kohn–Sham DFT +
//!   rt-TDDFT stack: own FFTs ([`fft`]), complex dense linear algebra
//!   ([`linalg`]), periodic cells and G-spheres ([`lattice`]), GTH
//!   pseudopotentials ([`pseudo`]), LDA/PBE ([`xc`]), the screened Fock
//!   exchange operator and full Hamiltonian ([`ham`]), ground-state SCF
//!   ([`scf`]), and the parallel-transport PT-CN propagator with its RK4
//!   baseline ([`core`]). A virtual MPI runtime ([`mpi`]) runs the paper's
//!   distributed algorithms (Alg. 2/3) across in-process rank threads with
//!   real data movement and byte accounting.
//! * **Layer B (Summit model)** — machine constants ([`summit`]) and the
//!   anchored performance model ([`perf`]) that regenerate every table and
//!   figure of the paper's evaluation.
//!
//! See `examples/quickstart.rs` for the five-minute tour, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for paper-vs-model records.

pub use pt_core as core;
pub use pt_fft as fft;
pub use pt_ham as ham;
pub use pt_lattice as lattice;
pub use pt_linalg as linalg;
pub use pt_mpi as mpi;
pub use pt_num as num;
pub use pt_perf as perf;
pub use pt_pseudo as pseudo;
pub use pt_scf as scf;
pub use pt_summit as summit;
pub use pt_xc as xc;
