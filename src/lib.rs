//! # pwdft-rt
//!
//! A from-scratch Rust reproduction of *"Parallel Transport Time-Dependent
//! Density Functional Theory Calculations with Hybrid Functional on Summit"*
//! (Jia, Wang, Lin — SC'19, arXiv:1905.01348).
//!
//! Two layers:
//!
//! * **Layer A (real numerics)** — a complete plane-wave Kohn–Sham DFT +
//!   rt-TDDFT stack: own FFTs ([`fft`]), complex dense linear algebra
//!   ([`linalg`]), periodic cells and G-spheres ([`lattice`]), GTH
//!   pseudopotentials ([`pseudo`]), LDA/PBE ([`xc`]), the screened Fock
//!   exchange operator and full Hamiltonian ([`ham`]), ground-state SCF
//!   ([`scf`]), and the parallel-transport PT-CN propagator with its RK4
//!   baseline ([`core`]). A virtual MPI runtime ([`mpi`]) runs the paper's
//!   distributed algorithms (Alg. 2/3) across in-process rank threads with
//!   real data movement and byte accounting. Everything executes on the
//!   [`par`] fixed-worker thread pool (`PT_NUM_THREADS`, bit-deterministic
//!   for any thread count) via the vendored rayon shim and the explicitly
//!   threaded FFT/GEMM/Fock hot paths; a `ranks × threads_per_rank`
//!   layout ([`ham::DistributedConfig`] on the builder) additionally pins
//!   a dedicated pool to every rank thread and drives hybrid PT-CN through
//!   the distributed propagator ([`core::DistributedPtCnPropagator`]).
//! * **Layer B (Summit model)** — machine constants ([`summit`]) and the
//!   anchored performance model ([`perf`]) that regenerate every table and
//!   figure of the paper's evaluation.
//! * **Serving layer** — [`serve`]: a std-only simulation job server
//!   (queue + core-packing scheduler over [`par::RankLayout`] widths,
//!   live observable streaming over length-prefixed JSON/TCP, and
//!   crash-durable auto-resume built on the [`io`] snapshot subsystem) —
//!   the fleet workflow of a real allocation, with the same bit-exactness
//!   guarantees as a single run.
//!
//! # The unified simulation API
//!
//! The intended entry point is [`prelude`]: build a [`ham::KsSystem`] with
//! [`ham::KsSystemBuilder`] (cutoff, XC kind, hybrid config, occupations),
//! converge it with [`scf::scf_loop`], then configure a
//! [`core::Simulation`] via [`core::SimulationBuilder`] — system, laser,
//! `dt`, step count, a runtime-selectable [`core::Propagator`]
//! (`Box<dyn Propagator>`: PT-CN or RK4) and a composable
//! [`core::Observer`] pipeline. `Simulation::run()` owns the time loop and
//! returns a [`core::TimeSeries`] with energy, current, dipole/norm,
//! orthonormality and per-step [`core::StepStats`]. Misuse returns the
//! typed [`core::PtError`] — the public setup path never panics.
//!
//! ```no_run
//! use pwdft_rt::prelude::*;
//!
//! fn run() -> Result<(), PtError> {
//!     let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
//!         .ecut(2.5)
//!         .xc(XcKind::Pbe)
//!         .hybrid(HybridConfig::hse06())
//!         .build()?;
//!     let gs = scf_loop(&sys, ScfOptions::default())?;
//!     let series = SimulationBuilder::new(&sys)
//!         .initial_orbitals(gs.orbitals.clone())
//!         .laser(LaserPulse::paper_380nm(
//!             0.02,
//!             attosecond_to_au(200.0),
//!             attosecond_to_au(100.0),
//!         ))
//!         .dt(attosecond_to_au(25.0))
//!         .steps(10)
//!         .propagator(Box::new(PtCnPropagator::default()))
//!         .standard_observers()
//!         .build()?
//!         .run()?;
//!     println!("j_z(t_end) = {:?}", series.channel("current_z").unwrap().last());
//!     Ok(())
//! }
//! ```
//!
//! See `examples/quickstart.rs` for the five-minute tour, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for paper-vs-model records.

pub use pt_core as core;
pub use pt_fft as fft;
pub use pt_ham as ham;
pub use pt_io as io;
pub use pt_lattice as lattice;
pub use pt_linalg as linalg;
pub use pt_mpi as mpi;
pub use pt_num as num;
pub use pt_par as par;
pub use pt_perf as perf;
pub use pt_pseudo as pseudo;
pub use pt_scf as scf;
pub use pt_serve as serve;
pub use pt_summit as summit;
pub use pt_trace as trace;
pub use pt_xc as xc;

/// Everything a typical simulation needs, one `use` away.
pub mod prelude {
    pub use pt_core::{
        current_density, density_matrix_distance, latest_checkpoint, max_stable_rk4_dt,
        orthonormality_error, CancelToken, CheckpointPolicy, CurrentObserver, DipoleNormObserver,
        DistributedPtCnPropagator, EnergyObserver, LaserPulse, Observer, ObserverContext,
        OrthonormalityObserver, Propagator, PropagatorState, PtCnOptions, PtCnPropagator, PtError,
        Rk4Options, Rk4Propagator, RunCheckpoint, Simulation, SimulationBuilder, StepStats,
        StepUpdate, TdState, TimeSeries,
    };
    pub use pt_ham::{
        DistributedConfig, ExchangeMode, HybridConfig, KsSystem, KsSystemBuilder, SystemSignature,
    };
    pub use pt_io::{
        latest_valid_snapshot, scan_snapshots, Json, SnapshotFile, SnapshotScan, SnapshotWriter,
        Table,
    };
    pub use pt_lattice::silicon_cubic_supercell;
    pub use pt_mpi::Wire;
    pub use pt_num::units::{attosecond_to_au, au_to_attosecond};
    pub use pt_par::{Parallelism, RankLayout, ThreadPool};
    pub use pt_scf::{scf_loop, ScfOptions, ScfResult};
    pub use pt_serve::{Client, CorePackingScheduler, JobSpec, JobState, ServerConfig};
    pub use pt_xc::XcKind;
}
