//! Ranks × threads smoke bench for the rank-pinned execution layer.
//!
//! The same core budget can be spent on more virtual-MPI ranks (more
//! Alg. 2 broadcast streams, narrower per-rank pools) or on fewer ranks
//! with wider pinned pools — the tradeoff the paper resolves per machine
//! (6 GPUs per Summit node → 6 ranks per node). This bench times the two
//! distributed hot paths over a layout sweep and writes
//! `BENCH_ranks_threads.json` so the contention-vs-slicing choice is
//! measured, not guessed.
//!
//! Layouts whose `ranks × threads_per_rank` exceeds `host_cores` merely
//! oversubscribe (results are bit-identical by the determinism contract);
//! `host_cores` is recorded so a 1-core CI runner's flat curve is not
//! mistaken for a regression. `PT_NUM_RANKS` / `PT_NUM_THREADS` append
//! one extra layout to the sweep, which is how the CI matrix smokes the
//! composition it just tested.

use pt_ham::{
    distributed_fock_apply, distributed_residual, BandDistribution, PwGrids, ScreenedKernel,
};
use pt_lattice::silicon_cubic_supercell;
use pt_linalg::CMat;
use pt_mpi::{env_ranks, run_ranks_pinned, Comm, RankEngine, Wire};
use pt_par::RankLayout;
use std::hint::black_box;
use std::time::Instant;

const BASE_LAYOUTS: [(usize, usize); 6] = [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (4, 1)];

struct Workload {
    grids: PwGrids,
    phi: CMat,
    psi: CMat,
    hpsi: CMat,
    half: CMat,
    kernel: ScreenedKernel,
    nb: usize,
}

impl Workload {
    fn new() -> Self {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 3.0);
        let nb = 8;
        let ng = grids.ng();
        Workload {
            phi: CMat::rand_normalized(ng, nb, 3),
            psi: CMat::rand_normalized(ng, nb, 7),
            hpsi: CMat::rand_normalized(ng, nb, 11),
            half: CMat::rand_normalized(ng, nb, 13),
            kernel: ScreenedKernel::new(&grids, 0.11),
            grids,
            nb,
        }
    }

    /// One full Alg. 2 + Alg. 3 pass for `layout` — the per-rank body
    /// both timers drive.
    fn step_job(&self, dist: BandDistribution) -> impl Fn(&mut Comm) -> usize + Sync + '_ {
        let ng = self.grids.ng();
        move |comm| {
            let rank = comm.rank();
            let fock = distributed_fock_apply(
                comm,
                &self.grids,
                dist,
                &dist.take_local(rank, &self.phi),
                &dist.take_local(rank, &self.psi),
                0.25,
                &self.kernel,
            );
            let resid = distributed_residual(
                comm,
                dist,
                ng,
                &dist.take_local(rank, &self.psi),
                &dist.take_local(rank, &self.hpsi),
                &dist.take_local(rank, &self.half),
                0.7,
            );
            fock.ncols() + resid.ncols()
        }
    }

    /// Best-of-`reps` wall seconds for one pass with a fresh team per
    /// call (rank spawn + pinned-pool setup included: this is the old
    /// per-call execution model, kept as the overhead baseline).
    fn time_layout(&self, layout: RankLayout, reps: usize) -> f64 {
        let dist = BandDistribution {
            n_bands: self.nb,
            n_ranks: layout.ranks,
        };
        let job = self.step_job(dist);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (out, _) = run_ranks_pinned(layout, Wire::F64, &job);
            black_box(out);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }

    /// Best-of-`reps` per-step seconds on a persistent [`RankEngine`]:
    /// the team is spawned once outside the timed region, so this is the
    /// steady-state per-step latency of a long propagation.
    fn time_layout_engine(&self, layout: RankLayout, reps: usize) -> f64 {
        let dist = BandDistribution {
            n_bands: self.nb,
            n_ranks: layout.ranks,
        };
        let job = self.step_job(dist);
        let mut engine = RankEngine::new(layout, Wire::F64);
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let (out, _) = engine.run(&job).expect("healthy engine");
            black_box(out);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    }
}

fn main() {
    let host_cores = RankLayout::host_cores();
    let mut layouts: Vec<(usize, usize)> = BASE_LAYOUTS.to_vec();
    let env_layout = (env_ranks(), pt_par::env_threads().unwrap_or(1));
    if !layouts.contains(&env_layout) {
        layouts.push(env_layout);
    }

    let w = Workload::new();
    let mut rows = Vec::new();
    for &(ranks, threads) in &layouts {
        let layout = RankLayout::new(ranks, threads);
        let secs = w.time_layout(layout, 3);
        let engine_secs = w.time_layout_engine(layout, 3);
        // per-call minus persistent per-step: what spawning a fresh rank
        // team + pinned pools costs every step of the old model
        let spawn_overhead = secs - engine_secs;
        println!(
            "ranks={ranks} threads_per_rank={threads}  per-call {:10.3} ms  engine {:10.3} ms  spawn {:+8.3} ms{}",
            secs * 1e3,
            engine_secs * 1e3,
            spawn_overhead * 1e3,
            if layout.fits_host() {
                ""
            } else {
                "  (oversubscribed)"
            }
        );
        rows.push((ranks, threads, secs, engine_secs, spawn_overhead));
    }
    let baseline = rows[0].2;

    // artifact via pt_io::export (columns over the layout sweep) instead
    // of hand-rolled format strings; the reliability verdict flags hosts
    // too narrow to run the widest layout without oversubscribing
    let widest = layouts.iter().map(|&(r, t)| r * t).max().unwrap();
    let mut table = pt_io::Table::new()
        .meta("bench", pt_io::Value::Str("ranks_threads_smoke".into()))
        .meta("host_cores", pt_io::Value::U64(host_cores as u64))
        .meta(
            "workload",
            pt_io::Value::Str(
                "distributed_fock_apply + distributed_residual, Si-8 ecut 3.0, 8 bands".into(),
            ),
        );
    table = pt_bench::flag_reliability(table, host_cores, widest);
    table
        .column("ranks", rows.iter().map(|r| r.0 as f64).collect())
        .unwrap();
    table
        .column(
            "threads_per_rank",
            rows.iter().map(|r| r.1 as f64).collect(),
        )
        .unwrap();
    table
        .column("wall_seconds", rows.iter().map(|r| r.2).collect())
        .unwrap();
    table
        .column(
            "speedup_vs_1x1",
            rows.iter().map(|r| baseline / r.2).collect(),
        )
        .unwrap();
    table
        .column(
            "per_step_seconds_engine",
            rows.iter().map(|r| r.3).collect(),
        )
        .unwrap();
    table
        .column("spawn_overhead_seconds", rows.iter().map(|r| r.4).collect())
        .unwrap();
    table
        .write_json("BENCH_ranks_threads.json")
        .expect("write BENCH_ranks_threads.json");
    println!("\nwrote BENCH_ranks_threads.json ({host_cores} host cores)");
}
