//! Validation: Alg. 2's broadcast volume equals the closed form
//! N_p x N_G x N_e x sizeof(wire scalar) summed over receivers (§3.2).
use pt_linalg::CMat;
use pt_num::c64;

fn main() {
    let s = pt_lattice::silicon_cubic_supercell(1, 1, 1);
    let grids = pt_ham::PwGrids::new(&s, 2.0);
    let ng = grids.ng();
    let nb = 8;
    let kernel = pt_ham::ScreenedKernel::new(&grids, 0.11);
    for (wire, label, bytes) in [
        (pt_mpi::Wire::F64, "f64", 16u64),
        (pt_mpi::Wire::F32, "f32", 8u64),
    ] {
        for np in [2usize, 4] {
            let dist = pt_ham::BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            let (g, k) = (&grids, &kernel);
            let (_, stats) = pt_mpi::run_ranks(np, wire, move |comm| {
                let mine = dist.local_bands(comm.rank());
                let mut local = CMat::zeros(ng, mine.len());
                for (j, &b) in mine.iter().enumerate() {
                    local[(b % ng, j)] = c64::ONE;
                }
                let out = pt_ham::distributed_fock_apply(comm, g, dist, &local, &local, 0.25, k);
                out.ncols()
            });
            let want = (np as u64 - 1) * nb as u64 * ng as u64 * bytes;
            println!(
                "wire={label} np={np}: bcast {} B (closed form {} B) — {}",
                stats.bcast_bytes,
                want,
                if stats.bcast_bytes == want {
                    "MATCH"
                } else {
                    "MISMATCH"
                }
            );
        }
    }
}
