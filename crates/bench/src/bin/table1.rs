//! Regenerate Table 1 of the paper.
fn main() {
    let model = pt_perf::CostModel::new();
    print!("{}", pt_bench::render_table1(&model));
}
