//! Tracing-overhead smoke bench: what does arming pt-trace cost a
//! hybrid PT-CN step?
//!
//! The observability contract is "off-by-default zero-cost,
//! non-perturbing when on": disarmed, every `span`/`counter_add` is one
//! relaxed atomic load; armed, spans append to a bounded buffer under a
//! mutex held for nanoseconds against steps that run for milliseconds.
//! This bench *measures* that claim instead of asserting it — it times
//! the same laser-driven hybrid propagation with tracing off and on
//! (alternating repetitions, min-of-reps per arm so scheduler noise
//! cancels), checks the two arms produced bit-identical step residuals,
//! and writes `BENCH_trace.json` with an explicit verdict that flags an
//! overhead above 2% of the step time.

use pt_core::{LaserPulse, Propagator, PtCnOptions, PtCnPropagator, TdState};
use pt_ham::{HybridConfig, KsSystem, KsSystemBuilder};
use pt_lattice::silicon_cubic_supercell;
use pt_num::units::attosecond_to_au;
use pt_par::RankLayout;
use pt_scf::{scf_loop, ScfOptions, ScfResult};
use pt_xc::XcKind;
use std::hint::black_box;
use std::time::Instant;

const STEPS: usize = 4;
const REPS: usize = 3;
/// Overhead above this fraction of the step time fails the contract.
const OVERHEAD_BUDGET: f64 = 0.02;

fn build_system() -> KsSystem {
    KsSystemBuilder::new(silicon_cubic_supercell(1, 1, 1))
        .ecut(2.0)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; 8])
        .build()
        .expect("valid bench system")
}

/// One timed propagation from the shared ground state. Returns the
/// per-step seconds and every step's density residual bits (the two
/// arms must agree exactly — tracing that moved a bit would make the
/// timing comparison meaningless and break the determinism contract).
fn run_arm(sys: &KsSystem, gs: &ScfResult, traced: bool) -> (f64, Vec<u64>) {
    pt_trace::set_enabled(traced);
    let laser = LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0));
    let dt = attosecond_to_au(25.0);
    let mut prop = PtCnPropagator::new(PtCnOptions::default());
    let mut state = TdState::new(gs.orbitals.clone());
    let mut residual_bits = Vec::with_capacity(STEPS);
    let mut secs = 0.0;
    sys.install(|| {
        for _ in 0..STEPS {
            let t0 = Instant::now();
            let stats = prop
                .step(sys, Some(&laser), &mut state, dt)
                .expect("bench step succeeds");
            secs += t0.elapsed().as_secs_f64();
            residual_bits.push(stats.rho_residual.to_bits());
        }
    });
    black_box(&state);
    pt_trace::set_enabled(false);
    (secs / STEPS as f64, residual_bits)
}

fn main() {
    let host_cores = RankLayout::host_cores();
    let sys = build_system();
    let gs = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");

    // warmup (untimed, untraced) so page faults and pool spin-up are paid
    let (_, reference_bits) = run_arm(&sys, &gs, false);

    let mark = pt_trace::mark();
    let mut off_secs = Vec::with_capacity(REPS);
    let mut on_secs = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        for &traced in &[false, true] {
            let (per_step, bits) = run_arm(&sys, &gs, traced);
            assert_eq!(
                bits, reference_bits,
                "tracing={traced} rep={rep}: step residual bits moved — \
                 tracing perturbed the numbers"
            );
            if traced {
                on_secs.push(per_step);
            } else {
                off_secs.push(per_step);
            }
            println!(
                "rep {rep}  traced={traced:<5}  {:>9.3} ms/step",
                per_step * 1e3
            );
        }
    }
    let counted = pt_trace::counters_since(&mark);
    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let (off, on) = (min(&off_secs), min(&on_secs));
    let overhead = (on - off) / off;
    let verdict = if overhead <= OVERHEAD_BUDGET {
        format!(
            "ok: tracing overhead {:+.2}% of step time (budget {:.0}%)",
            overhead * 100.0,
            OVERHEAD_BUDGET * 100.0
        )
    } else {
        format!(
            "OVERHEAD: tracing costs {:+.2}% of step time, over the {:.0}% budget — \
             spans are too fine-grained for this workload",
            overhead * 100.0,
            OVERHEAD_BUDGET * 100.0
        )
    };
    if verdict.starts_with("OVERHEAD") {
        eprintln!("*** {verdict} ***");
    }
    println!(
        "\noff {:.3} ms/step   on {:.3} ms/step   {verdict}",
        off * 1e3,
        on * 1e3
    );

    let mut table = pt_io::Table::new()
        .meta("bench", pt_io::Value::Str("trace_overhead_smoke".into()))
        .meta("host_cores", pt_io::Value::U64(host_cores as u64))
        .meta(
            "workload",
            pt_io::Value::Str("laser-driven hybrid PT-CN, Si-8, 8 bands, full Fock".into()),
        )
        .meta("baseline_secs_per_step", pt_io::Value::F64(off))
        .meta("traced_secs_per_step", pt_io::Value::F64(on))
        .meta("overhead_percent", pt_io::Value::F64(overhead * 100.0))
        .meta("overhead_verdict", pt_io::Value::Str(verdict))
        .meta(
            "traced_pair_ffts",
            pt_io::Value::U64(counted.get(pt_trace::Counter::PairFfts)),
        )
        .meta(
            "traced_fft_transforms",
            pt_io::Value::U64(counted.get(pt_trace::Counter::FftTransforms)),
        );
    table = pt_bench::flag_reliability(table, host_cores, 2);
    table
        .column("rep", (0..REPS).map(|r| r as f64).collect())
        .unwrap();
    table.column("off_secs_per_step", off_secs).unwrap();
    table.column("on_secs_per_step", on_secs).unwrap();
    table
        .write_json("BENCH_trace.json")
        .expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json ({host_cores} host cores)");
}
