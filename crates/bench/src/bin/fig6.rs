//! Regenerate Fig. 6: RK4 vs PT-CN wall time for a 50 as simulation.
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 6 — 50 as of dynamics, 1536-atom Si (seconds)");
    println!("{:>6} {:>12} {:>12} {:>9}", "GPUs", "RK4", "PT-CN", "ratio");
    for r in pt_perf::fig6_rows(&model) {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8.1}x",
            r.gpus,
            r.rk4,
            r.ptcn,
            r.rk4 / r.ptcn
        );
    }
    println!("(paper: PT-CN is ~20x faster at 36 GPUs, ~30x at 768)");
}
