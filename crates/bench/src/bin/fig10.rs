//! Regenerate Fig. 10: strong scaling of MPI / memcpy / computation classes.
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 10 — per-step operation classes (seconds)");
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "GPUs", "bcast", "memcpy", "alltoallv", "allreduce", "computation"
    );
    for (p, classes) in pt_perf::fig10_rows(&model) {
        print!("{p:>6}");
        for (_, t) in &classes {
            print!(" {t:>9.2}");
        }
        println!();
    }
    println!("(the MPI_Bcast wall past 768 GPUs is the paper's scaling limit)");
}
