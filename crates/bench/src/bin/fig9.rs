//! Regenerate Fig. 9: single-SCF-step time breakdown vs GPU count.
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 9 — per-SCF component stack (seconds)");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "GPUs", "HΨ", "resid", "density", "anderson", "others"
    );
    for (p, parts) in pt_perf::fig9_rows(&model) {
        println!(
            "{:>6} {:>9.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            p, parts[0], parts[1], parts[2], parts[3], parts[4]
        );
    }
}
