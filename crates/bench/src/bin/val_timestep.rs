//! Validation (Layer A): PT-CN takes 50 as steps; RK4's stability ceiling
//! is sub-attosecond at realistic cutoffs (§6, Fig. 6 rationale).
use pt_num::units::{attosecond_to_au, au_to_attosecond};

fn main() {
    let s = pt_lattice::silicon_cubic_supercell(1, 1, 1);
    let sys = pt_ham::KsSystem::new(s, 3.0, pt_xc::XcKind::Lda, None);
    let mut opts = pt_scf::ScfOptions::default();
    opts.rho_tol = 1e-7;
    let gs = pt_scf::scf_loop(&sys, opts);
    println!("ground state: E = {:.6} Ha, {} SCF iterations", gs.energies.total(), gs.scf_iterations);

    let dt_max = pt_core::max_stable_rk4_dt(&sys, &gs.orbitals, 10, 0.05, 4.0);
    println!("RK4 stability ceiling: {:.3} a.u. = {:.2} as", dt_max, au_to_attosecond(dt_max));
    println!("(at the paper's E_cut = 10 Ha the ceiling shrinks ~4x further → sub-attosecond)");

    let prop = pt_core::PtCnPropagator { sys: &sys, laser: None, opts: pt_core::PtCnOptions::default() };
    let mut st = pt_core::TdState { psi: gs.orbitals.clone(), t: 0.0 };
    let dt = attosecond_to_au(50.0);
    let stats = prop.step(&mut st, dt);
    println!(
        "PT-CN 50 as step: {} SCF iterations, density residual {:.2e}, orthonormality {:.2e}",
        stats.scf_iterations,
        stats.rho_residual,
        pt_core::orthonormality_error(&st.psi)
    );
    println!(
        "PT-CN step / RK4 ceiling = {:.0}x larger time step",
        dt / dt_max
    );
}
