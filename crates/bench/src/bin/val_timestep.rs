//! Validation (Layer A): PT-CN takes 50 as steps; RK4's stability ceiling
//! is sub-attosecond at realistic cutoffs (§6, Fig. 6 rationale).
use pt_core::Propagator;
use pt_num::units::{attosecond_to_au, au_to_attosecond};

fn main() -> Result<(), pt_ham::PtError> {
    let s = pt_lattice::silicon_cubic_supercell(1, 1, 1);
    let sys = pt_ham::KsSystem::builder(s)
        .ecut(3.0)
        .xc(pt_xc::XcKind::Lda)
        .build()?;
    let opts = pt_scf::ScfOptions {
        rho_tol: 1e-7,
        ..Default::default()
    };
    let gs = pt_scf::scf_loop(&sys, opts)?;
    println!(
        "ground state: E = {:.6} Ha, {} SCF iterations",
        gs.energies.total(),
        gs.scf_iterations
    );

    let dt_max = pt_core::max_stable_rk4_dt(&sys, &gs.orbitals, 10, 0.05, 4.0)?;
    println!(
        "RK4 stability ceiling: {:.3} a.u. = {:.2} as",
        dt_max,
        au_to_attosecond(dt_max)
    );
    println!("(at the paper's E_cut = 10 Ha the ceiling shrinks ~4x further → sub-attosecond)");

    let mut prop = pt_core::PtCnPropagator::default();
    let mut st = pt_core::TdState::new(gs.orbitals.clone());
    let dt = attosecond_to_au(50.0);
    let stats = prop.step(&sys, None, &mut st, dt)?;
    println!(
        "PT-CN 50 as step: {} SCF iterations, density residual {:.2e}, orthonormality {:.2e}",
        stats.scf_iterations,
        stats.rho_residual,
        pt_core::orthonormality_error(&st.psi)
    );
    println!(
        "PT-CN step / RK4 ceiling = {:.0}x larger time step",
        dt / dt_max
    );
    Ok(())
}
