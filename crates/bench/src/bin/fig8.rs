//! Regenerate Fig. 8: weak scaling 48 → 1536 atoms (GPUs = atoms/2).
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 8 — weak scaling, 50 as wall time (seconds)");
    println!(
        "{:>7} {:>6} {:>10} {:>12}",
        "atoms", "GPUs", "model", "N² ideal"
    );
    for r in pt_perf::fig8_rows(&model) {
        println!(
            "{:>7} {:>6} {:>10.2} {:>12.2}",
            r.atoms, r.gpus, r.seconds, r.ideal
        );
    }
    println!("(paper: 192 atoms on 96 GPUs take ~16 s per 50 as → ~5 min/fs)");
}
