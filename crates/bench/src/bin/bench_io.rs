//! Snapshot-throughput smoke bench for the `pt-io` checkpoint subsystem.
//!
//! Checkpointing a production run serializes orbital blocks every few
//! steps, so write/read throughput vs block size is the number that
//! decides how often a trajectory can afford to snapshot. This bench
//! times `SnapshotWriter`/`SnapshotFile` round trips over a sweep of
//! orbital block widths at both payload precisions and writes
//! `BENCH_io.json` — via `pt_io::export`, the same writer the artifact is
//! about.
//!
//! `host_cores` is recorded so a slow CI runner's numbers are not
//! mistaken for a regression; the committed artifact comes from the
//! build container.

use pt_io::{SnapshotFile, SnapshotWriter, Table, Value};
use pt_linalg::CMat;
use pt_mpi::Wire;
use std::time::Instant;

const NG: usize = 4096;
const BLOCK_WIDTHS: [usize; 5] = [2, 4, 8, 16, 32];

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let scratch = std::env::temp_dir().join(format!("bench_io_{}.ptio", std::process::id()));

    let mut cols_nb = Vec::new();
    let mut cols_wire = Vec::new();
    let mut cols_bytes = Vec::new();
    let mut cols_write = Vec::new();
    let mut cols_read = Vec::new();
    for wire in [Wire::F64, Wire::F32] {
        for &nb in &BLOCK_WIDTHS {
            let psi = CMat::rand_normalized(NG, nb, nb as u64 + 1);
            let write_s = best_of(3, || {
                let mut w = SnapshotWriter::create(&scratch);
                w.put_u64s("meta", &[nb as u64]).unwrap();
                w.put_cmat("psi", &psi, wire).unwrap();
                w.finish().unwrap();
            });
            let bytes = std::fs::metadata(&scratch).unwrap().len();
            let read_s = best_of(3, || {
                let f = SnapshotFile::open(&scratch).unwrap();
                let m = f.cmat("psi").unwrap();
                assert_eq!(m.ncols(), nb);
            });
            let mb = bytes as f64 / 1e6;
            println!(
                "wire={wire:?} nb={nb:>3}  {:8.0} KiB  write {:8.2} MB/s  read {:8.2} MB/s",
                bytes as f64 / 1024.0,
                mb / write_s,
                mb / read_s,
            );
            cols_nb.push(nb as f64);
            cols_wire.push(if wire == Wire::F32 { 32.0 } else { 64.0 });
            cols_bytes.push(bytes as f64);
            cols_write.push(mb / write_s);
            cols_read.push(mb / read_s);
        }
    }
    let _ = std::fs::remove_file(&scratch);

    let mut table = Table::new()
        .meta("bench", Value::Str("snapshot_io_smoke".into()))
        .meta("host_cores", Value::U64(host_cores as u64))
        .meta(
            "workload",
            Value::Str(format!(
                "SnapshotWriter/SnapshotFile round trip, {NG}-row orbital blocks"
            )),
        );
    // throughput timing needs at least one idle core — a 1-core host
    // contends the timed region with everything else on the machine
    table = pt_bench::flag_reliability(table, host_cores, 2);
    table.column("n_bands", cols_nb).unwrap();
    table.column("wire_bits", cols_wire).unwrap();
    table.column("file_bytes", cols_bytes).unwrap();
    table.column("write_mb_per_s", cols_write).unwrap();
    table.column("read_mb_per_s", cols_read).unwrap();
    table.write_json("BENCH_io.json").unwrap();
    println!("\nwrote BENCH_io.json ({host_cores} host cores)");
}
