//! ACE × refresh-interval smoke bench for the hybrid PT-CN hot path.
//!
//! The pair-FFT Fock loop prices every fixed-point iteration at
//! `O(N_φ²)` FFT solves; the ACE projector compresses it to two rank-N_φ
//! GEMMs per iteration plus one Fock block-apply per refresh. This bench
//! sweeps `ExchangeMode` (Full reference, `Ace { K }` for growing K,
//! `AceMts`) over two system sizes, timing a short laser-driven
//! propagation per mode and scoring each against the Full reference on
//! the observables that matter (max dipole deviation, relative energy
//! deviation). It writes `BENCH_ace.json` so the speed-vs-staleness
//! tradeoff is measured, not guessed.
//!
//! Rows are time-per-step, so the Full baseline pays its Fock loop every
//! iteration while ACE rows amortize one projector build over
//! `refresh_interval` steps — exactly the production cost model. The
//! band counts matter: ACE's win scales as N_φ (the pair-FFT loop is
//! O(N_φ²) small-grid FFTs per apply vs O(N_φ) *dense*-grid FFTs for
//! the local part), so exchange only dominates HΨ beyond N_φ ≈ 30 on
//! this lattice. The sweep therefore pairs the physical full-valence
//! Si-8 manifold (16 bands, local-dominated — the honest small-system
//! point, echoing the paper's §1 observation that ACE need not pay off
//! when exchange is cheap) with a 48-band workload where the pair loop
//! dominates the way it does at production band counts. The
//! reliability verdict stamps runs on hosts too narrow for the bench's
//! thread width, so a noisy 1-core CI runner is not mistaken for a
//! regression.

use pt_core::{
    DipoleNormObserver, EnergyObserver, LaserPulse, Observer, ObserverContext, Propagator,
    PtCnOptions, PtCnPropagator, TdState,
};
use pt_ham::{ExchangeMode, HybridConfig, KsSystem, KsSystemBuilder};
use pt_lattice::silicon_cubic_supercell;
use pt_num::units::attosecond_to_au;
use pt_par::RankLayout;
use pt_scf::{scf_loop, ScfOptions, ScfResult};
use pt_xc::XcKind;
use std::hint::black_box;
use std::time::Instant;

struct SizeSpec {
    label: &'static str,
    ecut: f64,
    n_bands: usize,
    steps: usize,
    /// Ground-state SCF density tolerance — the 48-band sweep loosens it
    /// so the one-off SCF does not dwarf the propagation being measured
    /// (every mode shares the same ground state, so the comparison is
    /// unaffected).
    scf_rho_tol: f64,
}

const SIZES: [SizeSpec; 2] = [
    SizeSpec {
        label: "Si8/ecut2.0/16b",
        ecut: 2.0,
        n_bands: 16,
        steps: 6,
        scf_rho_tol: 1e-6,
    },
    SizeSpec {
        label: "Si8/ecut2.0/48b",
        ecut: 2.0,
        n_bands: 48,
        steps: 16,
        scf_rho_tol: 1e-5,
    },
];

/// `(tag, refresh_interval, inner_substeps)` per mode; tag 0 = Full,
/// 1 = Ace, 2 = AceMts — the same coding the snapshot format uses.
fn mode_code(mode: ExchangeMode) -> (u64, u64, u64) {
    match mode {
        ExchangeMode::Full => (0, 0, 0),
        ExchangeMode::Ace { refresh_interval } => (1, refresh_interval as u64, 0),
        ExchangeMode::AceMts {
            refresh_interval,
            inner_substeps,
        } => (2, refresh_interval as u64, inner_substeps as u64),
    }
}

fn build_system(spec: &SizeSpec) -> KsSystem {
    KsSystemBuilder::new(silicon_cubic_supercell(1, 1, 1))
        .ecut(spec.ecut)
        .xc(XcKind::Pbe)
        .hybrid(HybridConfig::hse06())
        .occupations(vec![2.0; spec.n_bands])
        .build()
        .expect("valid bench system")
}

/// Per-step observables: `[dipole_x, dipole_y, dipole_z, energy]`.
type StepObs = [f64; 4];

/// One timed propagation: returns (seconds per step, per-step observables).
///
/// The clock covers `Propagator::step` only. The dipole/energy samples
/// are produced by the very observer implementations `standard_observers`
/// installs, but *outside* the timed region: they rebuild the exact
/// pair-FFT exchange every step as a diagnostic, which is not part of the
/// propagation hot path the exchange mode changes — timing them would
/// charge the ACE rows a fixed full-Fock toll per step and measure the
/// logging, not the propagator.
fn run_mode(
    sys: &KsSystem,
    gs: &ScfResult,
    steps: usize,
    mode: ExchangeMode,
) -> (f64, Vec<StepObs>) {
    let laser = LaserPulse::paper_380nm(0.02, attosecond_to_au(200.0), attosecond_to_au(100.0));
    let dt = attosecond_to_au(25.0);
    let mut prop = if mode == ExchangeMode::Full {
        PtCnPropagator::new(PtCnOptions::default())
    } else {
        PtCnPropagator::with_exchange(PtCnOptions::default(), mode)
    };
    let mut state = TdState::new(gs.orbitals.clone());
    let mut energy_obs = EnergyObserver;
    let mut dipole_obs = DipoleNormObserver::default();
    let mut samples: Vec<StepObs> = Vec::with_capacity(steps);
    let mut secs = 0.0;
    sys.install(|| {
        for step_index in 0..steps {
            let t0 = Instant::now();
            let stats = prop
                .step(sys, Some(&laser), &mut state, dt)
                .expect("bench step succeeds");
            secs += t0.elapsed().as_secs_f64();
            assert!(stats.converged, "bench step converged");
            let rho = sys.density(&state.psi);
            let ctx = ObserverContext {
                sys,
                state: &state,
                a_field: laser.a_field(state.t),
                rho: Some(&rho),
                step_index,
                stats: &stats,
            };
            let e = energy_obs.observe(&ctx).expect("energy observable");
            let d = dipole_obs.observe(&ctx).expect("dipole observable");
            // DipoleNormObserver emits [n_electrons, dipole_x, _y, _z]
            samples.push([d[1].1, d[2].1, d[3].1, e[0].1]);
        }
    });
    black_box(&samples);
    (secs / steps as f64, samples)
}

fn max_dipole_err(full: &[StepObs], other: &[StepObs]) -> f64 {
    full.iter()
        .zip(other)
        .flat_map(|(a, b)| (0..3).map(move |i| (a[i] - b[i]).abs()))
        .fold(0.0, f64::max)
}

fn rel_energy_err(full: &[StepObs], other: &[StepObs]) -> f64 {
    let scale = full[0][3].abs().max(1e-300);
    full.iter()
        .zip(other)
        .map(|(a, b)| (a[3] - b[3]).abs() / scale)
        .fold(0.0, f64::max)
}

fn main() {
    let host_cores = RankLayout::host_cores();
    let modes = [
        ExchangeMode::Full,
        ExchangeMode::Ace {
            refresh_interval: 1,
        },
        ExchangeMode::Ace {
            refresh_interval: 2,
        },
        ExchangeMode::Ace {
            refresh_interval: 4,
        },
        ExchangeMode::Ace {
            refresh_interval: 8,
        },
        ExchangeMode::Ace {
            refresh_interval: 16,
        },
        ExchangeMode::AceMts {
            refresh_interval: 2,
            inner_substeps: 2,
        },
    ];

    struct Row {
        ecut: f64,
        n_bands: u64,
        tag: u64,
        interval: u64,
        substeps: u64,
        secs: f64,
        speedup: f64,
        dip: f64,
        en: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for spec in &SIZES {
        let sys = build_system(spec);
        let gs = scf_loop(
            &sys,
            ScfOptions {
                rho_tol: spec.scf_rho_tol,
                ..ScfOptions::default()
            },
        )
        .expect("bench SCF converges");
        let (full_secs, full_series) = run_mode(&sys, &gs, spec.steps, ExchangeMode::Full);
        for &mode in &modes {
            let (secs, series) = if mode == ExchangeMode::Full {
                (full_secs, full_series.clone())
            } else {
                run_mode(&sys, &gs, spec.steps, mode)
            };
            let (tag, interval, substeps) = mode_code(mode);
            let speedup = full_secs / secs;
            let dip = max_dipole_err(&full_series, &series);
            let en = rel_energy_err(&full_series, &series);
            println!(
                "{label:>16}  {mode:<28?}  {ms:9.2} ms/step  {speedup:6.2}x  dipole {dip:9.2e}  energy {en:9.2e}",
                label = spec.label,
                ms = secs * 1e3,
            );
            rows.push(Row {
                ecut: spec.ecut,
                n_bands: spec.n_bands as u64,
                tag,
                interval,
                substeps,
                secs,
                speedup,
                dip,
                en,
            });
        }
    }

    let mut table = pt_io::Table::new()
        .meta("bench", pt_io::Value::Str("ace_refresh_smoke".into()))
        .meta("host_cores", pt_io::Value::U64(host_cores as u64))
        .meta(
            "workload",
            pt_io::Value::Str(
                "laser-driven hybrid PT-CN, Si-8 supercell, Full vs Ace{K} vs AceMts".into(),
            ),
        )
        .meta(
            "mode_tag",
            pt_io::Value::Str("0 = Full, 1 = Ace, 2 = AceMts".into()),
        );
    table = pt_bench::flag_reliability(table, host_cores, 1);
    table
        .column("ecut", rows.iter().map(|r| r.ecut).collect())
        .unwrap();
    table
        .column("n_bands", rows.iter().map(|r| r.n_bands as f64).collect())
        .unwrap();
    table
        .column("mode_tag", rows.iter().map(|r| r.tag as f64).collect())
        .unwrap();
    table
        .column(
            "refresh_interval",
            rows.iter().map(|r| r.interval as f64).collect(),
        )
        .unwrap();
    table
        .column(
            "inner_substeps",
            rows.iter().map(|r| r.substeps as f64).collect(),
        )
        .unwrap();
    table
        .column("seconds_per_step", rows.iter().map(|r| r.secs).collect())
        .unwrap();
    table
        .column("speedup_vs_full", rows.iter().map(|r| r.speedup).collect())
        .unwrap();
    table
        .column(
            "max_dipole_err_vs_full",
            rows.iter().map(|r| r.dip).collect(),
        )
        .unwrap();
    table
        .column(
            "rel_energy_err_vs_full",
            rows.iter().map(|r| r.en).collect(),
        )
        .unwrap();
    table
        .write_json("BENCH_ace.json")
        .expect("write BENCH_ace.json");
    println!("\nwrote BENCH_ace.json ({host_cores} host cores)");
}
