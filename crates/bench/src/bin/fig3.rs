//! Regenerate Fig. 3: Fock exchange wall time across optimization stages
//! (1536-atom Si; CPU 3072 cores vs 72 GPUs).
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 3 — Fock exchange operator wall time per step (s)");
    for s in pt_perf::fig3_stages(&model) {
        println!("{:<22} {:>10.1}", s.label, s.seconds);
    }
}
