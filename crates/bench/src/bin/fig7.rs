//! Regenerate Fig. 7: strong scaling of the total time and components,
//! (a) with and (b) without communication.
fn main() {
    let model = pt_perf::CostModel::new();
    println!("Fig. 7(a) — strong scaling incl. MPI/memcpy (per-SCF seconds)");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "GPUs", "total", "HΨ", "resid", "density", "anderson", "others"
    );
    for (p, a, _) in pt_perf::fig7_rows(&model) {
        println!(
            "{:>6} {:>9.2} {:>9.2} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            p, a[0], a[1], a[2], a[3], a[4], a[5]
        );
    }
    println!("\nFig. 7(b) — computation only (per-SCF seconds)");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}",
        "GPUs", "HΨcomp", "resid", "density", "anderson"
    );
    for (p, _, b) in pt_perf::fig7_rows(&model) {
        println!(
            "{:>6} {:>9.3} {:>9.4} {:>9.4} {:>9.4}",
            p, b[0], b[1], b[2], b[3]
        );
    }
}
