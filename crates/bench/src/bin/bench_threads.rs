//! Thread-scaling smoke bench for the `pt-par` execution layer.
//!
//! Times the three hot kernels the tentpole threads — band-batched 3-D
//! FFTs, panel-parallel GEMM, band-pair-parallel Fock `apply_block` — on
//! dedicated pools of 1, 2 and 4 threads, and writes the wall-clock table
//! to `BENCH_threads.json` so the perf trajectory across PRs has data.
//!
//! Speedups are only meaningful on a machine with that many physical
//! cores; `host_cores` is recorded in the artifact so a 1-core CI runner's
//! flat curve is not mistaken for a regression.

use pt_fft::Fft3;
use pt_ham::{FockMode, FockOperator, PwGrids, ScreenedKernel};
use pt_lattice::silicon_cubic_supercell;
use pt_linalg::{gemm, CMat, Op};
use pt_num::c64;
use pt_par::ThreadPool;
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Best-of-`reps` wall time of `run` over shared work buffers `state`,
/// in seconds. `prepare` resets the buffers before each rep and is *not*
/// timed, so the measured region contains only the kernel under test (no
/// clone/alloc serial term to flatten the speedup curve).
fn best_of<T>(
    reps: usize,
    state: &mut T,
    mut prepare: impl FnMut(&mut T),
    mut run: impl FnMut(&mut T),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        prepare(state);
        let t0 = Instant::now();
        run(state);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct Kernel {
    name: &'static str,
    /// seconds per thread count, same order as [`THREAD_COUNTS`]
    secs: Vec<f64>,
}

impl Kernel {
    fn speedup_at_4(&self) -> f64 {
        self.secs[0] / self.secs[THREAD_COUNTS.len() - 1]
    }
}

fn bench_fft_batch(pool: &ThreadPool) -> f64 {
    // a paper-shaped grid (60×90×120 scaled down 2.5×) with 8 bands
    let fft = Fft3::new(24, 36, 48);
    let n = fft.len();
    let batch = 8;
    let data: Vec<c64> = (0..n * batch)
        .map(|i| c64::new(i as f64, 0.5 - (i % 7) as f64))
        .collect();
    let mut buf = vec![c64::ZERO; n * batch];
    pool.install(|| {
        best_of(
            5,
            &mut buf,
            |b| b.copy_from_slice(&data),
            |b| {
                fft.forward_batch(black_box(b));
                black_box(&*b);
            },
        )
    })
}

fn bench_gemm(pool: &ThreadPool) -> f64 {
    // the two PWDFT shapes back to back: overlap S = Ψ^H (HΨ), then the
    // subspace rotation Ψ S
    let ng = 8192;
    let nb = 24;
    let psi = CMat::rand_normalized(ng, nb, 11);
    let hpsi = CMat::rand_normalized(ng, nb, 22);
    // beta = 0 overwrites, so the outputs need no per-rep reset
    let mut bufs = (CMat::zeros(nb, nb), CMat::zeros(ng, nb));
    pool.install(|| {
        best_of(
            5,
            &mut bufs,
            |_| {},
            |(s, rot)| {
                gemm(
                    c64::ONE,
                    &psi,
                    Op::ConjTrans,
                    black_box(&hpsi),
                    Op::None,
                    c64::ZERO,
                    s,
                );
                gemm(
                    c64::ONE,
                    &psi,
                    Op::None,
                    black_box(s),
                    Op::None,
                    c64::ZERO,
                    rot,
                );
                black_box(&*rot);
            },
        )
    })
}

fn bench_fock_apply(pool: &ThreadPool) -> f64 {
    let s = silicon_cubic_supercell(1, 1, 1);
    let grids = PwGrids::new(&s, 3.5);
    let nb = 8;
    let phi = CMat::rand_normalized(grids.ng(), nb, 3);
    let psi = CMat::rand_normalized(grids.ng(), nb, 7);
    let kernel = ScreenedKernel::new(&grids, 0.11);
    let fock = FockOperator::new(&grids, &phi, 0.25, kernel, FockMode::Batched);
    let mut out = CMat::zeros(grids.ng(), nb);
    pool.install(|| {
        best_of(
            3,
            &mut out,
            |o| o.data_mut().fill(c64::ZERO),
            |o| {
                fock.apply_block(&grids, black_box(&psi), o);
                black_box(&*o);
            },
        )
    })
}

type BenchFn = fn(&ThreadPool) -> f64;

fn main() {
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let benches: [(&str, BenchFn); 3] = [
        ("fft_batch", bench_fft_batch),
        ("gemm", bench_gemm),
        ("fock_apply_block", bench_fock_apply),
    ];
    let mut kernels = Vec::new();
    for (name, f) in benches {
        let mut secs = Vec::new();
        for &t in &THREAD_COUNTS {
            let pool = ThreadPool::new(t);
            let s = f(&pool);
            println!("{name:>18}  threads={t}  {:10.3} ms", s * 1e3);
            secs.push(s);
        }
        let k = Kernel { name, secs };
        println!("{:>18}  speedup@4 = {:.2}x", "", k.speedup_at_4());
        kernels.push(k);
    }

    // artifact: one row per thread count, one column per kernel, plus the
    // headline speedups as metadata — written through pt_io::export
    // instead of hand-rolled format strings. The reliability verdict
    // flags a host too narrow for the sweep, so a 1-core runner's flat
    // speedup column reads as UNRELIABLE, not as a regression.
    let widest = *THREAD_COUNTS.iter().max().unwrap();
    let mut table = pt_io::Table::new()
        .meta("bench", pt_io::Value::Str("thread_scaling_smoke".into()))
        .meta("host_cores", pt_io::Value::U64(host_cores as u64));
    table = pt_bench::flag_reliability(table, host_cores, widest);
    for k in &kernels {
        table = table.meta(
            &format!("speedup_at_4_threads/{}", k.name),
            pt_io::Value::F64(k.speedup_at_4()),
        );
    }
    table
        .column("threads", THREAD_COUNTS.iter().map(|&t| t as f64).collect())
        .unwrap();
    for k in &kernels {
        table
            .column(&format!("wall_seconds/{}", k.name), k.secs.clone())
            .unwrap();
        table
            .column(
                &format!("speedup_vs_1_thread/{}", k.name),
                k.secs.iter().map(|&s| k.secs[0] / s).collect(),
            )
            .unwrap();
    }
    table
        .write_json("BENCH_threads.json")
        .expect("write BENCH_threads.json");
    println!("\nwrote BENCH_threads.json ({host_cores} host cores)");
}
