//! `pt-bench` — harness utilities that print every paper artifact.
//!
//! Each `src/bin/*.rs` target regenerates one table or figure of the
//! paper; `benches/` carries the criterion micro-benchmarks of the real
//! numerical kernels (Layer A). The formatting helpers here render the
//! "paper vs model" comparisons recorded in `EXPERIMENTS.md`.

use pt_perf::{CostModel, PAPER_GPU_COUNTS, PAPER_TABLE1_PER_SCF_TOTAL, PAPER_TABLE1_TOTAL};

/// Render Table 1 (component wall-clock times + totals + speedups).
pub fn render_table1(model: &CostModel) -> String {
    let rows = pt_perf::table1(model);
    let mut out = String::new();
    out.push_str("Table 1 — 1536-atom Si, wall clock per PT-CN step (model | paper)\n");
    out.push_str(&format!("{:<22}", "component \\ GPUs"));
    for r in &rows {
        out.push_str(&format!("{:>10}", r.gpus));
    }
    out.push('\n');
    for (ci, (name, _)) in rows[0].components.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for r in &rows {
            out.push_str(&format!("{:>10.3}", r.components[ci].1));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "per SCF (model)"));
    for r in &rows {
        out.push_str(&format!("{:>10.2}", r.per_scf));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "per SCF (paper)"));
    for v in PAPER_TABLE1_PER_SCF_TOTAL {
        out.push_str(&format!("{v:>10.2}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "total (model)"));
    for r in &rows {
        out.push_str(&format!("{:>10.1}", r.total));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "total (paper)"));
    for v in PAPER_TABLE1_TOTAL {
        out.push_str(&format!("{v:>10.1}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "speedup (model)"));
    for r in &rows {
        out.push_str(&format!("{:>9.1}x", r.speedup));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "HΨ fraction"));
    for r in &rows {
        out.push_str(&format!("{:>9.0}%", 100.0 * r.h_psi_fraction));
    }
    out.push('\n');
    out
}

/// Render Table 2 (MPI / memcpy / computation breakdown).
pub fn render_table2(model: &CostModel) -> String {
    let rows = pt_perf::table2(model);
    let mut out = String::new();
    out.push_str("Table 2 — breakdown per PT-CN step (seconds, model)\n");
    out.push_str(&format!("{:<16}", "class \\ GPUs"));
    for &p in &PAPER_GPU_COUNTS {
        out.push_str(&format!("{p:>9}"));
    }
    out.push('\n');
    for (ci, (name, _)) in rows[0].classes.iter().enumerate() {
        out.push_str(&format!("{name:<16}"));
        for r in &rows {
            out.push_str(&format!("{:>9.2}", r.classes[ci].1));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "MPI total"));
    for r in &rows {
        out.push_str(&format!("{:>9.2}", r.mpi_total));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_are_nonempty_and_have_all_columns() {
        let m = CostModel::new();
        let t1 = render_table1(&m);
        assert!(t1.contains("fock_comp") && t1.contains("speedup"));
        assert!(t1.lines().count() > 14);
        let t2 = render_table2(&m);
        assert!(t2.contains("bcast") && t2.contains("MPI total"));
    }
}
