//! `pt-bench` — harness utilities that print every paper artifact.
//!
//! Each `src/bin/*.rs` target regenerates one table or figure of the
//! paper; `benches/` carries the criterion micro-benchmarks of the real
//! numerical kernels (Layer A). The formatting helpers here render the
//! "paper vs model" comparisons recorded in `EXPERIMENTS.md`.

use pt_perf::{CostModel, PAPER_GPU_COUNTS, PAPER_TABLE1_PER_SCF_TOTAL, PAPER_TABLE1_TOTAL};

/// Honest-bench flagging: the `reliability` string recorded in every
/// timing artifact.
///
/// A wall-clock speedup measured on a host with fewer cores than the
/// widest configuration in the sweep is scheduling noise, not scaling —
/// a 1-core CI runner produces a flat curve for *correct* code. Rather
/// than leave that for a human to infer from `host_cores`, every
/// `BENCH_*.json` carries this verdict, and the bins print it where a
/// log skimmer cannot miss it. `needed_cores` is the widest parallelism
/// the bench times (or 2 for pure-throughput benches, which still need
/// an idle core to time anything).
pub fn speedup_reliability(host_cores: usize, needed_cores: usize) -> String {
    if host_cores >= needed_cores {
        format!("ok: host_cores={host_cores} >= needed_cores={needed_cores}")
    } else {
        format!(
            "UNRELIABLE: host_cores={host_cores} < needed_cores={needed_cores} — \
             wall-clock speedups on this host are scheduling noise, not scaling"
        )
    }
}

/// Attach the [`speedup_reliability`] verdict to a bench artifact and, if
/// the verdict is bad, shout it on stderr too.
pub fn flag_reliability(
    table: pt_io::Table,
    host_cores: usize,
    needed_cores: usize,
) -> pt_io::Table {
    let verdict = speedup_reliability(host_cores, needed_cores);
    if verdict.starts_with("UNRELIABLE") {
        eprintln!("*** {verdict} ***");
    }
    table.meta("reliability", pt_io::Value::Str(verdict))
}

/// Render Table 1 (component wall-clock times + totals + speedups).
pub fn render_table1(model: &CostModel) -> String {
    let rows = pt_perf::table1(model);
    let mut out = String::new();
    out.push_str("Table 1 — 1536-atom Si, wall clock per PT-CN step (model | paper)\n");
    out.push_str(&format!("{:<22}", "component \\ GPUs"));
    for r in &rows {
        out.push_str(&format!("{:>10}", r.gpus));
    }
    out.push('\n');
    for (ci, (name, _)) in rows[0].components.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for r in &rows {
            out.push_str(&format!("{:>10.3}", r.components[ci].1));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "per SCF (model)"));
    for r in &rows {
        out.push_str(&format!("{:>10.2}", r.per_scf));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "per SCF (paper)"));
    for v in PAPER_TABLE1_PER_SCF_TOTAL {
        out.push_str(&format!("{v:>10.2}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "total (model)"));
    for r in &rows {
        out.push_str(&format!("{:>10.1}", r.total));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "total (paper)"));
    for v in PAPER_TABLE1_TOTAL {
        out.push_str(&format!("{v:>10.1}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "speedup (model)"));
    for r in &rows {
        out.push_str(&format!("{:>9.1}x", r.speedup));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "HΨ fraction"));
    for r in &rows {
        out.push_str(&format!("{:>9.0}%", 100.0 * r.h_psi_fraction));
    }
    out.push('\n');
    out
}

/// Render Table 2 (MPI / memcpy / computation breakdown).
pub fn render_table2(model: &CostModel) -> String {
    let rows = pt_perf::table2(model);
    let mut out = String::new();
    out.push_str("Table 2 — breakdown per PT-CN step (seconds, model)\n");
    out.push_str(&format!("{:<16}", "class \\ GPUs"));
    for &p in &PAPER_GPU_COUNTS {
        out.push_str(&format!("{p:>9}"));
    }
    out.push('\n');
    for (ci, (name, _)) in rows[0].classes.iter().enumerate() {
        out.push_str(&format!("{name:<16}"));
        for r in &rows {
            out.push_str(&format!("{:>9.2}", r.classes[ci].1));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "MPI total"));
    for r in &rows {
        out.push_str(&format!("{:>9.2}", r.mpi_total));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_verdicts_are_loud_and_carry_the_numbers() {
        let ok = speedup_reliability(8, 4);
        assert!(ok.starts_with("ok:"), "{ok}");
        assert!(ok.contains("host_cores=8") && ok.contains("needed_cores=4"));
        let bad = speedup_reliability(1, 4);
        assert!(bad.starts_with("UNRELIABLE: host_cores=1"), "{bad}");
        assert!(bad.contains("noise"));
        // boundary: exactly enough cores is ok
        assert!(speedup_reliability(4, 4).starts_with("ok:"));
        // and the verdict lands in the artifact metadata
        let t = flag_reliability(pt_io::Table::new(), 1, 4);
        let json = pt_io::Json::parse(&t.to_json()).unwrap();
        let v = json
            .get("reliability")
            .and_then(pt_io::Json::as_str)
            .unwrap();
        assert!(v.starts_with("UNRELIABLE"), "{v}");
    }

    #[test]
    fn renders_are_nonempty_and_have_all_columns() {
        let m = CostModel::new();
        let t1 = render_table1(&m);
        assert!(t1.contains("fock_comp") && t1.contains("speedup"));
        assert!(t1.lines().count() > 14);
        let t2 = render_table2(&m);
        assert!(t2.contains("bcast") && t2.contains("MPI total"));
    }
}
