//! Criterion micro-benchmarks of the real (Layer A) numerical kernels.
//!
//! These measure the actual Rust implementations on laptop-scale problems:
//! the 3-D FFT in band-by-band vs batched layout (the Fig. 3 stage-1 vs
//! stage-2 distinction), the Fock exchange application scaling in N_e
//! (the N_e² pair-solve law of Eq. 3), GEMM overlap kernels and the
//! Anderson mixer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pt_fft::Fft3;
use pt_ham::{FockMode, FockOperator, PwGrids, ScreenedKernel};
use pt_lattice::silicon_cubic_supercell;
use pt_linalg::{gemm, CMat, Op};
use pt_num::c64;
use std::hint::black_box;

fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
    CMat::rand_normalized(ng, nb, seed)
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3");
    g.sample_size(20);
    // a paper-shaped grid (60×90×120 scaled down 5x → 12×18×24)
    let fft = Fft3::new(12, 18, 24);
    let n = fft.len();
    let data: Vec<c64> = (0..n).map(|i| c64::new(i as f64, -(i as f64))).collect();
    g.bench_function("single_parallel", |b| {
        b.iter(|| {
            let mut d = data.clone();
            fft.forward(black_box(&mut d));
            d
        })
    });
    let batch = 8;
    let bdata: Vec<c64> = (0..n * batch).map(|i| c64::new(i as f64, 0.5)).collect();
    g.bench_function("batched_8", |b| {
        b.iter(|| {
            let mut d = bdata.clone();
            fft.forward_batch(black_box(&mut d));
            d
        })
    });
    g.bench_function("band_by_band_8", |b| {
        b.iter(|| {
            let mut d = bdata.clone();
            for chunk in d.chunks_mut(n) {
                fft.forward(black_box(chunk));
            }
            d
        })
    });
    g.finish();
}

fn bench_fock(c: &mut Criterion) {
    let mut g = c.benchmark_group("fock_apply");
    g.sample_size(10);
    let s = silicon_cubic_supercell(1, 1, 1);
    let grids = PwGrids::new(&s, 2.0);
    let kernel = ScreenedKernel::new(&grids, 0.11);
    for nb in [2usize, 4, 8] {
        let phi = rand_block(grids.ng(), nb, 3);
        let psi = rand_block(grids.ng(), nb, 7);
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        g.bench_with_input(BenchmarkId::new("n_bands", nb), &nb, |b, _| {
            b.iter(|| {
                let mut out = CMat::zeros(grids.ng(), nb);
                fock.apply_block(&grids, black_box(&psi), &mut out);
                out
            })
        });
    }
    g.finish();
}

fn bench_gemm_overlap(c: &mut Criterion) {
    let mut g = c.benchmark_group("overlap_gemm");
    g.sample_size(20);
    let psi = rand_block(4096, 16, 5);
    let hpsi = rand_block(4096, 16, 9);
    g.bench_function("psi_h_hpsi_16", |b| {
        b.iter(|| {
            let mut s = CMat::zeros(16, 16);
            gemm(
                c64::ONE,
                black_box(&psi),
                Op::ConjTrans,
                &hpsi,
                Op::None,
                c64::ZERO,
                &mut s,
            );
            s
        })
    });
    g.finish();
}

fn bench_anderson(c: &mut Criterion) {
    let mut g = c.benchmark_group("anderson");
    g.sample_size(20);
    g.bench_function("band_mixer_depth20", |b| {
        b.iter(|| {
            let mut mixer = pt_core::BandAndersonMixer::new(4, 20, 1.0);
            let x = rand_block(1024, 4, 1);
            let mut cur = x.clone();
            for k in 0..6 {
                let f = rand_block(1024, 4, 100 + k);
                cur = mixer.step(black_box(&cur), &f);
            }
            cur
        })
    });
    g.finish();
}

fn bench_ace(c: &mut Criterion) {
    // The paper's §1 finding: with fast GPU FFTs, plain PT beats PT+ACE
    // because ACE's construction (one exact exchange over Φ) cannot be
    // amortized over the few SCF iterations per PT-CN step. Measure both
    // sides of that trade-off on the real kernels.
    let mut g = c.benchmark_group("ace");
    g.sample_size(10);
    let s = silicon_cubic_supercell(1, 1, 1);
    let grids = PwGrids::new(&s, 2.0);
    let kernel = ScreenedKernel::new(&grids, 0.11);
    let nb = 4;
    let phi = rand_block(grids.ng(), nb, 3);
    let psi = rand_block(grids.ng(), nb, 7);
    let fock = FockOperator::new(&grids, &phi, 0.25, kernel, FockMode::Batched);
    g.bench_function("construct", |b| {
        b.iter(|| pt_ham::AceOperator::new(&grids, black_box(&fock), &phi))
    });
    let ace = pt_ham::AceOperator::new(&grids, &fock, &phi).expect("well-conditioned Φ");
    g.bench_function("apply_compressed", |b| {
        b.iter(|| {
            let mut out = CMat::zeros(grids.ng(), nb);
            ace.apply_block(black_box(&psi), &mut out);
            out
        })
    });
    g.bench_function("apply_exact", |b| {
        b.iter(|| {
            let mut out = CMat::zeros(grids.ng(), nb);
            fock.apply_block(&grids, black_box(&psi), &mut out);
            out
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft,
    bench_fock,
    bench_gemm_overlap,
    bench_anderson,
    bench_ace
);
criterion_main!(benches);
