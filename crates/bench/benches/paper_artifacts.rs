//! Criterion wrapper over the Layer-B artifact generators, so that
//! `cargo bench --workspace` regenerates every paper table/figure and
//! prints the full report once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn artifacts(c: &mut Criterion) {
    // print the complete paper report once, to stderr-independent stdout
    let model = pt_perf::CostModel::new();
    println!("\n================ SC'19 PT-TDDFT paper artifacts (model) ================");
    print!("{}", pt_bench::render_table1(&model));
    println!();
    print!("{}", pt_bench::render_table2(&model));
    println!("\nFig. 3 stages (s/step): ");
    for s in pt_perf::fig3_stages(&model) {
        println!("  {:<22} {:>10.1}", s.label, s.seconds);
    }
    println!("\nFig. 6 (RK4 vs PT-CN, 50 as):");
    for r in pt_perf::fig6_rows(&model) {
        println!(
            "  {:>5} GPUs: RK4 {:>9.1}s  PT-CN {:>7.1}s  ({:.1}x)",
            r.gpus,
            r.rk4,
            r.ptcn,
            r.rk4 / r.ptcn
        );
    }
    println!("\nFig. 8 (weak scaling):");
    for r in pt_perf::fig8_rows(&model) {
        println!(
            "  {:>5} atoms / {:>4} GPUs: {:>8.2}s (ideal N²: {:>8.2}s)",
            r.atoms, r.gpus, r.seconds, r.ideal
        );
    }
    println!("=========================================================================\n");

    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(10);
    g.bench_function("table1_generation", |b| {
        b.iter(|| pt_perf::table1(black_box(&model)))
    });
    g.bench_function("full_model_build", |b| b.iter(pt_perf::CostModel::new));
    g.finish();
}

criterion_group!(benches, artifacts);
criterion_main!(benches);
