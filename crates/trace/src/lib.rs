//! pt-trace — the repo's single observability layer: scoped wall-clock
//! **spans**, monotonic **counters**, and a Chrome trace-event exporter.
//!
//! The SC'19 optimization story rests on per-kernel attribution (how much
//! of a PT-CN step is FFT vs GEMM vs wire traffic), so the hot paths are
//! instrumented — but observation must never perturb the physics. The
//! contract here is therefore strict:
//!
//! - **Off by default, zero-cost off.** Every span and counter site first
//!   checks one relaxed [`AtomicBool`]; when disarmed no clock is read, no
//!   allocation happens, and [`Span::elapsed_secs`] reports exactly `0.0`.
//!   Bits produced by an instrumented run are identical armed vs disarmed
//!   (pinned by `tests/trace_determinism.rs`).
//! - **All timestamping lives here.** Kernel crates never touch
//!   `std::time` themselves — they take a [`Span`] from this crate. That
//!   keeps the `wallclock-in-kernel` lint contract intact via a single
//!   crate-scoped carve-out (see `pt-analyze`) instead of scattered
//!   pragmas. Trace output is observational only: nothing recorded here
//!   may flow back into bit-compared state (series tables, checkpoints,
//!   streaming samples).
//! - **Thread-aware.** Worker threads (pt-par pools, engine rank threads)
//!   call [`register_thread`] once; spans then carry a stable small tid so
//!   nested regions from different workers render as separate lanes in a
//!   Chrome trace viewer (`chrome://tracing`, Perfetto).
//!
//! Counters ([`Counter`]) are process-global `AtomicU64`s — cheap enough
//! to bump from inner loops and exact by construction (e.g. an ACE
//! stale-window step records zero [`Counter::PairFfts`]). Exporters work
//! from a [`Mark`]: take one before a job, then [`chrome_trace_since`] /
//! [`counters_since`] deliver only that job's events and counter deltas.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered span events: a runaway armed run stops recording
/// (drops are counted, see [`dropped_events`]) instead of growing without
/// bound. 1M complete events ≈ 48 MB — far above any served job.
const MAX_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Arm or disarm tracing process-wide. Disarmed (the default) every
/// instrumentation site is a single relaxed load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently armed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch (first use). Monotonic.
/// Always available — armed or not — so consumers that need *one* clock
/// (e.g. pt-serve's per-job step rate) share this one instead of minting
/// their own.
pub fn monotonic_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

// ---------------------------------------------------------------------------
// Thread identity
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static THREAD_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

thread_local! {
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// This thread's stable trace id (assigned lazily; the first thread to ask
/// gets 1). Ids are process-unique and small — they become Chrome `tid`s.
pub fn thread_id() -> u64 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Name the calling thread in trace output (idempotent; last name wins).
/// pt-par workers and engine rank threads call this at spawn so their
/// spans land in labelled lanes.
pub fn register_thread(name: &str) {
    let tid = thread_id();
    let mut names = THREAD_NAMES.lock().expect("invariant: name registry lock");
    if let Some(slot) = names.iter_mut().find(|(id, _)| *id == tid) {
        slot.1 = name.to_string();
    } else {
        names.push((tid, name.to_string()));
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Event {
    name: &'static str,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static DROPPED: AtomicUsize = AtomicUsize::new(0);

/// Span events dropped because the buffer hit its cap since the last
/// [`reset`].
pub fn dropped_events() -> usize {
    DROPPED.load(Ordering::Relaxed)
}

/// An RAII wall-clock region. Created by [`span`]; records a Chrome
/// "complete" event on drop (or [`Span::finish_secs`]). When tracing is
/// disarmed the span is inert: no clock read, no record, elapsed `0.0`.
#[must_use = "a span measures the region it is alive for"]
pub struct Span {
    name: &'static str,
    start_us: Option<u64>,
}

impl Span {
    /// Seconds since this span started (0.0 when tracing is disarmed).
    pub fn elapsed_secs(&self) -> f64 {
        match self.start_us {
            Some(s) => (monotonic_us().saturating_sub(s)) as f64 * 1e-6,
            None => 0.0,
        }
    }

    /// Close the span now: record its event and return its duration in
    /// seconds (0.0 when disarmed). Lets instrumentation both emit the
    /// trace event and fold the same measurement into a phase breakdown
    /// without reading the clock twice.
    pub fn finish_secs(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let Some(start) = self.start_us.take() else {
            return 0.0;
        };
        let now = monotonic_us();
        let ev = Event {
            name: self.name,
            ts_us: start,
            dur_us: now.saturating_sub(start),
            tid: thread_id(),
        };
        let mut events = EVENTS.lock().expect("invariant: event buffer lock");
        if events.len() < MAX_EVENTS {
            events.push(ev);
        } else {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
        ev.dur_us as f64 * 1e-6
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Open a named span covering the region until the guard drops. `name`
/// is `&'static str` on purpose: span sites are compiled-in phase labels,
/// and a static name keeps the disarmed path allocation-free.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start_us: is_enabled().then(monotonic_us),
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The fixed counter catalog. Everything is a monotonic `u64`; semantics
/// are exact counts (or, for [`Counter::GemmFlops`], the standard
/// `8·m·n·k` complex-GEMM flops model), never sampled estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Individual 3-D FFT transforms executed (a batch of B grids is B).
    FftTransforms,
    /// Batched-FFT entry calls (`forward_batch`/`inverse_batch`).
    FftBatches,
    /// Pair FFTs in exact-exchange application — the paper's dominant
    /// kernel cost; ACE stale-window steps record zero of these.
    PairFfts,
    /// Complex-GEMM flops model: `8·m·n·k` per `gemm` call.
    GemmFlops,
    /// Ground-state SCF iterations (`scf_loop`).
    ScfIterations,
    /// PT-CN fixed-point iterations (Alg. 3 inner loop).
    FixedPointIterations,
    /// ACE self-consistent refresh rounds.
    AceRefreshRounds,
    /// Wire bytes moved by the rank engine (folded in from
    /// `pt_mpi::StatsSnapshot` per-job deltas).
    WireBytes,
    /// Rank-engine `run` jobs dispatched.
    EngineJobs,
    /// Checkpoint snapshots written.
    CheckpointWrites,
    /// Simulation steps committed to a series.
    StepsCommitted,
    /// pt-serve scheduler dispatch decisions (`start_batch` sweeps).
    SchedDispatches,
}

/// Every counter, in catalog order (also the [`CounterSnapshot`] order).
pub const COUNTERS: [Counter; 12] = [
    Counter::FftTransforms,
    Counter::FftBatches,
    Counter::PairFfts,
    Counter::GemmFlops,
    Counter::ScfIterations,
    Counter::FixedPointIterations,
    Counter::AceRefreshRounds,
    Counter::WireBytes,
    Counter::EngineJobs,
    Counter::CheckpointWrites,
    Counter::StepsCommitted,
    Counter::SchedDispatches,
];

const N_COUNTERS: usize = COUNTERS.len();

impl Counter {
    /// Stable snake_case name used in exported metrics.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FftTransforms => "fft_transforms",
            Counter::FftBatches => "fft_batches",
            Counter::PairFfts => "pair_ffts",
            Counter::GemmFlops => "gemm_flops",
            Counter::ScfIterations => "scf_iterations",
            Counter::FixedPointIterations => "fixed_point_iterations",
            Counter::AceRefreshRounds => "ace_refresh_rounds",
            Counter::WireBytes => "wire_bytes",
            Counter::EngineJobs => "engine_jobs",
            Counter::CheckpointWrites => "checkpoint_writes",
            Counter::StepsCommitted => "steps_committed",
            Counter::SchedDispatches => "sched_dispatches",
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)] // const is the array INIT pattern
const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTER_CELLS: [AtomicU64; N_COUNTERS] = [COUNTER_ZERO; N_COUNTERS];

/// Bump `c` by `n`. A no-op while tracing is disarmed, so kernel inner
/// loops pay one relaxed load.
pub fn counter_add(c: Counter, n: u64) {
    if is_enabled() {
        COUNTER_CELLS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of one counter (readable armed or disarmed).
pub fn counter_value(c: Counter) -> u64 {
    COUNTER_CELLS[c as usize].load(Ordering::Relaxed)
}

/// A point-in-time copy of every counter, in [`COUNTERS`] order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: [u64; N_COUNTERS],
}

impl CounterSnapshot {
    /// Value of one counter in this snapshot.
    pub fn get(&self, c: Counter) -> u64 {
        self.values[c as usize]
    }

    /// Iterate `(name, value)` pairs in catalog order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTERS.iter().map(move |&c| (c.name(), self.get(c)))
    }

    /// Per-counter difference `self - earlier` (saturating; counters are
    /// monotonic between [`reset`]s so this is the activity in between).
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut values = [0u64; N_COUNTERS];
        for (i, v) in values.iter_mut().enumerate() {
            *v = self.values[i].saturating_sub(earlier.values[i]);
        }
        CounterSnapshot { values }
    }
}

/// Snapshot every counter now.
pub fn counters() -> CounterSnapshot {
    let mut values = [0u64; N_COUNTERS];
    for (i, v) in values.iter_mut().enumerate() {
        *v = COUNTER_CELLS[i].load(Ordering::Relaxed);
    }
    CounterSnapshot { values }
}

// ---------------------------------------------------------------------------
// Marks & exporters
// ---------------------------------------------------------------------------

/// A cursor into the trace: event position + counter values at one
/// instant. Take one before a unit of work, then export *that work's*
/// events and counter deltas without draining the global buffers (several
/// consumers can hold independent marks).
#[derive(Clone, Copy, Debug)]
pub struct Mark {
    event_index: usize,
    counters: CounterSnapshot,
}

/// Take a mark at the current trace position.
pub fn mark() -> Mark {
    Mark {
        event_index: EVENTS.lock().expect("invariant: event buffer lock").len(),
        counters: counters(),
    }
}

/// Counter activity since `m` was taken.
pub fn counters_since(m: &Mark) -> CounterSnapshot {
    counters().delta_since(&m.counters)
}

/// Export every span recorded since `m` as a Chrome trace-event JSON
/// array (loadable in `chrome://tracing` / Perfetto): one `ph:"X"`
/// complete event per span plus `thread_name` metadata for every
/// registered thread. Timestamps are µs on the shared [`monotonic_us`]
/// epoch; `pid` is always 0.
pub fn chrome_trace_since(m: &Mark) -> String {
    let events = EVENTS.lock().expect("invariant: event buffer lock");
    let tail = events.get(m.event_index..).unwrap_or(&[]);
    let names = THREAD_NAMES.lock().expect("invariant: name registry lock");
    let mut out = String::with_capacity(64 + 96 * tail.len());
    out.push('[');
    let mut first = true;
    for (tid, name) in names.iter() {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }
    for ev in tail {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
            escape_json(ev.name),
            ev.ts_us,
            ev.dur_us,
            ev.tid
        ));
    }
    out.push(']');
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Clear the event buffer, drop counter values to zero and forget the
/// dropped-event tally. Existing [`Mark`]s become stale — take fresh ones.
/// Thread-name registrations survive (threads keep their ids).
pub fn reset() {
    EVENTS.lock().expect("invariant: event buffer lock").clear();
    for cell in &COUNTER_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The armed flag and buffers are process-global; serialize the tests
    /// that touch them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_sites_are_inert() {
        let _g = locked();
        set_enabled(false);
        reset();
        let before = counters();
        counter_add(Counter::PairFfts, 7);
        let sp = span("noop");
        assert_eq!(sp.elapsed_secs(), 0.0);
        assert_eq!(sp.finish_secs(), 0.0);
        assert_eq!(counters(), before);
        let m = Mark {
            event_index: 0,
            counters: before,
        };
        assert_eq!(chrome_trace_since(&m).matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn armed_spans_and_counters_record_and_export() {
        let _g = locked();
        set_enabled(true);
        reset();
        let m = mark();
        counter_add(Counter::FftTransforms, 3);
        counter_add(Counter::FftTransforms, 2);
        {
            let _sp = span("outer");
            let inner = span("inner");
            assert!(inner.finish_secs() >= 0.0);
        }
        let delta = counters_since(&m);
        assert_eq!(delta.get(Counter::FftTransforms), 5);
        assert_eq!(delta.get(Counter::PairFfts), 0);
        let json = chrome_trace_since(&m);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"ph\":\"X\""));
        set_enabled(false);
        reset();
    }

    #[test]
    fn marks_window_the_event_stream() {
        let _g = locked();
        set_enabled(true);
        reset();
        span("before").finish_secs();
        let m = mark();
        span("after").finish_secs();
        let json = chrome_trace_since(&m);
        assert!(!json.contains("\"name\":\"before\""));
        assert!(json.contains("\"name\":\"after\""));
        set_enabled(false);
        reset();
    }

    #[test]
    fn registered_threads_appear_as_metadata() {
        let _g = locked();
        set_enabled(true);
        reset();
        let m = mark();
        std::thread::spawn(|| {
            register_thread("pt-test-worker");
            span("worker-span").finish_secs();
        })
        .join()
        .expect("invariant: test thread joins");
        let json = chrome_trace_since(&m);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("pt-test-worker"));
        assert!(json.contains("\"name\":\"worker-span\""));
        set_enabled(false);
        reset();
    }

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<_> = COUNTERS.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        // enum discriminants index the cell array — catalog order must
        // agree with declaration order
        for (i, c) in COUNTERS.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn snapshot_delta_is_saturating_per_counter() {
        let a = CounterSnapshot {
            values: [5; N_COUNTERS],
        };
        let b = CounterSnapshot {
            values: [3; N_COUNTERS],
        };
        assert_eq!(a.delta_since(&b).get(Counter::PairFfts), 2);
        assert_eq!(b.delta_since(&a).get(Counter::PairFfts), 0);
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }
}
