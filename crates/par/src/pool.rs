//! The fixed-worker thread pool.
//!
//! One [`ThreadPool`] owns `threads − 1` OS worker threads blocked on a
//! condvar-guarded batch queue; the thread that submits a batch claims
//! tasks alongside the workers, so a pool of `n` threads runs `n` tasks
//! concurrently while the submitter would otherwise idle.
//!
//! Nested parallelism is handled by *flattening*: every task body runs
//! with a thread-local "inside the pool" flag set, and any parallel
//! region entered from a task executes inline (sequentially) on that
//! thread. The outermost region gets the threads; inner regions keep
//! their deterministic chunk structure but run serially — exactly the
//! schedule the paper uses (band/pair parallelism outside, serial FFT
//! lines inside).

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Process-wide pool construction counters: spawn-once acceptance tests
/// take deltas around a multi-step run to prove the rank-pinned pools are
/// built exactly once, not once per H application.
static POOLS_BUILT: AtomicUsize = AtomicUsize::new(0);
static WORKER_THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total [`ThreadPool`]s ever constructed by this process (monotone).
pub fn pools_built() -> usize {
    POOLS_BUILT.load(Ordering::Relaxed)
}

/// Total pool worker threads ever spawned by this process (monotone; a
/// `threads`-wide pool spawns `threads − 1` workers).
pub fn worker_threads_spawned() -> usize {
    WORKER_THREADS_SPAWNED.load(Ordering::Relaxed)
}

thread_local! {
    /// True on pool workers and on a submitter while it executes claimed
    /// tasks: parallel regions entered under this flag run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Stack of scoped pool overrides installed via [`ThreadPool::install`].
    /// Raw pointers are sound: `install` borrows the pool for the whole
    /// scope and pops the entry before returning.
    static INSTALLED: RefCell<Vec<*const ThreadPool>> = const { RefCell::new(Vec::new()) };
}

/// One submitted parallel region: `total` tasks indexed `0..total`, each
/// executed exactly once by whichever thread claims it first.
struct Batch {
    /// Lifetime-erased task body; only dereferenced for claimed indices,
    /// and the submitter blocks until every task completed, so the
    /// underlying closure outlives every use.
    task: &'static (dyn Fn(usize) + Sync),
    total: usize,
    next: AtomicUsize,
    completed: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Run one claimed task, trapping panics so sibling tasks finish and
    /// the submitter can re-raise.
    fn run_one(&self, i: usize) {
        let was = IN_POOL.with(|f| f.replace(true));
        let r = catch_unwind(AssertUnwindSafe(|| (self.task)(i)));
        IN_POOL.with(|f| f.set(was));
        if let Err(p) = r {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(p);
        }
        let mut c = self.completed.lock().unwrap();
        *c += 1;
        if *c == self.total {
            self.done.notify_all();
        }
    }

    fn wait_done(&self) {
        let mut c = self.completed.lock().unwrap();
        while *c < self.total {
            c = self.done.wait(c).unwrap();
        }
    }
}

struct QueueState {
    queue: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    work: Condvar,
}

/// A fixed-size worker pool; see the module docs for the scheduling model.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool that runs up to `threads` tasks concurrently
    /// (`threads − 1` spawned workers plus the submitting thread).
    /// `threads` is clamped to at least 1; a 1-thread pool executes
    /// everything inline and spawns nothing.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        POOLS_BUILT.fetch_add(1, Ordering::Relaxed);
        WORKER_THREADS_SPAWNED.fetch_add(threads - 1, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pt-par-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pt-par worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            workers,
        }
    }

    /// Concurrency of this pool (including the submitting thread).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Execute `task(i)` for every `i in 0..total`, blocking until all
    /// complete. Tasks are claimed dynamically (load-balanced); any
    /// ordering-sensitive reduction must therefore happen per task and be
    /// combined in task order by the caller (see `pt_par::parallel_reduce`).
    ///
    /// Called from inside another parallel region (or on a 1-thread pool,
    /// or with `total <= 1`) this runs inline, sequentially, in index
    /// order. A panic in any task is re-raised here after every sibling
    /// task has finished.
    pub fn run(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        if total == 1 || self.threads <= 1 || IN_POOL.with(Cell::get) {
            for i in 0..total {
                task(i);
            }
            return;
        }
        // SAFETY: the `'static` is a lie scoped to this frame — we block on
        // `wait_done` (and remove the queue entry) before returning, so no
        // worker can touch `task` after this stack frame is gone; the
        // transmute only erases the lifetime, never the type.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task,
            total,
            next: AtomicUsize::new(0),
            completed: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        self.shared
            .state
            .lock()
            .unwrap()
            .queue
            .push_back(Arc::clone(&batch));
        self.shared.work.notify_all();
        while let Some(i) = batch.claim() {
            batch.run_one(i);
        }
        batch.wait_done();
        self.shared
            .state
            .lock()
            .unwrap()
            .queue
            .retain(|b| !Arc::ptr_eq(b, &batch));
        let p = batch.panic.lock().unwrap().take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }

    /// Run `f` with this pool as the calling thread's current pool: every
    /// `pt_par` primitive (and hence every `rayon`-shim call site) reached
    /// from `f` executes on it. Scoped and re-entrant; the previous pool is
    /// restored when `f` returns or unwinds.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        INSTALLED.with(|s| s.borrow_mut().push(self as *const ThreadPool));
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                INSTALLED.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
        let _guard = Guard;
        f()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|f| f.set(true));
    // label this worker's lane in trace output (the OS thread name is
    // already set by the spawning Builder)
    if let Some(name) = thread::current().name() {
        pt_trace::register_thread(name);
    }
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                while st.queue.front().is_some_and(|b| b.exhausted()) {
                    st.queue.pop_front();
                }
                if let Some(b) = st.queue.front() {
                    break Arc::clone(b);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        while let Some(i) = batch.claim() {
            batch.run_one(i);
        }
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// `PT_NUM_THREADS` as parsed (whitespace-trimmed, ≥ 1), if set — the one
/// place the env var's parsing rule lives; [`global`] and the rank/thread
/// sweep benches share it.
pub fn env_threads() -> Option<usize> {
    std::env::var("PT_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The process-wide default pool, sized by `PT_NUM_THREADS` (falling back
/// to the machine's available parallelism). Built lazily on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let threads = env_threads().unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        ThreadPool::new(threads)
    })
}

/// Run `f` against the calling thread's current pool: the innermost
/// [`ThreadPool::install`] scope, or the [`global`] pool outside any.
/// Inside a pool task (where regions run inline anyway) a workerless
/// 1-thread pool is used instead, so nested calls never lazily spawn the
/// global pool's threads just to leave them idle.
pub fn with_current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    if IN_POOL.with(Cell::get) {
        static INLINE: OnceLock<ThreadPool> = OnceLock::new();
        return f(INLINE.get_or_init(|| ThreadPool::new(1)));
    }
    let installed = INSTALLED.with(|s| s.borrow().last().copied());
    match installed {
        // SAFETY: `install` pushed this pointer from a `&ThreadPool` it
        // keeps borrowed for its whole scope (popped by its drop guard),
        // and INSTALLED is thread-local — the pool is alive and unaliased
        // by any &mut for the duration of `f`.
        Some(p) => f(unsafe { &*p }),
        None => f(global()),
    }
}

/// Concurrency of the calling thread's current pool.
pub fn current_num_threads() -> usize {
    with_current(ThreadPool::num_threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        pool.run(97, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn one_thread_pool_is_inline_and_ordered() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(5, &|i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_regions_run_inline() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        pool.run(8, &|_| {
            // nested region: must not deadlock, must still run every task
            pool.run(8, &|j| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 36);
    }

    #[test]
    fn panics_propagate_after_siblings_finish() {
        let pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                if i == 3 {
                    panic!("injected");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 15);
        // the pool survives a panicked batch
        pool.run(4, &|_| {});
    }

    #[test]
    fn install_is_scoped() {
        let outer = ThreadPool::new(2);
        let inner = ThreadPool::new(3);
        outer.install(|| {
            assert_eq!(current_num_threads(), 2);
            inner.install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(ThreadPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    pool.run(50, &|i| {
                        total.fetch_add(i as u64, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 3 * (49 * 50 / 2));
    }
}
