//! `pt-par` — the workspace execution layer: a std-only fixed-worker
//! thread pool plus deterministic data-parallel primitives.
//!
//! The build environment is offline, so this crate depends on nothing but
//! `std` (`std::thread` + channels-over-condvar). It is what the vendored
//! `rayon` shim delegates to, which means every `par_iter` call site in
//! `pt-ham`, `pt-fft`, `pt-linalg` and `pt-pseudo` executes on real
//! threads without source changes, and the FFT/GEMM/Fock hot paths can
//! additionally thread themselves explicitly with [`parallel_for`],
//! [`parallel_chunks_mut`], [`parallel_map`] and [`parallel_reduce`].
//!
//! # Determinism contract
//!
//! Chunk decomposition depends only on the problem size and every
//! reduction combines partial results in a fixed chunk-ordered tree, so
//! **results are bit-identical for any thread count** — `PT_NUM_THREADS=1`
//! and `=64` produce the same floats. Nested parallel regions run inline
//! (sequentially) on the worker that reached them, which both avoids
//! deadlock and keeps the schedule shape fixed.
//!
//! # Configuration
//!
//! * `PT_NUM_THREADS` sizes the lazily-built [`global`] pool (default:
//!   available parallelism).
//! * [`ThreadPool::install`] scopes a specific pool over a closure — the
//!   determinism tests and the thread-scaling bench use this to compare
//!   thread counts inside one process.
//! * [`Parallelism`] is the plain-data config surfaced by
//!   `KsSystemBuilder::parallelism` / `SimulationBuilder::parallelism`.

mod ops;
mod pool;

pub use ops::{
    chunk_count, chunk_range, parallel_chunks_mut, parallel_for, parallel_for_chunks, parallel_map,
    parallel_reduce, tree_combine,
};
pub use pool::{
    current_num_threads, env_threads, global, pools_built, with_current, worker_threads_spawned,
    ThreadPool,
};

use std::sync::Arc;

/// A ranks × threads decomposition of the host's cores — the in-process
/// analogue of the paper's "one MPI rank per GPU plus a CPU-thread slice"
/// node layout. `ranks` is the number of virtual-MPI rank threads and
/// `threads_per_rank` the width of the dedicated compute pool pinned to
/// each of them, so a layout uses `ranks × threads_per_rank` cores when it
/// [fits the host](RankLayout::fits_host).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankLayout {
    /// Number of virtual-MPI ranks (one OS thread each).
    pub ranks: usize,
    /// Compute threads pinned to each rank (a dedicated [`ThreadPool`]).
    pub threads_per_rank: usize,
}

impl RankLayout {
    /// A `ranks × threads_per_rank` layout (both clamped to at least 1).
    pub fn new(ranks: usize, threads_per_rank: usize) -> Self {
        RankLayout {
            ranks: ranks.max(1),
            threads_per_rank: threads_per_rank.max(1),
        }
    }

    /// Total compute threads the layout occupies.
    pub fn total_threads(&self) -> usize {
        self.ranks * self.threads_per_rank
    }

    /// The host's available parallelism (1 if it cannot be queried).
    pub fn host_cores() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Cores this layout occupies — [`RankLayout::total_threads`] under
    /// its scheduling name: the quantity a job server charges against its
    /// core budget.
    pub fn cores(&self) -> usize {
        self.total_threads()
    }

    /// Whether the layout fits within an explicit core budget (a server's
    /// configured capacity, as opposed to the physical
    /// [host](RankLayout::fits_host)).
    pub fn fits_budget(&self, budget_cores: usize) -> bool {
        self.total_threads() <= budget_cores
    }

    /// Whether `ranks × threads_per_rank` fits the host's cores.
    /// Oversubscription is allowed (it cannot change results — the
    /// determinism contract is schedule-independent) but contends for
    /// cores; `bench_ranks_threads` records `host_cores` so sweeps on
    /// small machines are read correctly.
    pub fn fits_host(&self) -> bool {
        self.total_threads() <= Self::host_cores()
    }

    /// Validate the layout: both extents must be nonzero. Returns a
    /// human-readable complaint for builders to wrap in their error type.
    pub fn validate(&self) -> Result<(), String> {
        if self.ranks == 0 {
            return Err("rank layout needs at least 1 rank".into());
        }
        if self.threads_per_rank == 0 {
            return Err("rank layout needs at least 1 thread per rank".into());
        }
        Ok(())
    }

    /// The per-rank [`Parallelism`] this layout pins to each rank thread.
    pub fn per_rank(&self) -> Parallelism {
        Parallelism::threads(self.threads_per_rank)
    }
}

/// How much threading a component should use. Plain data so builders can
/// carry it; turn it into a pool with [`Parallelism::build_pool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Parallelism {
    /// `Some(n)` pins a dedicated n-thread pool; `None` inherits the
    /// calling thread's current pool (ultimately `PT_NUM_THREADS`).
    pub num_threads: Option<usize>,
    /// `Some(layout)` additionally requests a `ranks × threads_per_rank`
    /// decomposition for components that drive the virtual MPI runtime
    /// (each rank thread then gets its own pinned `threads_per_rank`-wide
    /// pool). Components that do not run ranks ignore this field.
    pub rank_layout: Option<RankLayout>,
}

impl Parallelism {
    /// Inherit the surrounding pool (the default).
    pub fn inherit() -> Self {
        Parallelism::default()
    }

    /// Pin a dedicated pool of `n` threads (clamped to at least 1).
    pub fn threads(n: usize) -> Self {
        Parallelism {
            num_threads: Some(n.max(1)),
            rank_layout: None,
        }
    }

    /// A `ranks × threads_per_rank` layout: rank-running components spawn
    /// `ranks` rank threads, each with its own pinned pool (the
    /// `KsSystemBuilder` derives a full-precision `DistributedConfig`
    /// from it when none was given explicitly); everything else sees a
    /// dedicated `threads_per_rank`-wide pool.
    pub fn ranks_threads(ranks: usize, threads_per_rank: usize) -> Self {
        let layout = RankLayout::new(ranks, threads_per_rank);
        Parallelism {
            num_threads: Some(layout.threads_per_rank),
            rank_layout: Some(layout),
        }
    }

    /// Build the dedicated pool, if one was requested.
    pub fn build_pool(&self) -> Option<Arc<ThreadPool>> {
        self.num_threads.map(|n| Arc::new(ThreadPool::new(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_config_builds_pools() {
        assert!(Parallelism::inherit().build_pool().is_none());
        let p = Parallelism::threads(3).build_pool().expect("pool");
        assert_eq!(p.num_threads(), 3);
        // zero is clamped, never a panic
        assert_eq!(
            Parallelism::threads(0).build_pool().unwrap().num_threads(),
            1
        );
    }

    #[test]
    fn rank_layout_budget_arithmetic() {
        let l = RankLayout::new(2, 3);
        assert_eq!(l.cores(), 6);
        assert!(l.fits_budget(6));
        assert!(l.fits_budget(7));
        assert!(!l.fits_budget(5));
        assert!(!l.fits_budget(0));
    }

    #[test]
    fn rank_layout_shapes_and_validation() {
        let l = RankLayout::new(3, 2);
        assert_eq!(l.total_threads(), 6);
        assert!(l.validate().is_ok());
        assert_eq!(l.per_rank(), Parallelism::threads(2));
        // constructor clamps; a hand-built zero layout fails validation
        assert_eq!(RankLayout::new(0, 0), RankLayout::new(1, 1));
        assert!(RankLayout {
            ranks: 0,
            threads_per_rank: 2
        }
        .validate()
        .is_err());
        assert!(RankLayout {
            ranks: 2,
            threads_per_rank: 0
        }
        .validate()
        .is_err());
        // a 1×1 layout always fits
        assert!(RankLayout::new(1, 1).fits_host());
        assert!(RankLayout::host_cores() >= 1);
    }

    #[test]
    fn ranks_threads_parallelism_carries_both_views() {
        let p = Parallelism::ranks_threads(2, 3);
        assert_eq!(p.num_threads, Some(3));
        assert_eq!(p.rank_layout, Some(RankLayout::new(2, 3)));
        // the non-rank view builds a per-rank-width pool
        assert_eq!(p.build_pool().unwrap().num_threads(), 3);
        assert_eq!(Parallelism::inherit().rank_layout, None);
    }
}
