//! `pt-par` — the workspace execution layer: a std-only fixed-worker
//! thread pool plus deterministic data-parallel primitives.
//!
//! The build environment is offline, so this crate depends on nothing but
//! `std` (`std::thread` + channels-over-condvar). It is what the vendored
//! `rayon` shim delegates to, which means every `par_iter` call site in
//! `pt-ham`, `pt-fft`, `pt-linalg` and `pt-pseudo` executes on real
//! threads without source changes, and the FFT/GEMM/Fock hot paths can
//! additionally thread themselves explicitly with [`parallel_for`],
//! [`parallel_chunks_mut`], [`parallel_map`] and [`parallel_reduce`].
//!
//! # Determinism contract
//!
//! Chunk decomposition depends only on the problem size and every
//! reduction combines partial results in a fixed chunk-ordered tree, so
//! **results are bit-identical for any thread count** — `PT_NUM_THREADS=1`
//! and `=64` produce the same floats. Nested parallel regions run inline
//! (sequentially) on the worker that reached them, which both avoids
//! deadlock and keeps the schedule shape fixed.
//!
//! # Configuration
//!
//! * `PT_NUM_THREADS` sizes the lazily-built [`global`] pool (default:
//!   available parallelism).
//! * [`ThreadPool::install`] scopes a specific pool over a closure — the
//!   determinism tests and the thread-scaling bench use this to compare
//!   thread counts inside one process.
//! * [`Parallelism`] is the plain-data config surfaced by
//!   `KsSystemBuilder::parallelism` / `SimulationBuilder::parallelism`.

mod ops;
mod pool;

pub use ops::{
    chunk_count, chunk_range, parallel_chunks_mut, parallel_for, parallel_for_chunks, parallel_map,
    parallel_reduce, tree_combine,
};
pub use pool::{current_num_threads, global, with_current, ThreadPool};

use std::sync::Arc;

/// How much threading a component should use. Plain data so builders can
/// carry it; turn it into a pool with [`Parallelism::build_pool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Parallelism {
    /// `Some(n)` pins a dedicated n-thread pool; `None` inherits the
    /// calling thread's current pool (ultimately `PT_NUM_THREADS`).
    pub num_threads: Option<usize>,
}

impl Parallelism {
    /// Inherit the surrounding pool (the default).
    pub fn inherit() -> Self {
        Parallelism::default()
    }

    /// Pin a dedicated pool of `n` threads (clamped to at least 1).
    pub fn threads(n: usize) -> Self {
        Parallelism {
            num_threads: Some(n.max(1)),
        }
    }

    /// Build the dedicated pool, if one was requested.
    pub fn build_pool(&self) -> Option<Arc<ThreadPool>> {
        self.num_threads.map(|n| Arc::new(ThreadPool::new(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_config_builds_pools() {
        assert!(Parallelism::inherit().build_pool().is_none());
        let p = Parallelism::threads(3).build_pool().expect("pool");
        assert_eq!(p.num_threads(), 3);
        // zero is clamped, never a panic
        assert_eq!(
            Parallelism::threads(0).build_pool().unwrap().num_threads(),
            1
        );
    }
}
