//! Deterministic data-parallel primitives over the current pool.
//!
//! Every primitive that combines results does so **chunk-ordered**: the
//! index space is cut into contiguous chunks by a policy that depends only
//! on the problem size (never on the thread count), each chunk is
//! processed sequentially in index order, and partial results are combined
//! in chunk order. Floating-point results are therefore bit-identical for
//! any `PT_NUM_THREADS` — the property `tests/parallel_determinism.rs`
//! pins down.

use crate::pool::with_current;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;

/// Upper bound on the number of chunks any index space is cut into.
/// Fixed (thread-count independent) so reductions are deterministic;
/// large enough to load-balance pools up to ~16 threads.
const MAX_CHUNKS: usize = 64;

/// Number of chunks the deterministic policy cuts `n` items into.
pub fn chunk_count(n: usize) -> usize {
    n.min(MAX_CHUNKS)
}

/// Index range of chunk `c` when `n` items are cut into `k` chunks
/// (contiguous, sizes differing by at most one).
pub fn chunk_range(n: usize, k: usize, c: usize) -> Range<usize> {
    debug_assert!(c < k && k <= n.max(1));
    let base = n / k;
    let rem = n % k;
    let start = c * base + c.min(rem);
    start..start + base + usize::from(c < rem)
}

/// Run `body(i)` for every `i in 0..n`, one pool task per index (dynamic
/// load balancing — right for coarse items like bands or orbital pairs).
pub fn parallel_for(n: usize, body: impl Fn(usize) + Sync) {
    with_current(|p| p.run(n, &body));
}

/// Run `body(chunk, range)` over the deterministic chunk decomposition of
/// `0..n`, one pool task per chunk.
pub fn parallel_for_chunks(n: usize, body: impl Fn(usize, Range<usize>) + Sync) {
    let k = chunk_count(n);
    with_current(|p| p.run(k, &|c| body(c, chunk_range(n, k, c))));
}

/// Split `data` into chunks of `size` (last one possibly shorter) and run
/// `body(chunk_index, chunk)` with one pool task per chunk — the building
/// block for band-batched FFTs and GEMM panels.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    size: usize,
    body: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(size > 0, "chunk size must be positive");
    let len = data.len();
    let n_chunks = len.div_ceil(size);
    let base = SendPtr(data.as_mut_ptr());
    with_current(|p| {
        p.run(n_chunks, &|c| {
            let start = c * size;
            let end = (start + size).min(len);
            // SAFETY: disjoint subslices — each chunk index is claimed
            // exactly once, so no two tasks alias; `start..end` is clamped
            // to `len`, and `data` outlives the pool run (run blocks).
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            body(c, chunk);
        });
    });
}

/// Compute `f(i)` for every `i in 0..n` in parallel, returning the results
/// in index order.
pub fn parallel_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    parallel_for_chunks(n, |_c, range| {
        for i in range {
            // SAFETY: disjoint writes — every index belongs to exactly one
            // chunk, and `i < n = out.len()`. (If `f` panics, unwritten
            // slots are never read and written ones leak — safe, and only
            // on an already-panicking path.)
            unsafe { base.get().add(i).write(MaybeUninit::new(f(i))) };
        }
    });
    let mut out = ManuallyDrop::new(out);
    // SAFETY: every slot was written exactly once above.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), n, out.capacity()) }
}

/// Deterministic parallel reduction over `0..n`: each chunk folds its
/// indices in order (`acc = fold(acc, i)` from `identity()`), then the
/// per-chunk accumulators are combined by a fixed pairwise tree over the
/// chunk order. The result depends only on `n` — never on thread count.
pub fn parallel_reduce<T: Send>(
    n: usize,
    identity: impl Fn() -> T + Sync,
    fold: impl Fn(T, usize) -> T + Sync,
    combine: impl Fn(T, T) -> T,
) -> T {
    let k = chunk_count(n);
    if k == 0 {
        return identity();
    }
    // pt-analyze: allow(float-fold-order) — this IS the deterministic reduction machinery: per-chunk in-order folds whose chunking depends only on n, combined by the fixed pairwise tree below
    let partials = parallel_map(k, |c| chunk_range(n, k, c).fold(identity(), &fold));
    tree_combine(partials, combine)
}

/// Combine `parts` (chunk-ordered) with a fixed binary tree:
/// `((p0⊕p1)⊕(p2⊕p3))⊕…`. The tree shape depends only on `parts.len()`.
pub fn tree_combine<T>(mut parts: Vec<T>, combine: impl Fn(T, T) -> T) -> T {
    assert!(!parts.is_empty(), "tree_combine needs at least one element");
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.into_iter().next().unwrap()
}

/// A raw pointer that may cross threads. Used for disjoint-range writes;
/// every use site guarantees disjointness by construction. Access goes
/// through [`SendPtr::get`] so closures capture the (Sync) wrapper rather
/// than the raw pointer field.
struct SendPtr<T>(*mut T);
// SAFETY: the pointer targets a `T: Send` buffer owned by the caller of a
// pool run, which blocks until every task finishes — the buffer outlives
// all cross-thread access, and use sites write disjoint ranges only.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared access is only `get()` (reading the pointer value, not
// the pointee); the disjoint-range contract above covers dereferences.
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn chunk_ranges_tile_the_index_space() {
        for n in [0usize, 1, 5, 63, 64, 65, 1000] {
            let k = chunk_count(n);
            let mut covered = 0;
            for c in 0..k {
                let r = chunk_range(n, k, c);
                assert_eq!(r.start, covered);
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn map_preserves_order() {
        let v = parallel_map(100, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_visits_disjoint_chunks() {
        let mut data = vec![0usize; 103];
        parallel_chunks_mut(&mut data, 10, |c, chunk| {
            for x in chunk.iter_mut() {
                *x = c + 1;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i / 10 + 1);
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        // a sum that is NOT associative in floating point: if the chunk
        // structure or combine order varied with thread count, the bits
        // would differ
        let run = |threads: usize| -> f64 {
            ThreadPool::new(threads).install(|| {
                parallel_reduce(
                    10_000,
                    || 0.0f64,
                    |acc, i| acc + 1.0 / (1.0 + i as f64).sqrt(),
                    |a, b| a + b,
                )
            })
        };
        let s1 = run(1);
        let s4 = run(4);
        assert_eq!(s1.to_bits(), s4.to_bits());
    }

    #[test]
    fn tree_combine_shape_is_fixed() {
        let out = tree_combine(vec!["a", "b", "c", "d", "e"], |a, b| {
            Box::leak(format!("({a}{b})").into_boxed_str())
        });
        assert_eq!(out, "(((ab)(cd))e)");
    }
}
