//! CRC-32 (IEEE 802.3 polynomial, reflected) — the per-section integrity
//! check of the snapshot container. Table-driven, std-only.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` — the
/// same convention as zlib/PNG, so values are checkable with external
/// tools).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"pt-io"), crc32(b"pt-io"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"snapshot payload bytes".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() {
            let mut corrupted = base.clone();
            corrupted[i] ^= 0x40;
            assert_ne!(crc32(&corrupted), want, "flip at byte {i} undetected");
        }
    }
}
