//! `pt-io` — checkpoint/restart snapshots and run-artifact export.
//!
//! The paper's production regime (~1500-atom hybrid-functional rt-TDDFT,
//! thousands of attosecond steps on a batch machine) only works if a long
//! trajectory can outlive job-time limits and node failures. This crate
//! supplies the persistence layer:
//!
//! * [`format`] — a versioned, CRC-checked, little-endian binary
//!   **snapshot container** (named typed sections; complex matrices
//!   optionally stored as `f32` payloads, mirroring [`pt_mpi::Wire`]).
//!   `pt-core` serializes the full resumable state of a run into it —
//!   ψ orbitals, exchange orbitals Φ, density, occupations, step/time,
//!   laser parameters, propagator options incl. Anderson mixer history,
//!   and every accumulated `TimeSeries` channel — such that a killed and
//!   resumed trajectory is bit-identical to an uninterrupted one (at the
//!   default `f64` payloads).
//! * [`export`] — columnar [`export::Table`] → JSON / CSV, used by the
//!   `pt-bench` artifact writers and `TimeSeries` export.
//! * [`json`] — a hand-rolled JSON value ([`Json`]): parser + serializer
//!   for job specs and the `pt-serve` wire protocol (no serde offline).
//! * [`scan`] — checkpoint-directory scanning: validate every
//!   `ckpt_*.ptio` and pick the [newest resumable
//!   one](latest_valid_snapshot), skipping corrupt/truncated files.
//!
//! Std-only by design (the build environment is offline; no serde): the
//! byte layout is hand-rolled, documented in `DESIGN.md` ("Snapshot
//! format & resume semantics"), and defended by round-trip, truncation and
//! corruption tests — every malformed input surfaces as a typed
//! [`pt_ham::PtError`], never a panic.

pub mod crc32;
pub mod export;
pub mod format;
pub mod json;
pub mod scan;

pub use export::{Table, Value};
pub use format::{SnapshotFile, SnapshotWriter, FORMAT_VERSION, MAGIC};
pub use json::Json;
pub use scan::{latest_valid_snapshot, scan_snapshots, snapshot_files, SnapshotScan};
