//! Run-artifact export: columnar tables → JSON / CSV.
//!
//! `pt-bench` artifacts (`BENCH_*.json`) and exported `TimeSeries` all
//! share one shape: a handful of scalar metadata fields plus named
//! equal-length `f64` columns. [`Table`] models exactly that, and its
//! serializers replace the hand-rolled `format!` JSON the bench binaries
//! used to assemble by string concatenation.
//!
//! Numbers are written with Rust's shortest round-trip `f64` formatting,
//! so `parse::<f64>()` on any emitted value recovers the exact bits.
//! Non-finite values (which JSON cannot represent) are emitted as `null`
//! in JSON and `nan`/`inf` in CSV.

use pt_ham::PtError;
use std::fmt::Write as _;
use std::path::Path;

/// A scalar metadata value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

/// Scalar metadata + named equal-length `f64` columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    meta: Vec<(String, Value)>,
    columns: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Attach a scalar metadata field (builder style).
    pub fn meta(mut self, key: &str, value: Value) -> Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// Append a column; every column must have the same length as the
    /// first.
    pub fn column(&mut self, name: &str, values: Vec<f64>) -> Result<(), PtError> {
        if let Some((first_name, first)) = self.columns.first() {
            if first.len() != values.len() {
                return Err(PtError::InvalidConfig(format!(
                    "table column '{name}' has {} rows but '{first_name}' has {}",
                    values.len(),
                    first.len()
                )));
            }
        }
        if self.columns.iter().any(|(n, _)| n == name) {
            return Err(PtError::InvalidConfig(format!(
                "table already has a column named '{name}'"
            )));
        }
        self.columns.push((name.to_string(), values));
        Ok(())
    }

    /// Rows in each column (0 for a column-less table).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, c)| c.len())
    }

    /// Column by name.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }

    /// Serialize as a JSON object: metadata fields first, then `"n_rows"`
    /// and a `"columns"` object of arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (k, v) in &self.meta {
            let _ = write!(out, "  {}: ", json_str(k));
            match v {
                Value::U64(u) => {
                    let _ = write!(out, "{u}");
                }
                Value::F64(x) => out.push_str(&json_num(*x)),
                Value::Str(s) => out.push_str(&json_str(s)),
            }
            out.push_str(",\n");
        }
        let _ = write!(out, "  \"n_rows\": {},\n  \"columns\": {{", self.n_rows());
        for (i, (name, col)) in self.columns.iter().enumerate() {
            let _ = write!(out, "\n    {}: [", json_str(name));
            for (j, v) in col.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_num(*v));
            }
            out.push(']');
            if i + 1 < self.columns.len() {
                out.push(',');
            }
        }
        if self.columns.is_empty() {
            out.push_str("}\n}\n");
        } else {
            out.push_str("\n  }\n}\n");
        }
        out
    }

    /// Serialize as CSV: `# key = value` metadata comment lines, a header
    /// row, then one row per index.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.meta {
            match v {
                Value::U64(u) => {
                    let _ = writeln!(out, "# {k} = {u}");
                }
                Value::F64(x) => {
                    let _ = writeln!(out, "# {k} = {x}");
                }
                Value::Str(s) => {
                    let _ = writeln!(out, "# {k} = {s}");
                }
            }
        }
        let names: Vec<&str> = self.columns.iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, "{}", names.join(","));
        for row in 0..self.n_rows() {
            for (i, (_, col)) in self.columns.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", col[row]);
            }
            out.push('\n');
        }
        out
    }

    /// Write [`Table::to_json`] to a file.
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), PtError> {
        write_file(path.as_ref(), &self.to_json())
    }

    /// Write [`Table::to_csv`] to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> Result<(), PtError> {
        write_file(path.as_ref(), &self.to_csv())
    }
}

fn write_file(path: &Path, content: &str) -> Result<(), PtError> {
    std::fs::write(path, content).map_err(|e| PtError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    })
}

/// JSON number: shortest round-trip formatting; non-finite → `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // bare integers like "3" are valid JSON numbers; keep them as-is
        s
    } else {
        "null".to_string()
    }
}

/// JSON string with the escapes the artifact names can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new()
            .meta("bench", Value::Str("io_smoke".into()))
            .meta("host_cores", Value::U64(4));
        t.column("t", vec![0.0, 0.5, 1.0]).unwrap();
        t.column("energy", vec![-1.25, -1.5, f64::NAN]).unwrap();
        t
    }

    #[test]
    fn json_has_meta_columns_and_null_for_nan() {
        let j = sample().to_json();
        assert!(j.contains("\"bench\": \"io_smoke\""), "{j}");
        assert!(j.contains("\"host_cores\": 4"));
        assert!(j.contains("\"n_rows\": 3"));
        assert!(j.contains("\"energy\": [-1.25, -1.5, null]"), "{j}");
    }

    #[test]
    fn json_numbers_round_trip_exactly() {
        let vals = [0.1, 1.0 / 3.0, -2.5e-300, 6.02214076e23];
        let mut t = Table::new();
        t.column("x", vals.to_vec()).unwrap();
        let j = t.to_json();
        let arr = j.split('[').nth(1).unwrap().split(']').next().unwrap();
        for (s, want) in arr.split(", ").zip(vals) {
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), want.to_bits(), "{s}");
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "# bench = io_smoke");
        assert_eq!(lines.next().unwrap(), "# host_cores = 4");
        assert_eq!(lines.next().unwrap(), "t,energy");
        assert_eq!(lines.next().unwrap(), "0,-1.25");
        assert_eq!(c.lines().count(), 6);
    }

    #[test]
    fn mismatched_column_lengths_are_rejected() {
        let mut t = Table::new();
        t.column("a", vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            t.column("b", vec![1.0]),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            t.column("a", vec![3.0, 4.0]),
            Err(PtError::InvalidConfig(_))
        ));
    }
}
