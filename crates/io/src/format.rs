//! The versioned binary snapshot container.
//!
//! A snapshot file is a flat, little-endian, self-describing bag of named
//! **sections**:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"PTIOSNAP"
//! 8       4     u32 format version (currently 1)
//! 12      4     u32 section count
//! 16      8     u64 section-table offset
//! 24      …     section payloads, back to back
//! table   …     per section: u16 name length, name (UTF-8), u8 kind,
//!               u64 payload offset, u64 payload length, u32 CRC-32
//! ```
//!
//! Section kinds: `u64` arrays, `f64` arrays, UTF-8 strings, and complex
//! column-major matrices whose payload is either full `f64` pairs or —
//! mirroring [`pt_mpi::Wire`]'s single-precision wire mode — `f32` pairs
//! at half the bytes (~1e-7 relative loss; a snapshot written that way can
//! no longer resume bit-exactly).
//!
//! Every payload carries its own CRC-32; [`SnapshotFile::open`] verifies
//! all of them (plus magic, version and table bounds) before returning, so
//! truncation and corruption surface as [`PtError::SnapshotFormat`] — the
//! reader never panics on malformed input. [`SnapshotWriter::finish`]
//! writes to a temporary sibling and renames it into place, so a crash
//! mid-write can never leave a half-written file under the final name.

use crate::crc32::crc32;
use pt_ham::PtError;
use pt_linalg::CMat;
use pt_mpi::Wire;
use pt_num::c64;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File magic.
pub const MAGIC: [u8; 8] = *b"PTIOSNAP";
/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 24;

/// Payload type of one section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    U64s,
    F64s,
    Str,
    CMatF64,
    CMatF32,
}

impl Kind {
    fn tag(self) -> u8 {
        match self {
            Kind::U64s => 1,
            Kind::F64s => 2,
            Kind::Str => 3,
            Kind::CMatF64 => 4,
            Kind::CMatF32 => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<Kind> {
        match tag {
            1 => Some(Kind::U64s),
            2 => Some(Kind::F64s),
            3 => Some(Kind::Str),
            4 => Some(Kind::CMatF64),
            5 => Some(Kind::CMatF32),
            _ => None,
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Kind::U64s => "u64 array",
            Kind::F64s => "f64 array",
            Kind::Str => "string",
            Kind::CMatF64 => "complex matrix (f64)",
            Kind::CMatF32 => "complex matrix (f32)",
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> PtError {
    PtError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

fn format_err(path: &Path, reason: impl Into<String>) -> PtError {
    PtError::SnapshotFormat {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Builds a snapshot in memory and writes it atomically on
/// [`SnapshotWriter::finish`].
pub struct SnapshotWriter {
    path: PathBuf,
    sections: Vec<(String, Kind, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Start a snapshot destined for `path` (nothing touches the
    /// filesystem until [`SnapshotWriter::finish`]).
    pub fn create(path: impl Into<PathBuf>) -> Self {
        SnapshotWriter {
            path: path.into(),
            sections: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, kind: Kind, payload: Vec<u8>) -> Result<(), PtError> {
        if name.is_empty() || name.len() > u16::MAX as usize {
            return Err(format_err(
                &self.path,
                format!("section name length {} out of range", name.len()),
            ));
        }
        if self.sections.iter().any(|(n, _, _)| n == name) {
            return Err(format_err(
                &self.path,
                format!("duplicate section '{name}'"),
            ));
        }
        self.sections.push((name.to_string(), kind, payload));
        Ok(())
    }

    /// Add a `u64` array section.
    pub fn put_u64s(&mut self, name: &str, data: &[u64]) -> Result<(), PtError> {
        let mut bytes = Vec::with_capacity(8 * data.len());
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.push(name, Kind::U64s, bytes)
    }

    /// Add an `f64` array section (exact bits).
    pub fn put_f64s(&mut self, name: &str, data: &[f64]) -> Result<(), PtError> {
        let mut bytes = Vec::with_capacity(8 * data.len());
        for v in data {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.push(name, Kind::F64s, bytes)
    }

    /// Add a UTF-8 string section.
    pub fn put_str(&mut self, name: &str, value: &str) -> Result<(), PtError> {
        self.push(name, Kind::Str, value.as_bytes().to_vec())
    }

    /// Add a complex column-major matrix section. `wire` selects the
    /// payload precision: [`Wire::F64`] round-trips bit-exactly,
    /// [`Wire::F32`] halves the bytes at ~1e-7 relative loss.
    pub fn put_cmat(&mut self, name: &str, m: &CMat, wire: Wire) -> Result<(), PtError> {
        let scalar = match wire {
            Wire::F64 => 8,
            Wire::F32 => 4,
        };
        let mut bytes = Vec::with_capacity(16 + 2 * scalar * m.data().len());
        bytes.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
        bytes.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
        match wire {
            Wire::F64 => {
                for z in m.data() {
                    bytes.extend_from_slice(&z.re.to_bits().to_le_bytes());
                    bytes.extend_from_slice(&z.im.to_bits().to_le_bytes());
                }
                self.push(name, Kind::CMatF64, bytes)
            }
            Wire::F32 => {
                for z in m.data() {
                    bytes.extend_from_slice(&(z.re as f32).to_bits().to_le_bytes());
                    bytes.extend_from_slice(&(z.im as f32).to_bits().to_le_bytes());
                }
                self.push(name, Kind::CMatF32, bytes)
            }
        }
    }

    /// Assemble the container and write it atomically (temporary sibling +
    /// rename).
    pub fn finish(self) -> Result<(), PtError> {
        let n = self.sections.len();
        let payload_total: usize = self.sections.iter().map(|(_, _, p)| p.len()).sum();
        let table_offset = HEADER_LEN + payload_total;
        let mut bytes = Vec::with_capacity(table_offset + 32 * n);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(n as u32).to_le_bytes());
        bytes.extend_from_slice(&(table_offset as u64).to_le_bytes());
        let mut offsets = Vec::with_capacity(n);
        for (_, _, payload) in &self.sections {
            offsets.push(bytes.len() as u64);
            bytes.extend_from_slice(payload);
        }
        debug_assert_eq!(bytes.len(), table_offset);
        for ((name, kind, payload), offset) in self.sections.iter().zip(offsets) {
            bytes.extend_from_slice(&(name.len() as u16).to_le_bytes());
            bytes.extend_from_slice(name.as_bytes());
            bytes.push(kind.tag());
            bytes.extend_from_slice(&offset.to_le_bytes());
            bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let tmp = self.path.with_extension("ptio.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))
    }
}

#[derive(Debug)]
struct Section {
    kind: Kind,
    payload: Vec<u8>,
}

/// A fully-read, fully-verified snapshot: every access after
/// [`SnapshotFile::open`] is in-memory and infallible except for
/// missing-section / wrong-kind lookups.
#[derive(Debug)]
pub struct SnapshotFile {
    path: PathBuf,
    sections: BTreeMap<String, Section>,
}

/// Little-endian field cursor over a byte slice (bounds-checked).
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let out = self.bytes.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(out)
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("invariant: take(4) is 4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("invariant: take(8) is 8 bytes")))
    }
}

impl SnapshotFile {
    /// Read and verify `path`: magic, format version, table bounds, and
    /// the CRC-32 of every section payload. Any defect — including plain
    /// truncation — is a typed [`PtError::SnapshotFormat`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PtError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
        Self::parse(path, &bytes)
    }

    fn parse(path: &Path, bytes: &[u8]) -> Result<Self, PtError> {
        if bytes.len() < HEADER_LEN {
            return Err(format_err(
                path,
                format!("file is {} bytes, shorter than the header", bytes.len()),
            ));
        }
        if bytes[..8] != MAGIC {
            return Err(format_err(path, "bad magic (not a pt-io snapshot)"));
        }
        let mut cur = Cursor { bytes, pos: 8 };
        let version = cur
            .u32()
            .expect("invariant: bytes.len() >= HEADER_LEN was checked above");
        if version != FORMAT_VERSION {
            return Err(format_err(
                path,
                format!("format version {version} (this build reads {FORMAT_VERSION})"),
            ));
        }
        let n_sections = cur
            .u32()
            .expect("invariant: bytes.len() >= HEADER_LEN was checked above")
            as usize;
        let table_offset = cur
            .u64()
            .expect("invariant: bytes.len() >= HEADER_LEN was checked above")
            as usize;
        if table_offset < HEADER_LEN || table_offset > bytes.len() {
            return Err(format_err(
                path,
                format!("section table offset {table_offset} out of bounds"),
            ));
        }
        let mut table = Cursor {
            bytes,
            pos: table_offset,
        };
        let mut sections = BTreeMap::new();
        for i in 0..n_sections {
            let entry = (|| {
                let name_len = table.u16()? as usize;
                let name = std::str::from_utf8(table.take(name_len)?).ok()?.to_string();
                let tag = table.take(1)?[0];
                let offset = table.u64()? as usize;
                let len = table.u64()? as usize;
                let crc = table.u32()?;
                Some((name, tag, offset, len, crc))
            })();
            let Some((name, tag, offset, len, crc)) = entry else {
                return Err(format_err(
                    path,
                    format!("section table truncated at entry {i}"),
                ));
            };
            let Some(kind) = Kind::from_tag(tag) else {
                return Err(format_err(
                    path,
                    format!("section '{name}' has unknown kind tag {tag}"),
                ));
            };
            let payload = bytes
                .get(offset..offset.saturating_add(len))
                .ok_or_else(|| {
                    format_err(
                        path,
                        format!(
                            "section '{name}' payload [{offset}, {offset}+{len}) out of bounds"
                        ),
                    )
                })?;
            let got = crc32(payload);
            if got != crc {
                return Err(format_err(
                    path,
                    format!("crc mismatch in section '{name}': stored {crc:#010x}, computed {got:#010x}"),
                ));
            }
            sections.insert(
                name,
                Section {
                    kind,
                    payload: payload.to_vec(),
                },
            );
        }
        Ok(SnapshotFile {
            path: path.to_path_buf(),
            sections,
        })
    }

    /// Names of all sections (sorted).
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.keys().map(String::as_str).collect()
    }

    /// Whether a section exists.
    pub fn has(&self, name: &str) -> bool {
        self.sections.contains_key(name)
    }

    fn section(&self, name: &str, want: Kind) -> Result<&Section, PtError> {
        let s = self
            .sections
            .get(name)
            .ok_or_else(|| format_err(&self.path, format!("missing section '{name}'")))?;
        if s.kind != want && !(want == Kind::CMatF64 && s.kind == Kind::CMatF32) {
            return Err(format_err(
                &self.path,
                format!(
                    "section '{name}' is a {}, expected a {}",
                    s.kind.describe(),
                    want.describe()
                ),
            ));
        }
        Ok(s)
    }

    /// A `u64` array section.
    pub fn u64s(&self, name: &str) -> Result<Vec<u64>, PtError> {
        let s = self.section(name, Kind::U64s)?;
        if s.payload.len() % 8 != 0 {
            return Err(format_err(
                &self.path,
                format!(
                    "section '{name}' length {} is not a u64 multiple",
                    s.payload.len()
                ),
            ));
        }
        Ok(s.payload
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("invariant: chunks_exact(8)")))
            .collect())
    }

    /// An `f64` array section (exact bits).
    pub fn f64s(&self, name: &str) -> Result<Vec<f64>, PtError> {
        let s = self.section(name, Kind::F64s)?;
        if s.payload.len() % 8 != 0 {
            return Err(format_err(
                &self.path,
                format!(
                    "section '{name}' length {} is not an f64 multiple",
                    s.payload.len()
                ),
            ));
        }
        Ok(s.payload
            .chunks_exact(8)
            .map(|b| {
                f64::from_bits(u64::from_le_bytes(
                    b.try_into().expect("invariant: chunks_exact(8)"),
                ))
            })
            .collect())
    }

    /// A UTF-8 string section.
    pub fn str(&self, name: &str) -> Result<String, PtError> {
        let s = self.section(name, Kind::Str)?;
        String::from_utf8(s.payload.clone())
            .map_err(|_| format_err(&self.path, format!("section '{name}' is not valid UTF-8")))
    }

    /// A complex matrix section (either payload precision; `f32` payloads
    /// are widened back to `f64` on read, like [`pt_mpi::Wire::F32`]
    /// receive paths).
    pub fn cmat(&self, name: &str) -> Result<CMat, PtError> {
        let s = self.section(name, Kind::CMatF64)?;
        let scalar = match s.kind {
            Kind::CMatF64 => 8usize,
            _ => 4,
        };
        let mut cur = Cursor {
            bytes: &s.payload,
            pos: 0,
        };
        let (Some(nrows), Some(ncols)) = (cur.u64(), cur.u64()) else {
            return Err(format_err(
                &self.path,
                format!("section '{name}' is too short for a matrix header"),
            ));
        };
        let (nrows, ncols) = (nrows as usize, ncols as usize);
        // fully checked arithmetic: a doctored header claiming huge extents
        // must fall through to the typed error, not overflow (the read
        // path's no-panic contract)
        let n = nrows.checked_mul(ncols).filter(|&n| {
            n.checked_mul(2 * scalar)
                .and_then(|b| b.checked_add(16))
                .is_some_and(|want| s.payload.len() == want)
        });
        let Some(n) = n else {
            return Err(format_err(
                &self.path,
                format!(
                    "section '{name}' payload length {} does not match a {nrows}x{ncols} matrix",
                    s.payload.len()
                ),
            ));
        };
        let mut data = Vec::with_capacity(n);
        match s.kind {
            Kind::CMatF64 => {
                for pair in s.payload[16..].chunks_exact(16) {
                    let re = f64::from_bits(u64::from_le_bytes(
                        pair[..8]
                            .try_into()
                            .expect("invariant: 16-byte chunk halves"),
                    ));
                    let im = f64::from_bits(u64::from_le_bytes(
                        pair[8..]
                            .try_into()
                            .expect("invariant: 16-byte chunk halves"),
                    ));
                    data.push(c64::new(re, im));
                }
            }
            _ => {
                for pair in s.payload[16..].chunks_exact(8) {
                    let re = f32::from_bits(u32::from_le_bytes(
                        pair[..4]
                            .try_into()
                            .expect("invariant: 8-byte chunk halves"),
                    ));
                    let im = f32::from_bits(u32::from_le_bytes(
                        pair[4..]
                            .try_into()
                            .expect("invariant: 8-byte chunk halves"),
                    ));
                    data.push(c64::new(re as f64, im as f64));
                }
            }
        }
        Ok(CMat::from_vec(nrows, ncols, data))
    }

    /// The wire precision a matrix section was written with.
    pub fn cmat_wire(&self, name: &str) -> Result<Wire, PtError> {
        let s = self.section(name, Kind::CMatF64)?;
        Ok(match s.kind {
            Kind::CMatF32 => Wire::F32,
            _ => Wire::F64,
        })
    }

    /// Typed convenience: a `u64` section expected to hold exactly one
    /// value.
    pub fn u64(&self, name: &str) -> Result<u64, PtError> {
        match self.u64s(name)?.as_slice() {
            [v] => Ok(*v),
            other => Err(format_err(
                &self.path,
                format!("section '{name}' holds {} values, expected 1", other.len()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pt_io_format_{}_{tag}.ptio", std::process::id()))
    }

    fn sample(path: &Path) {
        let mut w = SnapshotWriter::create(path);
        w.put_u64s("meta", &[3, u64::MAX, 0]).unwrap();
        w.put_f64s("t", &[0.25, -1.5e-300, f64::MAX]).unwrap();
        w.put_str("prop/name", "pt-cn").unwrap();
        w.put_cmat("psi", &CMat::rand_normalized(17, 3, 9), Wire::F64)
            .unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn round_trips_every_section_kind_exactly() {
        let path = tmp_path("roundtrip");
        sample(&path);
        let f = SnapshotFile::open(&path).unwrap();
        assert_eq!(f.section_names(), vec!["meta", "prop/name", "psi", "t"]);
        assert_eq!(f.u64s("meta").unwrap(), vec![3, u64::MAX, 0]);
        let t = f.f64s("t").unwrap();
        assert_eq!(t[0].to_bits(), 0.25f64.to_bits());
        assert_eq!(t[1].to_bits(), (-1.5e-300f64).to_bits());
        assert_eq!(f.str("prop/name").unwrap(), "pt-cn");
        let psi = f.cmat("psi").unwrap();
        let want = CMat::rand_normalized(17, 3, 9);
        for (a, b) in psi.data().iter().zip(want.data()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(f.cmat_wire("psi").unwrap(), Wire::F64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn f32_payload_mode_halves_bytes_and_loses_little() {
        let p64 = tmp_path("wire64");
        let p32 = tmp_path("wire32");
        let m = CMat::rand_normalized(64, 4, 21);
        for (p, wire) in [(&p64, Wire::F64), (&p32, Wire::F32)] {
            let mut w = SnapshotWriter::create(p);
            w.put_cmat("psi", &m, wire).unwrap();
            w.finish().unwrap();
        }
        let len64 = std::fs::metadata(&p64).unwrap().len();
        let len32 = std::fs::metadata(&p32).unwrap().len();
        assert!(len32 < len64, "{len32} !< {len64}");
        let f = SnapshotFile::open(&p32).unwrap();
        assert_eq!(f.cmat_wire("psi").unwrap(), Wire::F32);
        let got = f.cmat("psi").unwrap();
        let err = got.max_diff(&m);
        assert!(err > 0.0 && err < 1e-6, "f32 payload error {err}");
        std::fs::remove_file(&p64).unwrap();
        std::fs::remove_file(&p32).unwrap();
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let path = tmp_path("corrupt");
        sample(&path);
        let bytes = std::fs::read(&path).unwrap();
        // truncate at several depths, including mid-table
        for keep in [0usize, 7, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 3] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(
                    SnapshotFile::open(&path),
                    Err(PtError::SnapshotFormat { .. })
                ),
                "truncation to {keep} bytes not detected"
            );
        }
        // flip one payload byte: CRC must catch it
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let err = SnapshotFile::open(&path).unwrap_err();
        assert!(err.to_string().contains("crc mismatch"), "{err}");
        // wrong version
        let mut vbad = bytes.clone();
        vbad[8] = 0xEE;
        std::fs::write(&path, &vbad).unwrap();
        let err = SnapshotFile::open(&path).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
        // wrong magic
        let mut mbad = bytes;
        mbad[0] = b'X';
        std::fs::write(&path, &mbad).unwrap();
        assert!(matches!(
            SnapshotFile::open(&path),
            Err(PtError::SnapshotFormat { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lookup_misuse_is_typed() {
        let path = tmp_path("lookup");
        sample(&path);
        let f = SnapshotFile::open(&path).unwrap();
        assert!(matches!(
            f.u64s("nope"),
            Err(PtError::SnapshotFormat { .. })
        ));
        assert!(matches!(f.str("meta"), Err(PtError::SnapshotFormat { .. })));
        assert!(matches!(f.u64("meta"), Err(PtError::SnapshotFormat { .. })));
        assert!(matches!(f.cmat("t"), Err(PtError::SnapshotFormat { .. })));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn huge_matrix_header_is_a_typed_error_not_an_overflow() {
        // hand-assemble a container whose (CRC-valid) matrix section
        // header claims astronomical extents over a 16-byte payload: the
        // byte-count validation must use checked arithmetic and return the
        // typed error, not trip overflow checks
        let mut payload = Vec::new();
        payload.extend_from_slice(&(1u64 << 60).to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        let name = b"m";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&((HEADER_LEN + payload.len()) as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&(name.len() as u16).to_le_bytes());
        bytes.extend_from_slice(name);
        bytes.push(4); // CMatF64
        bytes.extend_from_slice(&(HEADER_LEN as u64).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        let path = tmp_path("hugehdr");
        std::fs::write(&path, &bytes).unwrap();
        let f = SnapshotFile::open(&path).unwrap();
        let err = f.cmat("m").unwrap_err();
        assert!(matches!(err, PtError::SnapshotFormat { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_duplicate_sections() {
        let mut w = SnapshotWriter::create(tmp_path("dup"));
        w.put_u64s("a", &[1]).unwrap();
        assert!(matches!(
            w.put_f64s("a", &[1.0]),
            Err(PtError::SnapshotFormat { .. })
        ));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            SnapshotFile::open("/nonexistent/dir/x.ptio"),
            Err(PtError::Io { .. })
        ));
    }
}
