//! Checkpoint-directory scanning: find the newest snapshot that is
//! actually resumable.
//!
//! A run directory after a crash can hold anything: the rolling window of
//! good snapshots, a file truncated by the kill, a corrupt one from a bad
//! disk, plus stale files from earlier trajectories. The auto-resume
//! orchestration is always the same — list `ckpt_*.ptio` by step, try
//! each from newest to oldest, skip the ones whose container fails to
//! verify — so it lives here once instead of being re-rolled by every
//! restart driver. Validation is [`SnapshotFile::open`], which checks
//! magic, format version, table bounds and every section CRC; a file it
//! rejects surfaces in [`SnapshotScan::rejected`] with its typed
//! [`PtError`], never as a panic.

use crate::format::SnapshotFile;
use pt_ham::PtError;
use std::path::{Path, PathBuf};

/// All `ckpt_*.ptio` files in `dir`, ascending by file name — i.e. by
/// step, since the step number in the name is zero-padded. Does **not**
/// open the files; pair with [`scan_snapshots`] to validate them.
pub fn snapshot_files(dir: &Path) -> Result<Vec<PathBuf>, PtError> {
    let rd = std::fs::read_dir(dir).map_err(|e| PtError::Io {
        path: dir.display().to_string(),
        reason: e.to_string(),
    })?;
    let mut files: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "ptio")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt_"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Outcome of validating every snapshot in a directory.
#[derive(Debug, Default)]
pub struct SnapshotScan {
    /// Files whose container verified end to end, ascending by step.
    pub valid: Vec<PathBuf>,
    /// Files rejected by [`SnapshotFile::open`], with the typed reason
    /// (truncation, CRC mismatch, wrong magic/version, unreadable).
    pub rejected: Vec<(PathBuf, PtError)>,
}

impl SnapshotScan {
    /// The newest valid snapshot, if any.
    pub fn newest(&self) -> Option<&PathBuf> {
        self.valid.last()
    }
}

/// List and validate every `ckpt_*.ptio` in `dir`. Only the directory
/// listing itself can fail; per-file defects land in
/// [`SnapshotScan::rejected`].
pub fn scan_snapshots(dir: &Path) -> Result<SnapshotScan, PtError> {
    let mut scan = SnapshotScan::default();
    for path in snapshot_files(dir)? {
        match SnapshotFile::open(&path) {
            Ok(_) => scan.valid.push(path),
            Err(e) => scan.rejected.push((path, e)),
        }
    }
    Ok(scan)
}

/// The newest snapshot in `dir` that verifies as a valid container —
/// what a restarted job should resume from. `Ok(None)` when the
/// directory holds no usable snapshot at all.
pub fn latest_valid_snapshot(dir: &Path) -> Result<Option<PathBuf>, PtError> {
    Ok(scan_snapshots(dir)?.valid.pop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::SnapshotWriter;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pt_scan_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_valid(path: &Path, payload: u64) {
        let mut w = SnapshotWriter::create(path);
        w.put_u64s("x", &[payload]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn newest_valid_snapshot_wins_over_corrupt_and_truncated_newer_ones() {
        let dir = tmp_dir("mixed");
        write_valid(&dir.join("ckpt_00000002.ptio"), 2);
        write_valid(&dir.join("ckpt_00000004.ptio"), 4);
        // newer but truncated (as a kill mid-write would leave behind a
        // non-atomic writer; ours renames, but foreign files happen)
        let good = std::fs::read(dir.join("ckpt_00000004.ptio")).unwrap();
        std::fs::write(dir.join("ckpt_00000006.ptio"), &good[..good.len() / 2]).unwrap();
        // newer still but corrupt payload
        let mut bad = good.clone();
        bad[30] ^= 0xFF;
        std::fs::write(dir.join("ckpt_00000008.ptio"), &bad).unwrap();
        // not a snapshot at all
        std::fs::write(dir.join("ckpt_00000009.ptio"), b"junk").unwrap();
        // non-snapshot names are ignored entirely
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("other.ptio"), b"hi").unwrap();

        let scan = scan_snapshots(&dir).unwrap();
        assert_eq!(
            scan.valid,
            vec![
                dir.join("ckpt_00000002.ptio"),
                dir.join("ckpt_00000004.ptio")
            ]
        );
        assert_eq!(scan.rejected.len(), 3);
        for (p, e) in &scan.rejected {
            assert!(
                matches!(e, PtError::SnapshotFormat { .. }),
                "{p:?} rejected with {e:?}"
            );
        }
        assert_eq!(
            latest_valid_snapshot(&dir).unwrap(),
            Some(dir.join("ckpt_00000004.ptio"))
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_and_missing_directories() {
        let dir = tmp_dir("empty");
        assert_eq!(latest_valid_snapshot(&dir).unwrap(), None);
        let scan = scan_snapshots(&dir).unwrap();
        assert!(scan.valid.is_empty() && scan.rejected.is_empty());
        assert!(scan.newest().is_none());
        let _ = std::fs::remove_dir_all(&dir);
        // a missing directory is an Io error, not a silent empty
        assert!(matches!(scan_snapshots(&dir), Err(PtError::Io { .. })));
    }

    #[test]
    fn all_snapshots_rejected_is_none_not_an_error() {
        let dir = tmp_dir("allbad");
        std::fs::write(dir.join("ckpt_00000001.ptio"), b"nope").unwrap();
        std::fs::write(dir.join("ckpt_00000002.ptio"), b"also nope").unwrap();
        assert_eq!(latest_valid_snapshot(&dir).unwrap(), None);
        assert_eq!(scan_snapshots(&dir).unwrap().rejected.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}
