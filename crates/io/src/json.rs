//! A minimal std-only JSON value: parse and serialize.
//!
//! The job-server subsystem speaks JSON both ways — `JobSpec`s arrive as
//! JSON text, protocol frames carry JSON payloads, and exported
//! [`crate::Table`]s are JSON — but the build environment is offline, so
//! there is no serde. [`Json`] is the hand-rolled counterpart of
//! [`crate::export`]'s writers: a recursive-descent parser with a depth
//! cap whose failures are typed [`PtError::InvalidConfig`]s (position and
//! reason included, never a panic), plus a serializer that round-trips
//! `f64`s via Rust's shortest representation exactly like the `Table`
//! writers do.
//!
//! Objects preserve insertion order (a `Vec` of pairs, not a map): dumped
//! specs and protocol frames stay diff-stable, and duplicate keys are a
//! parse error rather than a silent last-wins.

use pt_ham::PtError;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts — a malicious or runaway
/// input fails typed instead of blowing the stack.
const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, PtError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Serialize. `f64`s use the shortest round-trip representation, so
    /// parsing the output recovers the exact bits; non-finite numbers
    /// (unrepresentable in JSON) become `null`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a nonnegative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Convenience: build an object from pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> PtError {
        PtError::InvalidConfig(format!("malformed JSON at byte {}: {reason}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), PtError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, PtError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, PtError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported 64 levels"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, PtError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, PtError> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key '{key}'")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, PtError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // high surrogate: a low surrogate must follow
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // multi-byte UTF-8 continuation: the input is &str, so the
                // bytes are valid — copy the whole character through
                b if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|c| c & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect(
                        "invariant: bytes come from a &str, so char spans are valid UTF-8",
                    ));
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b => out.push(b as char),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, PtError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("non-hex \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, PtError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("invariant: number spans are ASCII only");
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => Err(self.err(&format!("invalid number '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e-3").unwrap(), Json::Num(-2.5e-3));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn dump_round_trips_f64_bits() {
        let vals = [0.1, 1.0 / 3.0, -2.5e-300, 6.02214076e23, 4.0];
        let v = Json::Arr(vals.iter().map(|&x| Json::Num(x)).collect());
        let text = v.dump();
        let back = Json::parse(&text).unwrap();
        for (a, b) in back.as_arr().unwrap().iter().zip(vals) {
            assert_eq!(a.as_f64().unwrap().to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dump_escapes_and_preserves_order() {
        let v = obj([
            ("z\"\\\n", Json::Str("v\t".into())),
            ("a", Json::Bool(false)),
        ]);
        let text = v.dump();
        assert_eq!(text, "{\"z\\\"\\\\\\n\":\"v\\t\",\"a\":false}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".into())
        );
        let v = Json::parse("\"héllo ψ\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ψ"));
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\":}",
            "{\"a\":1,}",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\"\\ud800\"",
            "nan",
            "1e999",
            "\"\\q\"",
            &("[".repeat(80) + &"]".repeat(80)),
        ] {
            match Json::parse(bad) {
                Err(PtError::InvalidConfig(msg)) => {
                    assert!(msg.contains("malformed JSON"), "{bad}: {msg}")
                }
                other => panic!("{bad:?} parsed to {other:?}"),
            }
        }
    }

    #[test]
    fn parses_table_export_output() {
        let mut t = crate::Table::new()
            .meta("bench", crate::Value::Str("x".into()))
            .meta("host_cores", crate::Value::U64(4));
        t.column("t", vec![0.0, 0.5]).unwrap();
        t.column("e", vec![-1.25, f64::NAN]).unwrap();
        let v = Json::parse(&t.to_json()).unwrap();
        assert_eq!(v.get("host_cores").unwrap().as_u64(), Some(4));
        let cols = v.get("columns").unwrap();
        assert_eq!(
            cols.get("t").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(0.5)
        );
        // NaN was exported as null
        assert_eq!(cols.get("e").unwrap().as_arr().unwrap()[1], Json::Null);
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }
}
