//! Property test: arbitrary random orbital blocks survive the snapshot
//! container bit-exactly at `Wire::F64` and to ~1e-6 at `Wire::F32`.

use proptest::prelude::*;
use pt_io::{SnapshotFile, SnapshotWriter};
use pt_linalg::CMat;
use pt_mpi::Wire;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_cmat_blocks_round_trip(nrows in 1usize..64, ncols in 1usize..9, seed in 1u64..1_000_000) {
        let path = std::env::temp_dir().join(format!(
            "pt_io_prop_{}_{nrows}x{ncols}_{seed}.ptio",
            std::process::id()
        ));
        let m = CMat::rand_normalized(nrows, ncols, seed);
        let mut w = SnapshotWriter::create(&path);
        w.put_cmat("block", &m, Wire::F64).unwrap();
        w.put_u64s("dims", &[nrows as u64, ncols as u64]).unwrap();
        w.finish().unwrap();
        let f = SnapshotFile::open(&path).unwrap();
        prop_assert_eq!(f.u64s("dims").unwrap(), vec![nrows as u64, ncols as u64]);
        let got = f.cmat("block").unwrap();
        prop_assert_eq!((got.nrows(), got.ncols()), (nrows, ncols));
        for (a, b) in got.data().iter().zip(m.data()) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }

        // f32 payload: half the matrix bytes, ~1e-7 relative loss
        let mut w = SnapshotWriter::create(&path);
        w.put_cmat("block", &m, Wire::F32).unwrap();
        w.finish().unwrap();
        let got32 = SnapshotFile::open(&path).unwrap().cmat("block").unwrap();
        prop_assert!(got32.max_diff(&m) < 1e-6);
        std::fs::remove_file(&path).unwrap();
    }
}
