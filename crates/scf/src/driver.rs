//! The SCF driver: semi-local in one loop, hybrid with the inner/outer
//! (frozen-Φ) structure.

use crate::davidson::{lowest_eigenpairs, DavidsonOptions};
use crate::mixing::AndersonMixer;
use pt_ham::{density_residual, Energies, KsSystem, PtError};
use pt_linalg::CMat;
use pt_num::c64;
use pt_num::rng::XorShift64;

/// SCF options.
#[derive(Clone, Copy, Debug)]
pub struct ScfOptions {
    /// Density convergence threshold (max |Δρ| integrated, e⁻).
    pub rho_tol: f64,
    /// Max density iterations (per Φ cycle for hybrids).
    pub max_scf: usize,
    /// Max outer Φ refreshes for hybrid functionals.
    pub max_phi_updates: usize,
    /// Eigensolver settings per SCF step.
    pub davidson: DavidsonOptions,
    /// Anderson depth / mixing step.
    pub mix_depth: usize,
    /// Linear mixing parameter β.
    pub mix_beta: f64,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            rho_tol: 1e-6,
            max_scf: 60,
            max_phi_updates: 8,
            davidson: DavidsonOptions {
                max_iter: 12,
                tol: 1e-8,
            },
            mix_depth: 6,
            mix_beta: 0.5,
        }
    }
}

/// Converged ground state.
pub struct ScfResult {
    /// Occupied orbitals (columns, sphere coefficients).
    pub orbitals: CMat,
    /// Band eigenvalues (Ha).
    pub eigenvalues: Vec<f64>,
    /// Converged density (dense grid).
    pub rho: Vec<f64>,
    /// Energy breakdown.
    pub energies: Energies,
    /// Density iterations used (all cycles).
    pub scf_iterations: usize,
    /// Final density residual.
    pub rho_residual: f64,
}

fn initial_orbitals(sys: &KsSystem) -> CMat {
    // lowest-kinetic plane waves (sphere is |G|²-sorted) + small noise to
    // break degeneracies
    let ng = sys.grids.ng();
    let nb = sys.n_bands();
    let mut rng = XorShift64::new(0x5EED_5EED);
    CMat::from_fn(ng, nb, |i, j| {
        let base = if i == j { 1.0 } else { 0.0 };
        c64::new(
            base + 0.01 * rng.next_centered(),
            0.01 * rng.next_centered(),
        )
    })
}

/// Run the ground-state SCF for `sys`. A run that exhausts its iteration
/// budget above `opts.rho_tol` returns [`PtError::NotConverged`].
///
/// The whole loop runs under the system's configured thread pool
/// ([`KsSystem::install`]), so every Davidson/FFT/GEMM/Fock kernel inside
/// inherits the `KsSystemBuilder::parallelism` choice.
pub fn scf_loop(sys: &KsSystem, opts: ScfOptions) -> Result<ScfResult, PtError> {
    let _sp = pt_trace::span("scf_loop");
    sys.install(|| scf_loop_inner(sys, opts))
}

fn scf_loop_inner(sys: &KsSystem, opts: ScfOptions) -> Result<ScfResult, PtError> {
    if !opts.rho_tol.is_finite() || opts.rho_tol <= 0.0 {
        return Err(PtError::InvalidConfig(format!(
            "SCF density tolerance must be positive and finite, got {}",
            opts.rho_tol
        )));
    }
    if opts.max_scf == 0 {
        return Err(PtError::InvalidConfig("max_scf must be at least 1".into()));
    }
    if sys.hybrid.is_some() && opts.max_phi_updates < 2 {
        // cycle 0 is the semi-local bootstrap; exact exchange only enters
        // from the first Φ refresh onward
        return Err(PtError::InvalidConfig(format!(
            "hybrid SCF needs max_phi_updates >= 2 (cycle 0 bootstraps without exchange), got {}",
            opts.max_phi_updates
        )));
    }
    if opts.mix_depth == 0 {
        return Err(PtError::InvalidConfig(
            "Anderson mixing depth must be at least 1".into(),
        ));
    }
    if !opts.mix_beta.is_finite() {
        return Err(PtError::InvalidConfig(format!(
            "mixing parameter beta must be finite, got {}",
            opts.mix_beta
        )));
    }
    let nd = sys.grids.n_dense();
    let ne: f64 = pt_num::reduce::sum_f64(sys.occupations.iter().copied());
    // neutral uniform start
    let mut rho = vec![ne / sys.grids.volume; nd];
    let mut orbitals = initial_orbitals(sys);
    let mut eigenvalues = vec![0.0; sys.n_bands()];
    let mut total_iters = 0;
    let mut rho_residual = f64::INFINITY;
    let mut converged = false;
    let dv = sys.grids.volume / nd as f64;

    let phi_cycles = if sys.hybrid.is_some() {
        opts.max_phi_updates
    } else {
        1
    };
    for cycle in 0..phi_cycles {
        // freeze Φ for the exchange operator (hybrid only). On the first
        // cycle bootstrap from a semi-local pass by passing None.
        let phi_frozen: Option<CMat> = if sys.hybrid.is_some() && cycle > 0 {
            Some(orbitals.clone())
        } else {
            None
        };
        let hybrid_active = phi_frozen.is_some();
        let mut mixer = AndersonMixer::new(opts.mix_depth, opts.mix_beta);
        converged = false;
        for _ in 0..opts.max_scf {
            total_iters += 1;
            pt_trace::counter_add(pt_trace::Counter::ScfIterations, 1);
            let h = if hybrid_active {
                sys.hamiltonian(&rho, phi_frozen.as_ref(), [0.0; 3])?
            } else {
                // semi-local bootstrap Hamiltonian
                semi_local_hamiltonian(sys, &rho)
            };
            let r = lowest_eigenpairs(&h, &mut orbitals, opts.davidson);
            eigenvalues.copy_from_slice(&r.eigenvalues);
            let rho_new = sys.density(&orbitals);
            rho_residual = density_residual(&rho_new, &rho, sys.grids.volume);
            if rho_residual < opts.rho_tol {
                rho = rho_new;
                converged = true;
                break;
            }
            let f: Vec<f64> = rho_new.iter().zip(&rho).map(|(a, b)| a - b).collect();
            rho = mixer.step(&rho, &f);
            // keep the mixed density physical
            let mut q = 0.0;
            for v in rho.iter_mut() {
                *v = v.max(0.0);
                q += *v;
            }
            let scale = ne / (q * dv);
            for v in rho.iter_mut() {
                *v *= scale;
            }
        }
        // converged this cycle; for hybrids continue until the Φ refresh no
        // longer moves the density
        if sys.hybrid.is_none() && converged {
            break;
        }
        if hybrid_active && converged && cycle + 1 < phi_cycles {
            // quick stationarity check: one more Φ refresh happens anyway;
            // stop when the refreshed density is already consistent
            let rho_chk = sys.density(&orbitals);
            if density_residual(&rho_chk, &rho, sys.grids.volume) < opts.rho_tol * 10.0 {
                break;
            }
        }
    }
    if !converged {
        return Err(PtError::NotConverged {
            context: "ground-state SCF",
            residual: rho_residual,
            tol: opts.rho_tol,
            iterations: total_iters,
        });
    }
    let energies = sys.energies(&orbitals, &rho, [0.0; 3]);
    Ok(ScfResult {
        orbitals,
        eigenvalues,
        rho,
        energies,
        scf_iterations: total_iters,
        rho_residual,
    })
}

/// A Hamiltonian with the hybrid part switched off (semi-local bootstrap).
fn semi_local_hamiltonian(sys: &KsSystem, rho: &[f64]) -> pt_ham::Hamiltonian {
    let pots = sys.potentials(rho);
    pt_ham::Hamiltonian {
        grids: std::sync::Arc::clone(&sys.grids),
        vloc_r: pots.v_total,
        nonlocal: std::sync::Arc::clone(&sys.nonlocal),
        fock: None,
        a_field: [0.0; 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_xc::XcKind;

    #[test]
    fn lda_si8_converges_and_is_insulating() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = pt_ham::KsSystem::builder(s)
            .ecut(3.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let r = scf_loop(&sys, ScfOptions::default()).expect("SCF converges");
        assert!(r.rho_residual < 1e-6, "residual {}", r.rho_residual);
        // density integrates to 32 electrons
        let q: f64 = r.rho.iter().sum::<f64>() * sys.grids.volume / sys.grids.n_dense() as f64;
        assert!((q - 32.0).abs() < 1e-8, "charge {q}");
        // eigenvalues ascending, all finite
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-10);
        }
        // total energy sane for 8 Si atoms (loose band at this tiny cutoff:
        // GTH-LDA bulk Si is ≈ −3.9 Ha/atom converged; under-converged
        // cutoffs land higher)
        let epa = r.energies.total() / 8.0;
        assert!(epa < -2.0 && epa > -6.0, "E/atom = {epa}");
        // orbitals stay orthonormal
        let mut s = pt_linalg::CMat::zeros(16, 16);
        pt_linalg::gemm(
            c64::ONE,
            &r.orbitals,
            pt_linalg::Op::ConjTrans,
            &r.orbitals,
            pt_linalg::Op::None,
            c64::ZERO,
            &mut s,
        );
        assert!(s.max_diff(&pt_linalg::CMat::eye(16)) < 1e-8);
    }

    #[test]
    fn hybrid_scf_rejects_too_few_phi_updates() {
        // with max_phi_updates < 2 only the semi-local bootstrap cycle runs
        // and the "hybrid" result never saw exact exchange
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = pt_ham::KsSystem::builder(s)
            .ecut(2.0)
            .hybrid(pt_ham::HybridConfig::hse06())
            .build()
            .unwrap();
        for max_phi_updates in [0, 1] {
            let o = ScfOptions {
                max_phi_updates,
                ..Default::default()
            };
            assert!(matches!(
                scf_loop(&sys, o).map(|r| r.rho_residual),
                Err(PtError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn starved_scf_returns_not_converged() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = pt_ham::KsSystem::builder(s)
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let o = ScfOptions {
            max_scf: 1,
            rho_tol: 1e-14,
            ..Default::default()
        };
        match scf_loop(&sys, o) {
            Err(PtError::NotConverged {
                context,
                iterations,
                ..
            }) => {
                assert_eq!(context, "ground-state SCF");
                assert_eq!(iterations, 1);
            }
            other => panic!(
                "expected NotConverged, got {:?}",
                other.map(|r| r.rho_residual)
            ),
        }
    }
}
