//! Anderson-accelerated fixed-point mixing (Anderson 1965 — reference [2]
//! of the paper).
//!
//! Used here for the SCF density; `pt-core` applies the same scheme to the
//! PT-CN wavefunction fixed point with history depth up to 20 (§3.4).

use pt_linalg::{lstsq, CMat};
use pt_num::c64;

/// Anderson mixer over real vectors (density mixing).
pub struct AndersonMixer {
    depth: usize,
    beta: f64,
    xs: Vec<Vec<f64>>,
    fs: Vec<Vec<f64>>,
}

impl AndersonMixer {
    /// `depth` = history size (m), `beta` = underlying linear-mixing step.
    pub fn new(depth: usize, beta: f64) -> Self {
        assert!(depth >= 1);
        AndersonMixer {
            depth,
            beta,
            xs: Vec::new(),
            fs: Vec::new(),
        }
    }

    /// History currently stored.
    pub fn history_len(&self) -> usize {
        self.xs.len()
    }

    /// Propose the next iterate given the current `x` and its residual
    /// `f = g(x) − x`.
    pub fn step(&mut self, x: &[f64], f: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), f.len());
        self.xs.push(x.to_vec());
        self.fs.push(f.to_vec());
        if self.xs.len() > self.depth + 1 {
            self.xs.remove(0);
            self.fs.remove(0);
        }
        let m = self.xs.len() - 1; // number of difference pairs
        let n = x.len();
        if m == 0 {
            return x.iter().zip(f).map(|(a, b)| a + self.beta * b).collect();
        }
        // least squares: min_γ ‖f_n − Σ_j γ_j (f_n − f_{n−1−j})‖
        let fn_ = &self.fs[m];
        let mut a = CMat::zeros(n, m);
        for j in 0..m {
            let fj = &self.fs[m - 1 - j];
            for i in 0..n {
                a[(i, j)] = c64::real(fn_[i] - fj[i]);
            }
        }
        let b: Vec<c64> = fn_.iter().map(|&v| c64::real(v)).collect();
        let gamma = lstsq(&a, &b, 1e-12);
        let mut out: Vec<f64> = self.xs[m]
            .iter()
            .zip(fn_)
            .map(|(xv, fv)| xv + self.beta * fv)
            .collect();
        for (j, g) in gamma.iter().enumerate() {
            let gj = g.re;
            let xj = &self.xs[m - 1 - j];
            let fj = &self.fs[m - 1 - j];
            for i in 0..n {
                let dx = self.xs[m][i] - xj[i];
                let df = fn_[i] - fj[i];
                out[i] -= gj * (dx + self.beta * df);
            }
        }
        out
    }

    /// Drop all history (used when the outer hybrid loop refreshes Φ).
    pub fn reset(&mut self) {
        self.xs.clear();
        self.fs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// On a linear fixed point x* = M x + b with ‖M‖ < 1, Anderson with
    /// enough history converges in ~rank(M)+1 steps — far faster than the
    /// plain linear mixing it accelerates.
    #[test]
    fn solves_linear_fixed_point_fast() {
        let n = 12;
        // diagonal contraction with a few distinct rates
        let rates: Vec<f64> = (0..n).map(|i| 0.9 - 0.05 * (i % 4) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let g = |x: &[f64]| -> Vec<f64> {
            x.iter()
                .zip(&rates)
                .zip(&b)
                .map(|((xv, r), bv)| r * xv + bv)
                .collect()
        };
        // exact solution
        let xstar: Vec<f64> = rates.iter().zip(&b).map(|(r, bv)| bv / (1.0 - r)).collect();
        let mut mixer = AndersonMixer::new(8, 0.5);
        let mut x = vec![0.0; n];
        let mut it_converged = None;
        for it in 0..50 {
            let gx = g(&x);
            let f: Vec<f64> = gx.iter().zip(&x).map(|(a, b)| a - b).collect();
            let err = f.iter().map(|v| v.abs()).fold(0.0, f64::max);
            if err < 1e-12 {
                it_converged = Some(it);
                break;
            }
            x = mixer.step(&x, &f);
        }
        let it = it_converged.expect("did not converge");
        // 4 distinct rates → Anderson needs only a handful of iterations
        assert!(
            it <= 20,
            "took {it} iterations (linear mixing alone needs ~250)"
        );
        for (a, b) in x.iter().zip(&xstar) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn plain_mixing_first_step() {
        let mut m = AndersonMixer::new(3, 0.25);
        let x = vec![1.0, 2.0];
        let f = vec![0.4, -0.8];
        let out = m.step(&x, &f);
        assert!((out[0] - 1.1).abs() < 1e-15);
        assert!((out[1] - 1.8).abs() < 1e-15);
    }

    #[test]
    fn history_is_bounded() {
        let mut m = AndersonMixer::new(2, 0.5);
        let x = vec![0.0; 3];
        for i in 0..10 {
            let f = vec![1.0 / (i + 1) as f64; 3];
            let _ = m.step(&x, &f);
            assert!(m.history_len() <= 3);
        }
    }
}
