//! `pt-scf` — ground-state Kohn–Sham solver.
//!
//! An rt-TDDFT run starts from the ground state (the paper propagates the
//! occupied manifold of a converged hybrid-functional SCF). This crate
//! provides:
//!
//! * a preconditioned block-Davidson eigensolver ([`lowest_eigenpairs`])
//!   with the Teter–Payne–Allan kinetic preconditioner — the standard
//!   plane-wave workhorse;
//! * Anderson-accelerated density mixing ([`AndersonMixer`]), the same
//!   scheme (Anderson 1965) the paper applies to *wavefunctions* inside
//!   PT-CN;
//! * the SCF driver ([`scf_loop`]) with, for hybrid functionals, the
//!   standard inner/outer split: the exchange operator's defining orbitals
//!   Φ are frozen during an inner density loop and refreshed outside
//!   (PWDFT does the same; ACE is an optional compression of this operator,
//!   see `pt-core`'s ablation).

mod davidson;
mod driver;
mod mixing;

pub use davidson::{lowest_eigenpairs, teter_preconditioner, DavidsonOptions, DavidsonResult};
pub use driver::{scf_loop, ScfOptions, ScfResult};
pub use mixing::AndersonMixer;
