//! Preconditioned block-Davidson eigensolver for the lowest Kohn–Sham
//! states.
//!
//! Each iteration: Rayleigh–Ritz on the current block, residual
//! `R = HX − Xλ`, Teter-preconditioned expansion `[X | T⁻¹R]`, and a
//! second Rayleigh–Ritz keeping the lowest `n_bands` states. This is the
//! restart-every-step cousin of LOBPCG: slightly more H-applications, far
//! fewer numerical hazards.

use pt_ham::Hamiltonian;
use pt_linalg::{eigh, gemm, CMat, Op};
use pt_num::c64;

/// Solver options.
#[derive(Clone, Copy, Debug)]
pub struct DavidsonOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Convergence threshold on max residual 2-norm.
    pub tol: f64,
}

impl Default for DavidsonOptions {
    fn default() -> Self {
        DavidsonOptions {
            max_iter: 40,
            tol: 1e-7,
        }
    }
}

/// Solver outcome.
pub struct DavidsonResult {
    /// Eigenvalues, ascending.
    pub eigenvalues: Vec<f64>,
    /// Max residual norm at exit.
    pub residual: f64,
    /// Iterations used.
    pub iterations: usize,
}

/// Teter–Payne–Allan preconditioner factor for one coefficient: a smooth
/// approximation of `1/(kin/e_kin_band)` that is ≈1 for low-G and decays
/// as `(e_band/kin)` for high-G components.
pub fn teter_preconditioner(kin: f64, e_kin_band: f64) -> f64 {
    let x = kin / e_kin_band.max(1e-12);
    let x2 = x * x;
    let x3 = x2 * x;
    let num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
    num / (num + 16.0 * x3 * x)
}

/// Orthonormalize the columns of `x` in place; the tiny diagonal shift
/// keeps nearly linearly dependent residual blocks factorable.
fn orthonormalize(x: &mut CMat) {
    pt_linalg::orthonormalize_columns(x, 1e-12);
}

/// Canonical orthonormalization: returns `x · V · λ^{-1/2}` keeping only
/// overlap eigenpairs with λ above `thresh` — linearly dependent columns
/// (e.g. noise-amplified residuals of already-converged bands) are dropped
/// instead of being normalized back into the subspace.
fn canonical_orthonormalize(x: &CMat, thresh: f64) -> CMat {
    let n = x.ncols();
    let mut s = CMat::zeros(n, n);
    gemm(c64::ONE, x, Op::ConjTrans, x, Op::None, c64::ZERO, &mut s);
    let (w, v) = eigh(&s);
    let keep: Vec<usize> = (0..n).filter(|&i| w[i] > thresh).collect();
    let mut t = CMat::zeros(n, keep.len());
    for (jn, &jo) in keep.iter().enumerate() {
        let scale = 1.0 / w[jo].sqrt();
        let src: Vec<c64> = v.col(jo).iter().map(|z| z.scale(scale)).collect();
        t.col_mut(jn).copy_from_slice(&src);
    }
    let mut out = CMat::zeros(x.nrows(), keep.len());
    gemm(c64::ONE, x, Op::None, &t, Op::None, c64::ZERO, &mut out);
    out
}

/// Find the lowest `x.ncols()` eigenpairs of `h`; `x` holds the initial
/// guess on entry and the eigenvectors on exit.
pub fn lowest_eigenpairs(h: &Hamiltonian, x: &mut CMat, opts: DavidsonOptions) -> DavidsonResult {
    let ng = x.nrows();
    let nb = x.ncols();
    orthonormalize(x);
    let kin = h.kinetic_diag();
    let mut evals = vec![0.0; nb];
    let mut resid = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        // Rayleigh-Ritz on current block
        let mut hx = CMat::zeros(ng, nb);
        h.apply_block(x, &mut hx);
        let mut s = CMat::zeros(nb, nb);
        gemm(c64::ONE, x, Op::ConjTrans, &hx, Op::None, c64::ZERO, &mut s);
        let (w, v) = eigh(&s);
        // rotate x, hx
        let mut xr = CMat::zeros(ng, nb);
        gemm(c64::ONE, x, Op::None, &v, Op::None, c64::ZERO, &mut xr);
        let mut hxr = CMat::zeros(ng, nb);
        gemm(c64::ONE, &hx, Op::None, &v, Op::None, c64::ZERO, &mut hxr);
        *x = xr;
        evals.copy_from_slice(&w);

        // residuals R = HX − Xλ, preconditioned expansion W
        let mut wblk = CMat::zeros(ng, nb);
        resid = 0.0f64;
        #[allow(clippy::needless_range_loop)] // j indexes x, hxr, w and wblk together
        for j in 0..nb {
            // band kinetic energy for the Teter scale, floored so that
            // near-zero-kinetic bands (the G = 0 state) are not crushed
            let ekin: f64 =
                pt_num::reduce::sum_f64(x.col(j).iter().zip(&kin).map(|(c, k)| k * c.norm_sqr()))
                    .max(0.1);
            let mut rn = 0.0;
            for (i, wv) in wblk.col_mut(j).iter_mut().enumerate() {
                let r = hxr.col(j)[i] - x.col(j)[i].scale(w[j]);
                rn += r.norm_sqr();
                *wv = r.scale(teter_preconditioner(kin[i], ekin));
            }
            resid = resid.max(rn.sqrt());
            // scale-free thresholding downstream: normalize the column
            if rn > 0.0 {
                let wn = pt_num::complex::znrm2(wblk.col(j));
                if wn > 1e-300 {
                    for z in wblk.col_mut(j) {
                        *z = z.scale(1.0 / wn);
                    }
                }
            }
        }
        if resid < opts.tol {
            break;
        }

        // project W against X, then canonically orthonormalize (dropping
        // the noise directions of already-converged bands)
        let mut xtw = CMat::zeros(nb, wblk.ncols());
        gemm(
            c64::ONE,
            x,
            Op::ConjTrans,
            &wblk,
            Op::None,
            c64::ZERO,
            &mut xtw,
        );
        gemm(-c64::ONE, x, Op::None, &xtw, Op::None, c64::ONE, &mut wblk);
        let wkeep = canonical_orthonormalize(&wblk, 1e-10);
        if wkeep.ncols() == 0 {
            break; // nothing left to expand with: fully converged subspace
        }

        // Rayleigh-Ritz on [X | W]
        let m = nb + wkeep.ncols();
        let mut sub = CMat::zeros(ng, m);
        for j in 0..nb {
            sub.col_mut(j).copy_from_slice(x.col(j));
        }
        for j in 0..wkeep.ncols() {
            let src: Vec<c64> = wkeep.col(j).to_vec();
            sub.col_mut(nb + j).copy_from_slice(&src);
        }
        let sub2 = canonical_orthonormalize(&sub, 1e-10);
        let sub = sub2;
        let m = sub.ncols();
        if m < nb {
            break; // degenerate subspace; keep current Ritz pairs
        }
        let mut hsub = CMat::zeros(ng, m);
        h.apply_block(&sub, &mut hsub);
        let mut ssub = CMat::zeros(m, m);
        gemm(
            c64::ONE,
            &sub,
            Op::ConjTrans,
            &hsub,
            Op::None,
            c64::ZERO,
            &mut ssub,
        );
        let (w2, v2) = eigh(&ssub);
        // keep lowest nb
        let mut vkeep = CMat::zeros(m, nb);
        for j in 0..nb {
            let src: Vec<c64> = v2.col(j).to_vec();
            vkeep.col_mut(j).copy_from_slice(&src);
        }
        let mut xnew = CMat::zeros(ng, nb);
        gemm(
            c64::ONE,
            &sub,
            Op::None,
            &vkeep,
            Op::None,
            c64::ZERO,
            &mut xnew,
        );
        *x = xnew;
        evals.copy_from_slice(&w2[..nb]);
    }
    DavidsonResult {
        eigenvalues: evals,
        residual: resid,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_ham::{KsSystem, PwGrids};
    use pt_lattice::silicon_cubic_supercell;
    use pt_xc::XcKind;
    use std::sync::Arc;

    #[test]
    fn teter_limits() {
        // low-G: ≈ 1; high-G: decays like 27/(16 x⁴)·... → small
        assert!((teter_preconditioner(0.0, 1.0) - 1.0).abs() < 1e-12);
        assert!(teter_preconditioner(0.1, 1.0) > 0.9);
        assert!(teter_preconditioner(50.0, 1.0) < 0.02); // ~ 1/(2x)
    }

    /// Free-electron check: with V = 0 the eigenvalues must be the lowest
    /// ½|G|² values of the sphere.
    #[test]
    fn free_electron_bands() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::builder(s.clone())
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let grids: &Arc<PwGrids> = &sys.grids;
        // zero-potential Hamiltonian, no nonlocal: build via struct
        let h = pt_ham::Hamiltonian {
            grids: Arc::clone(grids),
            vloc_r: vec![0.0; grids.n_dense()],
            nonlocal: Arc::new(pt_pseudo::NonlocalPs { projectors: vec![] }),
            fock: None,
            a_field: [0.0; 3],
        };
        let nb = 5;
        let ng = grids.ng();
        // random initial guess
        let mut rng = pt_num::rng::XorShift64::new(1);
        let mut x = CMat::from_fn(ng, nb, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        });
        let r = lowest_eigenpairs(
            &h,
            &mut x,
            DavidsonOptions {
                max_iter: 60,
                tol: 1e-9,
            },
        );
        // exact: sphere g2 sorted ascending; lowest nb values of ½|G|²
        let mut kin: Vec<f64> = grids.sphere.g2.iter().map(|g| 0.5 * g).collect();
        kin.sort_by(|a, b| a.partial_cmp(b).unwrap());
        #[allow(clippy::needless_range_loop)] // j indexes eigenvalues and kin together
        for j in 0..nb {
            assert!(
                (r.eigenvalues[j] - kin[j]).abs() < 1e-7,
                "band {j}: {} vs {}",
                r.eigenvalues[j],
                kin[j]
            );
        }
        assert!(r.residual < 1e-7);
    }

    /// With a weak cosine potential the lowest band must drop below the
    /// free-electron value (second-order perturbation theory sign check).
    #[test]
    fn weak_potential_lowers_ground_state() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::builder(s.clone())
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let grids = &sys.grids;
        let (n1, _n2, _n3) = grids.fft_dense.dims();
        let vloc: Vec<f64> = (0..grids.n_dense())
            .map(|i| {
                let ix = i % n1;
                0.3 * (2.0 * std::f64::consts::PI * ix as f64 / n1 as f64).cos()
            })
            .collect();
        let h = pt_ham::Hamiltonian {
            grids: Arc::clone(grids),
            vloc_r: vloc,
            nonlocal: Arc::new(pt_pseudo::NonlocalPs { projectors: vec![] }),
            fock: None,
            a_field: [0.0; 3],
        };
        let mut x = CMat::from_fn(grids.ng(), 2, |i, j| {
            c64::new(
                ((i * 7 + j * 13) % 17) as f64 - 8.0,
                ((i * 3 + j) % 11) as f64 - 5.0,
            )
        });
        let r = lowest_eigenpairs(
            &h,
            &mut x,
            DavidsonOptions {
                max_iter: 60,
                tol: 1e-8,
            },
        );
        assert!(
            r.eigenvalues[0] < -1e-4,
            "E0 = {} should be < 0",
            r.eigenvalues[0]
        );
    }
}
