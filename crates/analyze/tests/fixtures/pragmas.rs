//! Fixture: malformed and stale pragmas driving the `invalid-pragma` /
//! `unused-pragma` meta diagnostics. Not compiled — fed to `check_source`.

pub fn missing_reason(v: Option<u32>) -> u32 {
    // pt-analyze: allow(library-unwrap)
    v.unwrap()
}

pub fn unknown_lint(v: Option<u32>) -> u32 {
    // pt-analyze: allow(no-such-lint) — typo'd lint name
    v.unwrap()
}

pub fn stale_allow(v: u32) -> u32 {
    // pt-analyze: allow(library-unwrap) — fixture: nothing on the next line to suppress
    v + 1
}
