//! Fixture: seeded `raw-thread-spawn` violation plus a documented
//! infrastructure-thread allow. Not compiled — fed to `check_source`,
//! which also replays it under a `crates/par/` path label to check the
//! scope exemption.

pub fn bad_compute() {
    std::thread::spawn(|| {});
}

pub fn ok_io_pump() {
    // pt-analyze: allow(raw-thread-spawn) — fixture: IO pump thread, carries no compute
    std::thread::spawn(|| {});
}
