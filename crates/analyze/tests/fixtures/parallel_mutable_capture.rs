//! Fixture: seeded `parallel-mutable-capture` violations (a closure fed
//! to `parallel_map`/`parallel_reduce` writing captured outer state) next
//! to the sanctioned forms (locals, accumulation through return values,
//! a documented allow). Not compiled — fed to `check_source` under a
//! non-`par` path label.

pub fn bad_push(xs: &[f64], sink: &std::sync::Mutex<Vec<f64>>) {
    parallel_map(0..xs.len(), |i| {
        sink.lock().push(xs[i]);
        xs[i]
    });
}

pub fn bad_compound(xs: &[f64], total: &SharedCounter) {
    parallel_map(0..xs.len(), |i| {
        total += xs[i] as u64;
        xs[i]
    });
}

pub fn bad_field_assign(xs: &[f64], shared: &Shared) {
    parallel_reduce(0..xs.len(), 0.0, |i| {
        shared.cell.value = xs[i];
        xs[i]
    });
}

pub fn good_locals_only(xs: &[f64]) -> Vec<f64> {
    parallel_map(0..xs.len(), |i| {
        let mut acc = 0.0;
        for (k, w) in xs.iter().enumerate() {
            acc += w * (i + k) as f64;
        }
        let mut out = Vec::new();
        out.push(acc);
        out[0]
    })
}

pub fn good_equality_and_arms(xs: &[usize]) -> Vec<usize> {
    parallel_map(0..xs.len(), |i| match xs[i] {
        n if n == i => 1,
        _ => 0,
    })
}

pub fn suppressed(xs: &[f64], sink: &SlotSink) {
    parallel_map(0..xs.len(), |i| {
        // pt-analyze: allow(parallel-mutable-capture) — fixture: each worker fills a disjoint pre-sized slot, no two indices alias
        sink.slots.fill(xs[i]);
        xs[i]
    });
}
