//! Fixture: seeded `library-unwrap` violations, the sanctioned
//! `expect("invariant: …")` form, a pragma suppression, and test-code
//! exemption. Not compiled — fed to `check_source`.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("should be set")
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn ok_invariant_expect(v: Option<u32>) -> u32 {
    v.expect("invariant: caller checked is_some() above")
}

pub fn suppressed_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // pt-analyze: allow(library-unwrap) — fixture: trailing pragma on its own line of code
}

pub fn suppressed_own_line(v: Option<u32>) -> u32 {
    // pt-analyze: allow(library-unwrap) — fixture: own-line pragma covers the next line
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_test_code() {
        Some(1u32).unwrap();
    }
}
