//! Fixture: seeded `wallclock-in-kernel` violations (`Instant::now`,
//! `SystemTime`) and a documented allow. Not compiled — fed to
//! `check_source` under a kernel-crate path label and a non-kernel one.

use std::time::Instant;

pub fn bad_instant() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn bad_systemtime() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

pub fn suppressed() -> f64 {
    // pt-analyze: allow(wallclock-in-kernel) — fixture: diagnostics-only timing, never feeds results
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
