//! Fixture: seeded `undocumented-unsafe` violations and sanctioned forms.
//! Not compiled — fed to `check_source` by `tests/fixture_tests.rs`.

pub fn bad(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn good_same_line(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller guarantees p is valid for reads
}

pub fn good_above(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads
    unsafe { *p }
}

pub fn good_spilled(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads; the comment block
    // sits above the whole statement, one code line above the keyword
    let v =
        unsafe { *p };
    v
}
