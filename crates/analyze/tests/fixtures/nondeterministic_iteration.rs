//! Fixture: seeded `nondeterministic-iteration` violations (any
//! `HashMap`/`HashSet` mention in a numeric crate) and a documented
//! keyed-lookup-only allow. Not compiled — fed to `check_source`.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn bad_build() -> Vec<(u64, f64)> {
    let m: HashMap<u64, f64> = HashMap::new();
    m.into_iter().collect()
}

pub fn suppressed() -> usize {
    // pt-analyze: allow(nondeterministic-iteration) — fixture: keyed lookup only, never iterated
    let s: HashSet<u64> = Default::default();
    s.len()
}
