//! Fixture: seeded `float-fold-order` violations (`fold`, untyped `sum()`,
//! `sum::<f64>()`), the integer-typed form that is fine, and a pragma.
//! Not compiled — fed to `check_source`.

pub fn bad_typed_sum(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn bad_fold(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, |a, b| a + b)
}

pub fn bad_untyped_sum(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().sum();
    s
}

pub fn bad_product(xs: &[f64]) -> f64 {
    xs.iter().product::<f64>()
}

pub fn ok_integer_sum(xs: &[usize]) -> usize {
    xs.iter().sum::<usize>()
}

pub fn suppressed(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() // pt-analyze: allow(float-fold-order) — fixture: this IS the reference order
}
