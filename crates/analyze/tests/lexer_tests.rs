//! Unit tests for the hand-rolled lexer on the token shapes that make
//! naive regex scanning wrong: raw strings, nested block comments, the
//! lifetime-vs-char-literal ambiguity, raw identifiers, and float exponents.

use pt_analyze::lexer::{lex, Tok, TokKind};

fn kinds(src: &str) -> Vec<(TokKind, String)> {
    lex(src)
        .into_iter()
        .map(|t| (t.kind, t.text.to_string()))
        .collect()
}

fn of_kind<'a>(toks: &'a [Tok<'a>], kind: TokKind) -> Vec<&'a str> {
    toks.iter()
        .filter(|t| t.kind == kind)
        .map(|t| t.text)
        .collect()
}

#[test]
fn raw_string_with_hashes_swallows_quotes_and_comments() {
    // The body contains `"#` and `//` and `unsafe` — none of it may leak
    // out as real tokens.
    let src = r####"let s = r##"quote " hash "# and // not a comment, unsafe"##; let x = 1;"####;
    let toks = lex(src);
    let strs = of_kind(&toks, TokKind::StrLit);
    assert_eq!(strs.len(), 1);
    assert!(strs[0].starts_with("r##\""));
    assert!(strs[0].ends_with("\"##"));
    assert!(of_kind(&toks, TokKind::LineComment).is_empty());
    // `unsafe` inside the raw string is not an ident token.
    assert!(!of_kind(&toks, TokKind::Ident).contains(&"unsafe"));
    // Tokens after the raw string still lex.
    assert!(of_kind(&toks, TokKind::Ident).contains(&"x"));
}

#[test]
fn byte_and_raw_byte_strings() {
    let toks = lex(r###"let a = b"bytes"; let b = br#"raw " bytes"#;"###);
    let strs = of_kind(&toks, TokKind::StrLit);
    assert_eq!(strs.len(), 2);
    assert!(strs[0].starts_with("b\""));
    assert!(strs[1].starts_with("br#\""));
}

#[test]
fn nested_block_comments_terminate_at_matching_depth() {
    let src = "before /* outer /* inner */ still comment */ after";
    let toks = lex(src);
    let idents = of_kind(&toks, TokKind::Ident);
    assert_eq!(idents, vec!["before", "after"]);
    let blocks = of_kind(&toks, TokKind::BlockComment);
    assert_eq!(blocks.len(), 1);
    assert!(blocks[0].contains("inner"));
}

#[test]
fn lifetime_vs_char_literal() {
    // 'a in a generic position is a lifetime; 'a' is a char literal;
    // '\n' is a char literal with an escape.
    let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
    let lifetimes = of_kind(&toks, TokKind::Lifetime);
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    let chars = of_kind(&toks, TokKind::CharLit);
    assert_eq!(chars, vec!["'a'", "'\\n'"]);
}

#[test]
fn lifetime_static_is_not_a_char() {
    let toks = lex("static X: &'static str = \"s\";");
    assert_eq!(of_kind(&toks, TokKind::Lifetime), vec!["'static"]);
    assert!(of_kind(&toks, TokKind::CharLit).is_empty());
}

#[test]
fn raw_identifiers_strip_prefix_and_mark_raw() {
    let toks = lex("let r#unsafe = r#fn();");
    let raws: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.raw)
        .map(|t| t.text)
        .collect();
    assert_eq!(raws, vec!["unsafe", "fn"]);
    // A raw `r#unsafe` ident must NOT look like the `unsafe` keyword to
    // keyword-matching lints (they check `raw == false`).
    assert!(toks
        .iter()
        .all(|t| !t.is(TokKind::Ident, "unsafe") || t.raw));
}

#[test]
fn numbers_with_exponents_and_ranges() {
    let toks = lex("let a = 1e-12; let b = 0..n; let c = 1_000.5f64;");
    let nums = of_kind(&toks, TokKind::NumLit);
    assert!(nums.contains(&"1e-12"));
    assert!(nums.contains(&"1_000.5f64"));
    // `0..n` must not eat the range dots into the number.
    assert!(nums.contains(&"0"));
    assert!(of_kind(&toks, TokKind::Ident).contains(&"n"));
}

#[test]
fn line_numbers_are_one_based_and_track_newlines_in_tokens() {
    let src = "a\n/* two\nlines */\nb";
    let toks = lex(src);
    let a = toks.iter().find(|t| t.is(TokKind::Ident, "a")).unwrap();
    let b = toks.iter().find(|t| t.is(TokKind::Ident, "b")).unwrap();
    assert_eq!(a.line, 1);
    assert_eq!(b.line, 4);
}

#[test]
fn string_escapes_do_not_end_the_literal_early() {
    let toks = lex(r#"let s = "a \" b"; let t = 1;"#);
    let strs = of_kind(&toks, TokKind::StrLit);
    assert_eq!(strs, vec![r#""a \" b""#]);
    assert!(of_kind(&toks, TokKind::Ident).contains(&"t"));
}

#[test]
fn doc_and_plain_comments_are_distinct_tokens() {
    let toks = lex("/// doc\n//! inner\n// plain\nfn f() {}");
    let comments = of_kind(&toks, TokKind::LineComment);
    assert_eq!(comments.len(), 3);
    assert_eq!(kinds("fn f() {}").len(), lex("fn f() {}").len());
}
