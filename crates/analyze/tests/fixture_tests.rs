//! Fixture tests: each seeded-violation file under `tests/fixtures/`
//! (a tree the workspace walker deliberately skips) is fed to
//! `check_source` under a crafted workspace-relative path label, which is
//! what selects crate scope and test-code classification. Each lint must
//! fire on its seeded lines, stay quiet on the sanctioned forms, honor
//! `allow` pragmas, and respect its crate scope.

use pt_analyze::{check_source, Finding};

fn lines_of(findings: &[Finding], lint: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn undocumented_unsafe_fires_and_safety_comments_clear_it() {
    let src = include_str!("fixtures/undocumented_unsafe.rs");
    let findings = check_source("crates/par/src/fixture.rs", src);
    // Only the bare block fires; same-line, block-above, and the
    // comment-above-a-spilled-statement forms are all documented.
    assert_eq!(lines_of(&findings, "undocumented-unsafe"), vec![5]);
    assert_eq!(findings.len(), 1, "unexpected extra findings: {findings:?}");
}

#[test]
fn library_unwrap_fires_on_unwrap_expect_panic_only_in_library_code() {
    let src = include_str!("fixtures/library_unwrap.rs");
    let findings = check_source("crates/core/src/fixture.rs", src);
    // bad_unwrap, bad_expect (message lacks the `invariant: ` prefix),
    // bad_panic; the invariant-form expect, both pragma'd unwraps, and the
    // `#[cfg(test)]` module are all exempt.
    assert_eq!(lines_of(&findings, "library-unwrap"), vec![6, 10, 15]);
    assert_eq!(findings.len(), 3, "unexpected extra findings: {findings:?}");
}

#[test]
fn library_unwrap_is_scoped_to_typed_error_crates() {
    let src = include_str!("fixtures/library_unwrap.rs");
    let findings = check_source("crates/lattice/src/fixture.rs", src);
    assert!(lines_of(&findings, "library-unwrap").is_empty());
}

#[test]
fn library_unwrap_exempts_whole_test_files_by_path() {
    let src = include_str!("fixtures/library_unwrap.rs");
    let findings = check_source("crates/core/tests/fixture.rs", src);
    assert!(lines_of(&findings, "library-unwrap").is_empty());
}

#[test]
fn nondeterministic_iteration_flags_every_hash_container_mention() {
    let src = include_str!("fixtures/nondeterministic_iteration.rs");
    let findings = check_source("crates/ham/src/fixture.rs", src);
    // Two `use` lines, two mentions on the construction line; the
    // pragma'd HashSet on line 15 is suppressed.
    assert_eq!(
        lines_of(&findings, "nondeterministic-iteration"),
        vec![5, 6, 9, 9]
    );
    assert!(!lines_of(&findings, "nondeterministic-iteration").contains(&15));
}

#[test]
fn nondeterministic_iteration_is_scoped_to_numeric_crates() {
    let src = include_str!("fixtures/nondeterministic_iteration.rs");
    let findings = check_source("crates/serve/src/fixture.rs", src);
    assert!(lines_of(&findings, "nondeterministic-iteration").is_empty());
}

#[test]
fn raw_thread_spawn_fires_outside_par_and_mpi() {
    let src = include_str!("fixtures/raw_thread_spawn.rs");
    let findings = check_source("crates/serve/src/fixture.rs", src);
    assert_eq!(lines_of(&findings, "raw-thread-spawn"), vec![7]);
}

#[test]
fn raw_thread_spawn_exempts_the_thread_owning_crates() {
    let src = include_str!("fixtures/raw_thread_spawn.rs");
    for label in ["crates/par/src/fixture.rs", "crates/mpi/src/fixture.rs"] {
        let findings = check_source(label, src);
        assert!(
            lines_of(&findings, "raw-thread-spawn").is_empty(),
            "{label} should be exempt"
        );
    }
}

#[test]
fn wallclock_in_kernel_fires_on_instant_now_and_systemtime() {
    let src = include_str!("fixtures/wallclock_in_kernel.rs");
    let findings = check_source("crates/fft/src/fixture.rs", src);
    assert_eq!(lines_of(&findings, "wallclock-in-kernel"), vec![8, 13]);
}

#[test]
fn wallclock_in_kernel_is_scoped_to_kernel_crates() {
    let src = include_str!("fixtures/wallclock_in_kernel.rs");
    let findings = check_source("crates/serve/src/fixture.rs", src);
    assert!(lines_of(&findings, "wallclock-in-kernel").is_empty());
}

#[test]
fn wallclock_in_kernel_carves_out_the_trace_crate() {
    // pt-trace sits in the kernel dependency cone (every instrumented hot
    // path links it) but is the designated owner of all timestamping: the
    // carve-out is crate-scoped, so the same clock-reading source that
    // fires in fft is clean under crates/trace — with no pragmas.
    let src = include_str!("fixtures/wallclock_in_kernel.rs");
    let findings = check_source("crates/trace/src/fixture.rs", src);
    assert!(
        lines_of(&findings, "wallclock-in-kernel").is_empty(),
        "trace must be carve-out clean: {findings:?}"
    );
    // same source still fires in a real kernel crate (guard against the
    // carve-out accidentally widening)
    let findings = check_source("crates/core/src/fixture.rs", src);
    assert_eq!(lines_of(&findings, "wallclock-in-kernel"), vec![8, 13]);
}

#[test]
fn parallel_mutable_capture_flags_writes_to_captured_state() {
    let src = include_str!("fixtures/parallel_mutable_capture.rs");
    let findings = check_source("crates/ham/src/fixture.rs", src);
    // lock().push() through a captured Mutex, a compound assignment to a
    // captured counter, and a field assignment through a captured struct;
    // let/for/closure-param locals and the pragma'd slot-fill are quiet.
    assert_eq!(
        lines_of(&findings, "parallel-mutable-capture"),
        vec![9, 16, 23]
    );
    assert_eq!(findings.len(), 3, "unexpected extra findings: {findings:?}");
}

#[test]
fn parallel_mutable_capture_is_exempt_in_par_and_test_code() {
    let src = include_str!("fixtures/parallel_mutable_capture.rs");
    // pt-par owns the primitives (its internals may stage state by design)
    let findings = check_source("crates/par/src/fixture.rs", src);
    assert!(lines_of(&findings, "parallel-mutable-capture").is_empty());
    // integration tests are exempt by path
    let findings = check_source("crates/ham/tests/fixture.rs", src);
    assert!(lines_of(&findings, "parallel-mutable-capture").is_empty());
}

#[test]
fn float_fold_order_fires_on_float_reductions_not_integer_ones() {
    let src = include_str!("fixtures/float_fold_order.rs");
    let findings = check_source("crates/linalg/src/fixture.rs", src);
    // sum::<f64>, fold, untyped sum(), product::<f64>; the integer
    // sum::<usize> and the pragma'd line are quiet.
    assert_eq!(lines_of(&findings, "float-fold-order"), vec![6, 10, 14, 19]);
    assert_eq!(findings.len(), 4, "unexpected extra findings: {findings:?}");
}

#[test]
fn meta_lints_catch_malformed_and_stale_pragmas() {
    let src = include_str!("fixtures/pragmas.rs");
    let findings = check_source("crates/core/src/fixture.rs", src);
    // A reason-less pragma and an unknown-lint pragma are invalid AND
    // suppress nothing — the unwraps under them still fire.
    assert_eq!(lines_of(&findings, "invalid-pragma"), vec![5, 10]);
    assert_eq!(lines_of(&findings, "library-unwrap"), vec![6, 11]);
    // A well-formed pragma covering a clean line is flagged as stale.
    assert_eq!(lines_of(&findings, "unused-pragma"), vec![15]);
    assert_eq!(findings.len(), 5, "unexpected extra findings: {findings:?}");
}

#[test]
fn shim_crates_get_their_own_crate_key() {
    // `crates/shims/rayon` must key as `shims/rayon`, which is NOT in the
    // numeric-crate list — float-fold-order does not apply there.
    let src = "pub fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
    let findings = check_source("crates/shims/rayon/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
    // …but the same source in a numeric crate fires.
    let findings = check_source("crates/num/src/fixture.rs", src);
    assert_eq!(lines_of(&findings, "float-fold-order"), vec![1]);
}
