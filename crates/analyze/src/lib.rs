//! pt-analyze — workspace invariant linter.
//!
//! Mechanically enforces the house rules this reproduction's correctness
//! rests on (bit-exact determinism across ranks×threads and resume, the
//! typed-`PtError` policy, unsafe hygiene) as a CI gate instead of
//! reviewer memory. Std-only: a hand-rolled lexer (`lexer`), a lint
//! registry (`lints`), per-line `// pt-analyze: allow(<lint>) — <reason>`
//! suppression pragmas (`context`), and human/JSON reporters (`report`).
//!
//! The binary walks the workspace and exits nonzero on findings;
//! `tests/analyze_workspace.rs` at the workspace root runs the same check
//! in-process so `cargo test` is already the gate.

pub mod context;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod walk;

use context::FileCtx;
pub use lints::{Finding, LINTS, META_LINTS};
use std::path::Path;

/// Result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of suppressions that fired (documented allows in use).
    pub suppressions_used: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run every lint on one source file. `path` must be workspace-relative
/// with `/` separators — it determines the crate key (lint scoping) and
/// test-code classification, so fixture tests can exercise any scope by
/// choosing the path label.
pub fn check_source(path: &str, src: &str) -> Vec<Finding> {
    check_source_counted(path, src).0
}

/// Like [`check_source`], also reporting how many suppressions fired.
pub fn check_source_counted(path: &str, src: &str) -> (Vec<Finding>, usize) {
    let toks = lexer::lex(src);
    let ctx = FileCtx::new(path, toks);
    let mut findings = Vec::new();
    for spec in LINTS {
        if !spec.scope.applies(&ctx.crate_key) {
            continue;
        }
        if spec.skip_test_code && ctx.test_file {
            continue;
        }
        let mut raw: Vec<(u32, String)> = Vec::new();
        (spec.check)(&ctx, &mut |line, msg| raw.push((line, msg)));
        for (line, message) in raw {
            if spec.skip_test_code && ctx.in_test_code(line) {
                continue;
            }
            if ctx.suppressed(spec.name, line) {
                continue;
            }
            findings.push(Finding {
                file: path.to_string(),
                line,
                lint: spec.name,
                message,
            });
        }
    }
    // meta diagnostics: malformed pragmas, then pragmas that fired nothing
    // (stale allows hide future violations). Neither is suppressible.
    for (line, msg) in &ctx.pragma_errors {
        findings.push(Finding {
            file: path.to_string(),
            line: *line,
            lint: "invalid-pragma",
            message: msg.clone(),
        });
    }
    let used = ctx.pragmas.iter().filter(|p| p.used.get()).count();
    for p in &ctx.pragmas {
        if !p.used.get() {
            findings.push(Finding {
                file: path.to_string(),
                line: p.at,
                lint: "unused-pragma",
                message: format!(
                    "pragma `allow({})` suppresses nothing on line {} — remove it",
                    p.lints.join(", "),
                    p.applies_to
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    (findings, used)
}

/// Analyze every workspace `.rs` file under `root` (skipping `target/`,
/// `.git/`, and lint-fixture trees). IO errors are reported, not panicked.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::rust_sources(root)?;
    let mut report = Report::default();
    for rel in files {
        let full = root.join(&rel);
        let src =
            std::fs::read_to_string(&full).map_err(|e| format!("read {}: {e}", full.display()))?;
        let (findings, used) = check_source_counted(&rel, &src);
        report.findings.extend(findings);
        report.suppressions_used += used;
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}
