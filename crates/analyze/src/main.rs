//! `pt-analyze` — walk the workspace, run every lint, exit nonzero on
//! findings.
//!
//! ```text
//! pt-analyze [--root <dir>] [--format human|json] [--list-lints]
//! ```
//!
//! With no `--root`, the workspace is discovered by walking up from the
//! current directory to the first `Cargo.toml` containing `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "human".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                _ => return usage("--format must be `human` or `json`"),
            },
            "--list-lints" => {
                print!("{}", pt_analyze::report::lint_list());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.map(Ok).unwrap_or_else(discover_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pt-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    match pt_analyze::analyze_workspace(&root) {
        Ok(report) => {
            if format == "json" {
                print!("{}", pt_analyze::report::json(&report));
            } else {
                print!("{}", pt_analyze::report::human(&report));
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pt-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the workspace root.
fn discover_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory (use --root)".into());
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("pt-analyze: {err}");
    }
    eprintln!("usage: pt-analyze [--root <dir>] [--format human|json] [--list-lints]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
