//! The lint registry and the token-level checks.
//!
//! Every lint here mechanizes an invariant this codebase's correctness
//! story already depends on (see DESIGN.md "Static analysis & invariants"):
//! bit-exact determinism across ranks×threads and resume, the workspace
//! `PtError` typed-error policy, and unsafe-hygiene. Checks are
//! deliberately *lexical over-approximations* — e.g. `nondeterministic-
//! iteration` flags any `HashMap` mention, not just iteration — because a
//! sound-but-coarse rule plus a mandatory-reason `allow` pragma is
//! enforceable, while "only flag the bad uses" is not decidable at token
//! level. The pragma reason is where the human argument lives.

use crate::context::FileCtx;
use crate::lexer::{Tok, TokKind};

/// A reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (`LintSpec::name` or a meta lint).
    pub lint: &'static str,
    /// Human explanation of this occurrence.
    pub message: String,
}

/// Which crates a lint applies to, by crate key (`context::crate_key`).
pub enum Scope {
    /// Every crate in the workspace.
    All,
    /// Only the listed crates.
    Only(&'static [&'static str]),
    /// Every crate except the listed ones.
    Except(&'static [&'static str]),
}

impl Scope {
    pub fn applies(&self, crate_key: &str) -> bool {
        match self {
            Scope::All => true,
            Scope::Only(list) => list.contains(&crate_key),
            Scope::Except(list) => !list.contains(&crate_key),
        }
    }
}

/// A registered lint: identity, rationale, scope, and its check.
pub struct LintSpec {
    pub name: &'static str,
    /// One-line statement of the invariant the lint protects.
    pub rationale: &'static str,
    pub scope: Scope,
    /// Test code (integration tests, `#[cfg(test)]` items, benches,
    /// examples) is exempt when true.
    pub skip_test_code: bool,
    pub check: fn(&FileCtx<'_>, &mut dyn FnMut(u32, String)),
}

/// Crates whose results feed the bit-exact propagation contract: any
/// floating-point reduction or container iteration here must have a
/// fixed, thread/rank-count-independent order.
const NUMERIC_CRATES: &[&str] = &[
    "num", "par", "fft", "linalg", "lattice", "pseudo", "xc", "mpi", "ham", "scf", "core",
];

/// Kernel crates where wall-clock reads would make results depend on when
/// (or how fast) they ran — breaking bit-exact kill-and-resume. `trace`
/// is in the list because pt-trace is linked into every kernel hot path
/// (spans, counters), but it carries the single crate-scoped carve-out in
/// [`check_wallclock_in_kernel`]: it is the designated owner of ALL
/// timestamping, and nothing it records feeds a bit-compared surface.
/// Keeping the clock there means instrumented kernels stay lexically
/// clock-free — no per-line pragmas scattered through fft/ham/core.
const KERNEL_CRATES: &[&str] = &["fft", "linalg", "ham", "core", "trace"];

/// Library crates under the workspace typed-`PtError` policy (PR 1).
const TYPED_ERROR_CRATES: &[&str] = &["core", "ham", "serve", "io"];

/// The registry. Meta diagnostics `invalid-pragma` and `unused-pragma`
/// are produced by the driver, not listed here (they cannot be allowed).
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        name: "undocumented-unsafe",
        rationale: "every `unsafe` block/impl must carry an adjacent `// SAFETY:` comment stating the invariant that makes it sound",
        scope: Scope::All,
        skip_test_code: false,
        check: check_undocumented_unsafe,
    },
    LintSpec {
        name: "library-unwrap",
        rationale: "library code returns typed `PtError`s; `unwrap`/`panic!` turn recoverable conditions into aborts, and `expect` must state a provable invariant (`expect(\"invariant: …\")`)",
        scope: Scope::Only(TYPED_ERROR_CRATES),
        skip_test_code: true,
        check: check_library_unwrap,
    },
    LintSpec {
        name: "nondeterministic-iteration",
        rationale: "HashMap/HashSet iteration order varies run-to-run; numeric crates must use Vec/BTreeMap so every traversal is reproducible (keyed-lookup-only uses get a documented allow)",
        scope: Scope::Only(NUMERIC_CRATES),
        skip_test_code: true,
        check: check_nondeterministic_iteration,
    },
    LintSpec {
        name: "raw-thread-spawn",
        rationale: "compute threads must come from pt-par pools / pt-mpi rank teams, whose chunking keeps results bit-identical for any thread count; ad-hoc `std::thread::spawn` escapes that contract",
        scope: Scope::Except(&["par", "mpi"]),
        skip_test_code: true,
        check: check_raw_thread_spawn,
    },
    LintSpec {
        name: "wallclock-in-kernel",
        rationale: "`Instant::now`/`SystemTime` in kernel crates make results depend on wall-clock, breaking bit-exact kill-and-resume",
        scope: Scope::Only(KERNEL_CRATES),
        skip_test_code: true,
        check: check_wallclock_in_kernel,
    },
    LintSpec {
        name: "parallel-mutable-capture",
        rationale: "closures handed to `parallel_map`/`parallel_reduce` run on many workers at once; mutating captured outer state from them is a data race waiting on interior mutability — accumulate through the return value / the reduction instead",
        scope: Scope::Except(&["par"]),
        skip_test_code: true,
        check: check_parallel_mutable_capture,
    },
    LintSpec {
        name: "float-fold-order",
        rationale: "iterator `sum`/`fold` bakes an implicit reduction order into call sites; numeric crates must reduce through the canonical helpers (`pt_num::reduce`) or `pt_par::parallel_reduce` so the order is a named, pinned contract",
        scope: Scope::Only(NUMERIC_CRATES),
        skip_test_code: true,
        check: check_float_fold_order,
    },
];

/// Names of the driver-produced meta diagnostics (reported alongside the
/// registry lints, never suppressible).
pub const META_LINTS: &[&str] = &["invalid-pragma", "unused-pragma"];

fn is_ident(t: &Tok<'_>, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text && !t.raw
}

fn is_punct(t: Option<&Tok<'_>>, text: &str) -> bool {
    matches!(t, Some(t) if t.kind == TokKind::Punct && t.text == text)
}

/// `unsafe` (block, fn, impl, trait) without an *adjacent* `// SAFETY:`
/// comment: on the same line, or in the contiguous run of comment lines
/// directly above (a multi-line `// SAFETY: …` block counts as one unit).
fn check_undocumented_unsafe(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    // (start_line, end_line, mentions SAFETY) per comment token; block
    // comments span lines, line comments are one line each
    let spans: Vec<(u32, u32, bool)> = ctx
        .comments
        .iter()
        .map(|c| {
            let end = c.line + c.text.matches('\n').count() as u32;
            (c.line, end, c.text.contains("SAFETY:"))
        })
        .collect();
    let covering = |line: u32| spans.iter().find(|s| s.0 <= line && line <= s.1);
    for t in &ctx.code {
        if !is_ident(t, "unsafe") {
            continue;
        }
        let mut documented = spans.iter().any(|s| s.0 <= t.line && t.line <= s.1 && s.2);
        let mut l = t.line;
        // the comment block may sit above the *statement* rather than the
        // `unsafe` token itself (`let x =\n    unsafe { … }`): tolerate a
        // single interposed code line on the way up
        let mut gap = 1u32;
        while !documented && l > 1 {
            match covering(l - 1) {
                Some(&(start, _, safety)) => {
                    documented = safety;
                    l = start;
                }
                None if gap > 0 => {
                    gap -= 1;
                    l -= 1;
                }
                None => break,
            }
        }
        if !documented {
            emit(
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment (same line, or in the comment block directly above) stating the invariant that makes it sound".into(),
            );
        }
    }
}

/// `.unwrap()`, `.expect(<non-invariant>)`, and `panic!` in library code.
fn check_library_unwrap(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "unwrap")
            && i > 0
            && is_punct(code.get(i - 1), ".")
            && is_punct(code.get(i + 1), "(")
        {
            emit(
                t.line,
                "`unwrap()` in library code — propagate a typed `PtError`, or `expect(\"invariant: …\")` where the invariant is locally provable".into(),
            );
        }
        if is_ident(t, "expect")
            && i > 0
            && is_punct(code.get(i - 1), ".")
            && is_punct(code.get(i + 1), "(")
        {
            let ok = matches!(
                code.get(i + 2),
                Some(m) if m.kind == TokKind::StrLit && m.text.starts_with("\"invariant: ")
            );
            if !ok {
                emit(
                    t.line,
                    "`expect(…)` in library code must state a locally provable invariant: `expect(\"invariant: <why this cannot fail>\")`".into(),
                );
            }
        }
        if is_ident(t, "panic") && is_punct(code.get(i + 1), "!") {
            emit(
                t.line,
                "`panic!` in library code — return a typed `PtError` instead".into(),
            );
        }
    }
}

/// Any `HashMap`/`HashSet` mention in a numeric crate.
fn check_nondeterministic_iteration(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    for t in &ctx.code {
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            emit(
                t.line,
                format!(
                    "`{}` in a numeric crate: iteration order is nondeterministic — use `Vec`/`BTreeMap`, or allow with a reason proving the use is keyed-lookup-only",
                    t.text
                ),
            );
        }
    }
}

/// `thread::spawn` outside the two crates that own thread lifecycles.
fn check_raw_thread_spawn(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "spawn")
            && i >= 3
            && is_punct(code.get(i - 1), ":")
            && is_punct(code.get(i - 2), ":")
            && is_ident(&code[i - 3], "thread")
        {
            emit(
                t.line,
                "raw `std::thread::spawn` outside pt-par/pt-mpi — compute goes through `pt_par` primitives; an infrastructure (IO/supervision) thread needs a documented allow".into(),
            );
        }
    }
}

/// `Instant::now` / `SystemTime` in kernel crates.
fn check_wallclock_in_kernel(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    // Crate-scoped carve-out (see the KERNEL_CRATES doc): pt-trace is the
    // one crate allowed to read the clock. All spans/counters timestamp
    // through its monotonic epoch, its output never enters bit-compared
    // surfaces (tables, checkpoints, stream frames), and concentrating
    // every clock read here is precisely what lets this lint stay
    // pragma-free across the real kernels.
    if ctx.crate_key == "trace" {
        return;
    }
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "Instant")
            && is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && matches!(code.get(i + 3), Some(n) if is_ident(n, "now"))
        {
            emit(
                t.line,
                "`Instant::now()` in a kernel crate: results must not depend on wall-clock (bit-exact kill-and-resume)".into(),
            );
        }
        if is_ident(t, "SystemTime") {
            emit(
                t.line,
                "`SystemTime` in a kernel crate: results must not depend on wall-clock (bit-exact kill-and-resume)".into(),
            );
        }
    }
}

/// Methods that mutate their receiver in place — the lexical signature of
/// "this closure is writing somewhere it doesn't own".
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "append",
    "clear",
    "truncate",
    "pop",
    "sort",
    "sort_by",
    "sort_unstable",
    "swap",
    "fill",
];

/// Mutation of captured outer state inside `parallel_map` /
/// `parallel_reduce` argument lists.
///
/// A lexical over-approximation, like every check here: within the
/// balanced argument span of each call we collect the idents that are
/// *locally bound* (closure parameters, `let` bindings, `for` patterns)
/// and flag assignments (`x = …`, `x += …`, `a.b = …`) and in-place
/// mutating method calls (`x.push(…)`) whose chain head is not in that
/// local set. An `Fn` closure cannot capture `&mut`, so anything this
/// fires on is reaching through interior mutability (RefCell / Mutex /
/// atomics — a reduction-order hazard even when it is not a data race)
/// or unsafe aliasing; both deserve a written `allow` justification.
fn check_parallel_mutable_capture(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        let entry = (is_ident(t, "parallel_map") || is_ident(t, "parallel_reduce"))
            && is_punct(code.get(i + 1), "(");
        if !entry {
            i += 1;
            continue;
        }
        // balanced argument span: everything up to the matching `)`
        let open = i + 1;
        let mut depth = 1usize;
        let mut close = open + 1;
        while close < code.len() {
            match (code[close].kind, code[close].text) {
                (TokKind::Punct, "(") => depth += 1,
                (TokKind::Punct, ")") => depth -= 1,
                _ => {}
            }
            if depth == 0 {
                break;
            }
            close += 1;
        }
        scan_parallel_span(t.text, &code[open + 1..close.min(code.len())], emit);
        i = close + 1;
    }
}

/// The idents a `parallel_map`/`parallel_reduce` argument span binds
/// locally: closure params (`|i, x|`), `let` patterns, `for` patterns.
/// Over-collection (e.g. type names in annotations) only makes the lint
/// quieter, never wrong-er — the safe direction for a coarse check.
fn parallel_span_locals<'a>(span: &[Tok<'a>]) -> Vec<&'a str> {
    let mut locals: Vec<&str> = Vec::new();
    let mut j = 0;
    while j < span.len() {
        let t = &span[j];
        if is_ident(t, "let") {
            let mut k = j + 1;
            while k < span.len()
                && !span[k].is(TokKind::Punct, "=")
                && !span[k].is(TokKind::Punct, ";")
            {
                if span[k].kind == TokKind::Ident {
                    locals.push(span[k].text);
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if is_ident(t, "for") {
            let mut k = j + 1;
            while k < span.len() && !is_ident(&span[k], "in") {
                if span[k].kind == TokKind::Ident {
                    locals.push(span[k].text);
                }
                k += 1;
            }
            j = k;
            continue;
        }
        if t.is(TokKind::Punct, "|") {
            // a `|` opens a closure param list when it follows a call
            // boundary (`(`, `,`, `{`, `=`) or `move`; a bitwise-or
            // operand position never does
            let starts_closure = j == 0
                || matches!(
                    span.get(j - 1),
                    Some(p) if (p.kind == TokKind::Punct && matches!(p.text, "(" | "," | "{" | "="))
                        || is_ident(p, "move")
                );
            if starts_closure {
                let mut k = j + 1;
                while k < span.len() && !span[k].is(TokKind::Punct, "|") {
                    if span[k].kind == TokKind::Ident {
                        locals.push(span[k].text);
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
        }
        j += 1;
    }
    locals
}

/// Walk a method/field chain leftwards from the `.` at `dot` and return
/// the index of its head ident: `sink.lock().push` → `sink`,
/// `shared.cell.value` → `shared`, skipping balanced `(…)`/`[…]` groups.
/// `None` when the receiver is not an ident-rooted chain (a literal, a
/// parenthesized expression) — those cannot name captured state.
fn chain_head(span: &[Tok<'_>], dot: usize) -> Option<usize> {
    let mut k = dot;
    loop {
        if k == 0 {
            return None;
        }
        k -= 1;
        match (span[k].kind, span[k].text) {
            (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                let open = if span[k].text == ")" { "(" } else { "[" };
                let close = span[k].text;
                let mut depth = 1usize;
                while depth > 0 {
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                    if span[k].is(TokKind::Punct, close) {
                        depth += 1;
                    } else if span[k].is(TokKind::Punct, open) {
                        depth -= 1;
                    }
                }
            }
            (TokKind::Punct, ".") => {}
            (TokKind::Ident, _) => {
                if !(k >= 1 && span[k - 1].is(TokKind::Punct, ".")) {
                    return Some(k);
                }
            }
            _ => return None,
        }
    }
}

fn scan_parallel_span(callee: &str, span: &[Tok<'_>], emit: &mut dyn FnMut(u32, String)) {
    let locals = parallel_span_locals(span);
    let mut flag = |head: Option<usize>, line: u32| {
        let Some(h) = head else { return };
        let name = span[h].text;
        if locals.contains(&name) {
            return;
        }
        emit(
            line,
            format!(
                "closure argument of `{callee}` mutates `{name}`, which is not bound inside the call — captured outer state written from parallel workers; accumulate through the return value / the reduction, or allow with a reason proving the access is race- and order-safe"
            ),
        );
    };
    for (j, t) in span.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let p = |o: usize, s: &str| matches!(span.get(j + o), Some(t) if t.kind == TokKind::Punct && t.text == s);
        // `x.push(…)` / `sink.lock().push(…)`: detected at the mutating
        // method name, mutation lands on the chain head
        if MUTATING_METHODS.contains(&t.text)
            && j >= 1
            && p(1, "(")
            && span[j - 1].is(TokKind::Punct, ".")
        {
            flag(chain_head(span, j - 1), t.line);
            continue;
        }
        // `x = …` / `a.b = …` but not `==` / `=>` (puncts arrive one
        // char at a time)
        let plain = p(1, "=") && !p(2, "=") && !p(2, ">");
        // `x += …` and friends (`+` `=` as two tokens)
        let compound = matches!(
            span.get(j + 1),
            Some(op) if op.kind == TokKind::Punct
                && matches!(op.text, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
        ) && p(2, "=")
            && !p(3, "=");
        if !(plain || compound) {
            continue;
        }
        let head = if j >= 1 && span[j - 1].is(TokKind::Punct, ".") {
            chain_head(span, j - 1)
        } else {
            Some(j)
        };
        flag(head, t.line);
    }
}

const FLOAT_TYPES: &[&str] = &["f32", "f64", "c64"];

/// `.fold(…)`, `.sum()`, `.sum::<f64>()` (and `product`) in numeric
/// crates. Integer-typed `sum::<usize>()` etc. is fine — the order
/// concern is floating-point non-associativity.
fn check_float_fold_order(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if i == 0 || !is_punct(code.get(i - 1), ".") {
            continue;
        }
        if is_ident(t, "fold") && is_punct(code.get(i + 1), "(") {
            emit(
                t.line,
                "iterator `fold` in a numeric crate — reduce through `pt_num::reduce::{sum_f64, max_f64, min_f64}` (the canonical fixed order) or `pt_par::parallel_reduce`".into(),
            );
            continue;
        }
        if !(is_ident(t, "sum") || is_ident(t, "product")) {
            continue;
        }
        if is_punct(code.get(i + 1), "(") {
            emit(
                t.line,
                format!(
                    "untyped iterator `{}()` in a numeric crate — if the element type is floating-point the reduction order is implicit; use `pt_num::reduce` helpers (or annotate an integer type)",
                    t.text
                ),
            );
        } else if is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && is_punct(code.get(i + 3), "<")
        {
            let float = matches!(
                code.get(i + 4),
                Some(ty) if ty.kind == TokKind::Ident && FLOAT_TYPES.contains(&ty.text)
            );
            if float {
                emit(
                    t.line,
                    format!(
                        "iterator `{}::<{}>()` in a numeric crate — use `pt_num::reduce` helpers so the reduction order is a named, pinned contract",
                        t.text,
                        code[i + 4].text
                    ),
                );
            }
        }
    }
}
