//! The lint registry and the token-level checks.
//!
//! Every lint here mechanizes an invariant this codebase's correctness
//! story already depends on (see DESIGN.md "Static analysis & invariants"):
//! bit-exact determinism across ranks×threads and resume, the workspace
//! `PtError` typed-error policy, and unsafe-hygiene. Checks are
//! deliberately *lexical over-approximations* — e.g. `nondeterministic-
//! iteration` flags any `HashMap` mention, not just iteration — because a
//! sound-but-coarse rule plus a mandatory-reason `allow` pragma is
//! enforceable, while "only flag the bad uses" is not decidable at token
//! level. The pragma reason is where the human argument lives.

use crate::context::FileCtx;
use crate::lexer::{Tok, TokKind};

/// A reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name (`LintSpec::name` or a meta lint).
    pub lint: &'static str,
    /// Human explanation of this occurrence.
    pub message: String,
}

/// Which crates a lint applies to, by crate key (`context::crate_key`).
pub enum Scope {
    /// Every crate in the workspace.
    All,
    /// Only the listed crates.
    Only(&'static [&'static str]),
    /// Every crate except the listed ones.
    Except(&'static [&'static str]),
}

impl Scope {
    pub fn applies(&self, crate_key: &str) -> bool {
        match self {
            Scope::All => true,
            Scope::Only(list) => list.contains(&crate_key),
            Scope::Except(list) => !list.contains(&crate_key),
        }
    }
}

/// A registered lint: identity, rationale, scope, and its check.
pub struct LintSpec {
    pub name: &'static str,
    /// One-line statement of the invariant the lint protects.
    pub rationale: &'static str,
    pub scope: Scope,
    /// Test code (integration tests, `#[cfg(test)]` items, benches,
    /// examples) is exempt when true.
    pub skip_test_code: bool,
    pub check: fn(&FileCtx<'_>, &mut dyn FnMut(u32, String)),
}

/// Crates whose results feed the bit-exact propagation contract: any
/// floating-point reduction or container iteration here must have a
/// fixed, thread/rank-count-independent order.
const NUMERIC_CRATES: &[&str] = &[
    "num", "par", "fft", "linalg", "lattice", "pseudo", "xc", "mpi", "ham", "scf", "core",
];

/// Kernel crates where wall-clock reads would make results depend on when
/// (or how fast) they ran — breaking bit-exact kill-and-resume.
const KERNEL_CRATES: &[&str] = &["fft", "linalg", "ham", "core"];

/// Library crates under the workspace typed-`PtError` policy (PR 1).
const TYPED_ERROR_CRATES: &[&str] = &["core", "ham", "serve", "io"];

/// The registry. Meta diagnostics `invalid-pragma` and `unused-pragma`
/// are produced by the driver, not listed here (they cannot be allowed).
pub const LINTS: &[LintSpec] = &[
    LintSpec {
        name: "undocumented-unsafe",
        rationale: "every `unsafe` block/impl must carry an adjacent `// SAFETY:` comment stating the invariant that makes it sound",
        scope: Scope::All,
        skip_test_code: false,
        check: check_undocumented_unsafe,
    },
    LintSpec {
        name: "library-unwrap",
        rationale: "library code returns typed `PtError`s; `unwrap`/`panic!` turn recoverable conditions into aborts, and `expect` must state a provable invariant (`expect(\"invariant: …\")`)",
        scope: Scope::Only(TYPED_ERROR_CRATES),
        skip_test_code: true,
        check: check_library_unwrap,
    },
    LintSpec {
        name: "nondeterministic-iteration",
        rationale: "HashMap/HashSet iteration order varies run-to-run; numeric crates must use Vec/BTreeMap so every traversal is reproducible (keyed-lookup-only uses get a documented allow)",
        scope: Scope::Only(NUMERIC_CRATES),
        skip_test_code: true,
        check: check_nondeterministic_iteration,
    },
    LintSpec {
        name: "raw-thread-spawn",
        rationale: "compute threads must come from pt-par pools / pt-mpi rank teams, whose chunking keeps results bit-identical for any thread count; ad-hoc `std::thread::spawn` escapes that contract",
        scope: Scope::Except(&["par", "mpi"]),
        skip_test_code: true,
        check: check_raw_thread_spawn,
    },
    LintSpec {
        name: "wallclock-in-kernel",
        rationale: "`Instant::now`/`SystemTime` in kernel crates make results depend on wall-clock, breaking bit-exact kill-and-resume",
        scope: Scope::Only(KERNEL_CRATES),
        skip_test_code: true,
        check: check_wallclock_in_kernel,
    },
    LintSpec {
        name: "float-fold-order",
        rationale: "iterator `sum`/`fold` bakes an implicit reduction order into call sites; numeric crates must reduce through the canonical helpers (`pt_num::reduce`) or `pt_par::parallel_reduce` so the order is a named, pinned contract",
        scope: Scope::Only(NUMERIC_CRATES),
        skip_test_code: true,
        check: check_float_fold_order,
    },
];

/// Names of the driver-produced meta diagnostics (reported alongside the
/// registry lints, never suppressible).
pub const META_LINTS: &[&str] = &["invalid-pragma", "unused-pragma"];

fn is_ident(t: &Tok<'_>, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text && !t.raw
}

fn is_punct(t: Option<&Tok<'_>>, text: &str) -> bool {
    matches!(t, Some(t) if t.kind == TokKind::Punct && t.text == text)
}

/// `unsafe` (block, fn, impl, trait) without an *adjacent* `// SAFETY:`
/// comment: on the same line, or in the contiguous run of comment lines
/// directly above (a multi-line `// SAFETY: …` block counts as one unit).
fn check_undocumented_unsafe(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    // (start_line, end_line, mentions SAFETY) per comment token; block
    // comments span lines, line comments are one line each
    let spans: Vec<(u32, u32, bool)> = ctx
        .comments
        .iter()
        .map(|c| {
            let end = c.line + c.text.matches('\n').count() as u32;
            (c.line, end, c.text.contains("SAFETY:"))
        })
        .collect();
    let covering = |line: u32| spans.iter().find(|s| s.0 <= line && line <= s.1);
    for t in &ctx.code {
        if !is_ident(t, "unsafe") {
            continue;
        }
        let mut documented = spans.iter().any(|s| s.0 <= t.line && t.line <= s.1 && s.2);
        let mut l = t.line;
        // the comment block may sit above the *statement* rather than the
        // `unsafe` token itself (`let x =\n    unsafe { … }`): tolerate a
        // single interposed code line on the way up
        let mut gap = 1u32;
        while !documented && l > 1 {
            match covering(l - 1) {
                Some(&(start, _, safety)) => {
                    documented = safety;
                    l = start;
                }
                None if gap > 0 => {
                    gap -= 1;
                    l -= 1;
                }
                None => break,
            }
        }
        if !documented {
            emit(
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment (same line, or in the comment block directly above) stating the invariant that makes it sound".into(),
            );
        }
    }
}

/// `.unwrap()`, `.expect(<non-invariant>)`, and `panic!` in library code.
fn check_library_unwrap(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "unwrap")
            && i > 0
            && is_punct(code.get(i - 1), ".")
            && is_punct(code.get(i + 1), "(")
        {
            emit(
                t.line,
                "`unwrap()` in library code — propagate a typed `PtError`, or `expect(\"invariant: …\")` where the invariant is locally provable".into(),
            );
        }
        if is_ident(t, "expect")
            && i > 0
            && is_punct(code.get(i - 1), ".")
            && is_punct(code.get(i + 1), "(")
        {
            let ok = matches!(
                code.get(i + 2),
                Some(m) if m.kind == TokKind::StrLit && m.text.starts_with("\"invariant: ")
            );
            if !ok {
                emit(
                    t.line,
                    "`expect(…)` in library code must state a locally provable invariant: `expect(\"invariant: <why this cannot fail>\")`".into(),
                );
            }
        }
        if is_ident(t, "panic") && is_punct(code.get(i + 1), "!") {
            emit(
                t.line,
                "`panic!` in library code — return a typed `PtError` instead".into(),
            );
        }
    }
}

/// Any `HashMap`/`HashSet` mention in a numeric crate.
fn check_nondeterministic_iteration(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    for t in &ctx.code {
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            emit(
                t.line,
                format!(
                    "`{}` in a numeric crate: iteration order is nondeterministic — use `Vec`/`BTreeMap`, or allow with a reason proving the use is keyed-lookup-only",
                    t.text
                ),
            );
        }
    }
}

/// `thread::spawn` outside the two crates that own thread lifecycles.
fn check_raw_thread_spawn(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "spawn")
            && i >= 3
            && is_punct(code.get(i - 1), ":")
            && is_punct(code.get(i - 2), ":")
            && is_ident(&code[i - 3], "thread")
        {
            emit(
                t.line,
                "raw `std::thread::spawn` outside pt-par/pt-mpi — compute goes through `pt_par` primitives; an infrastructure (IO/supervision) thread needs a documented allow".into(),
            );
        }
    }
}

/// `Instant::now` / `SystemTime` in kernel crates.
fn check_wallclock_in_kernel(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if is_ident(t, "Instant")
            && is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && matches!(code.get(i + 3), Some(n) if is_ident(n, "now"))
        {
            emit(
                t.line,
                "`Instant::now()` in a kernel crate: results must not depend on wall-clock (bit-exact kill-and-resume)".into(),
            );
        }
        if is_ident(t, "SystemTime") {
            emit(
                t.line,
                "`SystemTime` in a kernel crate: results must not depend on wall-clock (bit-exact kill-and-resume)".into(),
            );
        }
    }
}

const FLOAT_TYPES: &[&str] = &["f32", "f64", "c64"];

/// `.fold(…)`, `.sum()`, `.sum::<f64>()` (and `product`) in numeric
/// crates. Integer-typed `sum::<usize>()` etc. is fine — the order
/// concern is floating-point non-associativity.
fn check_float_fold_order(ctx: &FileCtx<'_>, emit: &mut dyn FnMut(u32, String)) {
    let code = &ctx.code;
    for (i, t) in code.iter().enumerate() {
        if i == 0 || !is_punct(code.get(i - 1), ".") {
            continue;
        }
        if is_ident(t, "fold") && is_punct(code.get(i + 1), "(") {
            emit(
                t.line,
                "iterator `fold` in a numeric crate — reduce through `pt_num::reduce::{sum_f64, max_f64, min_f64}` (the canonical fixed order) or `pt_par::parallel_reduce`".into(),
            );
            continue;
        }
        if !(is_ident(t, "sum") || is_ident(t, "product")) {
            continue;
        }
        if is_punct(code.get(i + 1), "(") {
            emit(
                t.line,
                format!(
                    "untyped iterator `{}()` in a numeric crate — if the element type is floating-point the reduction order is implicit; use `pt_num::reduce` helpers (or annotate an integer type)",
                    t.text
                ),
            );
        } else if is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && is_punct(code.get(i + 3), "<")
        {
            let float = matches!(
                code.get(i + 4),
                Some(ty) if ty.kind == TokKind::Ident && FLOAT_TYPES.contains(&ty.text)
            );
            if float {
                emit(
                    t.line,
                    format!(
                        "iterator `{}::<{}>()` in a numeric crate — use `pt_num::reduce` helpers so the reduction order is a named, pinned contract",
                        t.text,
                        code[i + 4].text
                    ),
                );
            }
        }
    }
}
