//! Deterministic workspace file walker.

use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata, and
/// the analyzer's own seeded-violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", ".github"];

/// All `.rs` files under `root`, as workspace-relative `/`-separated
/// paths, sorted (so reports and exit codes are reproducible).
pub fn rust_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    descend(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            descend(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
