//! Human and JSON reporters.

use crate::lints::LINTS;
use crate::Report;
use std::fmt::Write as _;

/// Compiler-style text report: one `file:line: [lint] message` per
/// finding, then a summary line.
pub fn human(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    if report.clean() {
        let _ = writeln!(
            out,
            "pt-analyze: clean — {} files, {} lints, {} documented suppressions in use",
            report.files_scanned,
            LINTS.len(),
            report.suppressions_used
        );
    } else {
        let _ = writeln!(
            out,
            "pt-analyze: {} finding(s) in {} files scanned",
            report.findings.len(),
            report.files_scanned
        );
    }
    out
}

/// Machine-readable report for CI job summaries.
pub fn json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"file\": {}, \"line\": {}, \"lint\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(f.lint),
            json_str(&f.message)
        );
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(
        out,
        "],\n  \"total\": {},\n  \"files_scanned\": {},\n  \"suppressions_used\": {},\n  \"clean\": {}\n}}\n",
        report.findings.len(),
        report.files_scanned,
        report.suppressions_used,
        report.clean()
    );
    out
}

/// Minimal JSON string escaping (the only JSON we emit is this report;
/// pulling in pt-io would couple the linter to the tree it audits).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `--list-lints` output: every lint and the invariant it protects.
pub fn lint_list() -> String {
    let mut out = String::new();
    for l in LINTS {
        let _ = writeln!(out, "{:28} {}", l.name, l.rationale);
    }
    let _ = writeln!(
        out,
        "{:28} a `pt-analyze:` pragma is malformed or missing its mandatory reason",
        "invalid-pragma"
    );
    let _ = writeln!(
        out,
        "{:28} an `allow` pragma suppresses nothing — stale allows hide future violations",
        "unused-pragma"
    );
    out
}
