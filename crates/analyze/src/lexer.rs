//! A small hand-rolled Rust lexer — just enough syntax awareness for
//! source-level lints, with zero dependencies (the workspace builds
//! offline, so `syn`/`proc-macro2` are not an option).
//!
//! The hard parts a naive regex scan gets wrong, handled here:
//!
//! * **strings** — `"…"` with escapes, raw strings `r"…"`/`r#"…"#` with
//!   arbitrary hash depth, byte and raw-byte strings. Lint patterns such
//!   as `unwrap` or `HashMap` inside a string literal must never fire.
//! * **comments** — line comments and *nested* block comments (`/* /* */ */`
//!   is one comment in Rust).
//! * **`'a` vs `'a'`** — lifetimes and char literals share a sigil; a char
//!   literal can also hold `'` itself via an escape.
//! * **raw identifiers** — `r#match` is an identifier, while `r#"…"#` is a
//!   raw string; the lexer disambiguates on the character after the hashes.
//!
//! Everything else (numbers, punctuation) is tokenized loosely: lints only
//! match identifier/punctuation sequences, so a permissive number rule that
//! accepts `1e-12`, `0xFF`, and `25f64` without splitting them is enough.

/// What a token is, at the granularity lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, text kept verbatim
    /// with the `r#` prefix stripped so `r#unsafe` still matches `unsafe`
    /// *as text* — callers that must distinguish can check `raw`).
    Ident,
    /// A lifetime such as `'a` or `'static` (text includes the quote).
    Lifetime,
    /// Character or byte literal: `'x'`, `'\n'`, `b'\0'`.
    CharLit,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    StrLit,
    /// Numeric literal (integers, floats, suffixed, any radix).
    NumLit,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// `// …` (also doc `///` and `//!`), text without the newline.
    LineComment,
    /// `/* … */`, nesting handled; text includes the delimiters.
    BlockComment,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
    /// True for raw identifiers (`r#type`): `text` has the prefix stripped.
    pub raw: bool,
}

impl<'a> Tok<'a> {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }
}

/// Tokenize `src`, keeping comments in the stream (lints that look for
/// adjacent `// SAFETY:` comments or suppression pragmas need them).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        let mut toks = Vec::new();
        while let Some(t) = self.next_token() {
            toks.push(t);
        }
        toks
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek2(&self) -> Option<char> {
        self.rest().chars().nth(1)
    }

    fn peek3(&self) -> Option<char> {
        self.rest().chars().nth(2)
    }

    /// Advance one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Option<Tok<'a>> {
        self.eat_while(|c| c.is_whitespace());
        let start = self.pos;
        let line = self.line;
        let c = self.peek()?;
        let raw = false;
        let kind = match c {
            '/' if self.peek2() == Some('/') => {
                self.eat_while(|c| c != '\n');
                TokKind::LineComment
            }
            '/' if self.peek2() == Some('*') => {
                self.block_comment();
                TokKind::BlockComment
            }
            '"' => {
                self.string_lit();
                TokKind::StrLit
            }
            '\'' => self.quote(),
            'r' | 'b' if self.literal_prefix().is_some() => {
                let k = self.literal_prefix().expect("checked by guard");
                match k {
                    Prefix::RawStr(hashes) => {
                        self.raw_string(hashes);
                        TokKind::StrLit
                    }
                    Prefix::Str => {
                        self.bump(); // `b`
                        self.string_lit();
                        TokKind::StrLit
                    }
                    Prefix::Char => {
                        self.bump(); // `b`
                        self.char_lit();
                        TokKind::CharLit
                    }
                    Prefix::RawIdent => {
                        self.bump(); // `r`
                        self.bump(); // `#`
                        let s = self.pos;
                        self.ident();
                        // report text without the `r#` so keyword lints
                        // can still see e.g. `r#unsafe` — `raw` marks it
                        return Some(Tok {
                            kind: TokKind::Ident,
                            text: &self.src[s..self.pos],
                            line,
                            raw: true,
                        });
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                self.ident();
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                self.number();
                TokKind::NumLit
            }
            _ => {
                self.bump();
                TokKind::Punct
            }
        };
        Some(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
            raw,
        })
    }

    /// Classify what follows an `r`/`b` at the cursor, if it is a literal
    /// prefix rather than a plain identifier starting with that letter.
    fn literal_prefix(&self) -> Option<Prefix> {
        let rest = self.rest();
        if let Some(after) = rest.strip_prefix("r#") {
            // r#"…"# raw string vs r#ident raw identifier vs r##…
            if after.starts_with('"') || after.starts_with('#') {
                let hashes = rest[1..].bytes().take_while(|&b| b == b'#').count();
                if rest[1 + hashes..].starts_with('"') {
                    return Some(Prefix::RawStr(hashes));
                }
                return None;
            }
            return Some(Prefix::RawIdent);
        }
        if rest.starts_with("r\"") {
            return Some(Prefix::RawStr(0));
        }
        if let Some(after) = rest.strip_prefix("br") {
            let hashes = after.bytes().take_while(|&b| b == b'#').count();
            if after[hashes..].starts_with('"') {
                // consume the `b`; raw_string re-parses from the `r`
                return Some(Prefix::RawStr(hashes));
            }
            return None;
        }
        if rest.starts_with("b\"") {
            return Some(Prefix::Str);
        }
        if rest.starts_with("b'") {
            return Some(Prefix::Char);
        }
        None
    }

    fn ident(&mut self) {
        self.eat_while(|c| c.is_alphanumeric() || c == '_');
    }

    /// Permissive number: digits/letters/underscore, a fraction part when a
    /// digit follows the dot (so `0..n` stays a range), exponent signs when
    /// they follow `e`/`E` inside the literal (`1e-12`).
    fn number(&mut self) {
        loop {
            self.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
            if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                continue;
            }
            let last = self.src[..self.pos].chars().next_back();
            if matches!(last, Some('e' | 'E'))
                && matches!(self.peek(), Some('+' | '-'))
                && self.peek2().is_some_and(|c| c.is_ascii_digit())
            {
                self.bump();
                continue;
            }
            break;
        }
    }

    /// At a `'`: char literal or lifetime?  `'\…'` and `'x'` are chars;
    /// anything else (`'a`, `'static`, `'_`, loop labels) is a lifetime.
    fn quote(&mut self) -> TokKind {
        if self.peek2() == Some('\\') || (self.peek2().is_some() && self.peek3() == Some('\'')) {
            self.char_lit();
            TokKind::CharLit
        } else {
            self.bump(); // '
            self.eat_while(|c| c.is_alphanumeric() || c == '_');
            TokKind::Lifetime
        }
    }

    /// Consume a char literal starting at `'`.
    fn char_lit(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    /// Consume a string literal starting at `"`.
    fn string_lit(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consume a raw string starting at the `r` (or the `r` of `br`),
    /// terminated by `"` followed by `hashes` hash characters.
    fn raw_string(&mut self, hashes: usize) {
        // skip prefix: [b] r #* "
        while let Some(c) = self.peek() {
            self.bump();
            if c == '"' {
                break;
            }
        }
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut seen = 0;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consume a (nested) block comment starting at `/*`.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break,
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
    }
}

enum Prefix {
    RawStr(usize),
    RawIdent,
    Str,
    Char,
}
