//! Per-file analysis context: code tokens vs comments, `#[cfg(test)]` /
//! `#[test]` region detection, and `pt-analyze: allow(...)` pragmas.

use crate::lexer::{Tok, TokKind};
use crate::lints::LINTS;
use std::collections::BTreeMap;
use std::ops::RangeInclusive;

/// A suppression pragma parsed from a line comment:
///
/// ```text
/// // pt-analyze: allow(library-unwrap) — poisoned lock is unrecoverable here
/// ```
///
/// A pragma on its own line suppresses findings on the **next** line; a
/// trailing pragma (after code) suppresses findings on its **own** line.
/// The reason after the dash is mandatory — a pragma without one does not
/// suppress anything and is itself reported (`invalid-pragma`), so every
/// suppression in the tree carries a written justification.
#[derive(Debug)]
pub struct Pragma {
    /// Lint names listed in `allow(...)`.
    pub lints: Vec<String>,
    /// Line whose findings this pragma suppresses.
    pub applies_to: u32,
    /// Line the comment itself is on (for reporting).
    pub at: u32,
    /// Justification text after the dash.
    pub reason: String,
    /// Set when a finding was actually suppressed (drives `unused-pragma`).
    pub used: std::cell::Cell<bool>,
}

/// Everything the lint passes need about one source file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// Crate key: `core`, `shims/rayon`, `pwdft-rt` for the root crate.
    pub crate_key: String,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok<'a>>,
    /// Comment tokens, in order.
    pub comments: Vec<Tok<'a>>,
    /// True when the whole file is test/bench/example code by path.
    pub test_file: bool,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<RangeInclusive<u32>>,
    /// Valid pragmas, and parse errors for malformed ones.
    pub pragmas: Vec<Pragma>,
    pub pragma_errors: Vec<(u32, String)>,
}

impl<'a> FileCtx<'a> {
    pub fn new(path: &'a str, toks: Vec<Tok<'a>>) -> Self {
        let (code, comments): (Vec<_>, Vec<_>) = toks
            .into_iter()
            .partition(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment));
        let test_regions = find_test_regions(&code);
        let (pragmas, pragma_errors) = parse_pragmas(&code, &comments);
        FileCtx {
            path,
            crate_key: crate_key(path),
            code,
            comments,
            test_file: is_test_path(path),
            test_regions,
            pragmas,
            pragma_errors,
        }
    }

    /// Is `line` inside test-only code (whole-file or `#[cfg(test)]` item)?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_file || self.test_regions.iter().any(|r| r.contains(&line))
    }

    /// Does a valid pragma for `lint` cover `line`? Marks it used.
    pub fn suppressed(&self, lint: &str, line: u32) -> bool {
        let mut hit = false;
        for p in &self.pragmas {
            if p.applies_to == line && p.lints.iter().any(|l| l == lint) {
                p.used.set(true);
                hit = true;
            }
        }
        hit
    }
}

/// Crate key of a workspace-relative path: directory under `crates/`
/// (with one extra level for `crates/shims/*`), or `pwdft-rt` for the
/// root crate's own `src`/`tests`/`examples`.
pub fn crate_key(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.as_slice() {
        ["crates", "shims", shim, ..] => format!("shims/{shim}"),
        ["crates", name, ..] => (*name).to_string(),
        _ => "pwdft-rt".to_string(),
    }
}

/// Test/bench/example classification by path: integration-test trees,
/// benches, examples, and the conventional `src/tests.rs` unit-test module
/// file are all non-shipping code.
pub fn is_test_path(path: &str) -> bool {
    let parts: Vec<&str> = path.split('/').collect();
    parts.iter().any(|p| {
        matches!(*p, "tests" | "benches" | "examples")
            || p.ends_with("tests.rs")
            || *p == "build.rs"
    })
}

/// Line ranges of items annotated `#[test]` or `#[cfg(test)]` (any
/// attribute whose token stream mentions `test`, which also catches
/// `#[cfg(all(test, …))]`). The range runs from the attribute to the
/// closing brace of the item body; out-of-line `mod tests;` items get
/// no region (the referenced file is classified by path instead).
fn find_test_regions(code: &[Tok<'_>]) -> Vec<RangeInclusive<u32>> {
    let mut regions: Vec<RangeInclusive<u32>> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is(TokKind::Punct, "#")
            && matches!(code.get(i + 1), Some(t) if t.is(TokKind::Punct, "[")))
        {
            i += 1;
            continue;
        }
        let attr_line = code[i].line;
        // scan the attribute body for `test`, tracking bracket depth
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut mentions_test = false;
        while j < code.len() && depth > 0 {
            let t = &code[j];
            match (t.kind, t.text) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => depth -= 1,
                (TokKind::Ident, "test") => mentions_test = true,
                _ => {}
            }
            j += 1;
        }
        if !mentions_test {
            i = j;
            continue;
        }
        // find the item body: first `{` before any item-ending `;`
        // (skipping over further attributes)
        let mut k = j;
        let mut body_open = None;
        while k < code.len() {
            let t = &code[k];
            if t.is(TokKind::Punct, "{") {
                body_open = Some(k);
                break;
            }
            if t.is(TokKind::Punct, ";") {
                break; // out-of-line item: no inline body
            }
            k += 1;
        }
        let Some(open) = body_open else {
            i = k + 1;
            continue;
        };
        let mut brace = 0usize;
        let mut end_line = code[open].line;
        let mut m = open;
        while m < code.len() {
            match (code[m].kind, code[m].text) {
                (TokKind::Punct, "{") => brace += 1,
                (TokKind::Punct, "}") => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = code[m].line;
                        break;
                    }
                }
                _ => {}
            }
            m += 1;
        }
        regions.push(attr_line..=end_line);
        i = m + 1;
    }
    regions
}

/// Parse `pt-analyze:` pragmas out of the comment stream. Returns valid
/// pragmas plus (line, message) parse errors for malformed ones.
fn parse_pragmas(code: &[Tok<'_>], comments: &[Tok<'_>]) -> (Vec<Pragma>, Vec<(u32, String)>) {
    let mut code_lines: BTreeMap<u32, bool> = BTreeMap::new();
    for t in code {
        code_lines.insert(t.line, true);
    }
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Pragmas are plain `//` comments whose text *starts* with the
        // marker. Doc comments (`///`, `//!`) are prose — an example
        // pragma quoted in documentation must not suppress anything —
        // and a mid-sentence mention is not a pragma either.
        if c.kind != TokKind::LineComment || c.text.starts_with("///") || c.text.starts_with("//!")
        {
            continue;
        }
        let Some(body) = c
            .text
            .trim_start_matches('/')
            .trim_start()
            .strip_prefix("pt-analyze:")
        else {
            continue;
        };
        let body = body.trim_start();
        let Some(rest) = body.strip_prefix("allow(") else {
            errors.push((
                c.line,
                "expected `allow(<lint>, …)` after `pt-analyze:`".into(),
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push((c.line, "unclosed `allow(` in pragma".into()));
            continue;
        };
        let names: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            errors.push((c.line, "empty `allow()` list".into()));
            continue;
        }
        let mut bad = false;
        for n in &names {
            if !LINTS.iter().any(|l| l.name == *n) {
                errors.push((c.line, format!("unknown lint `{n}` in pragma")));
                bad = true;
            }
        }
        if bad {
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':', ' '])
            .trim()
            .to_string();
        if reason.is_empty() {
            errors.push((
                c.line,
                "pragma has no reason — write `allow(<lint>) — <why this is sound>`".into(),
            ));
            continue;
        }
        // trailing comment (code earlier on the same line) applies to its
        // own line; a comment alone on its line applies to the next line
        let trailing = code_lines.contains_key(&c.line);
        pragmas.push(Pragma {
            lints: names,
            applies_to: if trailing { c.line } else { c.line + 1 },
            at: c.line,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    (pragmas, errors)
}
