//! Complex scalar types.
//!
//! [`c64`] is a plain `#[repr(C)]` pair of `f64` with the arithmetic the
//! plane-wave stack needs. We deliberately implement it ourselves rather
//! than pulling `num-complex`: the operation set is small, we control
//! inlining, and the layout guarantee lets the FFT and the virtual-MPI wire
//! format reinterpret buffers safely.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Double-precision complex number (the workhorse scalar).
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Single-precision complex number, used only as a communication wire
/// format (paper §3.2: single-precision MPI halves the broadcast volume of
/// the Fock exchange wavefunctions).
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct c32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl c64 {
    /// Zero.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Build from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Purely real value.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// `exp(i theta)` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        c64 { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64::cis(self.im).scale(r)
    }

    /// `self * i` without a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        c64 {
            re: -self.im,
            im: self.re,
        }
    }

    /// `self * (-i)` without a full complex multiply.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        c64 {
            re: self.im,
            im: -self.re,
        }
    }

    /// Fused multiply-add: `self + a * b`.
    #[inline(always)]
    pub fn mul_add(self, a: c64, b: c64) -> Self {
        c64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Round-trip to single precision (the MPI wire conversion of §3.2).
    #[inline(always)]
    pub fn to_c32(self) -> c32 {
        c32 {
            re: self.re as f32,
            im: self.im as f32,
        }
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return c64::ZERO;
        }
        let theta = self.arg() * 0.5;
        c64::cis(theta).scale(r.sqrt())
    }
}

impl c32 {
    /// Zero.
    pub const ZERO: c32 = c32 { re: 0.0, im: 0.0 };

    /// Build from parts.
    #[inline(always)]
    pub const fn new(re: f32, im: f32) -> Self {
        c32 { re, im }
    }

    /// Widen back to double precision.
    #[inline(always)]
    pub fn to_c64(self) -> c64 {
        c64 {
            re: self.re as f64,
            im: self.im as f64,
        }
    }
}

impl fmt::Debug for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for c32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.re, self.im)
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline(always)]
    fn add(self, o: c64) -> c64 {
        c64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for c64 {
    type Output = c64;
    #[inline(always)]
    fn sub(self, o: c64) -> c64 {
        c64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, o: c64) -> c64 {
        c64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Div for c64 {
    type Output = c64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w computed as z * w^{-1}
    fn div(self, o: c64) -> c64 {
        self * o.inv()
    }
}

impl Neg for c64 {
    type Output = c64;
    #[inline(always)]
    fn neg(self) -> c64 {
        c64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, s: f64) -> c64 {
        self.scale(s)
    }
}

impl Mul<c64> for f64 {
    type Output = c64;
    #[inline(always)]
    fn mul(self, z: c64) -> c64 {
        z.scale(self)
    }
}

impl Div<f64> for c64 {
    type Output = c64;
    #[inline(always)]
    fn div(self, s: f64) -> c64 {
        c64 {
            re: self.re / s,
            im: self.im / s,
        }
    }
}

impl AddAssign for c64 {
    #[inline(always)]
    fn add_assign(&mut self, o: c64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for c64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: c64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for c64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: c64) {
        *self = *self * o;
    }
}

impl MulAssign<f64> for c64 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        self.re *= s;
        self.im *= s;
    }
}

impl DivAssign<f64> for c64 {
    #[inline(always)]
    fn div_assign(&mut self, s: f64) {
        self.re /= s;
        self.im /= s;
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        crate::reduce::sum_c64(iter)
    }
}

impl From<f64> for c64 {
    #[inline(always)]
    fn from(re: f64) -> c64 {
        c64::real(re)
    }
}

/// Conjugated dot product `sum_k conj(a_k) b_k` of two equal-length slices.
#[inline]
pub fn zdotc(a: &[c64], b: &[c64]) -> c64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = c64::ZERO;
    for (x, y) in a.iter().zip(b) {
        acc = acc.mul_add(x.conj(), *y);
    }
    acc
}

/// `y += alpha * x` over slices.
#[inline]
pub fn zaxpy(alpha: c64, x: &[c64], y: &mut [c64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.mul_add(alpha, *xi);
    }
}

/// Euclidean norm of a complex slice.
#[inline]
pub fn znrm2(a: &[c64]) -> f64 {
    crate::reduce::sum_f64(a.iter().map(|z| z.norm_sqr())).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_basics() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(-3.0, 0.5);
        assert_eq!(a + b, c64::new(-2.0, 2.5));
        assert_eq!(a - b, c64::new(4.0, 1.5));
        assert_eq!(
            a * b,
            c64::new(1.0 * -3.0 - 2.0 * 0.5, 1.0 * 0.5 + 2.0 * -3.0)
        );
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re, 1e-14) && close(back.im, a.im, 1e-14));
    }

    #[test]
    fn conj_and_norm() {
        let a = c64::new(3.0, -4.0);
        assert_eq!(a.conj(), c64::new(3.0, 4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close((a * a.conj()).re, 25.0, 1e-14));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let t = k as f64 * 0.7;
            let z = c64::cis(t);
            assert!(close(z.norm_sqr(), 1.0, 1e-14));
            assert!(close(z.arg(), t.sin().atan2(t.cos()), 1e-12));
        }
    }

    #[test]
    fn mul_i_shortcuts() {
        let a = c64::new(1.5, -0.25);
        assert_eq!(a.mul_i(), a * c64::I);
        assert_eq!(a.mul_neg_i(), a * -c64::I);
    }

    #[test]
    fn exp_matches_euler() {
        let z = c64::new(0.3, 1.2);
        let e = z.exp();
        let expect = c64::cis(1.2).scale(0.3f64.exp());
        assert!(close(e.re, expect.re, 1e-14));
        assert!(close(e.im, expect.im, 1e-14));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-1.0, 0.0), (3.0, -4.0), (0.0, 2.0)] {
            let z = c64::new(re, im);
            let s = z.sqrt();
            let b = s * s;
            assert!(close(b.re, re, 1e-12) && close(b.im, im, 1e-12));
        }
    }

    #[test]
    fn single_precision_roundtrip_loses_little() {
        let z = c64::new(0.123456789012345, -9.87654321e-3);
        let w = z.to_c32().to_c64();
        assert!((z - w).abs() < 1e-7 * z.abs().max(1.0));
    }

    #[test]
    fn blas1_helpers() {
        let x = vec![c64::new(1.0, 1.0), c64::new(2.0, 0.0)];
        let mut y = vec![c64::new(0.0, 1.0), c64::new(1.0, -1.0)];
        let d = zdotc(&x, &y);
        // conj(1+i)(i) + conj(2)(1-i) = (1-i)(i) + 2 - 2i = i + 1 + 2 - 2i = 3 - i
        assert_eq!(d, c64::new(3.0, -1.0));
        zaxpy(c64::new(0.0, 1.0), &x, &mut y);
        assert_eq!(y[0], c64::new(-1.0, 2.0));
        assert!(close(znrm2(&x), (1.0f64 + 1.0 + 4.0).sqrt(), 1e-14));
    }
}
