//! Physical constants and unit conversions.
//!
//! The whole stack works in Hartree atomic units (ħ = m_e = e = 4πε₀ = 1):
//! energies in Hartree, lengths in bohr, time in ħ/Hₐ. The paper quotes time
//! steps in attoseconds (50 as for PT-CN, 0.5 as for RK4) and the silicon
//! lattice constant in Å; these constants do the translation.

/// Bohr radii per Ångström.
pub const BOHR_PER_ANGSTROM: f64 = 1.889_726_124_626_18;

/// Electron-volts per Hartree.
pub const EV_PER_HARTREE: f64 = 27.211_386_245_988;

/// Attoseconds per atomic unit of time (ħ / Hₐ).
pub const AS_PER_AU_TIME: f64 = 24.188_843_265_857;

/// Femtoseconds per atomic unit of time.
pub const FS_PER_AU_TIME: f64 = AS_PER_AU_TIME * 1e-3;

/// Speed of light in atomic units (1/α).
pub const C_AU: f64 = 137.035_999_084;

/// Silicon conventional (simple-cubic, 8-atom) lattice constant used in the
/// paper's test systems: 5.43 Å.
pub const SI_LATTICE_ANGSTROM: f64 = 5.43;

/// Same, in bohr.
pub const SI_LATTICE_BOHR: f64 = SI_LATTICE_ANGSTROM * BOHR_PER_ANGSTROM;

/// Convert a laser wavelength in nm to the photon energy in Hartree.
/// The paper's pulse is 380 nm → ħω ≈ 3.26 eV ≈ 0.12 Ha.
pub fn wavelength_nm_to_hartree(lambda_nm: f64) -> f64 {
    // E = h c / λ ; with hc = 1239.841984 eV·nm
    const HC_EV_NM: f64 = 1_239.841_984_332_002_6;
    (HC_EV_NM / lambda_nm) / EV_PER_HARTREE
}

/// Convert attoseconds to atomic units of time.
pub fn attosecond_to_au(t_as: f64) -> f64 {
    t_as / AS_PER_AU_TIME
}

/// Convert atomic units of time to attoseconds.
pub fn au_to_attosecond(t_au: f64) -> f64 {
    t_au * AS_PER_AU_TIME
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_lattice_in_bohr() {
        assert!((SI_LATTICE_BOHR - 10.261_212_856_72).abs() < 1e-6);
    }

    #[test]
    fn paper_laser_photon_energy() {
        // 380 nm should be ~3.263 eV = 0.1199 Ha
        let e = wavelength_nm_to_hartree(380.0);
        assert!((e * EV_PER_HARTREE - 3.2627).abs() < 1e-3, "{e}");
    }

    #[test]
    fn paper_time_steps_in_au() {
        // PT-CN: 50 as ≈ 2.067 a.u.; RK4: 0.5 as ≈ 0.0207 a.u.
        assert!((attosecond_to_au(50.0) - 2.0671).abs() < 1e-3);
        assert!((attosecond_to_au(0.5) - 0.020671).abs() < 1e-5);
        let t = 123.4;
        assert!((au_to_attosecond(attosecond_to_au(t)) - t).abs() < 1e-12);
    }
}
