//! A tiny deterministic xorshift64 generator.
//!
//! Several places in the stack need reproducible noise with no external
//! dependency — degeneracy-breaking in the SCF starting orbitals, random
//! orthonormal blocks in tests and benches. They all share this one
//! implementation (the classic Marsaglia 13/7/17 shift triple) instead of
//! hand-rolled copies.

/// Deterministic xorshift64 pseudo-random generator.
#[derive(Clone, Copy, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is mapped to 1 (xorshift's all-zero
    /// state is a fixed point).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// Next sample, uniform in `[-0.5, 0.5)` with 53-bit resolution.
    pub fn next_centered(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_handrolled_sequence() {
        // the exact loop this helper replaced (scf initial orbitals,
        // observables tests) — streams must be identical
        let mut seed = 0x5EED_5EEDu64;
        let mut reference = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut rng = XorShift64::new(0x5EED_5EED);
        for _ in 0..100 {
            assert_eq!(rng.next_centered(), reference());
        }
    }

    #[test]
    fn samples_are_centered_and_bounded() {
        let mut rng = XorShift64::new(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.next_centered();
            assert!((-0.5..0.5).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0).abs() < 0.02, "mean {}", sum / 10_000.0);
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = XorShift64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
