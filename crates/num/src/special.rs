//! Special functions used by the pseudopotential and screened-exchange
//! machinery.
//!
//! * [`erf`]/[`erfc`] — near machine precision via a power series for small
//!   arguments and a Lentz continued fraction for large ones. Needed for the
//!   GTH local pseudopotential (`erf(r / (sqrt(2) r_loc)) / r`) and the Ewald
//!   sum; the *reciprocal-space* screened-exchange kernel of HSE only needs
//!   `exp`, but validation tests compare against the real-space `erfc`
//!   kernel, which needs these.
//! * [`gamma_half_int`] — Γ(n/2) for small positive n, used by the GTH
//!   projector normalization Γ(l + (4i-1)/2).

/// Error function, |error| ≲ 1e-15 over the real line.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x < 3.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function `1 - erf(x)`, accurate also for large `x`
/// where `erf(x) -> 1` would lose all precision.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 3.0 {
        1.0 - erf_series(x)
    } else {
        erfc_cf(x)
    }
}

/// Maclaurin series erf(x) = 2/sqrt(pi) * sum_k (-1)^k x^{2k+1} / (k! (2k+1)).
/// Converges quickly for |x| < 3 (worst case ~60 terms).
fn erf_series(x: f64) -> f64 {
    const TWO_OVER_SQRT_PI: f64 = std::f64::consts::FRAC_2_SQRT_PI;
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut k = 1u32;
    loop {
        // term_k = term_{k-1} * (-x^2) / k ; contribution term_k / (2k+1)
        term *= -x2 / k as f64;
        let contrib = term / (2 * k + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) || k > 200 {
            break;
        }
        k += 1;
    }
    TWO_OVER_SQRT_PI * sum
}

/// Continued fraction for erfc, valid for x ≳ 2.5:
/// erfc(x) = exp(-x²)/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))
/// with partial numerators a_n = n/2, evaluated bottom-up at fixed depth
/// (80 levels is far past convergence for x ≥ 2.5).
fn erfc_cf(x: f64) -> f64 {
    const SQRT_PI: f64 = 1.772_453_850_905_516;
    let mut f = 0.0_f64;
    for n in (1..=80u32).rev() {
        f = (n as f64 / 2.0) / (x + f);
    }
    (-x * x).exp() / (SQRT_PI * (x + f))
}

/// Γ(n/2) for positive integer n (n up to ~30 is all the GTH projectors
/// need: Γ(l + (4i-1)/2) with l ≤ 2, i ≤ 3).
pub fn gamma_half_int(n: u32) -> f64 {
    const SQRT_PI: f64 = 1.772_453_850_905_516;
    assert!(n >= 1, "gamma_half_int needs n >= 1");
    match n {
        1 => SQRT_PI, // Γ(1/2)
        2 => 1.0,     // Γ(1)
        _ => (n as f64 / 2.0 - 1.0) * gamma_half_int(n - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun / mpmath.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference() {
        for &(x, v) in ERF_TABLE {
            assert!((erf(x) - v).abs() < 1e-13, "erf({x}) = {} want {v}", erf(x));
        }
    }

    #[test]
    fn erfc_matches_reference_large_x() {
        // erfc values where 1-erf would underflow relative accuracy
        let cases = [
            (3.0, 2.209_049_699_858_544e-5),
            (4.0, 1.541725790028002e-8),
            (5.0, 1.5374597944280351e-12),
            (6.0, 2.1519736712498913e-17),
        ];
        for (x, v) in cases {
            let rel = (erfc(x) - v).abs() / v;
            assert!(rel < 1e-10, "erfc({x}) rel err {rel}");
        }
    }

    #[test]
    fn erf_is_odd_and_erfc_complements() {
        for k in -8..=8 {
            let x = k as f64 * 0.37;
            assert!((erf(x) + erf(-x)).abs() < 1e-15);
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn gamma_half_values() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma_half_int(1) - sqrt_pi).abs() < 1e-15); // Γ(1/2)
        assert!((gamma_half_int(2) - 1.0).abs() < 1e-15); // Γ(1)
        assert!((gamma_half_int(3) - 0.5 * sqrt_pi).abs() < 1e-15); // Γ(3/2)
        assert!((gamma_half_int(4) - 1.0).abs() < 1e-15); // Γ(2)
        assert!((gamma_half_int(5) - 0.75 * sqrt_pi).abs() < 1e-15); // Γ(5/2)
        assert!((gamma_half_int(7) - 15.0 / 8.0 * sqrt_pi).abs() < 1e-14); // Γ(7/2)
        assert!((gamma_half_int(9) - 105.0 / 16.0 * sqrt_pi).abs() < 1e-13); // Γ(9/2)
    }
}
