//! Canonical fixed-order floating-point reductions.
//!
//! Floating-point addition is not associative, so *the order of a
//! reduction is part of its result*. This workspace's determinism
//! contract (bit-identical results for any ranks×threads layout, and
//! across kill-and-resume) therefore requires every float reduction to
//! have a **named, pinned order**. These helpers are that name for the
//! serial case: a left-linear fold in iteration order, the reference
//! order every parallel/distributed reduction (`pt_par::parallel_reduce`,
//! `Comm::tree_reduce_chunks_c64`) is tested to reproduce or document
//! deviations from.
//!
//! `pt-analyze`'s `float-fold-order` lint rejects raw iterator
//! `sum`/`fold` in numeric crates; call sites route through here (or
//! through `pt_par::parallel_reduce`) instead, so a future "optimize the
//! loop" edit cannot silently reorder a reduction.

use crate::complex::c64;

/// Left-linear sum in iteration order: `((0 + x₀) + x₁) + …`.
///
/// Bit-identical to `Iterator::sum::<f64>()` — the point is the explicit
/// name, not a different algorithm.
#[inline]
pub fn sum_f64(it: impl IntoIterator<Item = f64>) -> f64 {
    // pt-analyze: allow(float-fold-order) — this IS the canonical left-linear reference fold the lint points call sites at
    it.into_iter().fold(0.0, |a, b| a + b)
}

/// Left-linear complex sum in iteration order (the `Sum for c64` impl
/// delegates here).
#[inline]
pub fn sum_c64(it: impl IntoIterator<Item = c64>) -> c64 {
    // pt-analyze: allow(float-fold-order) — this IS the canonical left-linear reference fold the lint points call sites at
    it.into_iter().fold(c64::ZERO, |a, b| a + b)
}

/// Max over the iterator, seeded at `0.0` — callers take the max of
/// nonnegative magnitudes (residuals, |Δ|, norms), where the seed is the
/// identity. `f64::max` ignores NaN in either slot when the other is a
/// number, exactly like the raw `fold(0.0, f64::max)` it replaces.
#[inline]
pub fn max_f64(it: impl IntoIterator<Item = f64>) -> f64 {
    // pt-analyze: allow(float-fold-order) — canonical fixed-order max; f64::max is order-insensitive except for NaN, pinned here
    it.into_iter().fold(0.0, f64::max)
}

/// Min over the iterator, seeded at `+∞`.
#[inline]
pub fn min_f64(it: impl IntoIterator<Item = f64>) -> f64 {
    // pt-analyze: allow(float-fold-order) — canonical fixed-order min; f64::min is order-insensitive except for NaN, pinned here
    it.into_iter().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_iterator_sum_bitwise() {
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (1.0 + i as f64).sqrt()).collect();
        let theirs: f64 = xs.iter().copied().sum();
        assert_eq!(sum_f64(xs.iter().copied()).to_bits(), theirs.to_bits());
    }

    #[test]
    fn sum_c64_matches_fold() {
        let xs: Vec<c64> = (0..100)
            .map(|i| c64::new(i as f64, -0.5 * i as f64))
            .collect();
        let s = sum_c64(xs.iter().copied());
        let mut acc = c64::ZERO;
        for x in &xs {
            acc += *x;
        }
        assert_eq!(s.re.to_bits(), acc.re.to_bits());
        assert_eq!(s.im.to_bits(), acc.im.to_bits());
    }

    #[test]
    fn extrema_seeds() {
        assert_eq!(max_f64([]), 0.0);
        assert_eq!(min_f64([]), f64::INFINITY);
        assert_eq!(max_f64([0.5, 2.0, 1.0]), 2.0);
        assert_eq!(min_f64([0.5, 2.0, 1.0]), 0.5);
    }
}
