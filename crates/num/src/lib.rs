//! `pt-num` — numeric foundations for the pwdft-rt workspace.
//!
//! Provides the double-precision complex scalar [`c64`] used throughout the
//! plane-wave stack, a single-precision twin [`c32`] used for the
//! "single-precision MPI" wire format of the paper (§3.2, optimization 4),
//! special functions needed by the pseudopotential and screened-exchange
//! kernels, and physical constants / unit conversions (Hartree atomic
//! units).
//!
//! Everything downstream (FFT, linear algebra, Hamiltonian) is written
//! against these types, so this crate is dependency-free.

pub mod complex;
pub mod reduce;
pub mod rng;
pub mod special;
pub mod units;

pub use complex::{c32, c64};
pub use special::{erf, erfc, gamma_half_int};
