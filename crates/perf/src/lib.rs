//! `pt-perf` — the performance model that regenerates the paper's
//! evaluation (Tables 1–2, Figures 3, 6, 7, 8, 9, 10).
//!
//! Structure: every per-SCF component of the PT-CN step (Table 1's rows)
//! is modelled as `t(P, problem) = A · f(problem) · (P/36)^γ`, where
//!
//! * `f(problem)` is the *physical* size scaling (e.g. the Fock exchange
//!   computation does N_e²/P Poisson solves of N_G log N_G work; the
//!   broadcast moves N_e·N_G·4 bytes per rank in f32),
//! * `A` and `γ` are anchored to the paper's measured Table 1 values at
//!   P = 36 and P = 3072 for the 1536-atom system.
//!
//! The physical primitives in `pt-summit` (HBM-bandwidth-bound FFTs,
//! NIC-limited broadcast, NVLink copies) independently sanity-check the
//! anchors — e.g. the broadcast anchor corresponds to the 2.2 GB/s per-rank
//! receive bandwidth the paper measures in §7 — and drive the optimization-
//! stage ablation of Fig. 3 and the RK4 model of Fig. 6. This gives a
//! transparent, testable model that reproduces shapes (who wins, by what
//! factor, where scaling stalls) rather than pretending to re-measure
//! Summit.

mod artifacts;
mod model;
mod reference;

pub use artifacts::{
    fig10_rows, fig3_stages, fig6_rows, fig7_rows, fig8_rows, fig9_rows, table1, table2, Fig3Stage,
    Fig6Row, Fig8Row, Table1Row, Table2Row,
};
pub use model::{CostModel, Problem, COMPONENT_NAMES};
pub use reference::{
    PAPER_COMPONENT_ANCHORS, PAPER_CPU_STEP_SECONDS, PAPER_FOCK_APPS_PER_STEP, PAPER_GPU_COUNTS,
    PAPER_SCF_PER_STEP, PAPER_TABLE1_PER_SCF_TOTAL, PAPER_TABLE1_SPEEDUP, PAPER_TABLE1_TOTAL,
    PAPER_TABLE2_ANCHORS, PAPER_TABLE2_BCAST,
};
