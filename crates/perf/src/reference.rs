//! The paper's published measurements, kept verbatim as calibration
//! anchors and test oracles.

/// GPU counts of Table 1 / Table 2.
pub const PAPER_GPU_COUNTS: [usize; 8] = [36, 72, 144, 288, 384, 768, 1536, 3072];

/// Table 1 "per SCF time" row (seconds).
pub const PAPER_TABLE1_PER_SCF_TOTAL: [f64; 8] = [101.36, 52.4, 32.5, 16.4, 13.4, 10.9, 10.9, 12.1];

/// Table 1 "Total time" row (seconds per 50 as PT-CN step).
pub const PAPER_TABLE1_TOTAL: [f64; 8] = [2453.8, 1269.1, 783.0, 393.9, 323.2, 260.9, 262.5, 286.6];

/// Table 1 total speedups over the 3072-core CPU run (8874 s).
pub const PAPER_TABLE1_SPEEDUP: [f64; 8] = [3.6, 7.0, 11.3, 22.5, 27.4, 34.0, 33.8, 30.9];

/// Per-SCF component anchors from Table 1 at P = 36 and P = 3072
/// (seconds): (name, t36, t3072).
pub const PAPER_COMPONENT_ANCHORS: [(&str, f64, f64); 11] = [
    ("fock_mpi", 0.71, 8.074),
    ("fock_comp", 90.99, 1.43),
    ("local_semilocal", 0.337, 0.00404),
    ("residual_alltoallv", 0.884, 0.056),
    ("residual_allreduce", 0.354, 0.5243),
    ("residual_comp", 1.43, 0.023),
    ("anderson_memcpy", 1.64235, 0.0202),
    ("anderson_comp", 2.3, 0.04),
    ("density_comp", 0.1349, 0.0016),
    ("density_allreduce", 0.123, 0.171),
    ("others", 2.66, 1.85),
];

/// Table 2 anchors (per 50 as step, seconds): (class, t36, t3072).
pub const PAPER_TABLE2_ANCHORS: [(&str, f64, f64); 6] = [
    ("memcpy", 60.80, 2.24),
    ("alltoallv", 20.97, 0.68),
    ("allreduce", 11.50, 16.62),
    ("bcast", 18.78, 193.89),
    ("allgatherv", 0.44, 1.24),
    ("computation", 2341.40, 71.96),
];

/// Table 2 MPI_Bcast row for all GPU counts (test oracle for the
/// contention model).
pub const PAPER_TABLE2_BCAST: [f64; 8] = [18.78, 20.89, 31.06, 44.54, 48.13, 92.26, 146.15, 193.89];

/// CPU baseline: best 3072-core time per 50 as step (§6).
pub const PAPER_CPU_STEP_SECONDS: f64 = 8874.0;

/// Average SCF iterations per PT-CN step (§4).
pub const PAPER_SCF_PER_STEP: usize = 22;

/// Fock exchange applications per PT-CN step (§7: 22 SCF + residual +
/// energy).
pub const PAPER_FOCK_APPS_PER_STEP: usize = 24;
