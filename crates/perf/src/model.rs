//! The anchored component cost model.

use crate::reference::*;
use pt_summit::Summit;

/// A PT-CN + hybrid-functional problem instance.
#[derive(Clone, Copy, Debug)]
pub struct Problem {
    /// Number of silicon atoms.
    pub n_atoms: usize,
    /// Occupied wavefunctions N_e (2 per Si atom).
    pub n_bands: usize,
    /// Plane waves per wavefunction N_G.
    pub ng: usize,
    /// Average SCF iterations per PT-CN step.
    pub n_scf: usize,
}

impl Problem {
    /// A silicon system with the paper's §4 parameters (E_cut = 10 Ha:
    /// N_G and N_e scale linearly with atom count from the 1536-atom
    /// reference with N_G = 648 000, N_e = 3072).
    pub fn silicon(n_atoms: usize) -> Self {
        Problem {
            n_atoms,
            n_bands: 2 * n_atoms,
            ng: (648_000 * n_atoms) / 1536,
            n_scf: PAPER_SCF_PER_STEP,
        }
    }

    /// The paper's headline system.
    pub fn paper_1536() -> Self {
        Problem::silicon(1536)
    }
}

/// One modelled component: anchored power law in P times physical size
/// scaling.
#[derive(Clone, Copy, Debug)]
struct Component {
    t36: f64,
    gamma: f64,
    /// physical size exponents (relative to the 1536-atom reference):
    /// t ∝ ne^a · ng^b · (extra log ng factor if `log_ng`)
    a_ne: f64,
    b_ng: f64,
    log_ng: bool,
}

impl Component {
    fn anchored(t36: f64, t3072: f64, a_ne: f64, b_ng: f64, log_ng: bool) -> Self {
        let gamma = (t3072 / t36).ln() / (3072.0f64 / 36.0).ln();
        Component {
            t36,
            gamma,
            a_ne,
            b_ng,
            log_ng,
        }
    }

    /// Time (s) at `p` GPUs for problem `pr`.
    fn time(&self, p: usize, pr: &Problem) -> f64 {
        let reference = Problem::paper_1536();
        let ne_ratio = pr.n_bands as f64 / reference.n_bands as f64;
        let ng_ratio = pr.ng as f64 / reference.ng as f64;
        let log_ratio = if self.log_ng {
            (pr.ng as f64).ln() / (reference.ng as f64).ln()
        } else {
            1.0
        };
        // size scaling is applied at fixed GPUs-per-work ratio; the
        // P-dependence uses the effective P normalized by problem size so
        // that weak scaling (P ∝ N) stays anchored
        let size = ne_ratio.powf(self.a_ne) * ng_ratio.powf(self.b_ng) * log_ratio;
        self.t36 * size * (p as f64 / 36.0).powf(self.gamma)
    }
}

/// Names of the per-SCF components, in Table 1 order.
pub const COMPONENT_NAMES: [&str; 11] = [
    "fock_mpi",
    "fock_comp",
    "local_semilocal",
    "residual_alltoallv",
    "residual_allreduce",
    "residual_comp",
    "anderson_memcpy",
    "anderson_comp",
    "density_comp",
    "density_allreduce",
    "others",
];

/// The assembled cost model.
pub struct CostModel {
    /// Machine description (power, bandwidths — used by Fig. 3/6 logic).
    pub machine: Summit,
    components: Vec<(String, Component)>,
    table2: Vec<(String, Component)>,
}

impl CostModel {
    /// Build the model anchored to the paper's Table 1/Table 2.
    pub fn new() -> Self {
        // physical size exponents per component:
        //   fock comp: N_e²/P pair solves of N_G log N_G      → a=2, b=1(log)
        //   fock mpi: each rank receives N_e·N_G·4 B           → a=1, b=1
        //   local/semilocal, density, anderson, residual comp: N_e·N_G(log)
        //   overlap allreduce: N_e² matrix                     → a=2, b=0
        //   density allreduce: density grid ∝ N_G              → a=0, b=1
        //   alltoallv: N_e·N_G/P per rank                      → a=1, b=1
        //   others: density-grid work ∝ N_G                    → a=0, b=1
        let spec: [(&str, f64, f64, f64, f64, bool); 11] = [
            ("fock_mpi", 0.71, 8.074, 1.0, 1.0, false),
            ("fock_comp", 90.99, 1.43, 2.0, 1.0, true),
            ("local_semilocal", 0.337, 0.00404, 1.0, 1.0, true),
            ("residual_alltoallv", 0.884, 0.056, 1.0, 1.0, false),
            ("residual_allreduce", 0.354, 0.5243, 2.0, 0.0, false),
            ("residual_comp", 1.43, 0.023, 2.0, 0.0, false),
            ("anderson_memcpy", 1.64235, 0.0202, 1.0, 1.0, false),
            ("anderson_comp", 2.3, 0.04, 1.0, 1.0, false),
            ("density_comp", 0.1349, 0.0016, 1.0, 1.0, true),
            ("density_allreduce", 0.123, 0.171, 0.0, 1.0, false),
            ("others", 2.66, 1.85, 0.0, 1.0, false),
        ];
        let components = spec
            .iter()
            .map(|&(n, t36, t3072, a, b, lg)| {
                (n.to_string(), Component::anchored(t36, t3072, a, b, lg))
            })
            .collect();
        let t2spec: [(&str, f64, f64, f64, f64, bool); 6] = [
            ("memcpy", 60.80, 2.24, 1.0, 1.0, false),
            ("alltoallv", 20.97, 0.68, 1.0, 1.0, false),
            ("allreduce", 11.50, 16.62, 2.0, 0.0, false),
            ("bcast", 18.78, 193.89, 1.0, 1.0, false),
            ("allgatherv", 0.44, 1.24, 0.0, 1.0, false),
            ("computation", 2341.40, 71.96, 2.0, 1.0, true),
        ];
        let table2 = t2spec
            .iter()
            .map(|&(n, t36, t3072, a, b, lg)| {
                (n.to_string(), Component::anchored(t36, t3072, a, b, lg))
            })
            .collect();
        CostModel {
            machine: Summit::default(),
            components,
            table2,
        }
    }

    /// Per-SCF time of one named component.
    pub fn component(&self, name: &str, p: usize, pr: &Problem) -> f64 {
        self.components
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown component {name}"))
            .1
            .time(p, pr)
    }

    /// Per-SCF HΨ time (Fock mpi + comp + local/semilocal).
    pub fn h_psi(&self, p: usize, pr: &Problem) -> f64 {
        self.component("fock_mpi", p, pr)
            + self.component("fock_comp", p, pr)
            + self.component("local_semilocal", p, pr)
    }

    /// Per-SCF residual-related time (Alg. 3).
    pub fn residual(&self, p: usize, pr: &Problem) -> f64 {
        self.component("residual_alltoallv", p, pr)
            + self.component("residual_allreduce", p, pr)
            + self.component("residual_comp", p, pr)
    }

    /// Per-SCF Anderson mixing time.
    pub fn anderson(&self, p: usize, pr: &Problem) -> f64 {
        self.component("anderson_memcpy", p, pr) + self.component("anderson_comp", p, pr)
    }

    /// Per-SCF density evaluation time.
    pub fn density(&self, p: usize, pr: &Problem) -> f64 {
        self.component("density_comp", p, pr) + self.component("density_allreduce", p, pr)
    }

    /// Per-SCF "others" (§3.4 CPU-side) time.
    pub fn others(&self, p: usize, pr: &Problem) -> f64 {
        self.component("others", p, pr)
    }

    /// Full per-SCF time (Table 1 "per SCF time").
    pub fn per_scf(&self, p: usize, pr: &Problem) -> f64 {
        self.h_psi(p, pr)
            + self.residual(p, pr)
            + self.anderson(p, pr)
            + self.density(p, pr)
            + self.others(p, pr)
    }

    /// Full PT-CN step time (Table 1 "Total time"): n_scf SCF iterations
    /// plus the two extra exchange applications (initial residual R_n and
    /// the energy evaluation, §7) and the once-per-step orthogonalization.
    pub fn step_total(&self, p: usize, pr: &Problem) -> f64 {
        let ortho = 0.017 + 0.05; // Cholesky (§7) + rotation/transposes
        self.per_scf(p, pr) * pr.n_scf as f64 + 2.0 * self.h_psi(p, pr) + ortho
    }

    /// RK4 50 as wall time (Fig. 6): 100 explicit steps of 0.5 as, each
    /// with 4 HΨ stages; the data-dependent stages cannot overlap the
    /// wavefunction broadcast, so each stage pays the *full* bcast
    /// (per-rank volume / contended NIC bandwidth) plus the density and
    /// CPU-side potential updates.
    pub fn rk4_50as(&self, p: usize, pr: &Problem) -> f64 {
        let wire_bytes = 8.0; // f32 complex
        let full_bcast =
            pr.n_bands as f64 * pr.ng as f64 * wire_bytes / self.machine.bcast_rank_bw(p);
        let comp = self.component("fock_comp", p, pr) + self.component("local_semilocal", p, pr);
        let stage = comp + full_bcast + self.density(p, pr) + self.others(p, pr);
        100.0 * 4.0 * stage
    }

    /// Table 2 class time per step.
    pub fn table2_class(&self, name: &str, p: usize, pr: &Problem) -> f64 {
        self.table2
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("unknown table2 class {name}"))
            .1
            .time(p, pr)
    }

    /// CPU-baseline step time at `cores` cores (§6: 8874 s at 3072; the
    /// band-parallel CPU code scales to at most N_e cores).
    pub fn cpu_step(&self, cores: usize, pr: &Problem) -> f64 {
        let cores = cores.min(pr.n_bands);
        let ref_pr = Problem::paper_1536();
        let size = (pr.n_bands as f64 / ref_pr.n_bands as f64).powi(2)
            * (pr.ng as f64 / ref_pr.ng as f64)
            * ((pr.ng as f64).ln() / (ref_pr.ng as f64).ln());
        PAPER_CPU_STEP_SECONDS * size * 3072.0 / cores as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_exact_at_endpoints() {
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        for (name, t36, t3072) in PAPER_COMPONENT_ANCHORS {
            let a = m.component(name, 36, &pr);
            let b = m.component(name, 3072, &pr);
            assert!((a - t36).abs() < 1e-9 * t36, "{name} @36: {a} vs {t36}");
            assert!(
                (b - t3072).abs() < 1e-9 * t3072,
                "{name} @3072: {b} vs {t3072}"
            );
        }
    }

    #[test]
    fn per_scf_matches_paper_within_band() {
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        for (i, &p) in PAPER_GPU_COUNTS.iter().enumerate() {
            let t = m.per_scf(p, &pr);
            let want = PAPER_TABLE1_PER_SCF_TOTAL[i];
            let rel = (t - want).abs() / want;
            assert!(
                rel < 0.25,
                "per-SCF @{p}: model {t:.2} vs paper {want} ({rel:.2})"
            );
        }
    }

    #[test]
    fn step_total_matches_paper_within_band() {
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        for (i, &p) in PAPER_GPU_COUNTS.iter().enumerate() {
            let t = m.step_total(p, &pr);
            let want = PAPER_TABLE1_TOTAL[i];
            let rel = (t - want).abs() / want;
            assert!(
                rel < 0.25,
                "total @{p}: model {t:.1} vs paper {want} ({rel:.2})"
            );
        }
    }

    #[test]
    fn speedup_shape_peaks_near_768() {
        // who wins, by what factor, where scaling stalls (§6)
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        let cpu = m.cpu_step(3072, &pr);
        assert!((cpu - 8874.0).abs() < 1.0);
        let sp: Vec<f64> = PAPER_GPU_COUNTS
            .iter()
            .map(|&p| cpu / m.step_total(p, &pr))
            .collect();
        // grows up to 768, then flattens/declines — the MPI_Bcast wall
        assert!(sp[0] > 3.0 && sp[0] < 5.0, "36 GPUs: {:.1}", sp[0]);
        let peak = sp.iter().cloned().fold(0.0, f64::max);
        let idx_peak = sp.iter().position(|&v| v == peak).unwrap();
        assert!(
            (4..=6).contains(&idx_peak),
            "peak at index {idx_peak} ({:?})",
            sp
        );
        assert!(peak > 25.0 && peak < 45.0, "peak speedup {peak:.1}");
        assert!(sp[7] < peak, "3072 GPUs must be past the scaling stall");
    }

    #[test]
    fn ptcn_vs_rk4_ratio_20_to_30() {
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        let r36 = m.rk4_50as(36, &pr) / m.step_total(36, &pr);
        let r768 = m.rk4_50as(768, &pr) / m.step_total(768, &pr);
        assert!(r36 > 10.0 && r36 < 30.0, "ratio @36 = {r36:.1}");
        assert!(r768 > 15.0 && r768 < 40.0, "ratio @768 = {r768:.1}");
        assert!(r768 > r36, "speedup must grow with GPU count (Fig. 6)");
    }

    #[test]
    fn weak_scaling_beats_the_quadratic_ideal() {
        // Fig. 8: the ideal is O(N²); the paper's own measurements beat it
        // (192 atoms @96 GPUs: 16 s; 1536 @768: 260.9 s → exponent ≈ 1.34,
        // "for small systems … scales even better than the ideal scaling").
        let m = CostModel::new();
        let t = |n: usize| m.step_total(n / 2, &Problem::silicon(n));
        let slope = (t(1536) / t(96)).ln() / (1536.0f64 / 96.0).ln();
        assert!(
            slope > 1.1 && slope < 2.1,
            "weak-scaling exponent {slope:.2} (paper ≈ 1.3, ideal 2.0)"
        );
        // absolute check against the paper's quoted 192-atom point (16 s)
        let t192 = t(192);
        assert!(
            t192 > 5.0 && t192 < 35.0,
            "192 atoms: {t192:.1} s (paper: 16 s)"
        );
        // and the 1536-atom anchor is exact by construction
        assert!((t(1536) - m.step_total(768, &Problem::paper_1536())).abs() < 1e-9);
    }

    #[test]
    fn fock_dominates_h_psi() {
        // §2: the exchange application is ~95 % of HΨ on CPUs and still
        // dominates on GPUs (74-90 % of the per-SCF total, Table 1)
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        for &p in &PAPER_GPU_COUNTS {
            let frac = m.h_psi(p, &pr) / m.per_scf(p, &pr);
            assert!(frac > 0.6 && frac < 0.97, "HΨ fraction @{p}: {frac:.2}");
        }
    }

    #[test]
    fn table2_bcast_row_tracks_paper() {
        let m = CostModel::new();
        let pr = Problem::paper_1536();
        for (i, &p) in PAPER_GPU_COUNTS.iter().enumerate() {
            let t = m.table2_class("bcast", p, &pr);
            let want = PAPER_TABLE2_BCAST[i];
            // endpoint-anchored power law vs the paper's (fluctuating, §7)
            // mid-range measurements: demand the shape within ±45 %
            assert!(
                (t - want).abs() / want < 0.45,
                "bcast @{p}: {t:.1} vs {want}"
            );
        }
    }
}
