//! Structured generators for every table and figure of the paper.

use crate::model::{CostModel, Problem};
use crate::reference::*;

/// One column of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// GPU count.
    pub gpus: usize,
    /// (component name, modelled seconds, paper seconds at the anchors).
    pub components: Vec<(String, f64)>,
    /// Modelled per-SCF total.
    pub per_scf: f64,
    /// Modelled step total.
    pub total: f64,
    /// Modelled speedup vs the 3072-core CPU baseline.
    pub speedup: f64,
    /// HΨ share of the per-SCF time.
    pub h_psi_fraction: f64,
}

/// Regenerate Table 1.
pub fn table1(model: &CostModel) -> Vec<Table1Row> {
    let pr = Problem::paper_1536();
    let cpu = model.cpu_step(3072, &pr);
    PAPER_GPU_COUNTS
        .iter()
        .map(|&p| {
            let components = crate::model::COMPONENT_NAMES
                .iter()
                .map(|n| (n.to_string(), model.component(n, p, &pr)))
                .collect();
            let per_scf = model.per_scf(p, &pr);
            let total = model.step_total(p, &pr);
            Table1Row {
                gpus: p,
                components,
                per_scf,
                total,
                speedup: cpu / total,
                h_psi_fraction: model.h_psi(p, &pr) / per_scf,
            }
        })
        .collect()
}

/// One column of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// GPU count.
    pub gpus: usize,
    /// (class, modelled seconds per step).
    pub classes: Vec<(String, f64)>,
    /// Total MPI time.
    pub mpi_total: f64,
}

/// Regenerate Table 2.
pub fn table2(model: &CostModel) -> Vec<Table2Row> {
    let pr = Problem::paper_1536();
    PAPER_GPU_COUNTS
        .iter()
        .map(|&p| {
            let classes: Vec<(String, f64)> = [
                "memcpy",
                "alltoallv",
                "allreduce",
                "bcast",
                "allgatherv",
                "computation",
            ]
            .iter()
            .map(|n| (n.to_string(), model.table2_class(n, p, &pr)))
            .collect();
            let mpi_total = classes
                .iter()
                .filter(|(n, _)| n != "memcpy" && n != "computation")
                .map(|(_, t)| t)
                .sum();
            Table2Row {
                gpus: p,
                classes,
                mpi_total,
            }
        })
        .collect()
}

/// One bar of Fig. 3 (Fock exchange wall time per 50 as step across the
/// optimization stages, 1536 atoms, 72 GPUs vs 3072 CPU cores).
#[derive(Clone, Debug)]
pub struct Fig3Stage {
    /// Stage label.
    pub label: &'static str,
    /// Wall time (s) for the 24 exchange applications of one step.
    pub seconds: f64,
}

/// Regenerate Fig. 3. Stage composition (§3.2):
/// 1. band-by-band CUFFT port (unsaturated HBM), staged copies, f64 bcast;
/// 2. batched CUFFT (saturated HBM);
/// 3. GPUDirect / CUDA-aware MPI (drops the staging copies, but implicit
///    syncs — Fig. 2 — keep the bcast unoverlapped);
/// 4. single-precision MPI (halves the wire volume);
/// 5. explicit async copy + CPU bcast overlap (hides ~half the bcast).
pub fn fig3_stages(model: &CostModel) -> Vec<Fig3Stage> {
    let pr = Problem::paper_1536();
    let p = 72;
    let apps = PAPER_FOCK_APPS_PER_STEP as f64;
    let comp = model.component("fock_comp", p, &pr); // batched, per SCF
    let band_by_band_slowdown = 2.6; // HBM utilization ~0.35 vs 0.9
    let bcast_f64 = pr.n_bands as f64 * pr.ng as f64 * 16.0 / model.machine.bcast_rank_bw(p);
    let bcast_f32 = bcast_f64 / 2.0;
    let stage_copies = model
        .machine
        .memcpy_time(2.0 * pr.n_bands as f64 * pr.ng as f64 * 16.0);
    let cuda_aware_sync = 1.2; // Fig. 2: implicit CPU-GPU syncs
    let overlapped_visible = model.component("fock_mpi", p, &pr);
    let cpu = PAPER_CPU_STEP_SECONDS * 0.95;
    vec![
        Fig3Stage {
            label: "CPU 3072 cores",
            seconds: cpu,
        },
        Fig3Stage {
            label: "GPU band-by-band",
            seconds: apps * (comp * band_by_band_slowdown + bcast_f64 + stage_copies),
        },
        Fig3Stage {
            label: "+ batched CUFFT",
            seconds: apps * (comp + bcast_f64 + stage_copies),
        },
        Fig3Stage {
            label: "+ GPUDirect",
            seconds: apps * (comp + bcast_f64 * cuda_aware_sync),
        },
        Fig3Stage {
            label: "+ f32 MPI",
            seconds: apps * (comp + bcast_f32 * cuda_aware_sync),
        },
        Fig3Stage {
            label: "+ overlap",
            seconds: apps * (comp + overlapped_visible),
        },
    ]
}

/// One group of Fig. 6 (RK4 vs PT-CN wall time for 50 as).
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// GPU count.
    pub gpus: usize,
    /// RK4 (100 × 0.5 as) seconds.
    pub rk4: f64,
    /// PT-CN (1 × 50 as) seconds.
    pub ptcn: f64,
}

/// Regenerate Fig. 6 (36–768 GPUs).
pub fn fig6_rows(model: &CostModel) -> Vec<Fig6Row> {
    let pr = Problem::paper_1536();
    [36, 72, 144, 288, 384, 768]
        .iter()
        .map(|&p| Fig6Row {
            gpus: p,
            rk4: model.rk4_50as(p, &pr),
            ptcn: model.step_total(p, &pr),
        })
        .collect()
}

/// Fig. 7 rows: (gpus, total, h_psi, residual, density, anderson, others)
/// with communication included (a) and computation-only variants (b).
pub fn fig7_rows(model: &CostModel) -> Vec<(usize, [f64; 6], [f64; 4])> {
    let pr = Problem::paper_1536();
    PAPER_GPU_COUNTS
        .iter()
        .map(|&p| {
            let with_comm = [
                model.step_total(p, &pr),
                model.h_psi(p, &pr),
                model.residual(p, &pr),
                model.density(p, &pr),
                model.anderson(p, &pr),
                model.others(p, &pr),
            ];
            // (b): MPI and memcpy excluded
            let comp_only = [
                model.component("fock_comp", p, &pr) + model.component("local_semilocal", p, &pr),
                model.component("residual_comp", p, &pr),
                model.component("density_comp", p, &pr),
                model.component("anderson_comp", p, &pr),
            ];
            (p, with_comm, comp_only)
        })
        .collect()
}

/// One point of Fig. 8 (weak scaling).
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Atom count.
    pub atoms: usize,
    /// GPUs (= atoms/2).
    pub gpus: usize,
    /// Modelled 50 as wall time.
    pub seconds: f64,
    /// The paper's O(N²) ideal-scaling reference through the first point.
    pub ideal: f64,
}

/// Regenerate Fig. 8 (48 → 1536 atoms, GPUs = atoms/2).
pub fn fig8_rows(model: &CostModel) -> Vec<Fig8Row> {
    let sizes = [48usize, 96, 192, 384, 768, 1536];
    let t0 = model.step_total(sizes[0] / 2, &Problem::silicon(sizes[0]));
    sizes
        .iter()
        .map(|&n| Fig8Row {
            atoms: n,
            gpus: n / 2,
            seconds: model.step_total(n / 2, &Problem::silicon(n)),
            ideal: t0 * (n as f64 / sizes[0] as f64).powi(2),
        })
        .collect()
}

/// Fig. 9 rows: per-SCF breakdown (HΨ, residual, density, anderson,
/// others) across GPU counts.
pub fn fig9_rows(model: &CostModel) -> Vec<(usize, [f64; 5])> {
    let pr = Problem::paper_1536();
    [36usize, 72, 144, 288, 768]
        .iter()
        .map(|&p| {
            (
                p,
                [
                    model.h_psi(p, &pr),
                    model.residual(p, &pr),
                    model.density(p, &pr),
                    model.anderson(p, &pr),
                    model.others(p, &pr),
                ],
            )
        })
        .collect()
}

/// Fig. 10 rows: per-step operation-class times across GPU counts.
pub fn fig10_rows(model: &CostModel) -> Vec<(usize, Vec<(String, f64)>)> {
    let pr = Problem::paper_1536();
    [36usize, 72, 144, 288, 384, 768, 1536]
        .iter()
        .map(|&p| {
            let classes = ["bcast", "memcpy", "alltoallv", "allreduce", "computation"]
                .iter()
                .map(|n| (n.to_string(), model.table2_class(n, p, &pr)))
                .collect();
            (p, classes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_is_monotone_and_lands_on_7x() {
        let m = CostModel::new();
        let stages = fig3_stages(&m);
        assert_eq!(stages.len(), 6);
        for w in stages.windows(2) {
            assert!(
                w[1].seconds < w[0].seconds,
                "{} ({:.0}s) should beat {} ({:.0}s)",
                w[1].label,
                w[1].seconds,
                w[0].label,
                w[0].seconds
            );
        }
        // final GPU stage ≈ 7× faster than the CPU bar (§3.2/Fig. 3)
        let ratio = stages[0].seconds / stages.last().unwrap().seconds;
        assert!(ratio > 5.0 && ratio < 10.0, "CPU/GPU ratio {ratio:.1}");
    }

    #[test]
    fn fig6_ratio_grows_with_gpus() {
        let m = CostModel::new();
        let rows = fig6_rows(&m);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        let r_first = first.rk4 / first.ptcn;
        let r_last = last.rk4 / last.ptcn;
        assert!(r_first > 10.0, "{r_first:.1}");
        assert!(r_last > r_first, "Fig. 6: speedup grows with GPU count");
        assert!(r_last < 45.0, "{r_last:.1}");
    }

    #[test]
    fn fig8_never_worse_than_ideal() {
        // The ideal line is O(N²) through the first point; the paper's
        // measured curve stays below it ("scales even better than … the
        // ideal scaling"), approaching but not crossing from below.
        let m = CostModel::new();
        let rows = fig8_rows(&m);
        for row in &rows {
            let rel = row.seconds / row.ideal;
            assert!(
                rel < 1.2,
                "{} atoms sits above the ideal line: {rel:.2}",
                row.atoms
            );
            assert!(rel > 0.02, "{} atoms implausibly fast: {rel:.3}", row.atoms);
        }
        // wall time itself must grow monotonically with system size
        for w in rows.windows(2) {
            assert!(w[1].seconds > w[0].seconds);
        }
    }

    #[test]
    fn fig9_h_psi_dominates_everywhere() {
        let m = CostModel::new();
        for (p, parts) in fig9_rows(&m) {
            let total: f64 = parts.iter().sum();
            assert!(
                parts[0] / total > 0.6,
                "HΨ at {p} GPUs: {:.2}",
                parts[0] / total
            );
        }
    }

    #[test]
    fn fig10_bcast_becomes_dominant_class() {
        let m = CostModel::new();
        let rows = fig10_rows(&m);
        // at 36 GPUs computation dominates; at 1536 bcast dominates comm
        let (_, first) = &rows[0];
        let comp36 = first.iter().find(|(n, _)| n == "computation").unwrap().1;
        let bcast36 = first.iter().find(|(n, _)| n == "bcast").unwrap().1;
        assert!(comp36 > 20.0 * bcast36);
        let (_, last) = rows.last().unwrap();
        let comp = last.iter().find(|(n, _)| n == "computation").unwrap().1;
        let bcast = last.iter().find(|(n, _)| n == "bcast").unwrap().1;
        assert!(
            bcast > comp,
            "at 1536 GPUs MPI_Bcast ({bcast:.0}s) must exceed computation ({comp:.0}s)"
        );
    }

    #[test]
    fn table1_rows_complete() {
        let m = CostModel::new();
        let rows = table1(&m);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.components.len(), 11);
            assert!(r.h_psi_fraction > 0.6 && r.h_psi_fraction < 0.97);
        }
        // modelled speedups within a band of the paper's
        for (r, want) in rows.iter().zip(PAPER_TABLE1_SPEEDUP) {
            assert!(
                (r.speedup - want).abs() / want < 0.3,
                "{} GPUs: {:.1} vs {want}",
                r.gpus,
                r.speedup
            );
        }
    }

    #[test]
    fn table2_mpi_total_grows_past_768() {
        let m = CostModel::new();
        let rows = table2(&m);
        let mpi: Vec<f64> = rows.iter().map(|r| r.mpi_total).collect();
        assert!(mpi[7] > mpi[5], "MPI total must keep growing: {mpi:?}");
        // computation shrinks monotonically
        for w in rows.windows(2) {
            let a = w[0]
                .classes
                .iter()
                .find(|(n, _)| n == "computation")
                .unwrap()
                .1;
            let b = w[1]
                .classes
                .iter()
                .find(|(n, _)| n == "computation")
                .unwrap()
                .1;
            assert!(b < a);
        }
    }
}
