//! `pt-lattice` — periodic cells, atomic structures and plane-wave grids.
//!
//! This crate owns everything geometric: the simulation cell and its
//! reciprocal lattice, the silicon supercell builders matching the paper's
//! test systems (1×1×3 … 4×6×8 conventional cells of 8 Si atoms at
//! a = 5.43 Å, §4), the G-vector spheres for the wavefunction (E_cut) and
//! density (4·E_cut) grids, 2,3,5-smooth FFT grid sizing — which reproduces
//! the paper's 60×90×120 wavefunction grid for the 1536-atom cell at
//! E_cut = 10 Ha exactly — and the Ewald ion–ion energy needed for total
//! energies.

mod cell;
mod ewald;
mod gvec;
mod structure;

pub use cell::Cell;
pub use ewald::ewald_energy;
pub use gvec::{fft_dims_for_cutoff, GSphere, GridGVectors};
pub use structure::{silicon_cubic_supercell, Atom, Species, Structure};
