//! Atomic structures and the paper's silicon test systems.

use crate::cell::Cell;
use pt_num::units::SI_LATTICE_BOHR;

/// Chemical species with a GTH pseudopotential in `pt-pseudo`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Species {
    /// Hydrogen (Z_val = 1).
    H,
    /// Carbon (Z_val = 4).
    C,
    /// Silicon (Z_val = 4) — the paper's test systems are pure silicon.
    Si,
}

impl Species {
    /// Valence charge of the pseudo-ion.
    pub fn z_valence(self) -> f64 {
        match self {
            Species::H => 1.0,
            Species::C => 4.0,
            Species::Si => 4.0,
        }
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Species::H => "H",
            Species::C => "C",
            Species::Si => "Si",
        }
    }
}

/// One atom: species + fractional position in the cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Chemical species.
    pub species: Species,
    /// Fractional coordinates in `[0, 1)³`.
    pub frac: [f64; 3],
}

/// A periodic structure: cell + atoms.
#[derive(Clone, Debug)]
pub struct Structure {
    /// The simulation cell.
    pub cell: Cell,
    /// All atoms.
    pub atoms: Vec<Atom>,
}

impl Structure {
    /// Total valence electron count (spin-degenerate).
    pub fn n_electrons(&self) -> f64 {
        pt_num::reduce::sum_f64(self.atoms.iter().map(|a| a.species.z_valence()))
    }

    /// Number of doubly occupied orbitals (N_e/2 for closed shell).
    pub fn n_occupied_bands(&self) -> usize {
        let ne = self.n_electrons();
        let nb = (ne / 2.0).ceil() as usize;
        assert!(
            (ne - 2.0 * nb as f64).abs() < 1e-9,
            "only closed-shell systems supported (N_elec = {ne})"
        );
        nb
    }

    /// Cartesian positions of all atoms (bohr).
    pub fn cart_positions(&self) -> Vec<[f64; 3]> {
        self.atoms
            .iter()
            .map(|a| self.cell.frac_to_cart(a.frac))
            .collect()
    }
}

/// Fractional basis of the 8-atom conventional diamond cell.
const DIAMOND_BASIS: [[f64; 3]; 8] = [
    [0.00, 0.00, 0.00],
    [0.00, 0.50, 0.50],
    [0.50, 0.00, 0.50],
    [0.50, 0.50, 0.00],
    [0.25, 0.25, 0.25],
    [0.25, 0.75, 0.75],
    [0.75, 0.25, 0.75],
    [0.75, 0.75, 0.25],
];

/// Build the paper's silicon test systems: an `n1 × n2 × n3` supercell of
/// the 8-atom simple-cubic diamond cell with a = 5.43 Å (§4). The paper uses
/// 1×1×3 (48 atoms) up to 4×6×8 (1536 atoms).
pub fn silicon_cubic_supercell(n1: usize, n2: usize, n3: usize) -> Structure {
    assert!(n1 > 0 && n2 > 0 && n3 > 0);
    let a0 = SI_LATTICE_BOHR;
    let cell = Cell::orthorhombic(a0 * n1 as f64, a0 * n2 as f64, a0 * n3 as f64);
    let mut atoms = Vec::with_capacity(8 * n1 * n2 * n3);
    for i in 0..n1 {
        for j in 0..n2 {
            for k in 0..n3 {
                for basis in DIAMOND_BASIS {
                    atoms.push(Atom {
                        species: Species::Si,
                        frac: [
                            (basis[0] + i as f64) / n1 as f64,
                            (basis[1] + j as f64) / n2 as f64,
                            (basis[2] + k as f64) / n3 as f64,
                        ],
                    });
                }
            }
        }
    }
    Structure { cell, atoms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_sizes() {
        // §4: supercells 1×1×3 → 48 atoms … 4×6×8 → 1536 atoms
        assert_eq!(silicon_cubic_supercell(1, 1, 3).atoms.len(), 24);
        assert_eq!(silicon_cubic_supercell(1, 2, 3).atoms.len(), 48);
        let big = silicon_cubic_supercell(4, 6, 8);
        assert_eq!(big.atoms.len(), 1536);
        // 3072 doubly-occupied bands for 1536 Si atoms (4 valence e⁻ each)
        assert_eq!(big.n_occupied_bands(), 3072);
    }

    #[test]
    fn unit_cell_geometry() {
        let s = silicon_cubic_supercell(1, 1, 1);
        assert_eq!(s.atoms.len(), 8);
        assert!((s.n_electrons() - 32.0).abs() < 1e-12);
        // nearest-neighbour distance in diamond = sqrt(3)/4 * a
        let d01 = s.cell.min_image_distance(s.atoms[0].frac, s.atoms[4].frac);
        let want = 3.0f64.sqrt() / 4.0 * SI_LATTICE_BOHR;
        assert!((d01 - want).abs() < 1e-9, "{d01} vs {want}");
    }

    #[test]
    fn all_atoms_distinct() {
        let s = silicon_cubic_supercell(2, 2, 2);
        for i in 0..s.atoms.len() {
            for j in (i + 1)..s.atoms.len() {
                assert!(
                    s.cell.min_image_distance(s.atoms[i].frac, s.atoms[j].frac) > 1.0,
                    "atoms {i},{j} overlap"
                );
            }
        }
    }
}
