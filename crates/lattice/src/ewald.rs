//! Ewald summation for the ion–ion interaction energy.
//!
//! Total energies in plane-wave DFT split the divergent Coulomb pieces
//! between Hartree (G = 0 dropped), the local pseudopotential (G = 0
//! replaced by its non-Coulombic average) and this classical lattice sum
//! over the pseudo-ion point charges in a neutralizing background.

use crate::cell::Cell;
use crate::structure::Structure;
use pt_num::erfc;

/// Ewald energy (Ha) of the pseudo-ion point charges of `s` in a uniform
/// neutralizing background.
///
/// `eta` is chosen automatically; the real-space and reciprocal sums are
/// extended until their tails are below 1e-12 Ha.
pub fn ewald_energy(s: &Structure) -> f64 {
    let charges: Vec<f64> = s.atoms.iter().map(|a| a.species.z_valence()).collect();
    let pos = s.cart_positions();
    ewald_energy_charges(&s.cell, &pos, &charges, None)
}

/// Ewald energy for explicit charges/positions; `eta` may be forced (used
/// by the η-independence test).
pub fn ewald_energy_charges(
    cell: &Cell,
    pos: &[[f64; 3]],
    charges: &[f64],
    eta: Option<f64>,
) -> f64 {
    assert_eq!(pos.len(), charges.len());
    let n = pos.len();
    let vol = cell.volume();
    let ztot: f64 = pt_num::reduce::sum_f64(charges.iter().copied());
    let z2: f64 = pt_num::reduce::sum_f64(charges.iter().map(|z| z * z));

    // split parameter: balances real/reciprocal work
    let eta = eta.unwrap_or_else(|| {
        let l_min = pt_num::reduce::min_f64((0..3).map(|i| {
            let a = cell.lattice()[i];
            (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt()
        }));
        3.5 / l_min * (n as f64).powf(1.0 / 6.0).max(1.0)
    });

    // real-space cutoff: erfc(eta r)/r < 1e-13
    let r_cut = {
        let mut r = 1.0;
        while erfc(eta * r) / r > 1e-16 {
            r += 0.5;
        }
        r
    };
    // number of images per direction
    let images: Vec<i32> = (0..3)
        .map(|i| {
            let a = cell.lattice()[i];
            let len = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
            (r_cut / len).ceil() as i32
        })
        .collect();

    let mut e_real = 0.0;
    for i in 0..n {
        for j in 0..n {
            for mx in -images[0]..=images[0] {
                for my in -images[1]..=images[1] {
                    for mz in -images[2]..=images[2] {
                        if i == j && mx == 0 && my == 0 && mz == 0 {
                            continue;
                        }
                        let a = cell.lattice();
                        let shift = [
                            mx as f64 * a[0][0] + my as f64 * a[1][0] + mz as f64 * a[2][0],
                            mx as f64 * a[0][1] + my as f64 * a[1][1] + mz as f64 * a[2][1],
                            mx as f64 * a[0][2] + my as f64 * a[1][2] + mz as f64 * a[2][2],
                        ];
                        let d = [
                            pos[i][0] - pos[j][0] + shift[0],
                            pos[i][1] - pos[j][1] + shift[1],
                            pos[i][2] - pos[j][2] + shift[2],
                        ];
                        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                        if r < r_cut {
                            e_real += 0.5 * charges[i] * charges[j] * erfc(eta * r) / r;
                        }
                    }
                }
            }
        }
    }

    // reciprocal cutoff: exp(-g²/4η²)/g² tail < 1e-13
    let g_cut = 2.0 * eta * (17.0 * std::f64::consts::LN_10).sqrt();
    let gimg: Vec<i32> = (0..3)
        .map(|i| {
            let b = cell.reciprocal()[i];
            let len = (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]).sqrt();
            (g_cut / len).ceil() as i32
        })
        .collect();
    let mut e_recip = 0.0;
    for mx in -gimg[0]..=gimg[0] {
        for my in -gimg[1]..=gimg[1] {
            for mz in -gimg[2]..=gimg[2] {
                if mx == 0 && my == 0 && mz == 0 {
                    continue;
                }
                let g = cell.g_cart([mx, my, mz]);
                let g2 = g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
                if g2 > g_cut * g_cut {
                    continue;
                }
                // |S(G)|² with S(G) = Σ_a Z_a e^{-iG·τ_a}
                let (mut sre, mut sim) = (0.0, 0.0);
                for (p, &z) in pos.iter().zip(charges) {
                    let phase = -(g[0] * p[0] + g[1] * p[1] + g[2] * p[2]);
                    sre += z * phase.cos();
                    sim += z * phase.sin();
                }
                e_recip += (2.0 * std::f64::consts::PI / vol)
                    * ((-g2 / (4.0 * eta * eta)).exp() / g2)
                    * (sre * sre + sim * sim);
            }
        }
    }

    let e_self = -eta / std::f64::consts::PI.sqrt() * z2;
    let e_background = -std::f64::consts::PI / (2.0 * eta * eta * vol) * ztot * ztot;
    e_real + e_recip + e_self + e_background
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{silicon_cubic_supercell, Atom, Species, Structure};

    #[test]
    fn eta_independence() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let pos = s.cart_positions();
        let q: Vec<f64> = s.atoms.iter().map(|a| a.species.z_valence()).collect();
        let e1 = ewald_energy_charges(&s.cell, &pos, &q, Some(0.35));
        let e2 = ewald_energy_charges(&s.cell, &pos, &q, Some(0.6));
        let e3 = ewald_energy_charges(&s.cell, &pos, &q, None);
        assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
        assert!((e1 - e3).abs() < 1e-8, "{e1} vs {e3}");
    }

    #[test]
    fn simple_cubic_madelung_constant() {
        // One unit point charge on a simple cubic lattice (a = 1) in a
        // neutralizing background: E = ζ/2 with ζ = −2.8372974794…
        let cell = Cell::cubic(1.0);
        let e = ewald_energy_charges(&cell, &[[0.0, 0.0, 0.0]], &[1.0], None);
        let zeta = -2.837_297_479_480_6;
        assert!((e - zeta / 2.0).abs() < 1e-9, "{e} vs {}", zeta / 2.0);
    }

    #[test]
    fn supercell_extensivity() {
        let s1 = silicon_cubic_supercell(1, 1, 1);
        let s2 = silicon_cubic_supercell(2, 1, 1);
        let e1 = ewald_energy(&s1);
        let e2 = ewald_energy(&s2);
        assert!((e2 - 2.0 * e1).abs() < 1e-7, "e1={e1} e2={e2}");
    }

    #[test]
    fn nacl_structure_madelung() {
        // Rock-salt ±1 charges, lattice constant a (cubic cell, 8 ions):
        // E/pair = −M / r_nn with M = 1.7475645946 and r_nn = a/2.
        let a = 2.0;
        let cell = Cell::cubic(a);
        let mut pos = Vec::new();
        let mut q = Vec::new();
        for ix in 0..2 {
            for iy in 0..2 {
                for iz in 0..2 {
                    pos.push([
                        ix as f64 * a / 2.0,
                        iy as f64 * a / 2.0,
                        iz as f64 * a / 2.0,
                    ]);
                    q.push(if (ix + iy + iz) % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        let e = ewald_energy_charges(&cell, &pos, &q, None);
        let madelung = 1.747_564_594_633_18;
        let want = -4.0 * madelung / (a / 2.0); // 4 ion pairs in the cell
        assert!((e - want).abs() < 1e-8, "{e} vs {want}");
    }

    #[test]
    fn hydrogen_like_charge_in_large_box_tends_to_zero_slowly() {
        // single Z=1 in a big box: |E| = |ζ|/(2L) shrinks with box size
        let mk = |l: f64| {
            let cell = Cell::cubic(l);
            let s = Structure {
                cell,
                atoms: vec![Atom {
                    species: Species::H,
                    frac: [0.0, 0.0, 0.0],
                }],
            };
            ewald_energy(&s)
        };
        let e10 = mk(10.0);
        let e20 = mk(20.0);
        assert!(
            (e10 * 10.0 - e20 * 20.0).abs() < 1e-8,
            "scaling 1/L violated"
        );
        assert!(e10 < 0.0);
    }
}
