//! Simulation cell: direct and reciprocal lattice.

/// A periodic simulation cell.
///
/// Rows of `a` are the direct lattice vectors in bohr; rows of `b` are the
/// reciprocal vectors with the physics convention `b_i · a_j = 2π δ_ij`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    a: [[f64; 3]; 3],
    b: [[f64; 3]; 3],
    volume: f64,
}

fn cross(u: [f64; 3], v: [f64; 3]) -> [f64; 3] {
    [
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    ]
}

fn dot(u: [f64; 3], v: [f64; 3]) -> f64 {
    u[0] * v[0] + u[1] * v[1] + u[2] * v[2]
}

impl Cell {
    /// Build from direct lattice vectors (rows, bohr). Panics on a
    /// degenerate (non-right-handed or zero-volume) cell.
    pub fn new(a: [[f64; 3]; 3]) -> Self {
        let v = dot(a[0], cross(a[1], a[2]));
        assert!(v.abs() > 1e-12, "cell volume ~ 0");
        let tau = 2.0 * std::f64::consts::PI / v;
        let b = [
            cross(a[1], a[2]).map(|x| x * tau),
            cross(a[2], a[0]).map(|x| x * tau),
            cross(a[0], a[1]).map(|x| x * tau),
        ];
        Cell {
            a,
            b,
            volume: v.abs(),
        }
    }

    /// Orthorhombic cell with edge lengths `(lx, ly, lz)` in bohr.
    pub fn orthorhombic(lx: f64, ly: f64, lz: f64) -> Self {
        Cell::new([[lx, 0.0, 0.0], [0.0, ly, 0.0], [0.0, 0.0, lz]])
    }

    /// Cubic cell of edge `l` bohr.
    pub fn cubic(l: f64) -> Self {
        Cell::orthorhombic(l, l, l)
    }

    /// Direct lattice vectors (rows, bohr).
    #[inline]
    pub fn lattice(&self) -> &[[f64; 3]; 3] {
        &self.a
    }

    /// Reciprocal lattice vectors (rows, bohr⁻¹, with 2π).
    #[inline]
    pub fn reciprocal(&self) -> &[[f64; 3]; 3] {
        &self.b
    }

    /// Cell volume in bohr³.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Cartesian coordinates of a fractional position.
    pub fn frac_to_cart(&self, f: [f64; 3]) -> [f64; 3] {
        [
            f[0] * self.a[0][0] + f[1] * self.a[1][0] + f[2] * self.a[2][0],
            f[0] * self.a[0][1] + f[1] * self.a[1][1] + f[2] * self.a[2][1],
            f[0] * self.a[0][2] + f[1] * self.a[1][2] + f[2] * self.a[2][2],
        ]
    }

    /// Cartesian G vector for integer Miller indices.
    pub fn g_cart(&self, m: [i32; 3]) -> [f64; 3] {
        [
            m[0] as f64 * self.b[0][0] + m[1] as f64 * self.b[1][0] + m[2] as f64 * self.b[2][0],
            m[0] as f64 * self.b[0][1] + m[1] as f64 * self.b[1][1] + m[2] as f64 * self.b[2][1],
            m[0] as f64 * self.b[0][2] + m[1] as f64 * self.b[1][2] + m[2] as f64 * self.b[2][2],
        ]
    }

    /// |G|² for integer Miller indices.
    pub fn g2(&self, m: [i32; 3]) -> f64 {
        let g = self.g_cart(m);
        dot(g, g)
    }

    /// Minimum-image distance between two fractional positions.
    pub fn min_image_distance(&self, f1: [f64; 3], f2: [f64; 3]) -> f64 {
        let mut best = f64::INFINITY;
        for sx in -1..=1 {
            for sy in -1..=1 {
                for sz in -1..=1 {
                    let d = [
                        f1[0] - f2[0] + sx as f64,
                        f1[1] - f2[1] + sy as f64,
                        f1[2] - f2[2] + sz as f64,
                    ];
                    let c = self.frac_to_cart(d);
                    best = best.min(dot(c, c).sqrt());
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_duality() {
        let c = Cell::new([[10.0, 0.0, 0.0], [1.0, 12.0, 0.0], [0.5, 0.5, 9.0]]);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(c.lattice()[i], c.reciprocal()[j]);
                let want = if i == j {
                    2.0 * std::f64::consts::PI
                } else {
                    0.0
                };
                assert!((d - want).abs() < 1e-12, "i={i} j={j} d={d}");
            }
        }
    }

    #[test]
    fn cubic_volume_and_g() {
        let l = 10.0;
        let c = Cell::cubic(l);
        assert!((c.volume() - 1000.0).abs() < 1e-12);
        let g = c.g_cart([1, 0, 0]);
        assert!((g[0] - 2.0 * std::f64::consts::PI / l).abs() < 1e-14);
        assert!((c.g2([1, 2, 2]) - (2.0 * std::f64::consts::PI / l).powi(2) * 9.0).abs() < 1e-12);
    }

    #[test]
    fn frac_cart_roundtrip_feel() {
        let c = Cell::orthorhombic(4.0, 5.0, 6.0);
        let r = c.frac_to_cart([0.5, 0.25, 1.0]);
        assert_eq!(r, [2.0, 1.25, 6.0]);
    }

    #[test]
    fn min_image_wraps() {
        let c = Cell::cubic(10.0);
        let d = c.min_image_distance([0.05, 0.0, 0.0], [0.95, 0.0, 0.0]);
        assert!((d - 1.0).abs() < 1e-12, "{d}");
    }
}
