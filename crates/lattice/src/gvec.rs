//! Plane-wave G-vector bookkeeping.
//!
//! Two kinds of reciprocal-space objects appear in PWDFT:
//!
//! * the **wavefunction sphere** [`GSphere`]: all G with |G|²/2 ≤ E_cut.
//!   Orbitals are stored as coefficient vectors over this sphere (that is
//!   the `N_G` of the paper — 648 000 for the 1536-atom system), and
//!   scattered onto an FFT grid for real-space work;
//! * the **full grid** [`GridGVectors`]: |G|² and G at every point of an
//!   FFT grid, used by the Hartree/Poisson solves and gradient evaluations
//!   on the density grid (which has twice the linear size, i.e. a 4·E_cut
//!   sphere — the paper's 120×180×240).

use crate::cell::Cell;
use pt_fft::next_smooth;

/// Smallest FFT grid that can hold the sphere |G|²/2 ≤ `ecut` for `cell`,
/// with 2,3,5-smooth dimensions.
///
/// For the paper's 4×6×8 silicon supercell at E_cut = 10 Ha this returns
/// exactly 60×90×120 (asserted in tests).
pub fn fft_dims_for_cutoff(cell: &Cell, ecut: f64) -> (usize, usize, usize) {
    assert!(ecut > 0.0);
    let gmax = (2.0 * ecut).sqrt();
    let mut dims = [0usize; 3];
    for (i, d) in dims.iter_mut().enumerate() {
        let a = cell.lattice()[i];
        let len = (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt();
        let mmax = (gmax * len / (2.0 * std::f64::consts::PI)).floor() as usize;
        *d = next_smooth(2 * mmax + 1);
    }
    (dims[0], dims[1], dims[2])
}

/// Wrap an FFT grid coordinate into a signed Miller index.
#[inline]
fn index_to_miller(ix: usize, n: usize) -> i32 {
    if ix <= n / 2 {
        ix as i32
    } else {
        ix as i32 - n as i32
    }
}

/// Wrap a signed Miller index into an FFT grid coordinate.
#[inline]
fn miller_to_index(m: i32, n: usize) -> usize {
    m.rem_euclid(n as i32) as usize
}

/// The sphere of plane waves with kinetic energy below a cutoff.
#[derive(Clone, Debug)]
pub struct GSphere {
    /// Kinetic cutoff (Ha) defining the sphere.
    pub ecut: f64,
    /// FFT grid dims this sphere was built against.
    pub dims: (usize, usize, usize),
    /// Miller indices of each member, sorted by |G|² ascending.
    pub miller: Vec<[i32; 3]>,
    /// |G|² for each member.
    pub g2: Vec<f64>,
    /// Cartesian G for each member.
    pub g_cart: Vec<[f64; 3]>,
    /// Linear FFT-grid index of each member within `dims`.
    pub fft_index: Vec<usize>,
}

impl GSphere {
    /// Enumerate the sphere for `cell` at cutoff `ecut` on grid `dims`.
    /// Panics if the grid cannot hold the sphere.
    pub fn new(cell: &Cell, ecut: f64, dims: (usize, usize, usize)) -> Self {
        let (n1, n2, n3) = dims;
        let mut entries: Vec<([i32; 3], f64)> = Vec::new();
        for iz in 0..n3 {
            let m3 = index_to_miller(iz, n3);
            for iy in 0..n2 {
                let m2 = index_to_miller(iy, n2);
                for ix in 0..n1 {
                    let m1 = index_to_miller(ix, n1);
                    let m = [m1, m2, m3];
                    let g2 = cell.g2(m);
                    if 0.5 * g2 <= ecut + 1e-12 {
                        entries.push((m, g2));
                    }
                }
            }
        }
        // deterministic order: by |G|², then lexicographic Miller
        entries.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        // verify the grid really holds the sphere (no aliasing): every
        // Miller index must be within the representable range.
        for (m, _) in &entries {
            for (k, &n) in [n1, n2, n3].iter().enumerate() {
                let lo = -(n as i32 - 1) / 2;
                let hi = n as i32 / 2;
                assert!(
                    m[k] >= lo && m[k] <= hi,
                    "grid {dims:?} cannot hold G sphere at ecut {ecut}"
                );
            }
        }
        let miller: Vec<[i32; 3]> = entries.iter().map(|e| e.0).collect();
        let g2: Vec<f64> = entries.iter().map(|e| e.1).collect();
        let g_cart: Vec<[f64; 3]> = miller.iter().map(|&m| cell.g_cart(m)).collect();
        let fft_index = miller
            .iter()
            .map(|&m| {
                miller_to_index(m[0], n1)
                    + n1 * (miller_to_index(m[1], n2) + n2 * miller_to_index(m[2], n3))
            })
            .collect();
        GSphere {
            ecut,
            dims,
            miller,
            g2,
            g_cart,
            fft_index,
        }
    }

    /// Number of plane waves (the paper's N_G).
    #[inline]
    pub fn len(&self) -> usize {
        self.miller.len()
    }

    /// True when the sphere is empty (never for positive cutoffs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.miller.is_empty()
    }

    /// Linear indices of the sphere members in a *different* (larger) FFT
    /// grid — used to scatter wavefunction coefficients onto the density
    /// grid.
    pub fn fft_index_in(&self, dims: (usize, usize, usize)) -> Vec<usize> {
        let (n1, n2, n3) = dims;
        self.miller
            .iter()
            .map(|&m| {
                for (k, &n) in [n1, n2, n3].iter().enumerate() {
                    let lo = -(n as i32 - 1) / 2;
                    let hi = n as i32 / 2;
                    assert!(m[k] >= lo && m[k] <= hi, "target grid too small");
                }
                miller_to_index(m[0], n1)
                    + n1 * (miller_to_index(m[1], n2) + n2 * miller_to_index(m[2], n3))
            })
            .collect()
    }
}

/// |G|² and G over every point of an FFT grid.
#[derive(Clone, Debug)]
pub struct GridGVectors {
    /// Grid dims.
    pub dims: (usize, usize, usize),
    /// |G|² at each linear grid index.
    pub g2: Vec<f64>,
    /// Cartesian G at each linear grid index (xyz interleaved).
    pub g_cart: Vec<[f64; 3]>,
}

impl GridGVectors {
    /// Tabulate G over the full grid.
    pub fn new(cell: &Cell, dims: (usize, usize, usize)) -> Self {
        let (n1, n2, n3) = dims;
        let n = n1 * n2 * n3;
        let mut g2 = Vec::with_capacity(n);
        let mut g_cart = Vec::with_capacity(n);
        for iz in 0..n3 {
            let m3 = index_to_miller(iz, n3);
            for iy in 0..n2 {
                let m2 = index_to_miller(iy, n2);
                for ix in 0..n1 {
                    let m1 = index_to_miller(ix, n1);
                    let g = cell.g_cart([m1, m2, m3]);
                    g2.push(g[0] * g[0] + g[1] * g[1] + g[2] * g[2]);
                    g_cart.push(g);
                }
            }
        }
        GridGVectors { dims, g2, g_cart }
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.g2.len()
    }

    /// True when the grid is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.g2.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::silicon_cubic_supercell;

    #[test]
    fn paper_grid_dims_exactly_reproduced() {
        // §4: 1536-atom cell (4×6×8 supercell), E_cut = 10 Ha →
        // wavefunction grid 60×90×120, density grid 120×180×240.
        let s = silicon_cubic_supercell(4, 6, 8);
        let wfc = fft_dims_for_cutoff(&s.cell, 10.0);
        assert_eq!(wfc, (60, 90, 120));
        let rho = fft_dims_for_cutoff(&s.cell, 40.0); // 4·E_cut
        assert_eq!(rho, (120, 180, 240));
    }

    #[test]
    fn sphere_is_inversion_symmetric() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 5.0);
        let sph = GSphere::new(&s.cell, 5.0, dims);
        use std::collections::HashSet;
        let set: HashSet<[i32; 3]> = sph.miller.iter().copied().collect();
        assert_eq!(set.len(), sph.len(), "duplicate G vectors");
        for m in &sph.miller {
            assert!(set.contains(&[-m[0], -m[1], -m[2]]), "missing -G for {m:?}");
        }
        // G = 0 present and first (sorted by |G|²)
        assert_eq!(sph.miller[0], [0, 0, 0]);
        assert_eq!(sph.fft_index[0], 0);
    }

    #[test]
    fn sphere_counts_grow_with_cutoff() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let mut prev = 0;
        for ec in [1.0, 2.0, 4.0, 8.0] {
            let dims = fft_dims_for_cutoff(&s.cell, ec);
            let sph = GSphere::new(&s.cell, ec, dims);
            assert!(sph.len() > prev, "sphere must grow with cutoff");
            prev = sph.len();
            // all members respect the cutoff
            for &g2 in &sph.g2 {
                assert!(0.5 * g2 <= ec + 1e-9);
            }
        }
    }

    #[test]
    fn sphere_count_matches_volume_estimate() {
        // N_G ≈ Ω · (4/3)π G_max³ / (2π)³ for large cutoffs
        let s = silicon_cubic_supercell(1, 1, 1);
        let ec = 12.0;
        let dims = fft_dims_for_cutoff(&s.cell, ec);
        let sph = GSphere::new(&s.cell, ec, dims);
        let gmax = (2.0 * ec).sqrt();
        let est = s.cell.volume() * 4.0 / 3.0 * std::f64::consts::PI * gmax.powi(3)
            / (2.0 * std::f64::consts::PI).powi(3);
        let ratio = sph.len() as f64 / est;
        assert!((ratio - 1.0).abs() < 0.05, "count {} est {est}", sph.len());
    }

    #[test]
    fn grid_gvectors_consistent_with_sphere() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 4.0);
        let sph = GSphere::new(&s.cell, 4.0, dims);
        let grid = GridGVectors::new(&s.cell, dims);
        assert_eq!(grid.len(), dims.0 * dims.1 * dims.2);
        for (k, &idx) in sph.fft_index.iter().enumerate() {
            assert!((grid.g2[idx] - sph.g2[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn cross_grid_embedding() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let wdims = fft_dims_for_cutoff(&s.cell, 4.0);
        let ddims = fft_dims_for_cutoff(&s.cell, 16.0);
        let sph = GSphere::new(&s.cell, 4.0, wdims);
        let idx2 = sph.fft_index_in(ddims);
        let grid2 = GridGVectors::new(&s.cell, ddims);
        for (k, &idx) in idx2.iter().enumerate() {
            assert!((grid2.g2[idx] - sph.g2[k]).abs() < 1e-10);
        }
    }
}
