//! Gauge-invariant observables and sanity probes.
//!
//! The PT gauge is defined so that physical observables — anything that is
//! a function of the density matrix P = ΨΨ* — are untouched by the gauge
//! transformation (§2). These helpers quantify exactly that.

use pt_ham::KsSystem;
use pt_linalg::{gemm, CMat, Op};
use pt_num::c64;

/// Max deviation of `Ψ*Ψ` from the identity.
pub fn orthonormality_error(psi: &CMat) -> f64 {
    let nb = psi.ncols();
    let mut s = CMat::zeros(nb, nb);
    gemm(
        c64::ONE,
        psi,
        Op::ConjTrans,
        psi,
        Op::None,
        c64::ZERO,
        &mut s,
    );
    s.max_diff(&CMat::eye(nb))
}

/// Distance between the density matrices (projectors) spanned by two
/// orbital blocks: ‖P₁ − P₂‖_F via the subspace-angle identity
/// `‖P₁ − P₂‖_F² = 2 nb − 2 ‖Ψ₁* Ψ₂‖_F²` (blocks assumed orthonormal).
pub fn density_matrix_distance(psi1: &CMat, psi2: &CMat) -> f64 {
    assert_eq!(psi1.ncols(), psi2.ncols());
    let nb = psi1.ncols();
    let mut o = CMat::zeros(nb, nb);
    gemm(
        c64::ONE,
        psi1,
        Op::ConjTrans,
        psi2,
        Op::None,
        c64::ZERO,
        &mut o,
    );
    let cross: f64 = pt_num::reduce::sum_f64(o.data().iter().map(|z| z.norm_sqr()));
    (2.0 * nb as f64 - 2.0 * cross).max(0.0).sqrt()
}

/// Macroscopic current density `j(t) = (1/Ω) Σ_i f_i ⟨ψ_i|(−i∇ + A)|ψ_i⟩`
/// — the primary observable of a velocity-gauge laser simulation.
pub fn current_density(sys: &KsSystem, psi: &CMat, a_field: [f64; 3]) -> [f64; 3] {
    let g = &sys.grids;
    let mut j = [0.0; 3];
    for (b, &f) in sys.occupations.iter().enumerate() {
        for (c, gc) in psi.col(b).iter().zip(&g.sphere.g_cart) {
            let w = f * c.norm_sqr();
            j[0] += w * (gc[0] + a_field[0]);
            j[1] += w * (gc[1] + a_field[1]);
            j[2] += w * (gc[2] + a_field[2]);
        }
    }
    [j[0] / g.volume, j[1] / g.volume, j[2] / g.volume]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_orthonormal(ng: usize, nb: usize, seed: u64) -> CMat {
        let mut m = CMat::rand_normalized(ng, nb, seed);
        pt_linalg::orthonormalize_columns(&mut m, 0.0);
        m
    }

    #[test]
    fn orthonormal_block_has_zero_error() {
        let m = rand_orthonormal(40, 5, 3);
        assert!(orthonormality_error(&m) < 1e-12);
    }

    #[test]
    fn density_matrix_distance_gauge_invariance() {
        // rotating an orthonormal block by a unitary leaves P unchanged
        let m = rand_orthonormal(30, 4, 7);
        let h = {
            let a = rand_orthonormal(4, 4, 9);
            let mut h = CMat::zeros(4, 4);
            for j in 0..4 {
                for i in 0..4 {
                    h[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
                }
            }
            h
        };
        let (_w, u) = pt_linalg::eigh(&h);
        let mut rotated = CMat::zeros(30, 4);
        gemm(
            c64::ONE,
            &m,
            Op::None,
            &u,
            Op::None,
            c64::ZERO,
            &mut rotated,
        );
        assert!(density_matrix_distance(&m, &rotated) < 1e-10);
        // and two random subspaces are far apart
        let other = rand_orthonormal(30, 4, 99);
        assert!(density_matrix_distance(&m, &other) > 0.5);
    }
}
