//! The `Simulation` driver — one owner of the rt-TDDFT time loop.
//!
//! The paper's workflow is always the same pipeline: converge a ground
//! state, then drive a laser-coupled propagation while recording
//! gauge-invariant observables. [`SimulationBuilder`] configures the run
//! (system, laser, `dt`, step count, propagator, observers);
//! [`Simulation::run`] owns the loop, invokes the composable [`Observer`]
//! pipeline after every step, and returns a [`TimeSeries`] — the columnar
//! record the bench figure generators consume.
//!
//! ```no_run
//! # use pt_core::{SimulationBuilder, PtCnOptions, PtCnPropagator, LaserPulse};
//! # fn demo(sys: &pt_ham::KsSystem, psi0: pt_linalg::CMat) -> Result<(), pt_ham::PtError> {
//! let series = SimulationBuilder::new(sys)
//!     .initial_orbitals(psi0)
//!     .laser(LaserPulse::paper_380nm(
//!         0.02,
//!         pt_num::units::attosecond_to_au(200.0),
//!         pt_num::units::attosecond_to_au(100.0),
//!     ))
//!     .dt(pt_num::units::attosecond_to_au(25.0))
//!     .steps(10)
//!     .propagator(Box::new(PtCnPropagator::new(PtCnOptions::default())))
//!     .standard_observers()
//!     .build()?
//!     .run()?;
//! let j_z = series.channel("current_z").unwrap();
//! # let _ = j_z; Ok(())
//! # }
//! ```

use crate::checkpoint::{checkpoint_path, CheckpointPolicy, RunCheckpoint, RunCheckpointView};
use crate::laser::LaserPulse;
use crate::observables::{current_density, orthonormality_error};
use crate::propagator::{propagator_from_state, Propagator, PtCnPropagator, StepStats, TdState};
use pt_ham::{integrate, ExchangeMode, KsSystem, PtError};
use pt_linalg::CMat;
use pt_mpi::Wire;
use pt_par::{Parallelism, ThreadPool};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation for a running [`Simulation`]: cheap to clone,
/// safe to trip from any thread. The time loop checks it once per step;
/// on cancellation it writes a final checkpoint (when a checkpoint policy
/// is armed) and returns [`PtError::Cancelled`] — a cancelled-then-resumed
/// trajectory is bit-identical to an uninterrupted one.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation (idempotent; takes effect at the next step
    /// boundary).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Everything one committed step emitted — handed to the
/// [step tap](SimulationBuilder::step_tap) right after the observers ran,
/// so a live consumer (the `pt-serve` streaming hub, a progress bar) sees
/// the run incrementally instead of waiting for the final [`TimeSeries`].
pub struct StepUpdate<'a> {
    /// 0-based absolute step index (continues across a resume).
    pub step_index: usize,
    /// Post-step time (a.u.).
    pub t: f64,
    /// Vector potential at `t`.
    pub a_field: [f64; 3],
    /// The propagator's diagnostics for this step.
    pub stats: &'a StepStats,
    /// Every observer sample of this step, in emission order — the same
    /// `(channel, value)` pairs the series records.
    pub samples: &'a [(String, f64)],
}

/// A per-step callback observing committed steps (see [`StepUpdate`]).
pub type StepTap<'a> = Box<dyn FnMut(&StepUpdate<'_>) + Send + 'a>;

/// Everything an [`Observer`] may look at after one completed step.
pub struct ObserverContext<'a> {
    /// The Kohn–Sham problem.
    pub sys: &'a KsSystem,
    /// State after the step (`state.t` is the post-step time).
    pub state: &'a TdState,
    /// Vector potential at `state.t`.
    pub a_field: [f64; 3],
    /// Density of `state.psi`, precomputed once per step iff some observer
    /// declares [`Observer::needs_density`].
    pub rho: Option<&'a [f64]>,
    /// 0-based index of the completed step.
    pub step_index: usize,
    /// The propagator's diagnostics for this step.
    pub stats: &'a StepStats,
}

/// A composable per-step measurement.
///
/// Observers run in registration order after every accepted step and emit
/// named scalar channels into the [`TimeSeries`]. Object-safe, so
/// pipelines are `Vec<Box<dyn Observer>>`.
pub trait Observer {
    /// Identifier used in error messages.
    fn name(&self) -> &'static str;

    /// Whether this observer reads `ctx.rho`; the driver computes the
    /// density once per step only if some observer asks for it.
    fn needs_density(&self) -> bool {
        false
    }

    /// Measure: return `(channel, value)` samples for this step. An
    /// observer must emit the same channels every step.
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError>;
}

/// Records the total energy (channel `energy`).
#[derive(Default)]
pub struct EnergyObserver;

impl Observer for EnergyObserver {
    fn name(&self) -> &'static str {
        "energy"
    }
    fn needs_density(&self) -> bool {
        true
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let rho = ctx.rho.ok_or(PtError::InvalidConfig(
            "EnergyObserver needs the step density".into(),
        ))?;
        let e = ctx.sys.energies(&ctx.state.psi, rho, ctx.a_field).total();
        Ok(vec![("energy".into(), e)])
    }
}

/// Records the macroscopic current density (channels `current_x`,
/// `current_y`, `current_z`) — the primary observable of a velocity-gauge
/// laser run.
#[derive(Default)]
pub struct CurrentObserver;

impl Observer for CurrentObserver {
    fn name(&self) -> &'static str {
        "current"
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let j = current_density(ctx.sys, &ctx.state.psi, ctx.a_field);
        Ok(vec![
            ("current_x".into(), j[0]),
            ("current_y".into(), j[1]),
            ("current_z".into(), j[2]),
        ])
    }
}

/// Records the electron count `∫ρ` (channel `n_electrons`) and the
/// electronic dipole moment `∫ r ρ(r) dr` (channels `dipole_x/y/z`) — the
/// norm/dipole pair whose conservation and response diagnose a run.
#[derive(Default)]
pub struct DipoleNormObserver {
    /// Cartesian coordinates of every dense-grid point, built lazily on
    /// the first step (the grid never changes during a run).
    coords: Option<Vec<[f64; 3]>>,
}

impl Observer for DipoleNormObserver {
    fn name(&self) -> &'static str {
        "dipole-norm"
    }
    fn needs_density(&self) -> bool {
        true
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let rho = ctx.rho.ok_or(PtError::InvalidConfig(
            "DipoleNormObserver needs the step density".into(),
        ))?;
        let g = &ctx.sys.grids;
        let ne = integrate(g, rho);
        let dv = g.volume / g.n_dense() as f64;
        let coords = self.coords.get_or_insert_with(|| {
            let (nx, ny, nz) = g.fft_dense.dims();
            let cell = &ctx.sys.structure.cell;
            let mut coords = Vec::with_capacity(g.n_dense());
            for iz in 0..nz {
                for iy in 0..ny {
                    for ix in 0..nx {
                        coords.push(cell.frac_to_cart([
                            ix as f64 / nx as f64,
                            iy as f64 / ny as f64,
                            iz as f64 / nz as f64,
                        ]));
                    }
                }
            }
            coords
        });
        let mut d = [0.0f64; 3];
        for (w, r) in rho.iter().map(|&v| v * dv).zip(coords.iter()) {
            d[0] += w * r[0];
            d[1] += w * r[1];
            d[2] += w * r[2];
        }
        Ok(vec![
            ("n_electrons".into(), ne),
            ("dipole_x".into(), d[0]),
            ("dipole_y".into(), d[1]),
            ("dipole_z".into(), d[2]),
        ])
    }
}

/// Records `max |Ψ*Ψ − I|` (channel `orthonormality_error`).
#[derive(Default)]
pub struct OrthonormalityObserver;

impl Observer for OrthonormalityObserver {
    fn name(&self) -> &'static str {
        "orthonormality"
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        Ok(vec![(
            "orthonormality_error".into(),
            orthonormality_error(&ctx.state.psi),
        )])
    }
}

/// Columnar record of a run: per-step times, fields, propagator stats and
/// every observer channel. This is the interchange format between the
/// simulation driver and the bench figure generators.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Propagator name that produced this series.
    pub propagator: String,
    /// Post-step times (a.u.).
    pub t: Vec<f64>,
    /// Vector potential at each post-step time.
    pub a_field: Vec<[f64; 3]>,
    /// Per-step propagator diagnostics.
    pub stats: Vec<StepStats>,
    channels: BTreeMap<String, Vec<f64>>,
}

impl TimeSeries {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// An observer channel by name (`"energy"`, `"current_z"`, …), one
    /// value per step.
    pub fn channel(&self, name: &str) -> Option<&[f64]> {
        self.channels.get(name).map(Vec::as_slice)
    }

    /// Names of all recorded channels (sorted).
    pub fn channel_names(&self) -> Vec<&str> {
        self.channels.keys().map(String::as_str).collect()
    }

    fn push_sample(&mut self, name: String, value: f64, step: usize) -> Result<(), PtError> {
        // check before inserting so a failed push never leaves a phantom
        // empty channel behind (the partial series must stay whole-step)
        let len = self.channels.get(&name).map_or(0, Vec::len);
        if len != step {
            return Err(PtError::InvalidConfig(format!(
                "observer channel '{name}' emitted {len} values by step {step} — observers must emit the same channels every step"
            )));
        }
        self.channels.entry(name).or_default().push(value);
        Ok(())
    }

    fn close_step(&self, step: usize) -> Result<(), PtError> {
        for (name, col) in &self.channels {
            if col.len() != step + 1 {
                return Err(PtError::InvalidConfig(format!(
                    "observer channel '{name}' missing a value for step {step}"
                )));
            }
        }
        Ok(())
    }

    /// Rebuild a series from its captured parts (the checkpoint read
    /// path). Length mismatches are typed errors, so a doctored snapshot
    /// cannot smuggle in a ragged series.
    pub(crate) fn from_parts(
        propagator: String,
        t: Vec<f64>,
        a_field: Vec<[f64; 3]>,
        stats: Vec<StepStats>,
        channels: Vec<(String, Vec<f64>)>,
    ) -> Result<TimeSeries, PtError> {
        let n = t.len();
        if a_field.len() != n || stats.len() != n {
            return Err(PtError::InvalidConfig(format!(
                "series parts disagree: {} times, {} fields, {} stats",
                n,
                a_field.len(),
                stats.len()
            )));
        }
        let mut map = BTreeMap::new();
        for (name, col) in channels {
            if col.len() != n {
                return Err(PtError::InvalidConfig(format!(
                    "series channel '{name}' has {} values, expected {n}",
                    col.len()
                )));
            }
            if map.insert(name.clone(), col).is_some() {
                return Err(PtError::InvalidConfig(format!(
                    "series channel '{name}' appears twice"
                )));
            }
        }
        Ok(TimeSeries {
            propagator,
            t,
            a_field,
            stats,
            channels: map,
        })
    }

    /// Export as a [`pt_io::Table`] (one row per step: time, vector
    /// potential, per-step stats and every observer channel) — the bridge
    /// to `pt_io::export`'s JSON/CSV writers.
    pub fn to_table(&self) -> Result<pt_io::Table, PtError> {
        let mut table =
            pt_io::Table::new().meta("propagator", pt_io::Value::Str(self.propagator.clone()));
        table.column("t", self.t.clone())?;
        for (d, axis) in ["a_x", "a_y", "a_z"].iter().enumerate() {
            table.column(axis, self.a_field.iter().map(|a| a[d]).collect())?;
        }
        table.column(
            "scf_iterations",
            self.stats.iter().map(|s| s.scf_iterations as f64).collect(),
        )?;
        table.column(
            "h_applications",
            self.stats.iter().map(|s| s.h_applications as f64).collect(),
        )?;
        table.column(
            "rho_residual",
            self.stats.iter().map(|s| s.rho_residual).collect(),
        )?;
        table.column(
            "converged",
            self.stats
                .iter()
                .map(|s| if s.converged { 1.0 } else { 0.0 })
                .collect(),
        )?;
        for (name, col) in &self.channels {
            table.column(name, col.clone())?;
        }
        Ok(table)
    }

    /// Export the per-step wall-clock phase breakdown
    /// ([`StepStats::phases`]) as a [`pt_io::Table`] — the `metrics.json`
    /// payload a traced `pt-serve` job writes beside its Chrome trace.
    ///
    /// Deliberately a *separate* table from [`TimeSeries::to_table`]: that
    /// one is a bit-compared surface (resume tests, golden results), so
    /// wall-clock columns must never leak into it. Every column here is
    /// exactly zero when `pt_trace` was disarmed during the run.
    pub fn phase_table(&self) -> Result<pt_io::Table, PtError> {
        let mut table =
            pt_io::Table::new().meta("propagator", pt_io::Value::Str(self.propagator.clone()));
        table.column("step", (0..self.len()).map(|i| i as f64).collect())?;
        let phase = |get: fn(&crate::propagator::StepPhases) -> f64| -> Vec<f64> {
            self.stats.iter().map(|s| get(&s.phases)).collect()
        };
        table.column("wall", phase(|p| p.wall))?;
        table.column("h_apply", phase(|p| p.h_apply))?;
        table.column("residual", phase(|p| p.residual))?;
        table.column("mix", phase(|p| p.mix))?;
        table.column("density", phase(|p| p.density))?;
        table.column("ortho", phase(|p| p.ortho))?;
        table.column("ace_build", phase(|p| p.ace_build))?;
        table.column("other", phase(|p| p.other))?;
        Ok(table)
    }
}

/// Configures a [`Simulation`]. See the module docs for the full example.
pub struct SimulationBuilder<'a> {
    sys: &'a KsSystem,
    laser: Option<LaserPulse>,
    dt: Option<f64>,
    n_steps: Option<usize>,
    t0: f64,
    propagator: Option<Box<dyn Propagator>>,
    observers: Vec<Box<dyn Observer>>,
    initial: Option<CMat>,
    parallelism: Parallelism,
    ckpt_every_dir: Option<(usize, PathBuf)>,
    ckpt_keep: usize,
    ckpt_wire: Wire,
    cancel: Option<CancelToken>,
    tap: Option<StepTap<'a>>,
    exchange: Option<ExchangeMode>,
}

impl<'a> SimulationBuilder<'a> {
    /// Start configuring a run over `sys`.
    pub fn new(sys: &'a KsSystem) -> Self {
        SimulationBuilder {
            sys,
            laser: None,
            dt: None,
            n_steps: None,
            t0: 0.0,
            propagator: None,
            observers: Vec::new(),
            initial: None,
            parallelism: Parallelism::inherit(),
            ckpt_every_dir: None,
            ckpt_keep: 2,
            ckpt_wire: Wire::F64,
            cancel: None,
            tap: None,
            exchange: None,
        }
    }

    /// Couple a laser pulse (velocity gauge).
    pub fn laser(mut self, laser: LaserPulse) -> Self {
        self.laser = Some(laser);
        self
    }

    /// Time step (a.u.). Required.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Number of steps to take per [`Simulation::run`]. Required.
    pub fn steps(mut self, n: usize) -> Self {
        self.n_steps = Some(n);
        self
    }

    /// Starting time (default 0).
    pub fn start_time(mut self, t0: f64) -> Self {
        self.t0 = t0;
        self
    }

    /// Select the propagator (default: PT-CN with paper options — the
    /// distributed variant when the system carries a
    /// [`pt_ham::KsSystemBuilder::distributed`] config). Boxed so the
    /// choice can be made at runtime.
    pub fn propagator(mut self, p: Box<dyn Propagator>) -> Self {
        self.propagator = Some(p);
        self
    }

    /// Override the exchange evaluation mode for the default PT-CN
    /// propagator (serial or distributed): `Full` pair-FFT Fock, an
    /// `Ace { .. }` projector refreshed every K steps, or
    /// `AceMts { .. }` with local substeps on top. Defaults to the
    /// system's [`pt_ham::KsSystemBuilder::exchange_mode`]. Incompatible
    /// with an explicit [`SimulationBuilder::propagator`] — configure the
    /// propagator's own `exchange` field there instead.
    pub fn exchange_mode(mut self, mode: ExchangeMode) -> Self {
        self.exchange = Some(mode);
        self
    }

    /// Append an observer to the pipeline (runs in registration order).
    pub fn observer(mut self, o: Box<dyn Observer>) -> Self {
        self.observers.push(o);
        self
    }

    /// Append the standard pipeline: energy, current, dipole/norm,
    /// orthonormality.
    pub fn standard_observers(mut self) -> Self {
        self.observers.extend(standard_observer_pipeline());
        self
    }

    /// Emit a rolling snapshot into `dir` after every `every` completed
    /// steps (the file is `ckpt_<absolute step>.ptio`; the directory is
    /// created on first write). A killed run resumes from the newest one
    /// via [`Simulation::resume`] and — at the default
    /// [`Wire::F64`] payloads — continues **bit-identically** to an
    /// uninterrupted run.
    pub fn checkpoint_every(mut self, every: usize, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_every_dir = Some((every, dir.into()));
        self
    }

    /// How many rolling snapshots to retain (default 2; older files are
    /// pruned after each write).
    pub fn checkpoint_keep(mut self, keep: usize) -> Self {
        self.ckpt_keep = keep;
        self
    }

    /// Payload precision of the orbital-sized snapshot sections.
    /// [`Wire::F32`] halves those bytes — mirroring the §3.2 f32 wire
    /// optimization — but a resume from such a snapshot is only ~1e-7
    /// accurate, no longer bit-exact.
    pub fn checkpoint_wire(mut self, wire: Wire) -> Self {
        self.ckpt_wire = wire;
        self
    }

    /// Initial orbitals (usually SCF ground-state orbitals). Required.
    pub fn initial_orbitals(mut self, psi: CMat) -> Self {
        self.initial = Some(psi);
        self
    }

    /// Arm cooperative cancellation: the time loop checks the token once
    /// per step and, when tripped, writes a final checkpoint (if a
    /// checkpoint policy is configured) before returning
    /// [`PtError::Cancelled`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Install a per-step tap: called after every committed step with that
    /// step's [`StepUpdate`] (time, field, stats, every observer sample).
    /// The tap only observes — it cannot fail the run.
    pub fn step_tap(mut self, tap: impl FnMut(&StepUpdate<'_>) + Send + 'a) -> Self {
        self.tap = Some(Box::new(tap));
        self
    }

    /// Threading for this run. `Parallelism::threads(n)` pins a dedicated
    /// n-thread pool installed around the whole time loop; the default
    /// inherits the system's pool (`KsSystemBuilder::parallelism`) or,
    /// failing that, the surrounding pool (`PT_NUM_THREADS`).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Validate and assemble the [`Simulation`]. Misuse returns
    /// [`PtError`]; nothing on this path panics.
    pub fn build(self) -> Result<Simulation<'a>, PtError> {
        let dt = self
            .dt
            .ok_or_else(|| PtError::InvalidConfig("time step dt is required".into()))?;
        if !dt.is_finite() || dt <= 0.0 {
            return Err(PtError::InvalidConfig(format!(
                "time step must be positive and finite, got {dt}"
            )));
        }
        if !self.t0.is_finite() {
            return Err(PtError::InvalidConfig(format!(
                "start time must be finite, got {}",
                self.t0
            )));
        }
        let n_steps = self
            .n_steps
            .ok_or_else(|| PtError::InvalidConfig("step count is required".into()))?;
        if n_steps == 0 {
            return Err(PtError::InvalidConfig(
                "step count must be at least 1".into(),
            ));
        }
        let psi = self.initial.ok_or_else(|| {
            PtError::InvalidConfig("initial orbitals are required (run an SCF first)".into())
        })?;
        if psi.nrows() != self.sys.grids.ng() {
            return Err(PtError::ShapeMismatch {
                context: "initial orbital rows (plane waves)",
                expected: self.sys.grids.ng(),
                got: psi.nrows(),
            });
        }
        if psi.ncols() != self.sys.n_bands() {
            return Err(PtError::ShapeMismatch {
                context: "initial orbital columns (occupied bands)",
                expected: self.sys.n_bands(),
                got: psi.ncols(),
            });
        }
        if let Some(mode) = self.exchange {
            mode.validate()?;
            if self.propagator.is_some() {
                return Err(PtError::InvalidConfig(
                    "exchange_mode conflicts with an explicit propagator — set the \
                     propagator's own exchange field instead"
                        .into(),
                ));
            }
        }
        let propagator: Box<dyn Propagator> = match self.propagator {
            Some(p) => p,
            None if self.sys.distributed.is_some() => {
                // the system asked for a ranks × threads decomposition:
                // drive PT-CN through the virtual MPI runtime
                Box::new(crate::distributed::DistributedPtCnPropagator {
                    exchange: self.exchange,
                    ..Default::default()
                })
            }
            None => Box::new(PtCnPropagator {
                exchange: self.exchange,
                ..Default::default()
            }),
        };
        let checkpoint = match self.ckpt_every_dir {
            Some((every, dir)) => {
                let policy = CheckpointPolicy {
                    every,
                    dir,
                    keep: self.ckpt_keep,
                    wire: self.ckpt_wire,
                };
                policy.validate()?;
                Some(policy)
            }
            None => None,
        };
        Ok(Simulation {
            sys: self.sys,
            laser: self.laser,
            dt,
            n_steps,
            propagator,
            observers: self.observers,
            state: TdState { psi, t: self.t0 },
            partial: None,
            pool: self.parallelism.build_pool(),
            checkpoint,
            ckpt_written: Vec::new(),
            resume_base: None,
            cancel: self.cancel,
            tap: self.tap,
        })
    }
}

/// The standard observer pipeline (energy, current, dipole/norm,
/// orthonormality) — shared by [`SimulationBuilder::standard_observers`]
/// and [`Simulation::resume`].
fn standard_observer_pipeline() -> Vec<Box<dyn Observer>> {
    vec![
        Box::new(EnergyObserver),
        Box::new(CurrentObserver),
        Box::<DipoleNormObserver>::default(),
        Box::new(OrthonormalityObserver),
    ]
}

/// A configured rt-TDDFT run: owns the state, the propagator and the
/// observer pipeline.
pub struct Simulation<'a> {
    sys: &'a KsSystem,
    laser: Option<LaserPulse>,
    dt: f64,
    n_steps: usize,
    propagator: Box<dyn Propagator>,
    observers: Vec<Box<dyn Observer>>,
    state: TdState,
    partial: Option<TimeSeries>,
    pool: Option<Arc<ThreadPool>>,
    checkpoint: Option<CheckpointPolicy>,
    /// Snapshots THIS simulation wrote, oldest first — the rolling window
    /// `CheckpointPolicy::keep` prunes over. Scoped to the run on purpose:
    /// a directory shared with an earlier trajectory must never have that
    /// trajectory's files deleted (or counted) by this one.
    ckpt_written: Vec<PathBuf>,
    /// Steps restored from a snapshot; the next `run` continues *into*
    /// this series so the merged record matches an uninterrupted run.
    resume_base: Option<TimeSeries>,
    cancel: Option<CancelToken>,
    tap: Option<StepTap<'a>>,
}

impl<'a> Simulation<'a> {
    /// The current state (after `run`, the final state).
    pub fn state(&self) -> &TdState {
        &self.state
    }

    /// The configured step size (a.u.).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The record of every step completed before the last [`Simulation::run`]
    /// failed — the diagnostics leading up to the error, which are exactly
    /// what a post-mortem needs (the state has already advanced past those
    /// steps, so they cannot be re-recorded). Cleared when `run` is called
    /// again; `None` after a successful run.
    pub fn take_partial_series(&mut self) -> Option<TimeSeries> {
        self.partial.take()
    }

    /// Advance the configured number of steps, invoking the observer
    /// pipeline after each, and return the recorded series. Calling `run`
    /// again continues from the final state for another window. On error,
    /// the steps recorded so far stay retrievable via
    /// [`Simulation::take_partial_series`].
    ///
    /// The whole loop runs under the configured thread pool — this run's
    /// [`SimulationBuilder::parallelism`] override if set, else the
    /// system's ([`KsSystem::install`]).
    pub fn run(&mut self) -> Result<TimeSeries, PtError> {
        let sys = self.sys;
        match self.pool.clone() {
            Some(p) => p.install(|| self.run_inner()),
            None => sys.install(|| self.run_inner()),
        }
    }

    fn run_inner(&mut self) -> Result<TimeSeries, PtError> {
        // a resumed simulation continues into its restored series; the
        // absolute step index keeps counting from there, so observers and
        // channels line up with the uninterrupted run
        let mut series = self.resume_base.take().unwrap_or_else(|| TimeSeries {
            propagator: self.propagator.name().to_string(),
            ..TimeSeries::default()
        });
        let base = series.len();
        self.partial = None;
        let needs_rho = self.observers.iter().any(|o| o.needs_density());
        for local_step in 0..self.n_steps {
            let step_index = base + local_step;
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                // honor the cancellation at the step boundary: persist a
                // final snapshot so a later resume continues bit-exactly,
                // then surface the typed non-failure
                if let Some(policy) = self.checkpoint.clone() {
                    let remaining = self.n_steps - local_step;
                    if let Err(e) = self.write_checkpoint(&policy, &series, remaining, None) {
                        self.partial = Some(series);
                        return Err(e);
                    }
                }
                self.partial = Some(series);
                return Err(PtError::Cancelled {
                    completed_steps: step_index,
                });
            }
            let stats =
                match self
                    .propagator
                    .step(self.sys, self.laser.as_ref(), &mut self.state, self.dt)
                {
                    Ok(s) => s,
                    Err(e) => {
                        self.partial = Some(series);
                        return Err(e);
                    }
                };
            let a = crate::propagator::a_field(self.laser.as_ref(), self.state.t);
            let rho = if needs_rho {
                Some(self.sys.density(&self.state.psi))
            } else {
                None
            };
            // gather this step's samples first, commit only if every
            // observer succeeded — the partial series then always holds
            // whole steps
            let mut step_samples: Vec<(String, f64)> = Vec::new();
            let mut failure: Option<PtError> = None;
            {
                let ctx = ObserverContext {
                    sys: self.sys,
                    state: &self.state,
                    a_field: a,
                    rho: rho.as_deref(),
                    step_index,
                    stats: &stats,
                };
                for obs in &mut self.observers {
                    match obs.observe(&ctx) {
                        Ok(samples) => step_samples.extend(samples),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
            if failure.is_none() {
                let mut committed: Vec<String> = Vec::new();
                for (name, value) in &step_samples {
                    match series.push_sample(name.clone(), *value, step_index) {
                        Ok(()) => committed.push(name.clone()),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                if failure.is_none() {
                    if let Err(e) = series.close_step(step_index) {
                        failure = Some(e);
                    }
                }
                if failure.is_some() {
                    // roll back this step's samples so the partial series
                    // holds only whole steps
                    for n in &committed {
                        if let Some(col) = series.channels.get_mut(n) {
                            col.pop();
                        }
                    }
                }
            }
            if let Some(e) = failure {
                self.partial = Some(series);
                return Err(e);
            }
            if let Some(tap) = &mut self.tap {
                tap(&StepUpdate {
                    step_index,
                    t: self.state.t,
                    a_field: a,
                    stats: &stats,
                    samples: &step_samples,
                });
            }
            series.t.push(self.state.t);
            series.a_field.push(a);
            series.stats.push(stats);
            pt_trace::counter_add(pt_trace::Counter::StepsCommitted, 1);
            if let Some(policy) = &self.checkpoint {
                if (local_step + 1) % policy.every == 0 {
                    let policy = policy.clone();
                    let remaining = self.n_steps - (local_step + 1);
                    if let Err(e) = self.write_checkpoint(&policy, &series, remaining, rho) {
                        self.partial = Some(series);
                        return Err(e);
                    }
                }
            }
        }
        Ok(series)
    }

    /// Serialize the current run state into `policy.dir` (borrowing ψ, ρ
    /// and the series — no clones of orbital-sized data) and prune the
    /// oldest of this run's own snapshots past `policy.keep`. `rho` reuses
    /// the observer-step density when one was already computed.
    fn write_checkpoint(
        &mut self,
        policy: &CheckpointPolicy,
        series: &TimeSeries,
        steps_remaining: usize,
        rho: Option<Vec<f64>>,
    ) -> Result<(), PtError> {
        let _sp = pt_trace::span("checkpoint_write");
        pt_trace::counter_add(pt_trace::Counter::CheckpointWrites, 1);
        std::fs::create_dir_all(&policy.dir).map_err(|e| PtError::Io {
            path: policy.dir.display().to_string(),
            reason: e.to_string(),
        })?;
        let rho = match rho {
            Some(r) => r,
            None => self.sys.density(&self.state.psi),
        };
        let propagator = self.propagator.capture();
        let view = RunCheckpointView {
            signature: self.sys.signature(),
            steps_remaining,
            t: self.state.t,
            dt: self.dt,
            occupations: &self.sys.occupations,
            psi: &self.state.psi,
            // parallel-transport gauge: Φ = Ψ defines the exchange
            phi: self.sys.hybrid.map(|_| &self.state.psi),
            rho: &rho,
            laser: self.laser.as_ref(),
            propagator: &propagator,
            series,
        };
        let path = checkpoint_path(&policy.dir, series.len());
        view.write(&path, policy.wire)?;
        // a cancel right after a rolling boundary rewrites the same step's
        // file (atomically); don't double-track it or pruning would try to
        // delete it twice
        if self.ckpt_written.last() != Some(&path) {
            self.ckpt_written.push(path);
        }
        while self.ckpt_written.len() > policy.keep {
            let old = self.ckpt_written.remove(0);
            std::fs::remove_file(&old).map_err(|e| PtError::Io {
                path: old.display().to_string(),
                reason: e.to_string(),
            })?;
        }
        Ok(())
    }

    /// Reconstruct a killed run from a snapshot, with the standard
    /// observer pipeline and the propagator recorded in the snapshot.
    /// `run` on the result takes the remaining steps and returns the
    /// *full* series (restored + new steps) — bit-identical to an
    /// uninterrupted run when the snapshot was written at the default
    /// [`Wire::F64`] payloads and the original run used the standard
    /// observers.
    ///
    /// The snapshot must have been taken against a system of the same
    /// shape: the recorded [`pt_ham::SystemSignature`] and occupations are
    /// revalidated and a mismatch is a typed error.
    pub fn resume(sys: &'a KsSystem, path: impl AsRef<Path>) -> Result<Simulation<'a>, PtError> {
        Self::resume_with(sys, path, standard_observer_pipeline(), None)
    }

    /// [`Simulation::resume`] with a custom observer pipeline and/or an
    /// explicit propagator (required when the snapshot records a
    /// propagator this crate cannot reconstruct). For a bit-identical
    /// continuation the pipeline must emit the same channels as the
    /// original run's.
    pub fn resume_with(
        sys: &'a KsSystem,
        path: impl AsRef<Path>,
        observers: Vec<Box<dyn Observer>>,
        propagator: Option<Box<dyn Propagator>>,
    ) -> Result<Simulation<'a>, PtError> {
        let ck = RunCheckpoint::read(path)?;
        let want = sys.signature();
        if ck.signature != want {
            return Err(PtError::InvalidConfig(format!(
                "snapshot was taken on a different system: recorded {:?}, resuming against {:?}",
                ck.signature, want
            )));
        }
        let occ_match = ck.occupations.len() == sys.occupations.len()
            && ck
                .occupations
                .iter()
                .zip(&sys.occupations)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !occ_match {
            return Err(PtError::InvalidConfig(
                "snapshot occupations do not match the system's".into(),
            ));
        }
        if ck.psi.nrows() != sys.grids.ng() {
            return Err(PtError::ShapeMismatch {
                context: "snapshot orbital rows (plane waves)",
                expected: sys.grids.ng(),
                got: ck.psi.nrows(),
            });
        }
        if ck.psi.ncols() != sys.n_bands() {
            return Err(PtError::ShapeMismatch {
                context: "snapshot orbital columns (occupied bands)",
                expected: sys.n_bands(),
                got: ck.psi.ncols(),
            });
        }
        if ck.rho.len() != sys.grids.n_dense() {
            return Err(PtError::ShapeMismatch {
                context: "snapshot density on the dense grid",
                expected: sys.grids.n_dense(),
                got: ck.rho.len(),
            });
        }
        let propagator = match propagator {
            Some(p) => p,
            None => propagator_from_state(ck.propagator)?,
        };
        Ok(Simulation {
            sys,
            laser: ck.laser,
            dt: ck.dt,
            n_steps: ck.steps_remaining,
            propagator,
            observers,
            state: TdState {
                psi: ck.psi,
                t: ck.t,
            },
            partial: None,
            pool: None,
            checkpoint: None,
            ckpt_written: Vec::new(),
            resume_base: Some(ck.series),
            cancel: None,
            tap: None,
        })
    }

    /// Resume from the **newest valid** snapshot in `dir`: the
    /// crash-recovery orchestration (scan → validate → newest → resume) in
    /// one call. Files whose container fails to verify (truncated by the
    /// kill, corrupt) or whose schema this crate cannot read are skipped
    /// in favor of the next-older snapshot — their defects are typed, so
    /// skipping is safe. `Ok(None)` when the directory holds no usable
    /// snapshot (the caller should start the run fresh). Snapshots for a
    /// *different system* are a real error, not a skip: resuming an
    /// unrelated trajectory silently would be worse than failing.
    pub fn resume_latest(
        sys: &'a KsSystem,
        dir: impl AsRef<Path>,
    ) -> Result<Option<Simulation<'a>>, PtError> {
        let scan = pt_io::scan_snapshots(dir.as_ref())?;
        for path in scan.valid.iter().rev() {
            match Self::resume(sys, path) {
                Ok(sim) => return Ok(Some(sim)),
                Err(PtError::SnapshotFormat { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// The steps restored from the snapshot a resumed simulation will
    /// continue into (`None` once `run` has consumed them, or for a fresh
    /// simulation). Lets a supervisor republish the already-recorded
    /// prefix — e.g. to a streaming hub — before the run continues.
    pub fn restored_series(&self) -> Option<&TimeSeries> {
        self.resume_base.as_ref()
    }

    /// Arm cooperative cancellation on an existing (typically resumed)
    /// simulation — see [`SimulationBuilder::cancel_token`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Install a per-step tap on an existing (typically resumed)
    /// simulation — see [`SimulationBuilder::step_tap`].
    pub fn set_step_tap(&mut self, tap: impl FnMut(&StepUpdate<'_>) + Send + 'a) {
        self.tap = Some(Box::new(tap));
    }

    /// Turn checkpointing on for this (typically resumed) simulation:
    /// rolling [`Wire::F64`] snapshots into `dir` every `every` steps,
    /// keeping the newest two.
    pub fn checkpoint_every(
        mut self,
        every: usize,
        dir: impl Into<PathBuf>,
    ) -> Result<Simulation<'a>, PtError> {
        let policy = CheckpointPolicy {
            every,
            dir: dir.into(),
            keep: 2,
            wire: Wire::F64,
        };
        policy.validate()?;
        self.checkpoint = Some(policy);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_xc::XcKind;

    fn small_sys() -> KsSystem {
        KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_missing_and_malformed_configuration() {
        let sys = small_sys();
        let ng = sys.grids.ng();
        let nb = sys.n_bands();
        // missing dt
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // bad dt
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(-0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // zero steps
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(0)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // missing orbitals
        assert!(matches!(
            SimulationBuilder::new(&sys).dt(0.1).steps(1).build(),
            Err(PtError::InvalidConfig(_))
        ));
        // non-finite start time
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .start_time(f64::NAN)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // wrong orbital shape
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(3, nb))
                .build(),
            Err(PtError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb + 1))
                .build(),
            Err(PtError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn exchange_mode_flows_to_the_default_propagator_and_rejects_conflicts() {
        let sys = small_sys();
        let ng = sys.grids.ng();
        let nb = sys.n_bands();
        let mode = ExchangeMode::Ace {
            refresh_interval: 2,
        };
        // explicit propagator + exchange_mode is ambiguous: refuse
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .propagator(Box::new(PtCnPropagator::default()))
                .exchange_mode(mode)
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // zero interval is caught at build time
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .exchange_mode(ExchangeMode::Ace {
                    refresh_interval: 0
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // the default propagator carries the mode (visible in its capture)
        let sim = SimulationBuilder::new(&sys)
            .dt(0.1)
            .steps(1)
            .initial_orbitals(CMat::zeros(ng, nb))
            .exchange_mode(mode)
            .build()
            .unwrap();
        match sim.propagator.capture() {
            crate::propagator::PropagatorState::PtCn { exchange, .. } => {
                assert_eq!(exchange, Some(mode));
            }
            other => panic!("expected PtCn capture, got {other:?}"),
        }
    }

    #[test]
    fn failed_run_keeps_the_partial_series() {
        // an observer that errors on the third step: the two completed
        // steps' diagnostics must survive on the Simulation
        struct FailAt(usize);
        impl Observer for FailAt {
            fn name(&self) -> &'static str {
                "fail-at"
            }
            fn observe(
                &mut self,
                ctx: &ObserverContext<'_>,
            ) -> Result<Vec<(String, f64)>, PtError> {
                if ctx.step_index == self.0 {
                    Err(PtError::InvalidConfig("injected observer failure".into()))
                } else {
                    Ok(vec![("probe".into(), ctx.step_index as f64)])
                }
            }
        }
        let sys = small_sys();
        // identity-block initial orbitals are fine: we only exercise the
        // bookkeeping, and RK4 steps on any state
        let psi = CMat::from_fn(sys.grids.ng(), sys.n_bands(), |i, j| {
            if i == j {
                pt_num::c64::ONE
            } else {
                pt_num::c64::ZERO
            }
        });
        let mut sim = SimulationBuilder::new(&sys)
            .dt(0.01)
            .steps(5)
            .propagator(Box::new(crate::propagator::Rk4Propagator::default()))
            .observer(Box::new(FailAt(2)))
            .initial_orbitals(psi)
            .build()
            .unwrap();
        assert!(matches!(sim.run(), Err(PtError::InvalidConfig(_))));
        let partial = sim.take_partial_series().expect("partial series kept");
        assert_eq!(partial.len(), 2);
        assert_eq!(partial.channel("probe"), Some(&[0.0, 1.0][..]));
        // taking it drains it; a new run clears any stale partial
        assert!(sim.take_partial_series().is_none());
    }

    #[test]
    fn partial_series_stays_whole_when_a_channel_goes_missing() {
        // an observer that stops emitting one of its channels: close_step
        // errors, and the rollback must leave only whole steps behind
        struct Flaky;
        impl Observer for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn observe(
                &mut self,
                ctx: &ObserverContext<'_>,
            ) -> Result<Vec<(String, f64)>, PtError> {
                let mut out = vec![("x".to_string(), 1.0)];
                if ctx.step_index == 0 {
                    out.push(("w".to_string(), 2.0));
                }
                Ok(out)
            }
        }
        let sys = small_sys();
        let psi = CMat::from_fn(sys.grids.ng(), sys.n_bands(), |i, j| {
            if i == j {
                pt_num::c64::ONE
            } else {
                pt_num::c64::ZERO
            }
        });
        let mut sim = SimulationBuilder::new(&sys)
            .dt(0.01)
            .steps(3)
            .propagator(Box::new(crate::propagator::Rk4Propagator::default()))
            .observer(Box::new(Flaky))
            .initial_orbitals(psi)
            .build()
            .unwrap();
        assert!(matches!(sim.run(), Err(PtError::InvalidConfig(_))));
        let partial = sim.take_partial_series().unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.channel("x").map(<[f64]>::len), Some(1));
        assert_eq!(partial.channel("w").map(<[f64]>::len), Some(1));
    }

    #[test]
    fn time_series_channels_are_queryable() {
        let mut ts = TimeSeries::default();
        ts.push_sample("energy".into(), -1.0, 0).unwrap();
        ts.close_step(0).unwrap();
        ts.t.push(0.1);
        assert_eq!(ts.channel("energy"), Some(&[-1.0][..]));
        assert_eq!(ts.channel("missing"), None);
        assert_eq!(ts.channel_names(), vec!["energy"]);
        assert_eq!(ts.len(), 1);
        // inconsistent emission is a typed error
        assert!(ts.push_sample("late".into(), 0.0, 1).is_err());
    }
}
