//! The `Simulation` driver — one owner of the rt-TDDFT time loop.
//!
//! The paper's workflow is always the same pipeline: converge a ground
//! state, then drive a laser-coupled propagation while recording
//! gauge-invariant observables. [`SimulationBuilder`] configures the run
//! (system, laser, `dt`, step count, propagator, observers);
//! [`Simulation::run`] owns the loop, invokes the composable [`Observer`]
//! pipeline after every step, and returns a [`TimeSeries`] — the columnar
//! record the bench figure generators consume.
//!
//! ```no_run
//! # use pt_core::{SimulationBuilder, PtCnOptions, PtCnPropagator, LaserPulse};
//! # fn demo(sys: &pt_ham::KsSystem, psi0: pt_linalg::CMat) -> Result<(), pt_ham::PtError> {
//! let series = SimulationBuilder::new(sys)
//!     .initial_orbitals(psi0)
//!     .laser(LaserPulse::paper_380nm(
//!         0.02,
//!         pt_num::units::attosecond_to_au(200.0),
//!         pt_num::units::attosecond_to_au(100.0),
//!     ))
//!     .dt(pt_num::units::attosecond_to_au(25.0))
//!     .steps(10)
//!     .propagator(Box::new(PtCnPropagator::new(PtCnOptions::default())))
//!     .standard_observers()
//!     .build()?
//!     .run()?;
//! let j_z = series.channel("current_z").unwrap();
//! # let _ = j_z; Ok(())
//! # }
//! ```

use crate::laser::LaserPulse;
use crate::observables::{current_density, orthonormality_error};
use crate::propagator::{Propagator, PtCnPropagator, StepStats, TdState};
use pt_ham::{integrate, KsSystem, PtError};
use pt_linalg::CMat;
use pt_par::{Parallelism, ThreadPool};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything an [`Observer`] may look at after one completed step.
pub struct ObserverContext<'a> {
    /// The Kohn–Sham problem.
    pub sys: &'a KsSystem,
    /// State after the step (`state.t` is the post-step time).
    pub state: &'a TdState,
    /// Vector potential at `state.t`.
    pub a_field: [f64; 3],
    /// Density of `state.psi`, precomputed once per step iff some observer
    /// declares [`Observer::needs_density`].
    pub rho: Option<&'a [f64]>,
    /// 0-based index of the completed step.
    pub step_index: usize,
    /// The propagator's diagnostics for this step.
    pub stats: &'a StepStats,
}

/// A composable per-step measurement.
///
/// Observers run in registration order after every accepted step and emit
/// named scalar channels into the [`TimeSeries`]. Object-safe, so
/// pipelines are `Vec<Box<dyn Observer>>`.
pub trait Observer {
    /// Identifier used in error messages.
    fn name(&self) -> &'static str;

    /// Whether this observer reads `ctx.rho`; the driver computes the
    /// density once per step only if some observer asks for it.
    fn needs_density(&self) -> bool {
        false
    }

    /// Measure: return `(channel, value)` samples for this step. An
    /// observer must emit the same channels every step.
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError>;
}

/// Records the total energy (channel `energy`).
#[derive(Default)]
pub struct EnergyObserver;

impl Observer for EnergyObserver {
    fn name(&self) -> &'static str {
        "energy"
    }
    fn needs_density(&self) -> bool {
        true
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let rho = ctx.rho.ok_or(PtError::InvalidConfig(
            "EnergyObserver needs the step density".into(),
        ))?;
        let e = ctx.sys.energies(&ctx.state.psi, rho, ctx.a_field).total();
        Ok(vec![("energy".into(), e)])
    }
}

/// Records the macroscopic current density (channels `current_x`,
/// `current_y`, `current_z`) — the primary observable of a velocity-gauge
/// laser run.
#[derive(Default)]
pub struct CurrentObserver;

impl Observer for CurrentObserver {
    fn name(&self) -> &'static str {
        "current"
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let j = current_density(ctx.sys, &ctx.state.psi, ctx.a_field);
        Ok(vec![
            ("current_x".into(), j[0]),
            ("current_y".into(), j[1]),
            ("current_z".into(), j[2]),
        ])
    }
}

/// Records the electron count `∫ρ` (channel `n_electrons`) and the
/// electronic dipole moment `∫ r ρ(r) dr` (channels `dipole_x/y/z`) — the
/// norm/dipole pair whose conservation and response diagnose a run.
#[derive(Default)]
pub struct DipoleNormObserver {
    /// Cartesian coordinates of every dense-grid point, built lazily on
    /// the first step (the grid never changes during a run).
    coords: Option<Vec<[f64; 3]>>,
}

impl Observer for DipoleNormObserver {
    fn name(&self) -> &'static str {
        "dipole-norm"
    }
    fn needs_density(&self) -> bool {
        true
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        let rho = ctx.rho.ok_or(PtError::InvalidConfig(
            "DipoleNormObserver needs the step density".into(),
        ))?;
        let g = &ctx.sys.grids;
        let ne = integrate(g, rho);
        let dv = g.volume / g.n_dense() as f64;
        let coords = self.coords.get_or_insert_with(|| {
            let (nx, ny, nz) = g.fft_dense.dims();
            let cell = &ctx.sys.structure.cell;
            let mut coords = Vec::with_capacity(g.n_dense());
            for iz in 0..nz {
                for iy in 0..ny {
                    for ix in 0..nx {
                        coords.push(cell.frac_to_cart([
                            ix as f64 / nx as f64,
                            iy as f64 / ny as f64,
                            iz as f64 / nz as f64,
                        ]));
                    }
                }
            }
            coords
        });
        let mut d = [0.0f64; 3];
        for (w, r) in rho.iter().map(|&v| v * dv).zip(coords.iter()) {
            d[0] += w * r[0];
            d[1] += w * r[1];
            d[2] += w * r[2];
        }
        Ok(vec![
            ("n_electrons".into(), ne),
            ("dipole_x".into(), d[0]),
            ("dipole_y".into(), d[1]),
            ("dipole_z".into(), d[2]),
        ])
    }
}

/// Records `max |Ψ*Ψ − I|` (channel `orthonormality_error`).
#[derive(Default)]
pub struct OrthonormalityObserver;

impl Observer for OrthonormalityObserver {
    fn name(&self) -> &'static str {
        "orthonormality"
    }
    fn observe(&mut self, ctx: &ObserverContext<'_>) -> Result<Vec<(String, f64)>, PtError> {
        Ok(vec![(
            "orthonormality_error".into(),
            orthonormality_error(&ctx.state.psi),
        )])
    }
}

/// Columnar record of a run: per-step times, fields, propagator stats and
/// every observer channel. This is the interchange format between the
/// simulation driver and the bench figure generators.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Propagator name that produced this series.
    pub propagator: String,
    /// Post-step times (a.u.).
    pub t: Vec<f64>,
    /// Vector potential at each post-step time.
    pub a_field: Vec<[f64; 3]>,
    /// Per-step propagator diagnostics.
    pub stats: Vec<StepStats>,
    channels: BTreeMap<String, Vec<f64>>,
}

impl TimeSeries {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// An observer channel by name (`"energy"`, `"current_z"`, …), one
    /// value per step.
    pub fn channel(&self, name: &str) -> Option<&[f64]> {
        self.channels.get(name).map(Vec::as_slice)
    }

    /// Names of all recorded channels (sorted).
    pub fn channel_names(&self) -> Vec<&str> {
        self.channels.keys().map(String::as_str).collect()
    }

    fn push_sample(&mut self, name: String, value: f64, step: usize) -> Result<(), PtError> {
        // check before inserting so a failed push never leaves a phantom
        // empty channel behind (the partial series must stay whole-step)
        let len = self.channels.get(&name).map_or(0, Vec::len);
        if len != step {
            return Err(PtError::InvalidConfig(format!(
                "observer channel '{name}' emitted {len} values by step {step} — observers must emit the same channels every step"
            )));
        }
        self.channels.entry(name).or_default().push(value);
        Ok(())
    }

    fn close_step(&self, step: usize) -> Result<(), PtError> {
        for (name, col) in &self.channels {
            if col.len() != step + 1 {
                return Err(PtError::InvalidConfig(format!(
                    "observer channel '{name}' missing a value for step {step}"
                )));
            }
        }
        Ok(())
    }
}

/// Configures a [`Simulation`]. See the module docs for the full example.
pub struct SimulationBuilder<'a> {
    sys: &'a KsSystem,
    laser: Option<LaserPulse>,
    dt: Option<f64>,
    n_steps: Option<usize>,
    t0: f64,
    propagator: Option<Box<dyn Propagator>>,
    observers: Vec<Box<dyn Observer>>,
    initial: Option<CMat>,
    parallelism: Parallelism,
}

impl<'a> SimulationBuilder<'a> {
    /// Start configuring a run over `sys`.
    pub fn new(sys: &'a KsSystem) -> Self {
        SimulationBuilder {
            sys,
            laser: None,
            dt: None,
            n_steps: None,
            t0: 0.0,
            propagator: None,
            observers: Vec::new(),
            initial: None,
            parallelism: Parallelism::inherit(),
        }
    }

    /// Couple a laser pulse (velocity gauge).
    pub fn laser(mut self, laser: LaserPulse) -> Self {
        self.laser = Some(laser);
        self
    }

    /// Time step (a.u.). Required.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = Some(dt);
        self
    }

    /// Number of steps to take per [`Simulation::run`]. Required.
    pub fn steps(mut self, n: usize) -> Self {
        self.n_steps = Some(n);
        self
    }

    /// Starting time (default 0).
    pub fn start_time(mut self, t0: f64) -> Self {
        self.t0 = t0;
        self
    }

    /// Select the propagator (default: PT-CN with paper options — the
    /// distributed variant when the system carries a
    /// [`pt_ham::KsSystemBuilder::distributed`] config). Boxed so the
    /// choice can be made at runtime.
    pub fn propagator(mut self, p: Box<dyn Propagator>) -> Self {
        self.propagator = Some(p);
        self
    }

    /// Append an observer to the pipeline (runs in registration order).
    pub fn observer(mut self, o: Box<dyn Observer>) -> Self {
        self.observers.push(o);
        self
    }

    /// Append the standard pipeline: energy, current, dipole/norm,
    /// orthonormality.
    pub fn standard_observers(self) -> Self {
        self.observer(Box::new(EnergyObserver))
            .observer(Box::new(CurrentObserver))
            .observer(Box::new(DipoleNormObserver::default()))
            .observer(Box::new(OrthonormalityObserver))
    }

    /// Initial orbitals (usually SCF ground-state orbitals). Required.
    pub fn initial_orbitals(mut self, psi: CMat) -> Self {
        self.initial = Some(psi);
        self
    }

    /// Threading for this run. `Parallelism::threads(n)` pins a dedicated
    /// n-thread pool installed around the whole time loop; the default
    /// inherits the system's pool (`KsSystemBuilder::parallelism`) or,
    /// failing that, the surrounding pool (`PT_NUM_THREADS`).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Validate and assemble the [`Simulation`]. Misuse returns
    /// [`PtError`]; nothing on this path panics.
    pub fn build(self) -> Result<Simulation<'a>, PtError> {
        let dt = self
            .dt
            .ok_or_else(|| PtError::InvalidConfig("time step dt is required".into()))?;
        if !dt.is_finite() || dt <= 0.0 {
            return Err(PtError::InvalidConfig(format!(
                "time step must be positive and finite, got {dt}"
            )));
        }
        if !self.t0.is_finite() {
            return Err(PtError::InvalidConfig(format!(
                "start time must be finite, got {}",
                self.t0
            )));
        }
        let n_steps = self
            .n_steps
            .ok_or_else(|| PtError::InvalidConfig("step count is required".into()))?;
        if n_steps == 0 {
            return Err(PtError::InvalidConfig(
                "step count must be at least 1".into(),
            ));
        }
        let psi = self.initial.ok_or_else(|| {
            PtError::InvalidConfig("initial orbitals are required (run an SCF first)".into())
        })?;
        if psi.nrows() != self.sys.grids.ng() {
            return Err(PtError::ShapeMismatch {
                context: "initial orbital rows (plane waves)",
                expected: self.sys.grids.ng(),
                got: psi.nrows(),
            });
        }
        if psi.ncols() != self.sys.n_bands() {
            return Err(PtError::ShapeMismatch {
                context: "initial orbital columns (occupied bands)",
                expected: self.sys.n_bands(),
                got: psi.ncols(),
            });
        }
        let propagator = self.propagator.unwrap_or_else(|| {
            if self.sys.distributed.is_some() {
                // the system asked for a ranks × threads decomposition:
                // drive PT-CN through the virtual MPI runtime
                Box::new(crate::distributed::DistributedPtCnPropagator::default())
            } else {
                Box::new(PtCnPropagator::default())
            }
        });
        Ok(Simulation {
            sys: self.sys,
            laser: self.laser,
            dt,
            n_steps,
            propagator,
            observers: self.observers,
            state: TdState { psi, t: self.t0 },
            partial: None,
            pool: self.parallelism.build_pool(),
        })
    }
}

/// A configured rt-TDDFT run: owns the state, the propagator and the
/// observer pipeline.
pub struct Simulation<'a> {
    sys: &'a KsSystem,
    laser: Option<LaserPulse>,
    dt: f64,
    n_steps: usize,
    propagator: Box<dyn Propagator>,
    observers: Vec<Box<dyn Observer>>,
    state: TdState,
    partial: Option<TimeSeries>,
    pool: Option<Arc<ThreadPool>>,
}

impl<'a> Simulation<'a> {
    /// The current state (after `run`, the final state).
    pub fn state(&self) -> &TdState {
        &self.state
    }

    /// The configured step size (a.u.).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The record of every step completed before the last [`Simulation::run`]
    /// failed — the diagnostics leading up to the error, which are exactly
    /// what a post-mortem needs (the state has already advanced past those
    /// steps, so they cannot be re-recorded). Cleared when `run` is called
    /// again; `None` after a successful run.
    pub fn take_partial_series(&mut self) -> Option<TimeSeries> {
        self.partial.take()
    }

    /// Advance the configured number of steps, invoking the observer
    /// pipeline after each, and return the recorded series. Calling `run`
    /// again continues from the final state for another window. On error,
    /// the steps recorded so far stay retrievable via
    /// [`Simulation::take_partial_series`].
    ///
    /// The whole loop runs under the configured thread pool — this run's
    /// [`SimulationBuilder::parallelism`] override if set, else the
    /// system's ([`KsSystem::install`]).
    pub fn run(&mut self) -> Result<TimeSeries, PtError> {
        let sys = self.sys;
        match self.pool.clone() {
            Some(p) => p.install(|| self.run_inner()),
            None => sys.install(|| self.run_inner()),
        }
    }

    fn run_inner(&mut self) -> Result<TimeSeries, PtError> {
        let mut series = TimeSeries {
            propagator: self.propagator.name().to_string(),
            ..TimeSeries::default()
        };
        self.partial = None;
        let needs_rho = self.observers.iter().any(|o| o.needs_density());
        for step_index in 0..self.n_steps {
            let stats =
                match self
                    .propagator
                    .step(self.sys, self.laser.as_ref(), &mut self.state, self.dt)
                {
                    Ok(s) => s,
                    Err(e) => {
                        self.partial = Some(series);
                        return Err(e);
                    }
                };
            let a = crate::propagator::a_field(self.laser.as_ref(), self.state.t);
            let rho = if needs_rho {
                Some(self.sys.density(&self.state.psi))
            } else {
                None
            };
            // gather this step's samples first, commit only if every
            // observer succeeded — the partial series then always holds
            // whole steps
            let mut step_samples: Vec<(String, f64)> = Vec::new();
            let mut failure: Option<PtError> = None;
            {
                let ctx = ObserverContext {
                    sys: self.sys,
                    state: &self.state,
                    a_field: a,
                    rho: rho.as_deref(),
                    step_index,
                    stats: &stats,
                };
                for obs in &mut self.observers {
                    match obs.observe(&ctx) {
                        Ok(samples) => step_samples.extend(samples),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
            if failure.is_none() {
                let mut committed: Vec<String> = Vec::new();
                for (name, value) in step_samples {
                    match series.push_sample(name.clone(), value, step_index) {
                        Ok(()) => committed.push(name),
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                if failure.is_none() {
                    if let Err(e) = series.close_step(step_index) {
                        failure = Some(e);
                    }
                }
                if failure.is_some() {
                    // roll back this step's samples so the partial series
                    // holds only whole steps
                    for n in &committed {
                        if let Some(col) = series.channels.get_mut(n) {
                            col.pop();
                        }
                    }
                }
            }
            if let Some(e) = failure {
                self.partial = Some(series);
                return Err(e);
            }
            series.t.push(self.state.t);
            series.a_field.push(a);
            series.stats.push(stats);
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_xc::XcKind;

    fn small_sys() -> KsSystem {
        KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_missing_and_malformed_configuration() {
        let sys = small_sys();
        let ng = sys.grids.ng();
        let nb = sys.n_bands();
        // missing dt
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // bad dt
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(-0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // zero steps
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(0)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // missing orbitals
        assert!(matches!(
            SimulationBuilder::new(&sys).dt(0.1).steps(1).build(),
            Err(PtError::InvalidConfig(_))
        ));
        // non-finite start time
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .start_time(f64::NAN)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb))
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // wrong orbital shape
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(3, nb))
                .build(),
            Err(PtError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            SimulationBuilder::new(&sys)
                .dt(0.1)
                .steps(1)
                .initial_orbitals(CMat::zeros(ng, nb + 1))
                .build(),
            Err(PtError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn failed_run_keeps_the_partial_series() {
        // an observer that errors on the third step: the two completed
        // steps' diagnostics must survive on the Simulation
        struct FailAt(usize);
        impl Observer for FailAt {
            fn name(&self) -> &'static str {
                "fail-at"
            }
            fn observe(
                &mut self,
                ctx: &ObserverContext<'_>,
            ) -> Result<Vec<(String, f64)>, PtError> {
                if ctx.step_index == self.0 {
                    Err(PtError::InvalidConfig("injected observer failure".into()))
                } else {
                    Ok(vec![("probe".into(), ctx.step_index as f64)])
                }
            }
        }
        let sys = small_sys();
        // identity-block initial orbitals are fine: we only exercise the
        // bookkeeping, and RK4 steps on any state
        let psi = CMat::from_fn(sys.grids.ng(), sys.n_bands(), |i, j| {
            if i == j {
                pt_num::c64::ONE
            } else {
                pt_num::c64::ZERO
            }
        });
        let mut sim = SimulationBuilder::new(&sys)
            .dt(0.01)
            .steps(5)
            .propagator(Box::new(crate::propagator::Rk4Propagator::default()))
            .observer(Box::new(FailAt(2)))
            .initial_orbitals(psi)
            .build()
            .unwrap();
        assert!(matches!(sim.run(), Err(PtError::InvalidConfig(_))));
        let partial = sim.take_partial_series().expect("partial series kept");
        assert_eq!(partial.len(), 2);
        assert_eq!(partial.channel("probe"), Some(&[0.0, 1.0][..]));
        // taking it drains it; a new run clears any stale partial
        assert!(sim.take_partial_series().is_none());
    }

    #[test]
    fn partial_series_stays_whole_when_a_channel_goes_missing() {
        // an observer that stops emitting one of its channels: close_step
        // errors, and the rollback must leave only whole steps behind
        struct Flaky;
        impl Observer for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn observe(
                &mut self,
                ctx: &ObserverContext<'_>,
            ) -> Result<Vec<(String, f64)>, PtError> {
                let mut out = vec![("x".to_string(), 1.0)];
                if ctx.step_index == 0 {
                    out.push(("w".to_string(), 2.0));
                }
                Ok(out)
            }
        }
        let sys = small_sys();
        let psi = CMat::from_fn(sys.grids.ng(), sys.n_bands(), |i, j| {
            if i == j {
                pt_num::c64::ONE
            } else {
                pt_num::c64::ZERO
            }
        });
        let mut sim = SimulationBuilder::new(&sys)
            .dt(0.01)
            .steps(3)
            .propagator(Box::new(crate::propagator::Rk4Propagator::default()))
            .observer(Box::new(Flaky))
            .initial_orbitals(psi)
            .build()
            .unwrap();
        assert!(matches!(sim.run(), Err(PtError::InvalidConfig(_))));
        let partial = sim.take_partial_series().unwrap();
        assert_eq!(partial.len(), 1);
        assert_eq!(partial.channel("x").map(<[f64]>::len), Some(1));
        assert_eq!(partial.channel("w").map(<[f64]>::len), Some(1));
    }

    #[test]
    fn time_series_channels_are_queryable() {
        let mut ts = TimeSeries::default();
        ts.push_sample("energy".into(), -1.0, 0).unwrap();
        ts.close_step(0).unwrap();
        ts.t.push(0.1);
        assert_eq!(ts.channel("energy"), Some(&[-1.0][..]));
        assert_eq!(ts.channel("missing"), None);
        assert_eq!(ts.channel_names(), vec!["energy"]);
        assert_eq!(ts.len(), 1);
        // inconsistent emission is a typed error
        assert!(ts.push_sample("late".into(), 0.0, 1).is_err());
    }
}
