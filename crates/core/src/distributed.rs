//! Distributed PT-CN: Alg. 1 driven over the virtual MPI runtime with
//! rank-pinned compute pools — the paper's execution model (one MPI rank
//! per GPU plus a CPU-thread slice) reproduced in process.
//!
//! The propagator owns a persistent [`RankEngine`]: the rank threads and
//! their pinned `threads_per_rank`-wide pools are spawned **once**, on
//! the first step, and every subsequent `HΨ` application and residual
//! evaluation is a job submitted to the same parked team. Each `HΨ` job
//! applies the local (kinetic + V_loc + V_NL) part to the rank's cyclic
//! share of the bands and joins the Alg. 2 broadcast loop for the Fock
//! exchange ([`pt_ham::distributed_fock_apply`]); the fixed-point
//! residual runs G-space-parallel via [`pt_ham::distributed_residual`]
//! with its tree chunk reduction. The parallel-transport algebra around
//! them (density, Anderson mixing, re-orthonormalization) runs
//! replicated on the driver thread, exactly as in the serial propagator.
//!
//! The engine is runtime-only state: it is not cloned, captured, or
//! snapshotted — a resumed or cloned propagator rebuilds its team lazily
//! on the next step. If a rank dies, the panic surfaces on the driver
//! with the original payload (poison-cascade semantics) and later steps
//! on the dead engine are refused with [`PtError::EngineDown`].
//!
//! # Layout invariance
//!
//! With a `Wire::F64` wire the observables of a run are **bit-identical
//! for every `ranks × threads_per_rank` layout** (including 1 × 1): band
//! ownership only partitions work whose per-band results are computed
//! independently in a fixed order, the broadcast loop accumulates
//! `i = 0..N_e` identically on every rank count, and the residual's
//! tree reduction joins fixed 64-row chunks in ascending order
//! regardless of which rank owns them. A `Wire::F32` wire trades that
//! for half the broadcast volume (~1e-7 relative loss, §3.2
//! optimization 4).

use crate::anderson_c::BandAndersonMixer;
use crate::laser::LaserPulse;
use crate::propagator::{
    ace_ptcn_step, ptcn_step_with, resolve_exchange, AceRefreshState, Propagator, PropagatorState,
    PtCnOptions, StepKernels, StepStats, TdState,
};
use pt_ham::{
    distributed_fock_apply, distributed_residual, AceOperator, BandDistribution, DistributedConfig,
    ExchangeMode, KsSystem, PtError,
};
use pt_linalg::CMat;
use pt_mpi::{EnginePoisoned, RankEngine};

/// The PT-CN propagator with distributed `HΨ` applications on a
/// persistent rank engine.
///
/// The ranks × threads decomposition comes from the system
/// ([`pt_ham::KsSystemBuilder::distributed`]) unless overridden here;
/// without either, it falls back to the serial-equivalent 1 × 1 layout.
/// `SimulationBuilder` selects this propagator automatically when the
/// system carries a distributed config.
#[derive(Default)]
pub struct DistributedPtCnPropagator {
    /// PT-CN options (same knobs as the serial propagator).
    pub opts: PtCnOptions,
    /// Layout override; `None` reads `KsSystem::distributed`.
    pub config: Option<DistributedConfig>,
    pub(crate) mixer: Option<BandAndersonMixer>,
    /// The spawn-once rank team; built lazily on the first step so a
    /// freshly constructed (or resumed) propagator costs nothing until
    /// it actually runs.
    pub(crate) engine: Option<RankEngine>,
    /// Explicit exchange-mode override; `None` (the default) reads
    /// `KsSystem::exchange_mode` at step time.
    pub exchange: Option<ExchangeMode>,
    pub(crate) ace: Option<AceRefreshState>,
}

impl Clone for DistributedPtCnPropagator {
    /// Clones configuration, mixer history, and the ACE refresh state; the
    /// rank engine is runtime-only state and is rebuilt lazily by the clone.
    fn clone(&self) -> Self {
        DistributedPtCnPropagator {
            opts: self.opts,
            config: self.config,
            mixer: self.mixer.clone(),
            engine: None,
            exchange: self.exchange,
            ace: self.ace.clone(),
        }
    }
}

impl DistributedPtCnPropagator {
    /// Propagator with the given options, reading the layout from the
    /// system it steps.
    pub fn new(opts: PtCnOptions) -> Self {
        DistributedPtCnPropagator {
            opts,
            config: None,
            mixer: None,
            engine: None,
            exchange: None,
            ace: None,
        }
    }

    /// Pin an explicit exchange mode, overriding the system's.
    pub fn with_exchange(mut self, mode: ExchangeMode) -> Self {
        self.exchange = Some(mode);
        self
    }

    /// Pin an explicit layout, ignoring the system's.
    pub fn with_config(mut self, cfg: DistributedConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    fn resolve_config(&self, sys: &KsSystem) -> Result<DistributedConfig, PtError> {
        let cfg = self.config.or(sys.distributed).unwrap_or_default();
        cfg.validate()?;
        Ok(cfg)
    }
}

impl std::fmt::Debug for DistributedPtCnPropagator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedPtCnPropagator")
            .field("opts", &self.opts)
            .field("config", &self.config)
            .field("exchange", &self.exchange)
            .field(
                "anderson_history_len",
                &self.mixer.as_ref().map(BandAndersonMixer::history_len),
            )
            .field("engine", &self.engine)
            .finish()
    }
}

fn engine_down(e: EnginePoisoned) -> PtError {
    PtError::EngineDown { cause: e.cause }
}

/// Fold one engine job's per-job wire delta into the trace counters: the
/// ISSUE's "wire bytes" attribution without a second accounting layer —
/// `pt_mpi::CommStats` stays the single source of truth.
fn record_engine_job(delta: &pt_mpi::StatsSnapshot) {
    pt_trace::counter_add(pt_trace::Counter::EngineJobs, 1);
    pt_trace::counter_add(pt_trace::Counter::WireBytes, delta.total_bytes());
}

/// Reuse the parked rank team when it matches `cfg`; build it on first
/// use or after a layout/wire change. A poisoned engine is never reused
/// or silently replaced — the caller gets the typed error so the failure
/// stays visible.
fn acquire_engine(
    slot: &mut Option<RankEngine>,
    cfg: DistributedConfig,
) -> Result<&mut RankEngine, PtError> {
    let stale = match slot {
        Some(e) => {
            if let Some(cause) = e.poison_cause() {
                return Err(PtError::EngineDown {
                    cause: cause.to_string(),
                });
            }
            e.layout() != cfg.layout() || e.wire() != cfg.wire
        }
        None => false,
    };
    if stale {
        *slot = None;
    }
    Ok(match slot {
        Some(e) => e,
        None => slot.insert(RankEngine::new(cfg.layout(), cfg.wire)),
    })
}

/// One distributed `H[ρ(Ψ), Ψ] Ψ` application: local parts rank-parallel
/// by band, exchange either via the Alg. 2 broadcast loop or — with a
/// frozen ACE projector — via the rank-local `−ξ(ξ^H ψ)` projector apply.
/// Results gather back into the full band-major block. Runs as one job on
/// the parked rank team — no threads are spawned here.
///
/// In the ACE branch ξ lives on the driver and reaches every rank by
/// shared-memory reference: the wire carries **no pair FFTs and no
/// broadcast bands at all**, and because the projector apply is
/// self-contained per band, the output bits match the serial ACE apply
/// for every layout.
pub(crate) fn distributed_apply_h(
    engine: &mut RankEngine,
    sys: &KsSystem,
    cfg: DistributedConfig,
    rho: &[f64],
    psi: &CMat,
    a: [f64; 3],
    ace: Option<&AceOperator>,
) -> Result<CMat, PtError> {
    let kernel = match (&sys.hybrid, ace) {
        (Some(_), None) => Some(sys.exchange_kernel()?),
        _ => None,
    };
    // the Fock-free Hamiltonian every rank applies to its own bands; the
    // exchange part is handled by the distributed broadcast loop instead
    let h_local = sys.local_hamiltonian(rho, a)?;
    let ng = sys.grids.ng();
    let dist = BandDistribution {
        n_bands: psi.ncols(),
        n_ranks: cfg.ranks,
    };
    let grids = &sys.grids;
    let h_ref = &h_local;
    let alpha = sys.hybrid.map(|h| h.alpha);
    let sp = pt_trace::span("engine_run");
    let (blocks, wire_stats) = engine
        .run(move |comm| {
            let psi_local = dist.take_local(comm.rank(), psi);
            let mut out = CMat::zeros(ng, psi_local.ncols());
            h_ref.apply_block(&psi_local, &mut out);
            if let Some(op) = ace {
                // frozen compressed exchange on the rank's own bands
                op.apply_block(&psi_local, &mut out);
            } else if let (Some(alpha), Some(kernel)) = (alpha, kernel) {
                // parallel-transport gauge: Φ = Ψ defines the exchange
                let vx = distributed_fock_apply(
                    comm, grids, dist, &psi_local, &psi_local, alpha, kernel,
                );
                for (o, v) in out.data_mut().iter_mut().zip(vx.data()) {
                    *o += *v;
                }
            }
            out
        })
        .map_err(engine_down)?;
    drop(sp);
    record_engine_job(&wire_stats);
    // gather: rank r's local columns are its cyclic bands
    let mut hpsi = CMat::zeros(ng, psi.ncols());
    for (r, block) in blocks.iter().enumerate() {
        for (lj, &b) in dist.local_bands(r).iter().enumerate() {
            hpsi.col_mut(b).copy_from_slice(block.col(lj));
        }
    }
    Ok(hpsi)
}

/// Distributed ACE build: the rank team computes `W = V_X Φ` with the
/// Alg. 2 broadcast loop (the one place pair FFTs still run under ACE —
/// once per refresh instead of once per fixed-point iteration), the
/// driver gathers W band-by-band and does the small `−Φ^H W` Cholesky +
/// TRSM factorization. The gather is in ascending band order and the
/// factorization is layout-independent, so ξ is bit-identical across
/// layouts whenever W is — which `distributed_fock_apply` guarantees.
pub(crate) fn distributed_build_ace(
    engine: &mut RankEngine,
    sys: &KsSystem,
    cfg: DistributedConfig,
    phi: &CMat,
) -> Result<AceOperator, PtError> {
    let hy = sys.hybrid.ok_or(PtError::MissingExchangeOrbitals)?;
    let kernel = sys.exchange_kernel()?;
    let ng = sys.grids.ng();
    let dist = BandDistribution {
        n_bands: phi.ncols(),
        n_ranks: cfg.ranks,
    };
    let grids = &sys.grids;
    let alpha = hy.alpha;
    let sp = pt_trace::span("engine_run");
    let (blocks, wire_stats) = engine
        .run(move |comm| {
            let phi_local = dist.take_local(comm.rank(), phi);
            distributed_fock_apply(comm, grids, dist, &phi_local, &phi_local, alpha, kernel)
        })
        .map_err(engine_down)?;
    drop(sp);
    record_engine_job(&wire_stats);
    let mut w = CMat::zeros(ng, phi.ncols());
    for (r, block) in blocks.iter().enumerate() {
        for (lj, &b) in dist.local_bands(r).iter().enumerate() {
            w.col_mut(b).copy_from_slice(block.col(lj));
        }
    }
    AceOperator::from_w(phi, w)
}

/// The engine-backed execution strategy handed to [`ptcn_step_with`]:
/// `HΨ` and the fixed-point residual both run as jobs on the same
/// parked rank team.
struct EngineKernels<'e> {
    engine: &'e mut RankEngine,
    cfg: DistributedConfig,
}

impl StepKernels for EngineKernels<'_> {
    fn apply_h(
        &mut self,
        sys: &KsSystem,
        rho: &[f64],
        psi: &CMat,
        a: [f64; 3],
        ace: Option<&AceOperator>,
    ) -> Result<CMat, PtError> {
        distributed_apply_h(self.engine, sys, self.cfg, rho, psi, a, ace)
    }

    fn build_ace(&mut self, sys: &KsSystem, phi: &CMat) -> Result<AceOperator, PtError> {
        distributed_build_ace(self.engine, sys, self.cfg, phi)
    }

    /// G-space-parallel residual (Alg. 3): each rank evaluates its sphere
    /// rows, the Ψ*HΨ overlap combines over the chunk reduction tree, and
    /// the per-band columns gather back into the full block.
    fn residual(
        &mut self,
        psi_f: &CMat,
        hpsi_f: &CMat,
        psi_half: &CMat,
        dt: f64,
    ) -> Result<CMat, PtError> {
        let (ng, nb) = (psi_f.nrows(), psi_f.ncols());
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: self.cfg.ranks,
        };
        let sp = pt_trace::span("engine_run");
        let (blocks, wire_stats) = self
            .engine
            .run(move |comm| {
                let rank = comm.rank();
                let take = |m: &CMat| dist.take_local(rank, m);
                distributed_residual(
                    comm,
                    dist,
                    ng,
                    &take(psi_f),
                    &take(hpsi_f),
                    &take(psi_half),
                    dt,
                )
            })
            .map_err(engine_down)?;
        drop(sp);
        record_engine_job(&wire_stats);
        let mut resid = CMat::zeros(ng, nb);
        for (r, block) in blocks.iter().enumerate() {
            for (lj, &b) in dist.local_bands(r).iter().enumerate() {
                resid.col_mut(b).copy_from_slice(block.col(lj));
            }
        }
        Ok(resid)
    }
}

impl Propagator for DistributedPtCnPropagator {
    fn name(&self) -> &'static str {
        "pt-cn-dist"
    }

    /// One PT-CN step with every `HΨ` and residual submitted to the
    /// persistent ranks × threads team (spawned on the first step).
    fn step(
        &mut self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        state: &mut TdState,
        dt: f64,
    ) -> Result<StepStats, PtError> {
        let cfg = self.resolve_config(sys)?;
        let mode = resolve_exchange(self.exchange, sys)?;
        let engine = acquire_engine(&mut self.engine, cfg)?;
        let mut kernels = EngineKernels { engine, cfg };
        let sp = pt_trace::span("ptcn_step");
        let mut stats = match mode {
            ExchangeMode::Full => ptcn_step_with(
                &self.opts,
                sys,
                laser,
                state,
                dt,
                &mut self.mixer,
                &mut kernels,
                None,
                None,
                None,
                None,
            ),
            mode => ace_ptcn_step(
                &self.opts,
                sys,
                laser,
                state,
                dt,
                mode.refresh_interval()
                    .expect("invariant: the non-Full match arm only sees ACE modes, which carry an interval"),
                mode.inner_substeps(),
                &mut self.mixer,
                &mut self.ace,
                &mut kernels,
            ),
        }?;
        stats.phases.reconcile(sp.finish_secs());
        Ok(stats)
    }

    fn capture(&self) -> PropagatorState {
        PropagatorState::PtCnDistributed {
            opts: self.opts,
            config: self.config,
            anderson: self.mixer.as_ref().map(BandAndersonMixer::state),
            exchange: self.exchange,
            ace: self.ace.as_ref().map(AceRefreshState::capture),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_mpi::Wire;
    use pt_xc::XcKind;

    fn hybrid_sys(cfg: Option<DistributedConfig>) -> KsSystem {
        let mut b = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Pbe)
            .hybrid(pt_ham::HybridConfig::hse06())
            .occupations(vec![2.0; 4]);
        if let Some(c) = cfg {
            b = b.distributed(c);
        }
        b.build().unwrap()
    }

    fn engine_for(cfg: DistributedConfig) -> RankEngine {
        RankEngine::new(cfg.layout(), cfg.wire)
    }

    #[test]
    fn distributed_apply_matches_serial_hamiltonian_to_tolerance() {
        // same operator, different Fock accumulation order: equal to
        // reduction accuracy, not bits
        let sys = hybrid_sys(None);
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 17);
        let rho = sys.density(&psi);
        let h = sys.hamiltonian(&rho, Some(&psi), [0.0; 3]).unwrap();
        let mut want = CMat::zeros(psi.nrows(), psi.ncols());
        h.apply_block(&psi, &mut want);
        for ranks in [1usize, 2, 3] {
            let cfg = DistributedConfig::new(ranks, 1);
            let mut eng = engine_for(cfg);
            let got = distributed_apply_h(&mut eng, &sys, cfg, &rho, &psi, [0.0; 3], None).unwrap();
            let err = want.max_diff(&got);
            assert!(err < 1e-10, "ranks={ranks}: {err}");
        }
    }

    #[test]
    fn distributed_apply_is_bit_identical_across_layouts() {
        let sys = hybrid_sys(None);
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 29);
        let rho = sys.density(&psi);
        let base = DistributedConfig::new(1, 1);
        let reference = distributed_apply_h(
            &mut engine_for(base),
            &sys,
            base,
            &rho,
            &psi,
            [0.0; 3],
            None,
        )
        .unwrap();
        for (ranks, threads) in [(2, 1), (2, 2), (3, 2), (1, 4)] {
            let cfg = DistributedConfig::new(ranks, threads);
            let mut eng = engine_for(cfg);
            // two applications on the same engine: the parked team is
            // reused and the second call's bits must not drift
            let got = distributed_apply_h(&mut eng, &sys, cfg, &rho, &psi, [0.0; 3], None).unwrap();
            let again =
                distributed_apply_h(&mut eng, &sys, cfg, &rho, &psi, [0.0; 3], None).unwrap();
            for ((x, y), z) in reference.data().iter().zip(got.data()).zip(again.data()) {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{ranks}x{threads}: {x:?} vs {y:?}"
                );
                assert!(
                    y.re.to_bits() == z.re.to_bits() && y.im.to_bits() == z.im.to_bits(),
                    "{ranks}x{threads} reuse: {y:?} vs {z:?}"
                );
            }
        }
    }

    #[test]
    fn distributed_ace_build_and_apply_are_layout_invariant_bits() {
        // ξ built via the Alg. 2 broadcast loop must be bit-identical for
        // every layout (distributed_fock_apply is layout-invariant and the
        // driver-side Cholesky/trsm never sees the layout), and the ACE
        // H-apply with that ξ must match the serial kernel's bits exactly.
        let sys = hybrid_sys(None);
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 53);
        let rho = sys.density(&psi);
        let base = DistributedConfig::new(1, 1);
        let xi_ref = distributed_build_ace(&mut engine_for(base), &sys, base, &psi)
            .unwrap()
            .xi()
            .clone();
        let serial_ace = AceOperator::from_xi(xi_ref.clone());
        let want = crate::propagator::serial_apply_h(&sys, &rho, &psi, [0.0; 3], Some(&serial_ace))
            .unwrap();
        for (ranks, threads) in [(2usize, 1usize), (3, 2), (1, 4)] {
            let cfg = DistributedConfig::new(ranks, threads);
            let mut eng = engine_for(cfg);
            let ace = distributed_build_ace(&mut eng, &sys, cfg, &psi).unwrap();
            assert_eq!(
                ace.xi().max_diff(&xi_ref),
                0.0,
                "{ranks}x{threads}: distributed ξ must be layout-invariant"
            );
            let got =
                distributed_apply_h(&mut eng, &sys, cfg, &rho, &psi, [0.0; 3], Some(&ace)).unwrap();
            for (x, y) in want.data().iter().zip(got.data()) {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{ranks}x{threads}: ACE apply {x:?} vs serial {y:?}"
                );
            }
        }
    }

    #[test]
    fn distributed_ace_step_advances_and_captures_the_projector() {
        let sys = hybrid_sys(Some(DistributedConfig::new(2, 1)));
        let gs = pt_scf::scf_loop(&sys, pt_scf::ScfOptions::default()).unwrap();
        let mut prop = DistributedPtCnPropagator::default().with_exchange(ExchangeMode::Ace {
            refresh_interval: 2,
        });
        let mut state = TdState::new(gs.orbitals.clone());
        let dt = pt_num::units::attosecond_to_au(25.0);
        let s1 = prop.step(&sys, None, &mut state, dt).unwrap();
        assert!(s1.converged);
        let s2 = prop.step(&sys, None, &mut state, dt).unwrap();
        assert!(s2.converged);
        match prop.capture() {
            PropagatorState::PtCnDistributed { exchange, ace, .. } => {
                assert_eq!(
                    exchange,
                    Some(ExchangeMode::Ace {
                        refresh_interval: 2
                    })
                );
                let cap = ace.expect("two ACE steps must leave a captured projector");
                assert_eq!(cap.steps_since_refresh, 2, "interval-2 window exhausted");
                assert_eq!(cap.xi.nrows(), sys.grids.ng());
            }
            other => panic!("expected PtCnDistributed, got {other:?}"),
        }
    }

    #[test]
    fn propagator_reads_layout_from_the_system() {
        let sys = hybrid_sys(Some(DistributedConfig::new(2, 2)));
        let mut prop = DistributedPtCnPropagator::default();
        assert_eq!(
            prop.resolve_config(&sys).unwrap(),
            DistributedConfig::new(2, 2)
        );
        // override wins
        prop = prop.with_config(DistributedConfig::new(3, 1).wire(Wire::F32));
        assert_eq!(
            prop.resolve_config(&sys).unwrap(),
            DistributedConfig::new(3, 1).wire(Wire::F32)
        );
        // no config anywhere: serial-equivalent default
        let plain = hybrid_sys(None);
        assert_eq!(
            DistributedPtCnPropagator::default()
                .resolve_config(&plain)
                .unwrap(),
            DistributedConfig::default()
        );
    }

    #[test]
    fn acquire_rebuilds_only_on_layout_or_wire_change() {
        let mut slot: Option<RankEngine> = None;
        let cfg = DistributedConfig::new(2, 1);
        acquire_engine(&mut slot, cfg).unwrap();
        let before = pt_mpi::rank_threads_spawned();
        acquire_engine(&mut slot, cfg).unwrap();
        assert_eq!(
            pt_mpi::rank_threads_spawned(),
            before,
            "matching layout must reuse the parked team"
        );
        acquire_engine(&mut slot, DistributedConfig::new(3, 1)).unwrap();
        assert_eq!(slot.as_ref().unwrap().layout().ranks, 3);
        acquire_engine(&mut slot, DistributedConfig::new(3, 1).wire(Wire::F32)).unwrap();
        assert_eq!(slot.as_ref().unwrap().wire(), Wire::F32);
    }

    #[test]
    fn a_poisoned_engine_yields_the_typed_engine_down_error() {
        let cfg = DistributedConfig::new(2, 1);
        let mut eng = engine_for(cfg);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eng.run(|comm| {
                if comm.rank() == 1 {
                    panic!("injected rank failure in the propagator engine");
                }
                comm.barrier();
            })
        }));
        assert!(boom.is_err(), "the injected rank panic must surface");
        let mut prop = DistributedPtCnPropagator::default().with_config(cfg);
        prop.engine = Some(eng);
        let sys = hybrid_sys(None);
        let mut state = TdState::new(CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 41));
        let err = prop.step(&sys, None, &mut state, 25.0).unwrap_err();
        match err {
            PtError::EngineDown { cause } => {
                assert!(
                    cause.contains("injected rank failure"),
                    "cause must carry the original payload, got: {cause}"
                );
            }
            other => panic!("expected EngineDown, got {other:?}"),
        }
    }
}
