//! Distributed PT-CN: Alg. 1 driven over the virtual MPI runtime with
//! rank-pinned compute pools — the paper's execution model (one MPI rank
//! per GPU plus a CPU-thread slice) reproduced in process.
//!
//! Each `HΨ` application inside the PT-CN fixed point fans out over
//! `ranks` virtual-MPI rank threads: every rank applies the local
//! (kinetic + V_loc + V_NL) part to its cyclic share of the bands and
//! joins the Alg. 2 broadcast loop for the Fock exchange
//! ([`pt_ham::distributed_fock_apply`]), all on its own pinned
//! `threads_per_rank`-wide pool. The parallel-transport algebra around it
//! (density, overlap, Anderson mixing, re-orthonormalization) runs
//! replicated on the driver thread, exactly as in the serial propagator.
//!
//! # Layout invariance
//!
//! With a `Wire::F64` wire the observables of a run are **bit-identical
//! for every `ranks × threads_per_rank` layout** (including 1 × 1): band
//! ownership only partitions work whose per-band results are computed
//! independently in a fixed order, and the broadcast loop accumulates
//! `i = 0..N_e` identically on every rank count. A `Wire::F32` wire
//! trades that for half the broadcast volume (~1e-7 relative loss, §3.2
//! optimization 4).

use crate::anderson_c::BandAndersonMixer;
use crate::laser::LaserPulse;
use crate::propagator::{
    ptcn_step_with, Propagator, PropagatorState, PtCnOptions, StepStats, TdState,
};
use pt_ham::{distributed_fock_apply, BandDistribution, DistributedConfig, KsSystem, PtError};
use pt_linalg::CMat;
use pt_mpi::run_ranks_pinned;

/// The PT-CN propagator with distributed `HΨ` applications.
///
/// The ranks × threads decomposition comes from the system
/// ([`pt_ham::KsSystemBuilder::distributed`]) unless overridden here;
/// without either, it falls back to the serial-equivalent 1 × 1 layout.
/// `SimulationBuilder` selects this propagator automatically when the
/// system carries a distributed config.
#[derive(Clone, Default)]
pub struct DistributedPtCnPropagator {
    /// PT-CN options (same knobs as the serial propagator).
    pub opts: PtCnOptions,
    /// Layout override; `None` reads `KsSystem::distributed`.
    pub config: Option<DistributedConfig>,
    pub(crate) mixer: Option<BandAndersonMixer>,
}

impl DistributedPtCnPropagator {
    /// Propagator with the given options, reading the layout from the
    /// system it steps.
    pub fn new(opts: PtCnOptions) -> Self {
        DistributedPtCnPropagator {
            opts,
            config: None,
            mixer: None,
        }
    }

    /// Pin an explicit layout, ignoring the system's.
    pub fn with_config(mut self, cfg: DistributedConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    fn resolve_config(&self, sys: &KsSystem) -> Result<DistributedConfig, PtError> {
        let cfg = self.config.or(sys.distributed).unwrap_or_default();
        cfg.validate()?;
        Ok(cfg)
    }
}

impl std::fmt::Debug for DistributedPtCnPropagator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedPtCnPropagator")
            .field("opts", &self.opts)
            .field("config", &self.config)
            .field(
                "anderson_history_len",
                &self.mixer.as_ref().map(BandAndersonMixer::history_len),
            )
            .finish()
    }
}

/// One distributed `H[ρ(Ψ), Ψ] Ψ` application: local parts rank-parallel
/// by band, Fock exchange via the Alg. 2 broadcast loop, results gathered
/// back into the full band-major block.
pub(crate) fn distributed_apply_h(
    sys: &KsSystem,
    cfg: DistributedConfig,
    rho: &[f64],
    psi: &CMat,
    a: [f64; 3],
) -> Result<CMat, PtError> {
    let kernel = match &sys.hybrid {
        Some(_) => Some(sys.exchange_kernel()?),
        None => None,
    };
    // the Fock-free Hamiltonian every rank applies to its own bands; the
    // exchange part is handled by the distributed broadcast loop instead
    let h_local = sys.local_hamiltonian(rho, a)?;
    let ng = sys.grids.ng();
    let dist = BandDistribution {
        n_bands: psi.ncols(),
        n_ranks: cfg.ranks,
    };
    let grids = &sys.grids;
    let h_ref = &h_local;
    let alpha = sys.hybrid.map(|h| h.alpha);
    let (blocks, _stats) = run_ranks_pinned(cfg.layout(), cfg.wire, move |comm| {
        let psi_local = dist.take_local(comm.rank(), psi);
        let mut out = CMat::zeros(ng, psi_local.ncols());
        h_ref.apply_block(&psi_local, &mut out);
        if let (Some(alpha), Some(kernel)) = (alpha, kernel) {
            // parallel-transport gauge: Φ = Ψ defines the exchange
            let vx =
                distributed_fock_apply(comm, grids, dist, &psi_local, &psi_local, alpha, kernel);
            for (o, v) in out.data_mut().iter_mut().zip(vx.data()) {
                *o += *v;
            }
        }
        out
    });
    // gather: rank r's local columns are its cyclic bands
    let mut hpsi = CMat::zeros(ng, psi.ncols());
    for (r, block) in blocks.iter().enumerate() {
        for (lj, &b) in dist.local_bands(r).iter().enumerate() {
            hpsi.col_mut(b).copy_from_slice(block.col(lj));
        }
    }
    Ok(hpsi)
}

impl Propagator for DistributedPtCnPropagator {
    fn name(&self) -> &'static str {
        "pt-cn-dist"
    }

    /// One PT-CN step with every `HΨ` fanned out over the configured
    /// ranks × threads layout.
    fn step(
        &mut self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        state: &mut TdState,
        dt: f64,
    ) -> Result<StepStats, PtError> {
        let cfg = self.resolve_config(sys)?;
        ptcn_step_with(
            &self.opts,
            sys,
            laser,
            state,
            dt,
            &mut self.mixer,
            &mut |sys, rho, psi, a| distributed_apply_h(sys, cfg, rho, psi, a),
        )
    }

    fn capture(&self) -> PropagatorState {
        PropagatorState::PtCnDistributed {
            opts: self.opts,
            config: self.config,
            anderson: self.mixer.as_ref().map(BandAndersonMixer::state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_mpi::Wire;
    use pt_xc::XcKind;

    fn hybrid_sys(cfg: Option<DistributedConfig>) -> KsSystem {
        let mut b = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Pbe)
            .hybrid(pt_ham::HybridConfig::hse06())
            .occupations(vec![2.0; 4]);
        if let Some(c) = cfg {
            b = b.distributed(c);
        }
        b.build().unwrap()
    }

    #[test]
    fn distributed_apply_matches_serial_hamiltonian_to_tolerance() {
        // same operator, different Fock accumulation order: equal to
        // reduction accuracy, not bits
        let sys = hybrid_sys(None);
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 17);
        let rho = sys.density(&psi);
        let h = sys.hamiltonian(&rho, Some(&psi), [0.0; 3]).unwrap();
        let mut want = CMat::zeros(psi.nrows(), psi.ncols());
        h.apply_block(&psi, &mut want);
        for ranks in [1usize, 2, 3] {
            let got =
                distributed_apply_h(&sys, DistributedConfig::new(ranks, 1), &rho, &psi, [0.0; 3])
                    .unwrap();
            let err = want.max_diff(&got);
            assert!(err < 1e-10, "ranks={ranks}: {err}");
        }
    }

    #[test]
    fn distributed_apply_is_bit_identical_across_layouts() {
        let sys = hybrid_sys(None);
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 29);
        let rho = sys.density(&psi);
        let reference =
            distributed_apply_h(&sys, DistributedConfig::new(1, 1), &rho, &psi, [0.0; 3]).unwrap();
        for (ranks, threads) in [(2, 1), (2, 2), (3, 2), (1, 4)] {
            let got = distributed_apply_h(
                &sys,
                DistributedConfig::new(ranks, threads),
                &rho,
                &psi,
                [0.0; 3],
            )
            .unwrap();
            for (x, y) in reference.data().iter().zip(got.data()) {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{ranks}x{threads}: {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn propagator_reads_layout_from_the_system() {
        let sys = hybrid_sys(Some(DistributedConfig::new(2, 2)));
        let mut prop = DistributedPtCnPropagator::default();
        assert_eq!(
            prop.resolve_config(&sys).unwrap(),
            DistributedConfig::new(2, 2)
        );
        // override wins
        prop = prop.with_config(DistributedConfig::new(3, 1).wire(Wire::F32));
        assert_eq!(
            prop.resolve_config(&sys).unwrap(),
            DistributedConfig::new(3, 1).wire(Wire::F32)
        );
        // no config anywhere: serial-equivalent default
        let plain = hybrid_sys(None);
        assert_eq!(
            DistributedPtCnPropagator::default()
                .resolve_config(&plain)
                .unwrap(),
            DistributedConfig::default()
        );
    }
}
