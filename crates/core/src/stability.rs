//! Empirical RK4 stability ceiling.
//!
//! §6: "The time step for RK4 is 0.5 as. This is close to the largest time
//! step allowed by RK4 due to the stability constraint." For an explicit
//! integrator on `i∂tψ = Hψ` the ceiling is `dt ≲ c/λ_max(H)` (c ≈ 2.8 for
//! RK4's stability region on the imaginary axis); λ_max is dominated by the
//! kinetic cutoff, so dt_max ≈ 2.8 / E_cut-ish — sub-attosecond for real
//! cutoffs. This probe measures it by bisection on norm blow-up.

use crate::propagator::{Propagator, Rk4Propagator, TdState};
use pt_ham::{KsSystem, PtError};
use pt_linalg::CMat;

/// Largest RK4 step (a.u.) that keeps the orbital-block Frobenius norm
/// within `1 + tol` after `n_steps` field-free steps, found by bisection
/// over `[lo, hi]`. An unstable lower bracket is reported as
/// [`PtError::InvalidConfig`].
pub fn max_stable_rk4_dt(
    sys: &KsSystem,
    psi0: &CMat,
    n_steps: usize,
    lo: f64,
    hi: f64,
) -> Result<f64, PtError> {
    let norm0 = psi0.norm_fro();
    let stable = |dt: f64| -> Result<bool, PtError> {
        let mut rk = Rk4Propagator::default();
        let mut st = TdState {
            psi: psi0.clone(),
            t: 0.0,
        };
        for _ in 0..n_steps {
            rk.step(sys, None, &mut st, dt)?;
            let n = st.psi.norm_fro();
            if !n.is_finite() || (n / norm0 - 1.0).abs() > 0.02 {
                return Ok(false);
            }
        }
        Ok(true)
    };
    let (mut lo, mut hi) = (lo, hi);
    if !stable(lo)? {
        return Err(PtError::InvalidConfig(format!(
            "stability bisection needs a stable lower bracket; dt = {lo} already blows up"
        )));
    }
    if stable(hi)? {
        return Ok(hi);
    }
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        if stable(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;
    use pt_scf::{scf_loop, ScfOptions};
    use pt_xc::XcKind;

    /// The stability ceiling must sit near c/λ_max — and, crucially for
    /// the paper's argument, *way below* the 50 as PT-CN step.
    #[test]
    fn rk4_ceiling_tracks_spectral_radius() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::builder(s)
            .ecut(2.5)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let o = ScfOptions {
            rho_tol: 1e-6,
            ..Default::default()
        };
        let gs = scf_loop(&sys, o).unwrap();
        // λ_max ≈ E_cut + |V| terms; at E_cut = 2.5 Ha expect dt_max ≈ 1 au
        let dt_max = max_stable_rk4_dt(&sys, &gs.orbitals, 12, 0.05, 4.0).unwrap();
        let lam_est = sys.grids.ecut + 1.0; // kinetic ceiling + potential slack
        let dt_theory = 2.8 / lam_est;
        assert!(
            dt_max > 0.2 * dt_theory && dt_max < 5.0 * dt_theory,
            "dt_max {dt_max} vs theory {dt_theory}"
        );
        // the headline gap: PT-CN's 50 as step is far beyond RK4's ceiling
        let dt_ptcn = pt_num::units::attosecond_to_au(50.0);
        assert!(
            dt_ptcn > 1.5 * dt_max,
            "PT-CN step {dt_ptcn} should exceed the RK4 ceiling {dt_max}"
        );
    }
}
