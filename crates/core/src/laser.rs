//! The external laser pulse (§4: 380 nm wavelength, Gaussian envelope).
//!
//! Periodic systems couple to light in the velocity gauge: the Hamiltonian
//! kinetic term becomes ½|−i∇ + A(t)|² with a spatially uniform vector
//! potential A(t) (dipole approximation). The electric field is
//! E(t) = −∂A/∂t.

/// A linearly polarized Gaussian-envelope pulse.
#[derive(Clone, Copy, Debug)]
pub struct LaserPulse {
    /// Peak vector-potential amplitude |A|max (a.u.).
    pub a0: f64,
    /// Carrier angular frequency ω (Ha).
    pub omega: f64,
    /// Envelope center t₀ (a.u. time).
    pub t0: f64,
    /// Envelope width σ (a.u. time).
    pub sigma: f64,
    /// Polarization direction (unit vector).
    pub polarization: [f64; 3],
}

impl LaserPulse {
    /// The paper's pulse: 380 nm (ħω ≈ 0.12 Ha), centered at `t0` with
    /// width `sigma`, polarized along z.
    pub fn paper_380nm(a0: f64, t0: f64, sigma: f64) -> Self {
        LaserPulse {
            a0,
            omega: pt_num::units::wavelength_nm_to_hartree(380.0),
            t0,
            sigma,
            polarization: [0.0, 0.0, 1.0],
        }
    }

    /// Vector potential A(t).
    pub fn a_field(&self, t: f64) -> [f64; 3] {
        let tau = t - self.t0;
        let env = (-tau * tau / (2.0 * self.sigma * self.sigma)).exp();
        let a = self.a0 * env * (self.omega * tau).sin();
        [
            a * self.polarization[0],
            a * self.polarization[1],
            a * self.polarization[2],
        ]
    }

    /// Electric field E(t) = −dA/dt (analytic derivative).
    pub fn e_field(&self, t: f64) -> [f64; 3] {
        let tau = t - self.t0;
        let env = (-tau * tau / (2.0 * self.sigma * self.sigma)).exp();
        let da = self.a0
            * env
            * (self.omega * (self.omega * tau).cos()
                - tau / (self.sigma * self.sigma) * (self.omega * tau).sin());
        [
            -da * self.polarization[0],
            -da * self.polarization[1],
            -da * self.polarization[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photon_energy_matches_380nm() {
        let p = LaserPulse::paper_380nm(0.01, 100.0, 30.0);
        assert!((p.omega * pt_num::units::EV_PER_HARTREE - 3.2627).abs() < 1e-3);
    }

    #[test]
    fn e_field_is_minus_da_dt() {
        let p = LaserPulse::paper_380nm(0.05, 50.0, 20.0);
        for &t in &[30.0, 50.0, 71.3] {
            let h = 1e-5;
            let ap = p.a_field(t + h);
            let am = p.a_field(t - h);
            let e = p.e_field(t);
            for d in 0..3 {
                let num = -(ap[d] - am[d]) / (2.0 * h);
                assert!((e[d] - num).abs() < 1e-8, "t={t} d={d}: {} vs {num}", e[d]);
            }
        }
    }

    #[test]
    fn envelope_decays() {
        let p = LaserPulse::paper_380nm(0.05, 50.0, 10.0);
        let far = p.a_field(50.0 + 8.0 * 10.0);
        assert!(far.iter().all(|v| v.abs() < 1e-10));
    }
}
