//! `pt-core` — parallel-transport rt-TDDFT propagation (the paper's
//! primary contribution).
//!
//! The parallel transport (PT) gauge (§2, Eq. 4) evolves the orbitals by
//!
//! `i ∂t Ψ = HΨ − Ψ(Ψ* H Ψ)`
//!
//! whose right-hand side is a *residual*: it vanishes on any invariant
//! subspace, so the PT orbitals move as slowly as the physics allows.
//! Discretized with Crank–Nicolson this gives the implicit PT-CN step
//! (Eq. 5 / Alg. 1), a nonlinear fixed-point problem solved by Anderson
//! mixing with history up to 20 (§3.4). PT-CN takes ~50 as steps where
//! explicit RK4 needs ~0.5 as — a 20–30× end-to-end win on Summit (Fig. 6)
//! because each Fock exchange application is so expensive.
//!
//! Provided here:
//! * [`PtCnPropagator`] — Alg. 1, with SCF statistics (iteration counts,
//!   Fock applications) matching the bookkeeping of the paper (§7: 24
//!   exchange applications per 50 as step at the 1e-6 density tolerance);
//! * [`Rk4Propagator`] — the explicit baseline of Fig. 6;
//! * [`LaserPulse`] — the 380 nm velocity-gauge pulse of §4;
//! * observables (energy, current, density-matrix invariants) and a
//!   stability probe used to demonstrate the RK4 step-size ceiling.

mod anderson_c;
mod laser;
mod observables;
mod propagator;
mod stability;

pub use anderson_c::BandAndersonMixer;
pub use laser::LaserPulse;
pub use observables::{current_density, density_matrix_distance, orthonormality_error};
pub use propagator::{PtCnOptions, PtCnPropagator, Rk4Propagator, StepStats, TdState};
pub use stability::max_stable_rk4_dt;
