//! `pt-core` — parallel-transport rt-TDDFT propagation (the paper's
//! primary contribution), packaged behind a unified simulation API.
//!
//! The parallel transport (PT) gauge (§2, Eq. 4) evolves the orbitals by
//!
//! `i ∂t Ψ = HΨ − Ψ(Ψ* H Ψ)`
//!
//! whose right-hand side is a *residual*: it vanishes on any invariant
//! subspace, so the PT orbitals move as slowly as the physics allows.
//! Discretized with Crank–Nicolson this gives the implicit PT-CN step
//! (Eq. 5 / Alg. 1), a nonlinear fixed-point problem solved by Anderson
//! mixing with history up to 20 (§3.4). PT-CN takes ~50 as steps where
//! explicit RK4 needs ~0.5 as — a 20–30× end-to-end win on Summit (Fig. 6)
//! because each Fock exchange application is so expensive.
//!
//! # The simulation API
//!
//! * [`Propagator`] — the object-safe one-step abstraction. Implementations:
//!   [`PtCnPropagator`] (Alg. 1, options [`PtCnOptions`]),
//!   [`DistributedPtCnPropagator`] (the same algorithm with every `HΨ`
//!   fanned out over virtual-MPI ranks with pinned pools) and
//!   [`Rk4Propagator`] (the Fig. 6 baseline, options [`Rk4Options`]).
//!   Select at runtime via `Box<dyn Propagator>`.
//! * [`SimulationBuilder`] / [`Simulation`] — configure system, laser,
//!   `dt`, step count and propagator, then [`Simulation::run`] owns the
//!   time loop, drives the [`Observer`] pipeline and returns a
//!   [`TimeSeries`].
//! * [`Observer`] — composable per-step measurements. Built-ins:
//!   [`EnergyObserver`], [`CurrentObserver`], [`DipoleNormObserver`],
//!   [`OrthonormalityObserver`]; per-step [`StepStats`] are always
//!   recorded.
//! * Misuse returns the typed [`PtError`] (re-exported from `pt-ham`) —
//!   nothing on the public setup path panics.
//!
//! Also provided: [`LaserPulse`] — the 380 nm velocity-gauge pulse of §4;
//! gauge-invariant observables (energy, current, density-matrix
//! invariants) and a stability probe used to demonstrate the RK4
//! step-size ceiling.
//!
//! # Checkpoint / restart
//!
//! Long trajectories survive job-time limits through the `pt-io` snapshot
//! subsystem: `SimulationBuilder::checkpoint_every` emits rolling
//! [`RunCheckpoint`]s from inside the time loop and [`Simulation::resume`]
//! reconstructs the run — bit-identical continuation at the default
//! [`pt_mpi::Wire::F64`] payloads (see `DESIGN.md`, "Snapshot format &
//! resume semantics").

mod anderson_c;
pub mod checkpoint;
mod distributed;
mod laser;
mod observables;
mod propagator;
mod simulation;
mod stability;

pub use anderson_c::{AndersonState, BandAndersonMixer};
pub use checkpoint::{latest_checkpoint, CheckpointPolicy, RunCheckpoint, RunCheckpointView};
pub use distributed::DistributedPtCnPropagator;
pub use laser::LaserPulse;
pub use observables::{current_density, density_matrix_distance, orthonormality_error};
pub use propagator::{
    propagator_from_state, AceCapture, Propagator, PropagatorState, PtCnOptions, PtCnPropagator,
    Rk4Options, Rk4Propagator, StepPhases, StepStats, TdState,
};
pub use pt_ham::PtError;
pub use simulation::{
    CancelToken, CurrentObserver, DipoleNormObserver, EnergyObserver, Observer, ObserverContext,
    OrthonormalityObserver, Simulation, SimulationBuilder, StepTap, StepUpdate, TimeSeries,
};
pub use stability::max_stable_rk4_dt;
