//! Anderson mixing for the PT-CN wavefunction fixed point.
//!
//! §3.4: "The Anderson mixing method for solving the nonlinear equations
//! requires the solution of a least squares problem for each wavefunction
//! … the maximum mixing dimension is set to 20." This is the part whose
//! memory footprint (up to 20 copies of Ψ) the paper parks in the 512 GB
//! host RAM of Summit's fat nodes.

use pt_ham::PtError;
use pt_linalg::{lstsq, CMat};
use pt_num::c64;

/// Per-band Anderson mixer over complex coefficient vectors.
#[derive(Clone)]
pub struct BandAndersonMixer {
    depth: usize,
    beta: f64,
    n_bands: usize,
    /// history per band: iterates and residuals
    xs: Vec<Vec<Vec<c64>>>,
    fs: Vec<Vec<Vec<c64>>>,
}

/// A serializable copy of a mixer's configuration + history — what a run
/// snapshot records so the propagator's internal state survives
/// checkpoint/restart. (PT-CN resets the history at the start of every
/// step, so at a step boundary this holds the *last* fixed point's record;
/// restoring it is informational for diagnostics and keeps the capture
/// total.)
#[derive(Clone, Debug, PartialEq)]
pub struct AndersonState {
    /// History depth bound.
    pub depth: usize,
    /// Relaxation β.
    pub beta: f64,
    /// Bands mixed.
    pub n_bands: usize,
    /// Per-band iterate history (outer: band; inner: history entries).
    pub xs: Vec<Vec<Vec<c64>>>,
    /// Per-band residual history.
    pub fs: Vec<Vec<Vec<c64>>>,
}

impl BandAndersonMixer {
    /// `depth` ≤ 20 in the paper; `beta` is the underlying relaxation.
    pub fn new(n_bands: usize, depth: usize, beta: f64) -> Self {
        BandAndersonMixer {
            depth,
            beta,
            n_bands,
            xs: vec![Vec::new(); n_bands],
            fs: vec![Vec::new(); n_bands],
        }
    }

    /// Stored history length (same for every band).
    pub fn history_len(&self) -> usize {
        self.xs.first().map(|h| h.len()).unwrap_or(0)
    }

    /// Bands this mixer was sized for.
    pub fn n_bands(&self) -> usize {
        self.n_bands
    }

    /// Configured history depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Configured relaxation β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Snapshot the mixer (configuration + full history) for
    /// checkpointing.
    pub fn state(&self) -> AndersonState {
        AndersonState {
            depth: self.depth,
            beta: self.beta,
            n_bands: self.n_bands,
            xs: self.xs.clone(),
            fs: self.fs.clone(),
        }
    }

    /// Rebuild a mixer from a captured [`AndersonState`]. Inconsistent
    /// histories (band count mismatch, ragged entry counts) are a typed
    /// error — a snapshot, not a caller, is the usual source.
    pub fn from_state(s: AndersonState) -> Result<Self, PtError> {
        if s.xs.len() != s.n_bands || s.fs.len() != s.n_bands {
            return Err(PtError::InvalidConfig(format!(
                "Anderson state has {} iterate / {} residual bands, expected {}",
                s.xs.len(),
                s.fs.len(),
                s.n_bands
            )));
        }
        let hist = s.xs.first().map(|h| h.len()).unwrap_or(0);
        let uniform = s.xs.iter().all(|h| h.len() == hist) && s.fs.iter().all(|h| h.len() == hist);
        if !uniform {
            return Err(PtError::InvalidConfig(
                "Anderson state has ragged per-band history lengths".into(),
            ));
        }
        Ok(BandAndersonMixer {
            depth: s.depth,
            beta: s.beta,
            n_bands: s.n_bands,
            xs: s.xs,
            fs: s.fs,
        })
    }

    /// Memory footprint in units of one wavefunction block (the paper's
    /// "up to 20 copies of Ψ" accounting).
    pub fn psi_copies(&self) -> usize {
        2 * self.history_len()
    }

    /// One Anderson update: `x` current iterate (bands as columns), `f`
    /// the fixed-point residual g(x) − x. Returns the next iterate.
    pub fn step(&mut self, x: &CMat, f: &CMat) -> CMat {
        assert_eq!(x.ncols(), self.n_bands);
        assert_eq!(f.ncols(), self.n_bands);
        let ng = x.nrows();
        let mut out = CMat::zeros(ng, self.n_bands);
        for b in 0..self.n_bands {
            let hx = &mut self.xs[b];
            let hf = &mut self.fs[b];
            hx.push(x.col(b).to_vec());
            hf.push(f.col(b).to_vec());
            if hx.len() > self.depth + 1 {
                hx.remove(0);
                hf.remove(0);
            }
            let m = hx.len() - 1;
            let xcur = &hx[m];
            let fcur = &hf[m];
            let col = out.col_mut(b);
            if m == 0 {
                for (o, (xv, fv)) in col.iter_mut().zip(xcur.iter().zip(fcur)) {
                    *o = *xv + fv.scale(self.beta);
                }
                continue;
            }
            // least squares over difference history
            let mut a = CMat::zeros(ng, m);
            for j in 0..m {
                let fj = &hf[m - 1 - j];
                for i in 0..ng {
                    a[(i, j)] = fcur[i] - fj[i];
                }
            }
            let gamma = lstsq(&a, fcur, 1e-12);
            for (i, o) in col.iter_mut().enumerate() {
                *o = xcur[i] + fcur[i].scale(self.beta);
            }
            for (j, g) in gamma.iter().enumerate() {
                let xj = &hx[m - 1 - j];
                let fj = &hf[m - 1 - j];
                for (i, o) in col.iter_mut().enumerate() {
                    let dx = xcur[i] - xj[i];
                    let df = fcur[i] - fj[i];
                    *o -= *g * (dx + df.scale(self.beta));
                }
            }
        }
        out
    }

    /// Clear all history (called at the start of each PT-CN time step).
    pub fn reset(&mut self) {
        for h in &mut self.xs {
            h.clear();
        }
        for h in &mut self.fs {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_complex_linear_fixed_point() {
        // per-band g(x) = D x + b with complex diagonal |D| < 1
        let ng = 8;
        let nb = 2;
        let d: Vec<c64> = (0..ng)
            .map(|i| c64::cis(0.3 * i as f64).scale(0.6 + 0.03 * (i % 5) as f64))
            .collect();
        let b: Vec<c64> = (0..ng).map(|i| c64::new(0.1 * i as f64, -0.05)).collect();
        let g = |x: &CMat| -> CMat {
            let mut o = CMat::zeros(ng, nb);
            for j in 0..nb {
                for i in 0..ng {
                    o[(i, j)] = d[i] * x[(i, j)] + b[i].scale((j + 1) as f64);
                }
            }
            o
        };
        let mut mixer = BandAndersonMixer::new(nb, 10, 0.5);
        let mut x = CMat::zeros(ng, nb);
        let mut conv = None;
        for it in 0..60 {
            let gx = g(&x);
            let mut f = gx.clone();
            for j in 0..nb {
                for i in 0..ng {
                    f[(i, j)] = gx[(i, j)] - x[(i, j)];
                }
            }
            let err = f.norm_fro();
            if err < 1e-12 {
                conv = Some(it);
                break;
            }
            x = mixer.step(&x, &f);
        }
        let it = conv.expect("no convergence");
        assert!(it <= 25, "took {it}");
        // verify fixed point x = Dx + b(j+1)
        for j in 0..nb {
            for i in 0..ng {
                let want = b[i].scale((j + 1) as f64) * (c64::ONE - d[i]).inv();
                assert!((x[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn history_depth_is_bounded_at_20() {
        let mut m = BandAndersonMixer::new(1, 20, 1.0);
        let x = CMat::zeros(4, 1);
        for i in 0..30 {
            let mut f = CMat::zeros(4, 1);
            f[(0, 0)] = c64::real(1.0 / (i + 1) as f64);
            let _ = m.step(&x, &f);
        }
        assert!(m.history_len() <= 21);
        assert!(m.psi_copies() <= 42);
    }
}
