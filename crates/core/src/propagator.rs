//! Time propagators behind one trait: PT-CN (Alg. 1) and the RK4 baseline.
//!
//! [`Propagator`] is the object-safe abstraction the [`crate::Simulation`]
//! driver works against: a propagator is an *algorithm plus its options* —
//! the physical problem ([`KsSystem`]) and the drive ([`LaserPulse`]) are
//! passed into every [`Propagator::step`], so one propagator value can be
//! reused across systems and boxed for runtime selection
//! (`Box<dyn Propagator>`).

use crate::anderson_c::{AndersonState, BandAndersonMixer};
use crate::laser::LaserPulse;
use pt_ham::{
    density_residual, AceOperator, DistributedConfig, ExchangeMode, FockMode, FockOperator,
    KsSystem, PtError,
};
use pt_linalg::{gemm, orthonormalize_columns, CMat, Op};
use pt_num::c64;
use std::fmt;

/// The propagated state.
#[derive(Clone)]
pub struct TdState {
    /// Occupied orbitals (sphere coefficients, columns).
    pub psi: CMat,
    /// Current time (a.u.).
    pub t: f64,
}

impl TdState {
    /// State at `t = 0` from an orbital block (usually SCF ground-state
    /// orbitals).
    pub fn new(psi: CMat) -> Self {
        TdState { psi, t: 0.0 }
    }
}

/// Per-step diagnostics (the quantities §7 accounts for).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// SCF (fixed-point) iterations used.
    pub scf_iterations: usize,
    /// Full `HΨ` block applications (each contains one Fock exchange
    /// application per band when hybrid).
    pub h_applications: usize,
    /// Final fixed-point density residual.
    pub rho_residual: f64,
    /// Whether the step's implicit solve reached its tolerance (always
    /// `true` for explicit propagators).
    pub converged: bool,
    /// Wall-clock phase breakdown of the step — **observational only**.
    /// All zeros unless `pt_trace` is armed; deliberately excluded from
    /// every bit-compared surface (series tables, checkpoints, streaming
    /// samples), so armed and disarmed runs stay bit-identical.
    pub phases: StepPhases,
}

/// Wall-clock seconds per PT-CN step phase (the SC'19 §7 attribution:
/// where a step's time actually goes). Measured via `pt_trace` spans;
/// every field is exactly `0.0` when tracing is disarmed.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepPhases {
    /// Whole-step wall time (the enclosing propagator span).
    pub wall: f64,
    /// `HΨ` block applications (Fock/ACE exchange included).
    pub h_apply: f64,
    /// Alg. 3 residual evaluations (`pt_rhs` + the fixed-point residual).
    pub residual: f64,
    /// Anderson mixing.
    pub mix: f64,
    /// Density builds (`sys.density`).
    pub density: f64,
    /// Re-orthonormalization (Cholesky + TRSM, §3.4).
    pub ortho: f64,
    /// ACE projector builds (refresh rounds only).
    pub ace_build: f64,
    /// Measured remainder: `wall −` the named phases (never negative).
    /// Honest bookkeeping, so the per-step phase sum matches the step
    /// wall time by construction.
    pub other: f64,
}

impl StepPhases {
    /// Sum of the named (non-`wall`, non-`other`) phases.
    pub fn named_sum(&self) -> f64 {
        self.h_apply + self.residual + self.mix + self.density + self.ortho + self.ace_build
    }

    /// `wall` reconciled against the named phases: every phase column plus
    /// `other` sums to `wall` exactly (up to float rounding).
    pub(crate) fn reconcile(&mut self, wall: f64) {
        self.wall = wall;
        self.other = (wall - self.named_sum()).max(0.0);
    }

    /// Fold a substep's phases into an accumulating total (`wall`/`other`
    /// included — an outer ACE step re-reconciles against its own span).
    pub(crate) fn absorb(&mut self, sub: &StepPhases) {
        self.wall += sub.wall;
        self.h_apply += sub.h_apply;
        self.residual += sub.residual;
        self.mix += sub.mix;
        self.density += sub.density;
        self.ortho += sub.ortho;
        self.ace_build += sub.ace_build;
        self.other += sub.other;
    }
}

/// One step of a time-dependent Kohn–Sham propagation.
///
/// Object-safe: the `ptcn_vs_rk4` example picks the implementation at
/// runtime through `Box<dyn Propagator>`. Implementations must advance
/// `state.t` by exactly `dt` on success.
pub trait Propagator {
    /// Short human-readable identifier (for logs and series metadata).
    fn name(&self) -> &'static str;

    /// Advance `state` by `dt` under `sys` (+ optional laser coupling).
    fn step(
        &mut self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        state: &mut TdState,
        dt: f64,
    ) -> Result<StepStats, PtError>;

    /// Capture everything needed to reconstruct this propagator
    /// mid-trajectory (options plus internal state like the Anderson mixer
    /// history) — what a run snapshot records. The default is
    /// [`PropagatorState::Opaque`], which round-trips the name but cannot
    /// be reconstructed: custom propagators should override this to become
    /// resumable.
    fn capture(&self) -> PropagatorState {
        PropagatorState::Opaque {
            name: self.name().to_string(),
        }
    }
}

/// The capturable state of a [`Propagator`] — the bridge between the live
/// trait object and the snapshot file (`pt-core`'s checkpoint schema
/// serializes this, [`propagator_from_state`] rebuilds the trait object on
/// resume).
#[derive(Clone, Debug)]
pub enum PropagatorState {
    /// Serial PT-CN (Alg. 1).
    PtCn {
        /// Options.
        opts: PtCnOptions,
        /// Anderson history at the capture point (the last step's fixed
        /// point; PT-CN resets it at the start of each step).
        anderson: Option<AndersonState>,
        /// Explicit exchange-mode override (`None` reads
        /// `KsSystem::exchange_mode`).
        exchange: Option<ExchangeMode>,
        /// Live ACE projector + refresh position (ACE modes only) — the
        /// exact ξ that was applied at capture, so a resume landing
        /// mid-refresh-window reuses it instead of rebuilding from the
        /// (by now different) restored Ψ.
        ace: Option<AceCapture>,
    },
    /// Distributed PT-CN (`pt-cn-dist`).
    PtCnDistributed {
        /// Options.
        opts: PtCnOptions,
        /// Explicit layout override (`None` reads `KsSystem::distributed`).
        config: Option<DistributedConfig>,
        /// Anderson history at the capture point.
        anderson: Option<AndersonState>,
        /// Explicit exchange-mode override (`None` reads
        /// `KsSystem::exchange_mode`).
        exchange: Option<ExchangeMode>,
        /// Live ACE projector + refresh position (ACE modes only).
        ace: Option<AceCapture>,
    },
    /// RK4 baseline.
    Rk4 {
        /// Options.
        opts: Rk4Options,
    },
    /// A propagator that did not implement [`Propagator::capture`]; its
    /// name survives for diagnostics but it cannot be rebuilt.
    Opaque {
        /// [`Propagator::name`] of the original.
        name: String,
    },
}

/// The serialized form of a live ACE projector: the columns ξ plus the
/// position inside the current refresh window. Recorded verbatim in run
/// snapshots so that kill/resume inside a window (`ace_refresh_interval
/// > 1`) continues with the identical operator, bit for bit.
#[derive(Clone, Debug)]
pub struct AceCapture {
    /// Projector columns ξ (N_G × N_φ).
    pub xi: CMat,
    /// Outer steps completed since ξ was last rebuilt.
    pub steps_since_refresh: usize,
}

/// Rebuild a boxed [`Propagator`] from a captured [`PropagatorState`].
/// [`PropagatorState::Opaque`] is a typed error: the snapshot records that
/// the original run used a propagator this crate cannot reconstruct, so
/// the caller must supply one (`Simulation::resume_with`).
pub fn propagator_from_state(state: PropagatorState) -> Result<Box<dyn Propagator>, PtError> {
    match state {
        PropagatorState::PtCn {
            opts,
            anderson,
            exchange,
            ace,
        } => {
            let mixer = anderson.map(BandAndersonMixer::from_state).transpose()?;
            Ok(Box::new(PtCnPropagator {
                opts,
                mixer,
                exchange,
                ace: ace.map(AceRefreshState::from_capture),
            }))
        }
        PropagatorState::PtCnDistributed {
            opts,
            config,
            anderson,
            exchange,
            ace,
        } => {
            let mixer = anderson.map(BandAndersonMixer::from_state).transpose()?;
            // the rank engine is runtime-only state: rebuilt lazily on the
            // first post-resume step, never part of the snapshot
            Ok(Box::new(crate::distributed::DistributedPtCnPropagator {
                opts,
                config,
                mixer,
                engine: None,
                exchange,
                ace: ace.map(AceRefreshState::from_capture),
            }))
        }
        PropagatorState::Rk4 { opts } => Ok(Box::new(Rk4Propagator { opts })),
        PropagatorState::Opaque { name } => Err(PtError::InvalidConfig(format!(
            "snapshot was taken with propagator '{name}', which cannot be reconstructed; \
             resume with an explicit propagator"
        ))),
    }
}

/// PT-CN options (§4 settings as defaults).
#[derive(Clone, Copy, Debug)]
pub struct PtCnOptions {
    /// Density convergence threshold (paper: 1e-6).
    pub rho_tol: f64,
    /// Max SCF iterations per step (paper observes ~22 on average).
    pub max_scf: usize,
    /// Anderson history depth (paper: 20).
    pub anderson_depth: usize,
    /// Anderson relaxation β.
    pub beta: f64,
    /// When `true`, a step whose fixed point stays above `rho_tol` after
    /// `max_scf` iterations returns [`PtError::NotConverged`] instead of
    /// the best-effort state (default: `false`, the paper's behavior —
    /// accept the step and report the residual in [`StepStats`]).
    pub strict: bool,
}

impl Default for PtCnOptions {
    fn default() -> Self {
        PtCnOptions {
            rho_tol: 1e-6,
            max_scf: 40,
            anderson_depth: 20,
            beta: 1.0,
            strict: false,
        }
    }
}

impl PtCnOptions {
    /// Reject malformed options with a typed error (shared by the serial
    /// and distributed PT-CN propagators before any physics runs).
    pub(crate) fn validate(&self) -> Result<(), PtError> {
        if !self.rho_tol.is_finite() || self.rho_tol <= 0.0 {
            return Err(PtError::InvalidConfig(format!(
                "PT-CN density tolerance must be positive and finite, got {}",
                self.rho_tol
            )));
        }
        if self.max_scf == 0 {
            return Err(PtError::InvalidConfig(
                "PT-CN max_scf must be at least 1".into(),
            ));
        }
        if self.anderson_depth == 0 {
            return Err(PtError::InvalidConfig(
                "PT-CN Anderson history depth must be at least 1".into(),
            ));
        }
        if !self.beta.is_finite() {
            return Err(PtError::InvalidConfig(format!(
                "PT-CN mixing parameter beta must be finite, got {}",
                self.beta
            )));
        }
        Ok(())
    }
}

/// RK4 options.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rk4Options {
    /// Re-orthonormalize (Cholesky + TRSM) after every step. Off by
    /// default: plain RK4 is the paper's Fig. 6 baseline, and its norm
    /// drift is exactly what the stability probe measures.
    pub reorthonormalize: bool,
}

/// The implicit parallel-transport Crank–Nicolson propagator (Alg. 1).
///
/// Owns its [`BandAndersonMixer`] across steps (reset at the start of
/// every step, as Alg. 1 requires) so the mixer history is part of the
/// propagator's capturable state ([`Propagator::capture`]).
#[derive(Clone, Default)]
pub struct PtCnPropagator {
    /// Options.
    pub opts: PtCnOptions,
    pub(crate) mixer: Option<BandAndersonMixer>,
    /// Explicit exchange-mode override; `None` (the default) reads
    /// `KsSystem::exchange_mode` at step time.
    pub exchange: Option<ExchangeMode>,
    pub(crate) ace: Option<AceRefreshState>,
}

impl PtCnPropagator {
    /// Propagator with the given options.
    pub fn new(opts: PtCnOptions) -> Self {
        PtCnPropagator {
            opts,
            mixer: None,
            exchange: None,
            ace: None,
        }
    }

    /// Propagator with an explicit exchange mode overriding the system's.
    pub fn with_exchange(opts: PtCnOptions, mode: ExchangeMode) -> Self {
        PtCnPropagator {
            opts,
            mixer: None,
            exchange: Some(mode),
            ace: None,
        }
    }
}

impl fmt::Debug for PtCnPropagator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PtCnPropagator")
            .field("opts", &self.opts)
            .field("exchange", &self.exchange)
            .field(
                "anderson_history_len",
                &self.mixer.as_ref().map(BandAndersonMixer::history_len),
            )
            .finish()
    }
}

/// `out = H Ψ − Ψ (Ψ* H Ψ)` — the PT residual RHS.
fn pt_rhs(hpsi: &CMat, psi: &CMat) -> CMat {
    let nb = psi.ncols();
    let mut s = CMat::zeros(nb, nb);
    gemm(
        c64::ONE,
        psi,
        Op::ConjTrans,
        hpsi,
        Op::None,
        c64::ZERO,
        &mut s,
    );
    let mut out = hpsi.clone();
    gemm(-c64::ONE, psi, Op::None, &s, Op::None, c64::ONE, &mut out);
    out
}

pub(crate) fn a_field(laser: Option<&LaserPulse>, t: f64) -> [f64; 3] {
    laser.map(|l| l.a_field(t)).unwrap_or([0.0; 3])
}

/// Cholesky + TRSM re-orthonormalization (§3.4). No ridge: the block is
/// near-orthonormal after a step, so the overlap is well conditioned.
fn reorthonormalize(psi: &mut CMat) {
    orthonormalize_columns(psi, 0.0);
}

/// The two execution-strategy points of a PT-CN step: the full
/// `H[ρ(Ψ), Ψ] Ψ` application (`Φ = Ψ` for hybrids, per the
/// parallel-transport gauge) and the fixed-point residual. The serial
/// propagator builds the in-process Hamiltonian and evaluates the
/// residual inline; the distributed propagator drives both through its
/// persistent rank engine (a single strategy object, because both
/// methods borrow the same engine mutably).
pub(crate) trait StepKernels {
    /// One full `H Ψ` application. With `ace: None` the exchange part (if
    /// hybrid) is the exact pair-FFT Fock loop over `Φ = Ψ` (the PT
    /// gauge); with `Some(op)` the frozen rank-N_φ ACE projector stands in
    /// for it and no pair FFTs run at all.
    fn apply_h(
        &mut self,
        sys: &KsSystem,
        rho: &[f64],
        psi: &CMat,
        a: [f64; 3],
        ace: Option<&AceOperator>,
    ) -> Result<CMat, PtError>;

    /// Build the ACE projector `ξ = W L^{-H}` from `phi` (one full
    /// exchange application over the block). The default is the serial
    /// in-process build; the distributed kernels compute W with the
    /// Alg. 2 broadcast loop over the rank team instead.
    fn build_ace(&mut self, sys: &KsSystem, phi: &CMat) -> Result<AceOperator, PtError> {
        serial_build_ace(sys, phi)
    }

    /// The fixed-point residual
    /// `R_f = Ψ_f + i·dt/2·(H_f Ψ_f − Ψ_f (Ψ_f* H_f Ψ_f)) − Ψ_{n+1/2}`.
    /// The default is the serial driver-side evaluation (gemm overlap).
    fn residual(
        &mut self,
        psi_f: &CMat,
        hpsi_f: &CMat,
        psi_half: &CMat,
        dt: f64,
    ) -> Result<CMat, PtError> {
        Ok(serial_pt_residual(psi_f, hpsi_f, psi_half, dt))
    }
}

/// Driver-side PT residual: the exact inline algebra the serial PT-CN
/// fixed point has always used (bit-preserving for the serial path).
pub(crate) fn serial_pt_residual(psi_f: &CMat, hpsi_f: &CMat, psi_half: &CMat, dt: f64) -> CMat {
    let (ng, nb) = (psi_f.nrows(), psi_f.ncols());
    let rhs = pt_rhs(hpsi_f, psi_f);
    let mut resid = CMat::zeros(ng, nb);
    for i in 0..ng * nb {
        resid.data_mut()[i] =
            psi_f.data()[i] + rhs.data()[i].mul_i().scale(0.5 * dt) - psi_half.data()[i];
    }
    resid
}

/// The PT-CN step body (Alg. 1), generic over the execution strategy —
/// the shared core of [`PtCnPropagator`] and `DistributedPtCnPropagator`.
/// Everything outside the kernels (density, Anderson mixing,
/// re-orthonormalization) runs replicated on the driver thread, so the
/// step's output bits depend only on the kernels'.
///
/// `ace` stands in for the exchange inside the fixed point; `ace_n`
/// (defaulting to `ace`) is used for the single t_n residual apply. The
/// split matters on ACE refresh rounds: the t_n apply sees the projector
/// built from Ψ_n — where ACE is *exact* — while the fixed point sees the
/// self-consistently refined one. `warm_start`, when set, seeds the fixed
/// point at the given block instead of Ψ_{n+1/2}: the converged solution
/// is unchanged (same equation, same Ψ_{n+1/2} in the residual), but a
/// seed already near the answer — a previous refresh round's iterate —
/// converges in a couple of Anderson passes instead of a full solve.
/// `raw_psi_out`, when set, receives the converged iterate ψ_f *before*
/// re-orthonormalization: `Full` builds its Fock operator from exactly
/// that raw block, so an ACE refresh that wants to reproduce the `Full`
/// fixed point must define ξ from it (the committed, re-orthonormalized
/// Ψ differs by the O(orthonormality defect) the fixed point accrues,
/// which would floor the agreement).
#[allow(clippy::too_many_arguments)]
pub(crate) fn ptcn_step_with(
    opts: &PtCnOptions,
    sys: &KsSystem,
    laser: Option<&LaserPulse>,
    state: &mut TdState,
    dt: f64,
    mixer_slot: &mut Option<BandAndersonMixer>,
    kernels: &mut dyn StepKernels,
    ace: Option<&AceOperator>,
    ace_n: Option<&AceOperator>,
    warm_start: Option<&CMat>,
    raw_psi_out: Option<&mut CMat>,
) -> Result<StepStats, PtError> {
    opts.validate()?;
    let nb = state.psi.ncols();
    let mut stats = StepStats::default();

    // line 1: initial residual R_n at time t_n
    let sp = pt_trace::span("density");
    let rho_n = sys.density(&state.psi);
    stats.phases.density += sp.finish_secs();
    let sp = pt_trace::span("h_apply");
    let hpsi = kernels.apply_h(
        sys,
        &rho_n,
        &state.psi,
        a_field(laser, state.t),
        ace_n.or(ace),
    )?;
    stats.phases.h_apply += sp.finish_secs();
    stats.h_applications += 1;
    let sp = pt_trace::span("residual");
    let r_n = pt_rhs(&hpsi, &state.psi);
    stats.phases.residual += sp.finish_secs();

    // line 2: Ψ_{n+1/2} = Ψ_n − i dt/2 R_n ; Ψ_f = Ψ_{n+1/2}
    let mut psi_half = state.psi.clone();
    for (o, r) in psi_half.data_mut().iter_mut().zip(r_n.data()) {
        *o -= r.mul_i().scale(0.5 * dt);
    }
    let mut psi_f = match warm_start {
        Some(w) if w.nrows() == psi_half.nrows() && w.ncols() == psi_half.ncols() => w.clone(),
        _ => psi_half.clone(),
    };

    // lines 3-10: fixed point via Anderson mixing. The mixer persists on
    // the propagator (its history is capturable state for checkpoints) but
    // is reset here — each step's fixed point starts with a clean history,
    // so resumed and uninterrupted trajectories agree bit for bit.
    let mixer = match mixer_slot {
        Some(m)
            if m.n_bands() == nb && m.depth() == opts.anderson_depth && m.beta() == opts.beta =>
        {
            m.reset();
            m
        }
        slot => slot.insert(BandAndersonMixer::new(nb, opts.anderson_depth, opts.beta)),
    };
    let sp = pt_trace::span("density");
    let mut rho_f = sys.density(&psi_f);
    stats.phases.density += sp.finish_secs();
    let t_next = state.t + dt;
    for _ in 0..opts.max_scf {
        stats.scf_iterations += 1;
        pt_trace::counter_add(pt_trace::Counter::FixedPointIterations, 1);
        let sp = pt_trace::span("h_apply");
        let hpsi_f = kernels.apply_h(sys, &rho_f, &psi_f, a_field(laser, t_next), ace)?;
        stats.phases.h_apply += sp.finish_secs();
        stats.h_applications += 1;
        // R_f = Ψ_f + i dt/2 (H_f Ψ_f − Ψ_f (Ψ_f* H_f Ψ_f)) − Ψ_{n+1/2}
        let sp = pt_trace::span("residual");
        let mut resid = kernels.residual(&psi_f, &hpsi_f, &psi_half, dt)?;
        stats.phases.residual += sp.finish_secs();
        // Anderson mixing on the fixed point Ψ = Ψ − R(Ψ): residual −R
        for z in resid.data_mut().iter_mut() {
            *z = -*z;
        }
        let sp = pt_trace::span("mix");
        psi_f = mixer.step(&psi_f, &resid);
        stats.phases.mix += sp.finish_secs();
        let sp = pt_trace::span("density");
        let rho_new = sys.density(&psi_f);
        stats.phases.density += sp.finish_secs();
        stats.rho_residual = density_residual(&rho_new, &rho_f, sys.grids.volume);
        rho_f = rho_new;
        if stats.rho_residual < opts.rho_tol {
            stats.converged = true;
            break;
        }
    }
    if opts.strict && !stats.converged {
        return Err(PtError::NotConverged {
            context: "PT-CN fixed point",
            residual: stats.rho_residual,
            tol: opts.rho_tol,
            iterations: stats.scf_iterations,
        });
    }

    if let Some(out) = raw_psi_out {
        *out = psi_f.clone();
    }

    // line 11: re-orthogonalize (Cholesky + TRSM, §3.4)
    let sp = pt_trace::span("ortho");
    reorthonormalize(&mut psi_f);
    stats.phases.ortho += sp.finish_secs();

    state.psi = psi_f;
    state.t = t_next;
    Ok(stats)
}

/// The in-process `HΨ` strategy: build the full Hamiltonian (serial/
/// threaded Fock included) and apply it block-wise. With a frozen ACE
/// projector the Fock-free Hamiltonian applies and the rank-N_φ projector
/// supplies the exchange — two skinny GEMM-shaped passes, zero pair FFTs.
pub(crate) fn serial_apply_h(
    sys: &KsSystem,
    rho: &[f64],
    psi: &CMat,
    a: [f64; 3],
    ace: Option<&AceOperator>,
) -> Result<CMat, PtError> {
    if let Some(op) = ace {
        let h = sys.local_hamiltonian(rho, a)?;
        let mut hpsi = CMat::zeros(psi.nrows(), psi.ncols());
        h.apply_block(psi, &mut hpsi);
        op.apply_block(psi, &mut hpsi);
        return Ok(hpsi);
    }
    let phi = if sys.hybrid.is_some() {
        Some(psi)
    } else {
        None
    };
    let h = sys.hamiltonian(rho, phi, a)?;
    let mut hpsi = CMat::zeros(psi.nrows(), psi.ncols());
    h.apply_block(psi, &mut hpsi);
    Ok(hpsi)
}

/// In-process ACE build: one exact exchange application over `phi` (the
/// α-scaled screened Fock loop, W = V_X Φ), then the small Cholesky/TRSM
/// factorization on the driver.
pub(crate) fn serial_build_ace(sys: &KsSystem, phi: &CMat) -> Result<AceOperator, PtError> {
    let hy = sys.hybrid.ok_or(PtError::MissingExchangeOrbitals)?;
    let kernel = sys.exchange_kernel()?.clone();
    let fock = FockOperator::new(&sys.grids, phi, hy.alpha, kernel, FockMode::Batched);
    AceOperator::new(&sys.grids, &fock, phi)
}

/// The live ACE projector plus its position in the refresh window, owned
/// by a PT-CN propagator across steps (captured into [`AceCapture`] for
/// snapshots, rebuilt lazily after resume or band-count changes).
#[derive(Clone, Debug)]
pub(crate) struct AceRefreshState {
    pub(crate) op: AceOperator,
    pub(crate) steps_since_refresh: usize,
}

impl AceRefreshState {
    pub(crate) fn from_capture(c: AceCapture) -> Self {
        AceRefreshState {
            op: AceOperator::from_xi(c.xi),
            steps_since_refresh: c.steps_since_refresh,
        }
    }

    pub(crate) fn capture(&self) -> AceCapture {
        AceCapture {
            xi: self.op.xi().clone(),
            steps_since_refresh: self.steps_since_refresh,
        }
    }
}

/// Resolve the effective exchange mode of a PT-CN step: an explicit
/// propagator override wins over `KsSystem::exchange_mode`; ACE modes on
/// a non-hybrid system are a typed error (there is nothing to compress).
pub(crate) fn resolve_exchange(
    override_mode: Option<ExchangeMode>,
    sys: &KsSystem,
) -> Result<ExchangeMode, PtError> {
    let mode = override_mode.unwrap_or(sys.exchange_mode);
    mode.validate()?;
    if mode != ExchangeMode::Full && sys.hybrid.is_none() {
        return Err(PtError::InvalidConfig(
            "ACE exchange modes require a hybrid functional (there is no \
             exchange operator to compress on a semi-local system)"
                .into(),
        ));
    }
    Ok(mode)
}

/// Cap on self-consistent projector rounds per refresh step. The round
/// map contracts by an O(dt·coupling) factor per pass — measured ≈0.1
/// per round at dt = 25 as on the Si-8 smoke system, stronger at smaller
/// dt — so a 1e-6 `rho_tol` is met in 2–4 rounds and even 1e-10 within
/// ~10; the cap guards pathological dynamics, and overrunning it is
/// reported like an unconverged fixed point.
const ACE_MAX_REFRESH_ROUNDS: usize = 12;

/// One outer ACE/MTS step.
///
/// **Stale window** (no refresh due): run `inner_substeps` PT-CN substeps
/// of `dt / inner_substeps` that all apply the cached frozen projector
/// inside their fixed points. Freezing across the whole fixed point is
/// the entire win: `Full` rebuilds the pair-FFT Fock operator from the
/// live ψ_f on every iteration, a stale-window ACE step runs zero pair
/// FFTs.
///
/// **Refresh step** (every `refresh_interval` outer steps): the projector
/// is rebuilt *self-consistently*. ξ_n from Ψ_n is exact for the t_n
/// residual (in the PT gauge Ψ_n is the exchange's defining Φ), but a
/// fixed point solved under it differs from `Full` — which sees
/// V_X[ψ_f] — by an O(dt) operator discrepancy, i.e. an O(dt²) per-step
/// trajectory error that no dt practical for hybrid PT-CN pushes below
/// ~1e-8. So the refresh iterates: solve the step under the current ξ_f,
/// rebuild ξ_f from the converged orbitals, re-solve, until the density
/// drift between rounds falls below `rho_tol`. ACE is exact on its
/// defining block, so the round fixed point *is* the `Full` fixed point;
/// each round costs one Fock block-apply plus a cheap projector-only
/// solve, still several× cheaper than `Full`'s per-iteration Fock loop.
/// The accepted round's ξ_f is then frozen for the stale window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ace_ptcn_step(
    opts: &PtCnOptions,
    sys: &KsSystem,
    laser: Option<&LaserPulse>,
    state: &mut TdState,
    dt: f64,
    refresh_interval: usize,
    inner_substeps: usize,
    mixer_slot: &mut Option<BandAndersonMixer>,
    ace_slot: &mut Option<AceRefreshState>,
    kernels: &mut dyn StepKernels,
) -> Result<StepStats, PtError> {
    let refresh_due = match ace_slot {
        Some(a) => {
            a.steps_since_refresh >= refresh_interval
                || a.op.xi().nrows() != state.psi.nrows()
                || a.op.rank() != state.psi.ncols()
        }
        None => true,
    };
    let sub_dt = dt / inner_substeps as f64;

    if !refresh_due {
        let ace = ace_slot
            .as_mut()
            .expect("invariant: refresh_due is false only when the slot holds a valid projector");
        let mut total = StepStats {
            converged: true,
            ..StepStats::default()
        };
        for _ in 0..inner_substeps {
            let s = ptcn_step_with(
                opts,
                sys,
                laser,
                state,
                sub_dt,
                mixer_slot,
                kernels,
                Some(&ace.op),
                None,
                None,
                None,
            )?;
            total.scf_iterations += s.scf_iterations;
            total.h_applications += s.h_applications;
            total.rho_residual = s.rho_residual;
            total.converged &= s.converged;
            total.phases.absorb(&s.phases);
        }
        ace.steps_since_refresh += 1;
        return Ok(total);
    }

    // Refresh step: self-consistent projector rounds. ξ_n (from Ψ_n) is
    // pinned for the t_n residual of the first substep; ξ_f starts equal
    // and is refined from each round's converged *raw* iterate (the
    // pre-re-orthonormalization block `Full` feeds its Fock operator).
    // Rounds restart from the same Ψ_n, so the accepted trajectory is the
    // one solved under the final projector — later substeps of an MTS
    // window use ξ_f at t_n too, which is exactly the accepted staleness
    // MTS trades on.
    let sp = pt_trace::span("ace_build");
    let xi_n = kernels.build_ace(sys, &state.psi)?;
    let mut total_phases = StepPhases {
        ace_build: sp.finish_secs(),
        ..StepPhases::default()
    };
    let mut xi_f = xi_n.clone();
    let mut prev_rho: Option<Vec<f64>> = None;
    let mut prev_raws: Option<Vec<CMat>> = None;
    let mut accepted: Option<(TdState, StepStats)> = None;
    let mut total_scf = 0usize;
    let mut total_h = 0usize;
    let mut drift = f64::INFINITY;
    let mut outer_converged = false;
    let mut rounds = 0usize;
    while rounds < ACE_MAX_REFRESH_ROUNDS {
        rounds += 1;
        pt_trace::counter_add(pt_trace::Counter::AceRefreshRounds, 1);
        if rounds > 1 {
            let raws = prev_raws
                .as_ref()
                .expect("invariant: every completed round stores its raw iterates before looping");
            let sp = pt_trace::span("ace_build");
            xi_f = kernels.build_ace(
                sys,
                raws.last()
                    .expect("invariant: inner_substeps >= 1, so raws is non-empty"),
            )?;
            total_phases.ace_build += sp.finish_secs();
        }
        let mut trial = state.clone();
        let mut raws: Vec<CMat> = Vec::with_capacity(inner_substeps);
        let mut stats = StepStats {
            converged: true,
            ..StepStats::default()
        };
        for s in 0..inner_substeps {
            // warm-start each substep's fixed point at the previous
            // round's converged iterate for the same substep: the rounds
            // change ξ_f by the O(rho_tol-bound) drift only, so later
            // rounds converge in a couple of Anderson passes instead of
            // re-solving from Ψ_{n+1/2}
            let mut raw_s = CMat::zeros(0, 0);
            let st = ptcn_step_with(
                opts,
                sys,
                laser,
                &mut trial,
                sub_dt,
                mixer_slot,
                kernels,
                Some(&xi_f),
                if s == 0 { Some(&xi_n) } else { None },
                prev_raws.as_ref().map(|r| &r[s]),
                Some(&mut raw_s),
            )?;
            raws.push(raw_s);
            stats.scf_iterations += st.scf_iterations;
            stats.h_applications += st.h_applications;
            stats.rho_residual = st.rho_residual;
            stats.converged &= st.converged;
            total_phases.absorb(&st.phases);
        }
        total_scf += stats.scf_iterations;
        total_h += stats.h_applications;
        let sp = pt_trace::span("density");
        let rho = sys.density(&trial.psi);
        total_phases.density += sp.finish_secs();
        if let Some(prev) = &prev_rho {
            drift = density_residual(&rho, prev, sys.grids.volume);
        }
        prev_rho = Some(rho);
        prev_raws = Some(raws);
        accepted = Some((trial, stats));
        if drift < opts.rho_tol {
            outer_converged = true;
            break;
        }
    }
    let (trial, mut stats) = accepted
        .expect("invariant: ACE_MAX_REFRESH_ROUNDS >= 1, so the loop body ran at least once");
    stats.scf_iterations = total_scf;
    stats.h_applications = total_h;
    stats.converged &= outer_converged;
    stats.phases = total_phases;
    if opts.strict && !outer_converged {
        return Err(PtError::NotConverged {
            context: "ACE refresh self-consistency",
            residual: drift,
            tol: opts.rho_tol,
            iterations: rounds,
        });
    }
    *state = trial;
    *ace_slot = Some(AceRefreshState {
        op: xi_f,
        steps_since_refresh: 1,
    });
    Ok(stats)
}

/// The in-process execution strategy: serial `HΨ` and the driver-side
/// residual (the [`StepKernels`] defaults).
pub(crate) struct SerialKernels;

impl StepKernels for SerialKernels {
    fn apply_h(
        &mut self,
        sys: &KsSystem,
        rho: &[f64],
        psi: &CMat,
        a: [f64; 3],
        ace: Option<&AceOperator>,
    ) -> Result<CMat, PtError> {
        serial_apply_h(sys, rho, psi, a, ace)
    }
}

impl Propagator for PtCnPropagator {
    fn name(&self) -> &'static str {
        "pt-cn"
    }

    /// One PT-CN step of size `dt` (Alg. 1), with the exchange evaluated
    /// per the resolved [`ExchangeMode`].
    fn step(
        &mut self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        state: &mut TdState,
        dt: f64,
    ) -> Result<StepStats, PtError> {
        let sp = pt_trace::span("ptcn_step");
        let mut stats = match resolve_exchange(self.exchange, sys)? {
            ExchangeMode::Full => ptcn_step_with(
                &self.opts,
                sys,
                laser,
                state,
                dt,
                &mut self.mixer,
                &mut SerialKernels,
                None,
                None,
                None,
                None,
            ),
            mode => ace_ptcn_step(
                &self.opts,
                sys,
                laser,
                state,
                dt,
                mode.refresh_interval()
                    .expect("invariant: the non-Full match arm only sees ACE modes, which carry an interval"),
                mode.inner_substeps(),
                &mut self.mixer,
                &mut self.ace,
                &mut SerialKernels,
            ),
        }?;
        stats.phases.reconcile(sp.finish_secs());
        Ok(stats)
    }

    fn capture(&self) -> PropagatorState {
        PropagatorState::PtCn {
            opts: self.opts,
            anderson: self.mixer.as_ref().map(BandAndersonMixer::state),
            exchange: self.exchange,
            ace: self.ace.as_ref().map(AceRefreshState::capture),
        }
    }
}

/// Explicit 4th-order Runge–Kutta on `i ∂t Ψ = H[ρ(Ψ), Ψ](t) Ψ` — the
/// baseline of Fig. 6. The Hamiltonian (density, exchange orbitals, laser
/// field) is rebuilt at every stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct Rk4Propagator {
    /// Options.
    pub opts: Rk4Options,
}

impl Rk4Propagator {
    /// Propagator with the given options.
    pub fn new(opts: Rk4Options) -> Self {
        Rk4Propagator { opts }
    }

    fn rhs(
        &self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        psi: &CMat,
        t: f64,
        stats: &mut StepStats,
    ) -> Result<CMat, PtError> {
        let rho = sys.density(psi);
        let phi = if sys.hybrid.is_some() {
            Some(psi)
        } else {
            None
        };
        let h = sys.hamiltonian(&rho, phi, a_field(laser, t))?;
        let mut hpsi = CMat::zeros(psi.nrows(), psi.ncols());
        h.apply_block(psi, &mut hpsi);
        stats.h_applications += 1;
        // k = −i H ψ
        for z in hpsi.data_mut().iter_mut() {
            *z = z.mul_neg_i();
        }
        Ok(hpsi)
    }
}

impl Propagator for Rk4Propagator {
    fn name(&self) -> &'static str {
        "rk4"
    }

    /// One RK4 step of size `dt`.
    fn step(
        &mut self,
        sys: &KsSystem,
        laser: Option<&LaserPulse>,
        state: &mut TdState,
        dt: f64,
    ) -> Result<StepStats, PtError> {
        let mut stats = StepStats {
            converged: true,
            ..StepStats::default()
        };
        let psi0 = state.psi.clone();
        let n = psi0.data().len();

        let k1 = self.rhs(sys, laser, &psi0, state.t, &mut stats)?;
        let mut tmp = psi0.clone();
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k1.data()[i].scale(0.5 * dt);
        }
        let k2 = self.rhs(sys, laser, &tmp, state.t + 0.5 * dt, &mut stats)?;
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k2.data()[i].scale(0.5 * dt);
        }
        let k3 = self.rhs(sys, laser, &tmp, state.t + 0.5 * dt, &mut stats)?;
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k3.data()[i].scale(dt);
        }
        let k4 = self.rhs(sys, laser, &tmp, state.t + dt, &mut stats)?;

        for i in 0..n {
            let incr = k1.data()[i] + (k2.data()[i] + k3.data()[i]).scale(2.0) + k4.data()[i];
            state.psi.data_mut()[i] = psi0.data()[i] + incr.scale(dt / 6.0);
        }
        if self.opts.reorthonormalize {
            reorthonormalize(&mut state.psi);
        }
        state.t += dt;
        Ok(stats)
    }

    fn capture(&self) -> PropagatorState {
        PropagatorState::Rk4 { opts: self.opts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observables::{density_matrix_distance, orthonormality_error};
    use pt_ham::HybridConfig;
    use pt_lattice::silicon_cubic_supercell;
    use pt_scf::{scf_loop, ScfOptions};
    use pt_xc::XcKind;

    fn ground_state(hybrid: bool) -> (KsSystem, CMat) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = if hybrid {
            KsSystem::builder(s)
                .ecut(2.0)
                .xc(XcKind::Pbe)
                .hybrid(HybridConfig::hse06())
                .build()
                .unwrap()
        } else {
            KsSystem::builder(s)
                .ecut(2.5)
                .xc(XcKind::Lda)
                .build()
                .unwrap()
        };
        let o = ScfOptions {
            rho_tol: 1e-7,
            max_phi_updates: 3,
            ..Default::default()
        };
        let r = scf_loop(&sys, o).expect("test ground state converges");
        (sys, r.orbitals)
    }

    #[test]
    fn ptcn_rejects_malformed_options() {
        // validation fires before any physics, so no SCF needed
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .build()
            .unwrap();
        let psi = CMat::rand_normalized(sys.grids.ng(), sys.n_bands(), 7);
        let bad = [
            PtCnOptions {
                rho_tol: -1.0,
                ..Default::default()
            },
            PtCnOptions {
                rho_tol: f64::NAN,
                ..Default::default()
            },
            PtCnOptions {
                max_scf: 0,
                ..Default::default()
            },
            PtCnOptions {
                anderson_depth: 0,
                ..Default::default()
            },
            PtCnOptions {
                beta: f64::INFINITY,
                ..Default::default()
            },
        ];
        for opts in bad {
            let mut st = TdState::new(psi.clone());
            let r = PtCnPropagator::new(opts).step(&sys, None, &mut st, 0.1);
            assert!(matches!(r, Err(PtError::InvalidConfig(_))), "{opts:?}");
        }
    }

    #[test]
    fn field_free_ptcn_is_stationary() {
        // At the ground state with no field, PT-CN must leave the density
        // matrix invariant for any dt (the PT gauge's selling point).
        let (sys, psi0) = ground_state(false);
        let mut prop = PtCnPropagator::default();
        let mut st = TdState::new(psi0.clone());
        let dt = pt_num::units::attosecond_to_au(50.0);
        let stats = prop.step(&sys, None, &mut st, dt).unwrap();
        assert!(stats.converged);
        assert!(stats.rho_residual < 1e-6, "residual {}", stats.rho_residual);
        assert!(orthonormality_error(&st.psi) < 1e-9);
        let d = density_matrix_distance(&psi0, &st.psi);
        assert!(d < 1e-5, "density matrix moved by {d}");
        // few SCFs needed at the stationary point
        assert!(stats.scf_iterations <= 10, "{}", stats.scf_iterations);
    }

    #[test]
    fn ptcn_matches_rk4_at_small_dt_with_field() {
        // propagate 2 as with a field; PT-CN (1 step) vs RK4 (40 × 0.05 as
        // reference): gauge-invariant observables must agree.
        let (sys, psi0) = ground_state(false);
        let laser = LaserPulse {
            a0: 0.08,
            omega: 0.3,
            t0: 0.0,
            sigma: 20.0,
            polarization: [0.0, 0.0, 1.0],
        };
        let dt = pt_num::units::attosecond_to_au(2.0);
        let mut st_pt = TdState::new(psi0.clone());
        let mut prop = PtCnPropagator::new(PtCnOptions {
            rho_tol: 1e-10,
            ..Default::default()
        });
        prop.step(&sys, Some(&laser), &mut st_pt, dt).unwrap();

        let mut rk = Rk4Propagator::default();
        let mut st_rk = TdState::new(psi0);
        for _ in 0..40 {
            rk.step(&sys, Some(&laser), &mut st_rk, dt / 40.0).unwrap();
        }
        let d = density_matrix_distance(&st_pt.psi, &st_rk.psi);
        assert!(d < 2e-4, "PT-CN vs RK4 density-matrix distance {d}");
    }

    #[test]
    fn rk4_conserves_norm_at_tiny_dt() {
        let (sys, psi0) = ground_state(false);
        let mut rk = Rk4Propagator::default();
        let mut st = TdState::new(psi0);
        let dt = pt_num::units::attosecond_to_au(0.5);
        for _ in 0..5 {
            rk.step(&sys, None, &mut st, dt).unwrap();
        }
        assert!(orthonormality_error(&st.psi) < 1e-8);
    }

    #[test]
    fn rk4_reorthonormalize_option_restores_orthonormality() {
        // at a dt where plain RK4 visibly drifts off the Stiefel manifold,
        // the reorthonormalize option must pin the error to roundoff
        let (sys, psi0) = ground_state(false);
        let dt = pt_num::units::attosecond_to_au(10.0);
        let mut plain = Rk4Propagator::default();
        let mut st_plain = TdState::new(psi0.clone());
        let mut reortho = Rk4Propagator::new(Rk4Options {
            reorthonormalize: true,
        });
        let mut st_re = TdState::new(psi0);
        for _ in 0..5 {
            plain.step(&sys, None, &mut st_plain, dt).unwrap();
            reortho.step(&sys, None, &mut st_re, dt).unwrap();
        }
        let e_plain = orthonormality_error(&st_plain.psi);
        let e_re = orthonormality_error(&st_re.psi);
        assert!(e_re < 1e-10, "re-orthonormalized RK4 error {e_re:.2e}");
        assert!(
            e_re < e_plain,
            "flag should tighten orthonormality: {e_re:.2e} vs plain {e_plain:.2e}"
        );
    }

    #[test]
    fn hybrid_ptcn_step_runs_and_counts_fock_applications() {
        let (sys, psi0) = ground_state(true);
        let mut prop = PtCnPropagator::new(PtCnOptions {
            rho_tol: 1e-6,
            max_scf: 30,
            ..PtCnOptions::default()
        });
        let mut st = TdState::new(psi0);
        let dt = pt_num::units::attosecond_to_au(50.0);
        let stats = prop.step(&sys, None, &mut st, dt).unwrap();
        // H applications = 1 (residual) + SCF count — the paper's "24 per
        // step" bookkeeping is scf + residual + energy
        assert_eq!(stats.h_applications, stats.scf_iterations + 1);
        assert!(orthonormality_error(&st.psi) < 1e-9);
        assert!(stats.rho_residual < 1e-5, "residual {}", stats.rho_residual);
    }

    #[test]
    fn ace_ptcn_step_advances_and_stays_orthonormal() {
        let (sys, psi0) = ground_state(true);
        let dt = pt_num::units::attosecond_to_au(50.0);
        // the self-consistent refresh rounds converge the ACE step to the
        // Full fixed point, so the reference is a Full step — not psi0,
        // which is only loosely converged and NOT stationary under the
        // exact hybrid dynamics
        let mut full = PtCnPropagator::new(PtCnOptions::default());
        let mut st_full = TdState::new(psi0.clone());
        full.step(&sys, None, &mut st_full, dt).unwrap();
        let mut prop = PtCnPropagator::with_exchange(
            PtCnOptions::default(),
            ExchangeMode::Ace {
                refresh_interval: 1,
            },
        );
        let mut st = TdState::new(psi0);
        let stats = prop.step(&sys, None, &mut st, dt).unwrap();
        assert!(stats.converged);
        assert!((st.t - dt).abs() < 1e-15);
        assert!(orthonormality_error(&st.psi) < 1e-9);
        let d = density_matrix_distance(&st_full.psi, &st.psi);
        assert!(d < 1e-4, "ACE step departs from the Full step by {d}");
        assert!(prop.ace.is_some(), "projector cached for the next window");
    }

    #[test]
    fn ace_mts_advances_t_by_exactly_dt_per_outer_step() {
        let (sys, psi0) = ground_state(true);
        let mut prop = PtCnPropagator::with_exchange(
            PtCnOptions::default(),
            ExchangeMode::AceMts {
                refresh_interval: 2,
                inner_substeps: 2,
            },
        );
        let mut st = TdState::new(psi0);
        let dt = pt_num::units::attosecond_to_au(40.0);
        let stats = prop.step(&sys, None, &mut st, dt).unwrap();
        // dt/2 + dt/2 is exact in floating point
        assert!((st.t - dt).abs() < 1e-18, "t = {} after MTS step", st.t);
        // two substeps, each ≥ 2 H applications (residual + ≥1 SCF)
        assert!(stats.h_applications >= 4, "{}", stats.h_applications);
        let ace = prop.ace.as_ref().unwrap();
        assert_eq!(ace.steps_since_refresh, 1);
        // second outer step inside the window must NOT rebuild ξ
        prop.step(&sys, None, &mut st, dt).unwrap();
        assert_eq!(prop.ace.as_ref().unwrap().steps_since_refresh, 2);
        // third outer step re-opens the window
        prop.step(&sys, None, &mut st, dt).unwrap();
        assert_eq!(prop.ace.as_ref().unwrap().steps_since_refresh, 1);
    }

    #[test]
    fn ace_on_semilocal_system_is_a_typed_error() {
        let (sys, psi0) = ground_state(false);
        let mut prop = PtCnPropagator::with_exchange(
            PtCnOptions::default(),
            ExchangeMode::Ace {
                refresh_interval: 1,
            },
        );
        let mut st = TdState::new(psi0);
        assert!(matches!(
            prop.step(&sys, None, &mut st, 0.1),
            Err(PtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn strict_ptcn_reports_nonconvergence_as_error() {
        let (sys, psi0) = ground_state(false);
        // an unreachable tolerance with a starved iteration budget
        let mut prop = PtCnPropagator::new(PtCnOptions {
            rho_tol: 1e-30,
            max_scf: 1,
            strict: true,
            ..PtCnOptions::default()
        });
        // kick the state off the stationary point so the residual is nonzero
        let laser = LaserPulse {
            a0: 0.1,
            omega: 0.3,
            t0: 0.0,
            sigma: 20.0,
            polarization: [0.0, 0.0, 1.0],
        };
        let mut st = TdState::new(psi0);
        let dt = pt_num::units::attosecond_to_au(10.0);
        match prop.step(&sys, Some(&laser), &mut st, dt) {
            Err(PtError::NotConverged {
                context,
                iterations,
                ..
            }) => {
                assert_eq!(context, "PT-CN fixed point");
                assert_eq!(iterations, 1);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
        // non-strict mode accepts the same step and reports the residual
        let mut lax = PtCnPropagator::new(PtCnOptions {
            rho_tol: 1e-30,
            max_scf: 1,
            ..PtCnOptions::default()
        });
        let stats = lax.step(&sys, Some(&laser), &mut st, dt).unwrap();
        assert!(!stats.converged);
        assert!(stats.rho_residual > 0.0);
    }

    #[test]
    fn propagators_are_object_safe_and_runtime_selectable() {
        let (sys, psi0) = ground_state(false);
        let dt = pt_num::units::attosecond_to_au(1.0);
        for boxed in [
            Box::new(PtCnPropagator::default()) as Box<dyn Propagator>,
            Box::new(Rk4Propagator::default()) as Box<dyn Propagator>,
        ] {
            let mut prop = boxed;
            let mut st = TdState::new(psi0.clone());
            let stats = prop.step(&sys, None, &mut st, dt).unwrap();
            assert!(stats.h_applications >= 1, "{}", prop.name());
            assert!((st.t - dt).abs() < 1e-15);
        }
    }
}
