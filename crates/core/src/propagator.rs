//! Time propagators: PT-CN (Alg. 1) and the RK4 baseline.

use crate::anderson_c::BandAndersonMixer;
use crate::laser::LaserPulse;
use pt_ham::KsSystem;
use pt_linalg::{cholesky_in_place, gemm, trsm_right_lh, CMat, Op};
use pt_num::c64;

/// The propagated state.
#[derive(Clone)]
pub struct TdState {
    /// Occupied orbitals (sphere coefficients, columns).
    pub psi: CMat,
    /// Current time (a.u.).
    pub t: f64,
}

/// Per-step diagnostics (the quantities §7 accounts for).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// SCF (fixed-point) iterations used.
    pub scf_iterations: usize,
    /// Full `HΨ` block applications (each contains one Fock exchange
    /// application per band when hybrid).
    pub h_applications: usize,
    /// Final fixed-point density residual.
    pub rho_residual: f64,
}

/// PT-CN options (§4 settings as defaults).
#[derive(Clone, Copy, Debug)]
pub struct PtCnOptions {
    /// Density convergence threshold (paper: 1e-6).
    pub rho_tol: f64,
    /// Max SCF iterations per step (paper observes ~22 on average).
    pub max_scf: usize,
    /// Anderson history depth (paper: 20).
    pub anderson_depth: usize,
    /// Anderson relaxation β.
    pub beta: f64,
}

impl Default for PtCnOptions {
    fn default() -> Self {
        PtCnOptions { rho_tol: 1e-6, max_scf: 40, anderson_depth: 20, beta: 1.0 }
    }
}

/// The implicit parallel-transport Crank–Nicolson propagator (Alg. 1).
pub struct PtCnPropagator<'a> {
    /// The Kohn–Sham problem.
    pub sys: &'a KsSystem,
    /// Laser coupling (None = field-free).
    pub laser: Option<LaserPulse>,
    /// Options.
    pub opts: PtCnOptions,
}

/// `out = H Ψ − Ψ (Ψ* H Ψ)` — the PT residual RHS; returns (out, HΨ).
fn pt_rhs(hpsi: &CMat, psi: &CMat) -> CMat {
    let nb = psi.ncols();
    let mut s = CMat::zeros(nb, nb);
    gemm(c64::ONE, psi, Op::ConjTrans, hpsi, Op::None, c64::ZERO, &mut s);
    let mut out = hpsi.clone();
    gemm(-c64::ONE, psi, Op::None, &s, Op::None, c64::ONE, &mut out);
    out
}

fn a_field(laser: &Option<LaserPulse>, t: f64) -> [f64; 3] {
    laser.as_ref().map(|l| l.a_field(t)).unwrap_or([0.0; 3])
}

impl<'a> PtCnPropagator<'a> {
    /// One PT-CN step of size `dt` (Alg. 1).
    pub fn step(&self, state: &mut TdState, dt: f64) -> StepStats {
        let sys = self.sys;
        let nb = state.psi.ncols();
        let ng = state.psi.nrows();
        let mut stats = StepStats::default();
        let nd = sys.grids.n_dense();
        let dv = sys.grids.volume / nd as f64;

        // line 1: initial residual R_n at time t_n
        let rho_n = sys.density(&state.psi);
        let phi = if sys.hybrid.is_some() { Some(&state.psi) } else { None };
        let h_n = sys.hamiltonian(&rho_n, phi, a_field(&self.laser, state.t));
        let mut hpsi = CMat::zeros(ng, nb);
        h_n.apply_block(&state.psi, &mut hpsi);
        stats.h_applications += 1;
        let r_n = pt_rhs(&hpsi, &state.psi);

        // line 2: Ψ_{n+1/2} = Ψ_n − i dt/2 R_n ; Ψ_f = Ψ_{n+1/2}
        let mut psi_half = state.psi.clone();
        for (o, r) in psi_half.data_mut().iter_mut().zip(r_n.data()) {
            *o -= r.mul_i().scale(0.5 * dt);
        }
        let mut psi_f = psi_half.clone();

        // lines 3-10: fixed point via Anderson mixing
        let mut mixer = BandAndersonMixer::new(nb, self.opts.anderson_depth, self.opts.beta);
        let mut rho_f = sys.density(&psi_f);
        let t_next = state.t + dt;
        for _ in 0..self.opts.max_scf {
            stats.scf_iterations += 1;
            let phi_f = if sys.hybrid.is_some() { Some(&psi_f) } else { None };
            let h_f = sys.hamiltonian(&rho_f, phi_f, a_field(&self.laser, t_next));
            let mut hpsi_f = CMat::zeros(ng, nb);
            h_f.apply_block(&psi_f, &mut hpsi_f);
            stats.h_applications += 1;
            // R_f = Ψ_f + i dt/2 (H_f Ψ_f − Ψ_f (Ψ_f* H_f Ψ_f)) − Ψ_{n+1/2}
            let rhs = pt_rhs(&hpsi_f, &psi_f);
            let mut resid = CMat::zeros(ng, nb);
            for i in 0..ng * nb {
                resid.data_mut()[i] = psi_f.data()[i] + rhs.data()[i].mul_i().scale(0.5 * dt)
                    - psi_half.data()[i];
            }
            // Anderson mixing on the fixed point Ψ = Ψ − R(Ψ): residual −R
            for z in resid.data_mut().iter_mut() {
                *z = -*z;
            }
            psi_f = mixer.step(&psi_f, &resid);
            let rho_new = sys.density(&psi_f);
            stats.rho_residual = rho_new
                .iter()
                .zip(&rho_f)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
                * dv
                * nd as f64;
            rho_f = rho_new;
            if stats.rho_residual < self.opts.rho_tol {
                break;
            }
        }

        // line 11: re-orthogonalize (Cholesky + TRSM, §3.4)
        let mut s = CMat::zeros(nb, nb);
        gemm(c64::ONE, &psi_f, Op::ConjTrans, &psi_f, Op::None, c64::ZERO, &mut s);
        let mut l = s;
        cholesky_in_place(&mut l);
        trsm_right_lh(&mut psi_f, &l);

        state.psi = psi_f;
        state.t = t_next;
        stats
    }
}

/// Explicit 4th-order Runge–Kutta on `i ∂t Ψ = H[ρ(Ψ), Ψ](t) Ψ` — the
/// baseline of Fig. 6. The Hamiltonian (density, exchange orbitals, laser
/// field) is rebuilt at every stage.
pub struct Rk4Propagator<'a> {
    /// The Kohn–Sham problem.
    pub sys: &'a KsSystem,
    /// Laser coupling.
    pub laser: Option<LaserPulse>,
}

impl<'a> Rk4Propagator<'a> {
    fn rhs(&self, psi: &CMat, t: f64, stats: &mut StepStats) -> CMat {
        let sys = self.sys;
        let rho = sys.density(psi);
        let phi = if sys.hybrid.is_some() { Some(psi) } else { None };
        let h = sys.hamiltonian(&rho, phi, a_field(&self.laser, t));
        let mut hpsi = CMat::zeros(psi.nrows(), psi.ncols());
        h.apply_block(psi, &mut hpsi);
        stats.h_applications += 1;
        // k = −i H ψ
        for z in hpsi.data_mut().iter_mut() {
            *z = z.mul_neg_i();
        }
        hpsi
    }

    /// One RK4 step of size `dt`.
    pub fn step(&self, state: &mut TdState, dt: f64) -> StepStats {
        let mut stats = StepStats::default();
        let psi0 = state.psi.clone();
        let n = psi0.data().len();

        let k1 = self.rhs(&psi0, state.t, &mut stats);
        let mut tmp = psi0.clone();
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k1.data()[i].scale(0.5 * dt);
        }
        let k2 = self.rhs(&tmp, state.t + 0.5 * dt, &mut stats);
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k2.data()[i].scale(0.5 * dt);
        }
        let k3 = self.rhs(&tmp, state.t + 0.5 * dt, &mut stats);
        for i in 0..n {
            tmp.data_mut()[i] = psi0.data()[i] + k3.data()[i].scale(dt);
        }
        let k4 = self.rhs(&tmp, state.t + dt, &mut stats);

        for i in 0..n {
            let incr = k1.data()[i]
                + (k2.data()[i] + k3.data()[i]).scale(2.0)
                + k4.data()[i];
            state.psi.data_mut()[i] = psi0.data()[i] + incr.scale(dt / 6.0);
        }
        state.t += dt;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observables::{density_matrix_distance, orthonormality_error};
    use pt_lattice::silicon_cubic_supercell;
    use pt_scf::{scf_loop, ScfOptions};
    use pt_xc::XcKind;

    fn ground_state(hybrid: bool) -> (KsSystem, CMat) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = if hybrid {
            KsSystem::new(s, 2.0, XcKind::Pbe, Some(pt_ham::HybridConfig::hse06()))
        } else {
            KsSystem::new(s, 2.5, XcKind::Lda, None)
        };
        let mut o = ScfOptions::default();
        o.rho_tol = 1e-7;
        o.max_phi_updates = 3;
        let r = scf_loop(&sys, o);
        (sys, r.orbitals)
    }

    #[test]
    fn field_free_ptcn_is_stationary() {
        // At the ground state with no field, PT-CN must leave the density
        // matrix invariant for any dt (the PT gauge's selling point).
        let (sys, psi0) = ground_state(false);
        let prop = PtCnPropagator { sys: &sys, laser: None, opts: PtCnOptions::default() };
        let mut st = TdState { psi: psi0.clone(), t: 0.0 };
        let dt = pt_num::units::attosecond_to_au(50.0);
        let stats = prop.step(&mut st, dt);
        assert!(stats.rho_residual < 1e-6, "residual {}", stats.rho_residual);
        assert!(orthonormality_error(&st.psi) < 1e-9);
        let d = density_matrix_distance(&psi0, &st.psi);
        assert!(d < 1e-5, "density matrix moved by {d}");
        // few SCFs needed at the stationary point
        assert!(stats.scf_iterations <= 10, "{}", stats.scf_iterations);
    }

    #[test]
    fn ptcn_matches_rk4_at_small_dt_with_field() {
        // propagate 2 as with a field; PT-CN (1 step) vs RK4 (40 × 0.05 as
        // reference): gauge-invariant observables must agree.
        let (sys, psi0) = ground_state(false);
        let laser = Some(LaserPulse {
            a0: 0.08,
            omega: 0.3,
            t0: 0.0,
            sigma: 20.0,
            polarization: [0.0, 0.0, 1.0],
        });
        let dt = pt_num::units::attosecond_to_au(2.0);
        let mut st_pt = TdState { psi: psi0.clone(), t: 0.0 };
        let mut opts = PtCnOptions::default();
        opts.rho_tol = 1e-10;
        let prop = PtCnPropagator { sys: &sys, laser, opts };
        prop.step(&mut st_pt, dt);

        let rk = Rk4Propagator { sys: &sys, laser };
        let mut st_rk = TdState { psi: psi0, t: 0.0 };
        for _ in 0..40 {
            rk.step(&mut st_rk, dt / 40.0);
        }
        let d = density_matrix_distance(&st_pt.psi, &st_rk.psi);
        assert!(d < 2e-4, "PT-CN vs RK4 density-matrix distance {d}");
    }

    #[test]
    fn rk4_conserves_norm_at_tiny_dt() {
        let (sys, psi0) = ground_state(false);
        let rk = Rk4Propagator { sys: &sys, laser: None };
        let mut st = TdState { psi: psi0, t: 0.0 };
        let dt = pt_num::units::attosecond_to_au(0.5);
        for _ in 0..5 {
            rk.step(&mut st, dt);
        }
        assert!(orthonormality_error(&st.psi) < 1e-8);
    }

    #[test]
    fn hybrid_ptcn_step_runs_and_counts_fock_applications() {
        let (sys, psi0) = ground_state(true);
        let prop = PtCnPropagator {
            sys: &sys,
            laser: None,
            opts: PtCnOptions { rho_tol: 1e-6, max_scf: 30, anderson_depth: 20, beta: 1.0 },
        };
        let mut st = TdState { psi: psi0, t: 0.0 };
        let dt = pt_num::units::attosecond_to_au(50.0);
        let stats = prop.step(&mut st, dt);
        // H applications = 1 (residual) + SCF count — the paper's "24 per
        // step" bookkeeping is scf + residual + energy
        assert_eq!(stats.h_applications, stats.scf_iterations + 1);
        assert!(orthonormality_error(&st.psi) < 1e-9);
        assert!(stats.rho_residual < 1e-5, "residual {}", stats.rho_residual);
    }
}
