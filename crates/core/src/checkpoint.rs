//! The run-checkpoint schema: what `Simulation` persists through `pt-io`
//! and how it comes back.
//!
//! A checkpoint captures the **full resumable state** of an rt-TDDFT run
//! at a step boundary: ψ orbitals (and, for hybrids, the exchange
//! orbitals Φ — equal to ψ in the parallel-transport gauge), the step
//! density, occupations, time/step bookkeeping, laser parameters, the
//! propagator's capturable state ([`PropagatorState`], incl. the Anderson
//! mixer history) and every accumulated [`TimeSeries`] channel. With the
//! default [`Wire::F64`] payloads a killed-and-resumed trajectory is
//! bit-identical to an uninterrupted one; [`Wire::F32`] halves the orbital
//! payload bytes and gives that guarantee up (~1e-7 relative loss on ψ).
//!
//! The byte-level container (magic, version, section table, per-section
//! CRC-32) lives in [`pt_io::format`]; this module only defines which
//! sections exist and what they mean — see `DESIGN.md` ("Snapshot format
//! & resume semantics") for the full layout.

use crate::anderson_c::AndersonState;
use crate::laser::LaserPulse;
use crate::propagator::{AceCapture, PropagatorState, PtCnOptions, Rk4Options, StepStats};
use crate::simulation::TimeSeries;
use pt_ham::{DistributedConfig, ExchangeMode, PtError, SystemSignature};
use pt_io::{SnapshotFile, SnapshotWriter};
use pt_linalg::CMat;
use pt_mpi::Wire;
use pt_num::c64;
use std::path::{Path, PathBuf};

/// How a [`crate::Simulation`] emits rolling snapshots from inside its
/// time loop (configured via `SimulationBuilder::checkpoint_every`).
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Emit a snapshot after every `every` completed steps.
    pub every: usize,
    /// Directory the `ckpt_<step>.ptio` files land in (created on first
    /// write).
    pub dir: PathBuf,
    /// How many snapshots to keep. After each write the emitting run
    /// prunes the oldest of **its own** snapshots — files it did not write
    /// (a previous run's, a different trajectory sharing the directory)
    /// are never deleted.
    pub keep: usize,
    /// Payload precision for the orbital-sized sections. [`Wire::F64`]
    /// (default) preserves the bit-exact resume guarantee; [`Wire::F32`]
    /// halves those bytes at ~1e-7 relative loss.
    pub wire: Wire,
}

impl CheckpointPolicy {
    pub(crate) fn validate(&self) -> Result<(), PtError> {
        if self.every == 0 {
            return Err(PtError::InvalidConfig(
                "checkpoint interval must be at least 1 step".into(),
            ));
        }
        if self.keep == 0 {
            return Err(PtError::InvalidConfig(
                "checkpoint retention must keep at least 1 snapshot".into(),
            ));
        }
        if self.dir.as_os_str().is_empty() {
            return Err(PtError::InvalidConfig(
                "checkpoint directory must be nonempty".into(),
            ));
        }
        Ok(())
    }
}

/// File name of the snapshot emitted after absolute step `step`.
pub fn checkpoint_path(dir: &Path, step: usize) -> PathBuf {
    dir.join(format!("ckpt_{step:08}.ptio"))
}

/// The most recent snapshot in `dir` (by step number in the file name),
/// if any — what a restarted job resumes from. Purely name-based; use
/// [`crate::Simulation::resume_latest`] (which validates via
/// [`pt_io::scan_snapshots`]) when the directory may hold corrupt files.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, PtError> {
    Ok(pt_io::snapshot_files(dir)?.into_iter().next_back())
}

/// One captured run state — everything [`crate::Simulation::resume`]
/// needs. Produced inside the time loop; also constructible by hand for
/// tooling.
#[derive(Debug)]
pub struct RunCheckpoint {
    /// Shape fingerprint of the system the run was driving.
    pub signature: SystemSignature,
    /// Steps the interrupted `run` still had to take.
    pub steps_remaining: usize,
    /// Current time (a.u.), i.e. the post-step time of the last completed
    /// step.
    pub t: f64,
    /// Step size.
    pub dt: f64,
    /// Occupations of the system (revalidated on resume).
    pub occupations: Vec<f64>,
    /// Propagated orbitals.
    pub psi: CMat,
    /// Exchange orbitals Φ (hybrids; `None` for semi-local runs — in the
    /// PT gauge Φ = Ψ, stored explicitly so the capture is self-contained).
    pub phi: Option<CMat>,
    /// Density of `psi` (diagnostic/validation copy; resume recomputes it
    /// from ψ).
    pub rho: Vec<f64>,
    /// Laser coupling.
    pub laser: Option<LaserPulse>,
    /// Propagator options + internal state.
    pub propagator: PropagatorState,
    /// Every step recorded so far (all observer channels).
    pub series: TimeSeries,
}

/// Borrowed view of a run state for zero-copy serialization: the time
/// loop writes snapshots through this (ψ, ρ, occupations and the growing
/// `TimeSeries` are *borrowed*, never cloned, so a checkpoint does not
/// transiently double the run's memory). [`RunCheckpoint::write`]
/// delegates here.
pub struct RunCheckpointView<'a> {
    /// See [`RunCheckpoint::signature`].
    pub signature: SystemSignature,
    /// See [`RunCheckpoint::steps_remaining`].
    pub steps_remaining: usize,
    /// See [`RunCheckpoint::t`].
    pub t: f64,
    /// See [`RunCheckpoint::dt`].
    pub dt: f64,
    /// See [`RunCheckpoint::occupations`].
    pub occupations: &'a [f64],
    /// See [`RunCheckpoint::psi`].
    pub psi: &'a CMat,
    /// See [`RunCheckpoint::phi`].
    pub phi: Option<&'a CMat>,
    /// See [`RunCheckpoint::rho`].
    pub rho: &'a [f64],
    /// See [`RunCheckpoint::laser`].
    pub laser: Option<&'a LaserPulse>,
    /// See [`RunCheckpoint::propagator`].
    pub propagator: &'a PropagatorState,
    /// See [`RunCheckpoint::series`].
    pub series: &'a TimeSeries,
}

impl RunCheckpointView<'_> {
    /// Serialize into `path` (atomically: temporary sibling + rename).
    /// `wire` selects the payload precision of the orbital-sized matrix
    /// sections; everything else is always exact `f64`/`u64`.
    pub fn write(&self, path: impl AsRef<Path>, wire: Wire) -> Result<(), PtError> {
        let path = path.as_ref();
        let mut w = SnapshotWriter::create(path);
        w.put_u64s("sig", &self.signature.to_words())?;
        w.put_u64s("steps", &[self.steps_remaining as u64])?;
        w.put_f64s("time", &[self.t, self.dt])?;
        w.put_f64s("occ", self.occupations)?;
        w.put_cmat("psi", self.psi, wire)?;
        if let Some(phi) = self.phi {
            w.put_cmat("phi", phi, wire)?;
        }
        w.put_f64s("rho", self.rho)?;
        if let Some(l) = self.laser {
            w.put_f64s(
                "laser",
                &[
                    l.a0,
                    l.omega,
                    l.t0,
                    l.sigma,
                    l.polarization[0],
                    l.polarization[1],
                    l.polarization[2],
                ],
            )?;
        }
        write_propagator(&mut w, self.propagator, wire)?;
        write_series(&mut w, self.series)?;
        w.finish()
    }
}

impl RunCheckpoint {
    /// Borrow every field as a [`RunCheckpointView`].
    pub fn view(&self) -> RunCheckpointView<'_> {
        RunCheckpointView {
            signature: self.signature,
            steps_remaining: self.steps_remaining,
            t: self.t,
            dt: self.dt,
            occupations: &self.occupations,
            psi: &self.psi,
            phi: self.phi.as_ref(),
            rho: &self.rho,
            laser: self.laser.as_ref(),
            propagator: &self.propagator,
            series: &self.series,
        }
    }

    /// Serialize into `path` — see [`RunCheckpointView::write`].
    pub fn write(&self, path: impl AsRef<Path>, wire: Wire) -> Result<(), PtError> {
        self.view().write(path, wire)
    }

    /// Read a checkpoint back (container defects — truncation, CRC,
    /// version — and schema defects all surface as typed [`PtError`]s).
    pub fn read(path: impl AsRef<Path>) -> Result<Self, PtError> {
        let path = path.as_ref();
        let f = SnapshotFile::open(path)?;
        let schema = |reason: String| PtError::SnapshotFormat {
            path: path.display().to_string(),
            reason,
        };
        let signature = SystemSignature::from_words(&f.u64s("sig")?)
            .ok_or_else(|| schema("'sig' section has the wrong arity".into()))?;
        let steps_remaining = f.u64("steps")? as usize;
        let (t, dt) = match f.f64s("time")?.as_slice() {
            [t, dt] => (*t, *dt),
            other => return Err(schema(format!("'time' holds {} values", other.len()))),
        };
        let occupations = f.f64s("occ")?;
        let psi = f.cmat("psi")?;
        let phi = if f.has("phi") {
            Some(f.cmat("phi")?)
        } else {
            None
        };
        let rho = f.f64s("rho")?;
        let laser = if f.has("laser") {
            match f.f64s("laser")?.as_slice() {
                [a0, omega, t0, sigma, px, py, pz] => Some(LaserPulse {
                    a0: *a0,
                    omega: *omega,
                    t0: *t0,
                    sigma: *sigma,
                    polarization: [*px, *py, *pz],
                }),
                other => return Err(schema(format!("'laser' holds {} values", other.len()))),
            }
        } else {
            None
        };
        let propagator = read_propagator(&f, &schema)?;
        let series = read_series(&f, &schema)?;
        Ok(RunCheckpoint {
            signature,
            steps_remaining,
            t,
            dt,
            occupations,
            psi,
            phi,
            rho,
            laser,
            propagator,
            series,
        })
    }
}

fn write_propagator(
    w: &mut SnapshotWriter,
    state: &PropagatorState,
    wire: Wire,
) -> Result<(), PtError> {
    let write_ptcn = |w: &mut SnapshotWriter, opts: &PtCnOptions| -> Result<(), PtError> {
        w.put_f64s("prop/ptcn_f", &[opts.rho_tol, opts.beta])?;
        w.put_u64s(
            "prop/ptcn_u",
            &[
                opts.max_scf as u64,
                opts.anderson_depth as u64,
                u64::from(opts.strict),
            ],
        )
    };
    let write_anderson =
        |w: &mut SnapshotWriter, a: &Option<AndersonState>| -> Result<(), PtError> {
            let Some(a) = a else { return Ok(()) };
            let hist = a.xs.first().map(|h| h.len()).unwrap_or(0);
            let vec_len = a.xs.first().and_then(|h| h.first()).map_or(0, Vec::len);
            w.put_u64s(
                "prop/anderson/meta",
                &[
                    a.n_bands as u64,
                    a.depth as u64,
                    hist as u64,
                    vec_len as u64,
                ],
            )?;
            w.put_f64s("prop/anderson/beta", &[a.beta])?;
            let flatten = |hists: &[Vec<Vec<c64>>]| -> CMat {
                let mut m = CMat::zeros(vec_len, a.n_bands * hist);
                for (b, h) in hists.iter().enumerate() {
                    for (k, v) in h.iter().enumerate() {
                        m.col_mut(b * hist + k).copy_from_slice(v);
                    }
                }
                m
            };
            w.put_cmat("prop/anderson/xs", &flatten(&a.xs), wire)?;
            w.put_cmat("prop/anderson/fs", &flatten(&a.fs), wire)
        };
    // The ACE projector ξ is snapshotted **verbatim** (never rebuilt from
    // the restored Ψ): a resume mid-refresh-window must keep propagating
    // under the exact frozen projector the killed run was using, or the
    // resumed trajectory would silently diverge bit-wise from the
    // uninterrupted one.
    let write_exchange = |w: &mut SnapshotWriter,
                          exchange: &Option<ExchangeMode>,
                          ace: &Option<AceCapture>|
     -> Result<(), PtError> {
        if let Some(mode) = exchange {
            let coded: [u64; 3] = match *mode {
                ExchangeMode::Full => [0, 0, 0],
                ExchangeMode::Ace { refresh_interval } => [1, refresh_interval as u64, 0],
                ExchangeMode::AceMts {
                    refresh_interval,
                    inner_substeps,
                } => [2, refresh_interval as u64, inner_substeps as u64],
            };
            w.put_u64s("prop/exch", &coded)?;
        }
        if let Some(a) = ace {
            w.put_u64s("prop/ace", &[a.steps_since_refresh as u64])?;
            w.put_cmat("prop/ace_xi", &a.xi, wire)?;
        }
        Ok(())
    };
    match state {
        PropagatorState::PtCn {
            opts,
            anderson,
            exchange,
            ace,
        } => {
            w.put_str("prop/name", "pt-cn")?;
            write_ptcn(w, opts)?;
            write_exchange(w, exchange, ace)?;
            write_anderson(w, anderson)
        }
        PropagatorState::PtCnDistributed {
            opts,
            config,
            anderson,
            exchange,
            ace,
        } => {
            w.put_str("prop/name", "pt-cn-dist")?;
            write_ptcn(w, opts)?;
            if let Some(c) = config {
                w.put_u64s(
                    "prop/dist",
                    &[
                        c.ranks as u64,
                        c.threads_per_rank as u64,
                        u64::from(c.wire == Wire::F32),
                    ],
                )?;
            }
            write_exchange(w, exchange, ace)?;
            write_anderson(w, anderson)
        }
        PropagatorState::Rk4 { opts } => {
            w.put_str("prop/name", "rk4")?;
            w.put_u64s("prop/rk4", &[u64::from(opts.reorthonormalize)])
        }
        PropagatorState::Opaque { name } => {
            w.put_str("prop/name", name)?;
            w.put_u64s("prop/opaque", &[1])
        }
    }
}

fn read_propagator(
    f: &SnapshotFile,
    schema: &impl Fn(String) -> PtError,
) -> Result<PropagatorState, PtError> {
    let name = f.str("prop/name")?;
    let read_ptcn = || -> Result<PtCnOptions, PtError> {
        let (rho_tol, beta) = match f.f64s("prop/ptcn_f")?.as_slice() {
            [r, b] => (*r, *b),
            other => {
                return Err(schema(format!(
                    "'prop/ptcn_f' holds {} values",
                    other.len()
                )))
            }
        };
        let (max_scf, anderson_depth, strict) = match f.u64s("prop/ptcn_u")?.as_slice() {
            [m, d, s] => (*m as usize, *d as usize, *s != 0),
            other => {
                return Err(schema(format!(
                    "'prop/ptcn_u' holds {} values",
                    other.len()
                )))
            }
        };
        Ok(PtCnOptions {
            rho_tol,
            max_scf,
            anderson_depth,
            beta,
            strict,
        })
    };
    let read_anderson = || -> Result<Option<AndersonState>, PtError> {
        if !f.has("prop/anderson/meta") {
            return Ok(None);
        }
        let (n_bands, depth, hist, vec_len) = match f.u64s("prop/anderson/meta")?.as_slice() {
            [n, d, h, v] => (*n as usize, *d as usize, *h as usize, *v as usize),
            other => {
                return Err(schema(format!(
                    "'prop/anderson/meta' holds {} values",
                    other.len()
                )))
            }
        };
        let beta = match f.f64s("prop/anderson/beta")?.as_slice() {
            [b] => *b,
            other => {
                return Err(schema(format!(
                    "'prop/anderson/beta' holds {} values",
                    other.len()
                )))
            }
        };
        let unflatten = |m: &CMat| -> Result<Vec<Vec<Vec<c64>>>, PtError> {
            if m.nrows() != vec_len || m.ncols() != n_bands * hist {
                return Err(schema(format!(
                    "anderson history matrix is {}x{}, expected {}x{}",
                    m.nrows(),
                    m.ncols(),
                    vec_len,
                    n_bands * hist
                )));
            }
            Ok((0..n_bands)
                .map(|b| (0..hist).map(|k| m.col(b * hist + k).to_vec()).collect())
                .collect())
        };
        let xs = unflatten(&f.cmat("prop/anderson/xs")?)?;
        let fs = unflatten(&f.cmat("prop/anderson/fs")?)?;
        Ok(Some(AndersonState {
            depth,
            beta,
            n_bands,
            xs,
            fs,
        }))
    };
    // Sections absent in pre-ACE snapshots; `f.has` gating keeps the old
    // format readable (absent → mode/projector default to `None`).
    let read_exchange = || -> Result<Option<ExchangeMode>, PtError> {
        if !f.has("prop/exch") {
            return Ok(None);
        }
        match f.u64s("prop/exch")?.as_slice() {
            [0, _, _] => Ok(Some(ExchangeMode::Full)),
            [1, r, _] => Ok(Some(ExchangeMode::Ace {
                refresh_interval: *r as usize,
            })),
            [2, r, s] => Ok(Some(ExchangeMode::AceMts {
                refresh_interval: *r as usize,
                inner_substeps: *s as usize,
            })),
            other => Err(schema(format!("'prop/exch' holds {other:?}"))),
        }
    };
    let read_ace = || -> Result<Option<AceCapture>, PtError> {
        if !f.has("prop/ace") {
            return Ok(None);
        }
        let steps_since_refresh = match f.u64s("prop/ace")?.as_slice() {
            [s] => *s as usize,
            other => return Err(schema(format!("'prop/ace' holds {} values", other.len()))),
        };
        Ok(Some(AceCapture {
            xi: f.cmat("prop/ace_xi")?,
            steps_since_refresh,
        }))
    };
    match name.as_str() {
        "pt-cn" => Ok(PropagatorState::PtCn {
            opts: read_ptcn()?,
            anderson: read_anderson()?,
            exchange: read_exchange()?,
            ace: read_ace()?,
        }),
        "pt-cn-dist" => {
            let config = if f.has("prop/dist") {
                match f.u64s("prop/dist")?.as_slice() {
                    [r, t, w] => Some(DistributedConfig {
                        ranks: *r as usize,
                        threads_per_rank: *t as usize,
                        wire: if *w != 0 { Wire::F32 } else { Wire::F64 },
                    }),
                    other => {
                        return Err(schema(format!("'prop/dist' holds {} values", other.len())))
                    }
                }
            } else {
                None
            };
            Ok(PropagatorState::PtCnDistributed {
                opts: read_ptcn()?,
                config,
                anderson: read_anderson()?,
                exchange: read_exchange()?,
                ace: read_ace()?,
            })
        }
        "rk4" => {
            let reorthonormalize = f.u64("prop/rk4")? != 0;
            Ok(PropagatorState::Rk4 {
                opts: Rk4Options { reorthonormalize },
            })
        }
        _ => Ok(PropagatorState::Opaque { name }),
    }
}

fn write_series(w: &mut SnapshotWriter, s: &TimeSeries) -> Result<(), PtError> {
    w.put_str("series/propagator", &s.propagator)?;
    w.put_f64s("series/t", &s.t)?;
    let mut a = Vec::with_capacity(3 * s.a_field.len());
    for v in &s.a_field {
        a.extend_from_slice(v);
    }
    w.put_f64s("series/a", &a)?;
    let mut su = Vec::with_capacity(3 * s.stats.len());
    let mut sf = Vec::with_capacity(s.stats.len());
    for st in &s.stats {
        su.push(st.scf_iterations as u64);
        su.push(st.h_applications as u64);
        su.push(u64::from(st.converged));
        sf.push(st.rho_residual);
    }
    w.put_u64s("series/stats", &su)?;
    w.put_f64s("series/stats_resid", &sf)?;
    let names = s.channel_names();
    w.put_str("series/channels", &names.join("\n"))?;
    for name in names {
        w.put_f64s(
            &format!("series/ch/{name}"),
            s.channel(name)
                .expect("invariant: name came from channel_names()"),
        )?;
    }
    Ok(())
}

fn read_series(
    f: &SnapshotFile,
    schema: &impl Fn(String) -> PtError,
) -> Result<TimeSeries, PtError> {
    let propagator = f.str("series/propagator")?;
    let t = f.f64s("series/t")?;
    let n = t.len();
    let a_raw = f.f64s("series/a")?;
    if a_raw.len() != 3 * n {
        return Err(schema(format!(
            "'series/a' holds {} values, expected {}",
            a_raw.len(),
            3 * n
        )));
    }
    let a_field: Vec<[f64; 3]> = a_raw.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    let su = f.u64s("series/stats")?;
    let sf = f.f64s("series/stats_resid")?;
    if su.len() != 3 * n || sf.len() != n {
        return Err(schema(format!(
            "'series/stats' holds {}+{} values, expected {}+{}",
            su.len(),
            sf.len(),
            3 * n,
            n
        )));
    }
    let stats: Vec<StepStats> = su
        .chunks_exact(3)
        .zip(&sf)
        .map(|(u, &resid)| StepStats {
            scf_iterations: u[0] as usize,
            h_applications: u[1] as usize,
            rho_residual: resid,
            converged: u[2] != 0,
            // wall-clock phases are observational and never serialized: a
            // resumed series restores them as zeros, keeping snapshot
            // bytes identical whether tracing was armed or not
            phases: Default::default(),
        })
        .collect();
    let names = f.str("series/channels")?;
    let mut channels = Vec::new();
    for name in names.split('\n').filter(|s| !s.is_empty()) {
        let col = f.f64s(&format!("series/ch/{name}"))?;
        if col.len() != n {
            return Err(schema(format!(
                "channel '{name}' holds {} values, expected {n}",
                col.len()
            )));
        }
        channels.push((name.to_string(), col));
    }
    TimeSeries::from_parts(propagator, t, a_field, stats, channels)
}
