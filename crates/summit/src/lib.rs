//! `pt-summit` — a model of the Summit supercomputer (§5 of the paper).
//!
//! Machine constants are taken directly from the paper's §5/Fig. 5:
//! 4608 nodes, each with 2 POWER9 sockets + 6 V100 GPUs (3 per socket,
//! NVLink 50 GB/s), 512 GB host DRAM, dual-rail EDR NICs at 12.5 GB/s per
//! socket, non-blocking fat tree, V100: 7.8 TFLOPS double precision and
//! 900 GB/s HBM.
//!
//! Cost primitives follow the paper's own measured characterization (§7):
//! the Fock-exchange FFT work is **HBM-bandwidth-bound** (≈ 90 % sustained
//! bandwidth utilization, CUFFT at ≈ 11 % of peak FLOPS), broadcast
//! throughput is NIC-limited with contention growing ≈ √P on the fat tree
//! (fitted to Table 2), and CPU-GPU copies ride NVLink.

/// V100 GPU characteristics.
#[derive(Clone, Copy, Debug)]
pub struct Gpu {
    /// Peak double-precision FLOPS.
    pub peak_flops: f64,
    /// Peak HBM bandwidth (B/s).
    pub hbm_bw: f64,
    /// Sustained fraction of HBM bandwidth achieved by the batched FFT
    /// pipeline (paper §7: ≈ 0.9).
    pub sustained_bw_frac: f64,
    /// HBM capacity (B).
    pub memory: f64,
    /// Board power (W).
    pub power: f64,
}

/// POWER9 socket characteristics.
#[derive(Clone, Copy, Debug)]
pub struct CpuSocket {
    /// Physical cores.
    pub cores: usize,
    /// Socket power (W).
    pub power: f64,
    /// NIC share per socket (B/s) — 12.5 GB/s of the dual-rail EDR.
    pub nic_bw: f64,
    /// DRAM capacity per socket (B).
    pub memory: f64,
}

/// One Summit node: 2 sockets × (1 CPU + 3 GPUs).
#[derive(Clone, Copy, Debug)]
pub struct SummitNode {
    /// GPU model.
    pub gpu: Gpu,
    /// CPU socket model.
    pub cpu: CpuSocket,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// NVLink CPU↔GPU bandwidth (B/s).
    pub nvlink_bw: f64,
    /// X-Bus socket↔socket bandwidth (B/s).
    pub xbus_bw: f64,
}

/// The machine.
#[derive(Clone, Copy, Debug)]
pub struct Summit {
    /// Node description.
    pub node: SummitNode,
    /// Total nodes (4608).
    pub nodes: usize,
}

impl Default for Summit {
    fn default() -> Self {
        Summit {
            node: SummitNode {
                gpu: Gpu {
                    peak_flops: 7.8e12,
                    hbm_bw: 900.0e9,
                    sustained_bw_frac: 0.90,
                    memory: 16.0e9,
                    power: 300.0,
                },
                cpu: CpuSocket {
                    cores: 22,
                    power: 190.0,
                    nic_bw: 12.5e9,
                    memory: 256.0e9,
                },
                gpus_per_node: 6,
                sockets_per_node: 2,
                nvlink_bw: 50.0e9,
                xbus_bw: 64.0e9,
            },
            nodes: 4608,
        }
    }
}

impl Summit {
    /// Power draw (W) of a run using `n_gpus` GPUs, 6 per node (§6: a GPU
    /// node draws 2180 W).
    pub fn gpu_run_power(&self, n_gpus: usize) -> f64 {
        let nodes = n_gpus.div_ceil(self.node.gpus_per_node);
        nodes as f64
            * (self.node.gpus_per_node as f64 * self.node.gpu.power
                + self.node.sockets_per_node as f64 * self.node.cpu.power)
    }

    /// Power draw (W) of a CPU-only run on `n_cores` cores (§6: 73 nodes
    /// for 3072 cores → 27 740 W).
    pub fn cpu_run_power(&self, n_cores: usize) -> f64 {
        let cores_per_node = self.node.cpu.cores * self.node.sockets_per_node;
        // the paper provisions ~42 usable cores/node (3072 cores ≈ 73 nodes)
        let usable = (cores_per_node - 2) as f64;
        let nodes = (n_cores as f64 / usable).round().max(1.0);
        nodes * self.node.sockets_per_node as f64 * self.node.cpu.power
    }

    /// Time (s) for one batched 3-D FFT of `n` complex-f64 points on a
    /// V100, bandwidth-bound: `passes` full-array traversals at sustained
    /// HBM bandwidth. The effective pass count (read+write over three
    /// axis sweeps plus pointwise kernels) is calibrated in `pt-perf`
    /// against Table 1.
    pub fn gpu_fft_time(&self, n: usize, passes: f64) -> f64 {
        let bytes = passes * 16.0 * n as f64;
        bytes / (self.node.gpu.hbm_bw * self.node.gpu.sustained_bw_frac)
    }

    /// Time (s) to move `bytes` across NVLink (CPU↔GPU staging copies).
    pub fn memcpy_time(&self, bytes: f64) -> f64 {
        bytes / self.node.nvlink_bw
    }

    /// Per-rank effective receive bandwidth (B/s) of a large-message
    /// broadcast over the fat tree with `p` ranks: NIC share divided by
    /// 3 ranks per socket, degraded by √(p/p₀) contention (fitted to the
    /// MPI_Bcast row of Table 2; the paper measures 2.2 GB/s per rank at
    /// 768 ranks ≈ 52.7 % NIC utilization per socket).
    pub fn bcast_rank_bw(&self, p: usize) -> f64 {
        let base = self.node.cpu.nic_bw / 3.0; // 3 ranks share a socket NIC
        let p0 = 36.0;
        base * 4.6 / (p as f64 / p0).sqrt().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_numbers() {
        let s = Summit::default();
        // §6: GPU node = 6×300 + 2×190 = 2180 W; 12 nodes = 26 160 W
        assert_eq!(s.gpu_run_power(72) as i64, 26160);
        // §6: 3072 cores ≈ 73 nodes → 27 740 W
        assert_eq!(s.cpu_run_power(3072) as i64, 27740);
        // the paper's headline: 72 GPUs draw slightly less power than the
        // 3072-core CPU allocation
        assert!(s.gpu_run_power(72) < s.cpu_run_power(3072));
    }

    #[test]
    fn fft_time_is_bandwidth_bound() {
        let s = Summit::default();
        // one pass over the 1536-atom wavefunction grid (648 000 points)
        let t1 = s.gpu_fft_time(648_000, 1.0);
        assert!((t1 - 648_000.0 * 16.0 / 810.0e9).abs() < 1e-12);
        // FLOPS implied by a full FFT at this speed must be far below peak
        // (the paper: CUFFT at ~11 % of peak)
        let t = s.gpu_fft_time(648_000, 6.0);
        let flops = 5.0 * 648_000.0 * (648_000.0f64).log2() / t;
        assert!(flops < 0.25 * s.node.gpu.peak_flops);
    }

    #[test]
    fn bcast_bw_matches_paper_measurement() {
        let s = Summit::default();
        // §7: ≈ 2.2 GB/s per rank received at 768 ranks
        let bw = s.bcast_rank_bw(768);
        assert!((bw / 1e9 - 2.2).abs() < 2.0, "bw = {bw}");
        // and it degrades with scale
        assert!(s.bcast_rank_bw(3072) < s.bcast_rank_bw(768));
        assert!(s.bcast_rank_bw(36) > s.bcast_rank_bw(288));
    }

    #[test]
    fn memory_capacities() {
        let s = Summit::default();
        // Anderson mixing at 36 GPUs: < 100 wavefunctions × 10 MB × 20
        // copies per rank < 20 GB, × 6 ranks < 120 GB < 512 GB node DRAM
        let per_rank = 100.0 * 10.0e6 * 20.0;
        let per_node = 6.0 * per_rank;
        assert!(per_node < 2.0 * s.node.cpu.memory);
        // but far beyond a single V100's HBM — hence the host-RAM parking
        assert!(per_rank > s.node.gpu.memory);
    }
}
