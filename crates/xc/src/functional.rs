//! Pointwise exchange–correlation energy densities.
//!
//! Conventions: `exc` is the energy *per electron* ε_xc(ρ, σ), so the total
//! XC energy is `∫ ρ ε_xc dr`. `f = ρ ε_xc` is the energy density whose
//! partials feed the potential construction.

/// Which semi-local functional to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XcKind {
    /// Slater exchange + PW92 correlation.
    Lda,
    /// PBE exchange + PBE correlation (spin unpolarized).
    Pbe,
}

const THIRD: f64 = 1.0 / 3.0;

/// Slater exchange energy per electron.
fn eps_x_lda(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let cx = -0.75 * (3.0 / std::f64::consts::PI).powf(THIRD);
    cx * rho.powf(THIRD)
}

/// PW92 correlation energy per electron (unpolarized, Perdew–Wang 1992).
fn eps_c_pw92(rho: f64) -> f64 {
    if rho <= 1e-30 {
        return 0.0;
    }
    let rs = (3.0 / (4.0 * std::f64::consts::PI * rho)).powf(THIRD);
    // PW92 parameters for ε_c(rs, ζ=0)
    let a = 0.031091;
    let alpha1 = 0.21370;
    let beta1 = 7.5957;
    let beta2 = 3.5876;
    let beta3 = 1.6382;
    let beta4 = 0.49294;
    let sq = rs.sqrt();
    let denom = 2.0 * a * (beta1 * sq + beta2 * rs + beta3 * rs * sq + beta4 * rs * rs);
    -2.0 * a * (1.0 + alpha1 * rs) * (1.0 + 1.0 / denom).ln()
}

/// LDA ε_xc and v_xc (analytic derivatives).
pub fn lda_exc_vxc(rho: f64) -> (f64, f64) {
    if rho <= 1e-30 {
        return (0.0, 0.0);
    }
    let ex = eps_x_lda(rho);
    // d(ρ ε_x)/dρ = (4/3) ε_x for ε_x ∝ ρ^{1/3}
    let vx = 4.0 * THIRD * ex;
    // correlation derivative by 6th-order central difference of ρ·ε_c —
    // PW92's dε/d rs chain is short but this keeps one code path with PBE.
    let ec = eps_c_pw92(rho);
    let h = (rho * 1e-5).max(1e-12);
    let f = |r: f64| r * eps_c_pw92(r);
    let vc =
        (-f(rho + 2.0 * h) + 8.0 * f(rho + h) - 8.0 * f(rho - h) + f(rho - 2.0 * h)) / (12.0 * h);
    (ex + ec, vx + vc)
}

/// PBE ε_xc(ρ, σ) with σ = |∇ρ|² (energy per electron).
pub fn pbe_exc(rho: f64, sigma: f64) -> f64 {
    if rho <= 1e-30 {
        return 0.0;
    }
    let pi = std::f64::consts::PI;
    // --- exchange ---
    let kf = (3.0 * pi * pi * rho).powf(THIRD);
    let s2 = sigma / (4.0 * kf * kf * rho * rho);
    const KAPPA: f64 = 0.804;
    const MU: f64 = 0.219_514_972_764_517_1;
    let fx = 1.0 + KAPPA - KAPPA / (1.0 + MU * s2 / KAPPA);
    let ex = eps_x_lda(rho) * fx;
    // --- correlation ---
    const GAMMA: f64 = 0.031_090_690_869_654_895; // (1 − ln2)/π²
    const BETA: f64 = 0.066_724_550_603_149_22;
    let ec_unif = eps_c_pw92(rho);
    let ks = (4.0 * kf / pi).sqrt();
    let t2 = sigma / (4.0 * ks * ks * rho * rho); // φ = 1 (unpolarized)
    let expo = (-ec_unif / GAMMA).exp();
    let a = if expo > 1.0 + 1e-300 {
        BETA / GAMMA / (expo - 1.0)
    } else {
        f64::INFINITY
    };
    let at2 = a * t2;
    let num = 1.0 + at2;
    let den = 1.0 + at2 + at2 * at2;
    let h = GAMMA * (1.0 + BETA / GAMMA * t2 * num / den).ln();
    ex + ec_unif + h
}

/// PBE partial derivatives `(∂f/∂ρ, ∂f/∂σ)` of the energy density
/// `f = ρ ε_xc`, by 4th-order central differences.
pub fn pbe_derivatives(rho: f64, sigma: f64) -> (f64, f64) {
    if rho <= 1e-20 {
        return (0.0, 0.0);
    }
    let f = |r: f64, s: f64| r * pbe_exc(r, s.max(0.0));
    let hr = (rho * 1e-5).max(1e-13);
    let dfdr = (-f(rho + 2.0 * hr, sigma) + 8.0 * f(rho + hr, sigma) - 8.0 * f(rho - hr, sigma)
        + f(rho - 2.0 * hr, sigma))
        / (12.0 * hr);
    let hs = (sigma.abs() * 1e-5).max(1e-13);
    let dfds = (-f(rho, sigma + 2.0 * hs) + 8.0 * f(rho, sigma + hs) - 8.0 * f(rho, sigma - hs)
        + f(rho, sigma - 2.0 * hs))
        / (12.0 * hs);
    (dfdr, dfds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slater_exchange_reference() {
        // ε_x = −(3/4)(3/π)^{1/3} ρ^{1/3}; at rs = 1 (ρ = 3/4π):
        // ε_x = −0.458165/rs... known value 0.4581652932831429
        let rho = 3.0 / (4.0 * std::f64::consts::PI);
        let (exc, _v) = lda_exc_vxc(rho);
        let ex = eps_x_lda(rho);
        assert!((ex + 0.458_165_293_283_142_9).abs() < 1e-12, "{ex}");
        assert!(exc < ex, "correlation must lower the energy");
    }

    #[test]
    fn pw92_reference_values() {
        // ε_c(rs) for ζ=0 from the PW92 parametrization:
        // rs=1: −0.059775, rs=2: −0.044772, rs=5: −0.028216
        let cases = [(1.0, -0.059775), (2.0, -0.044772), (5.0, -0.028216)];
        for (rs, want) in cases {
            let rho = 3.0 / (4.0 * std::f64::consts::PI * rs * rs * rs);
            let ec = eps_c_pw92(rho);
            assert!((ec - want).abs() < 5e-5, "rs={rs}: {ec} vs {want}");
        }
    }

    #[test]
    fn lda_potential_consistency() {
        // v = d(ρε)/dρ: compare against a direct numeric derivative of the
        // full exc
        for rho in [0.01, 0.1, 1.0, 10.0] {
            let (_e, v) = lda_exc_vxc(rho);
            let h = rho * 1e-6;
            let f = |r: f64| r * (eps_x_lda(r) + eps_c_pw92(r));
            let num = (f(rho + h) - f(rho - h)) / (2.0 * h);
            assert!(
                (v - num).abs() < 1e-6 * (1.0 + v.abs()),
                "rho={rho}: {v} vs {num}"
            );
        }
    }

    #[test]
    fn pbe_reduces_to_lda_at_zero_gradient() {
        for rho in [0.05, 0.3, 2.0] {
            let (lda, _) = lda_exc_vxc(rho);
            let pbe = pbe_exc(rho, 0.0);
            assert!((pbe - lda).abs() < 1e-10, "rho={rho}: {pbe} vs {lda}");
        }
    }

    #[test]
    fn pbe_exchange_enhancement_bounded() {
        // F_x ∈ [1, 1+κ]: PBE energy must lie between LDA·1 and LDA·1.804
        // (exchange part only; test via large-gradient limit)
        let rho = 0.2;
        let ex_lda = eps_x_lda(rho);
        let huge = pbe_exc(rho, 1e6) - eps_c_pw92(rho) /* h→ −ec cancels ec */;
        // at huge σ, H → −ε_c so correlation ≈ 0 and exchange saturates
        assert!(
            huge < ex_lda,
            "enhancement must deepen exchange: {huge} vs {ex_lda}"
        );
        assert!(huge > ex_lda * (1.0 + 0.804) - 1e-6, "bounded by 1+κ");
    }

    #[test]
    fn pbe_derivatives_match_finite_difference() {
        // cross-check the 4th-order stencil against a plain 2nd-order one
        // at several (ρ, σ)
        for &(rho, sigma) in &[(0.1, 0.01), (0.5, 0.2), (1.5, 3.0)] {
            let (dr, ds) = pbe_derivatives(rho, sigma);
            let f = |r: f64, s: f64| r * pbe_exc(r, s);
            let h = 1e-6;
            let dr2 = (f(rho + h, sigma) - f(rho - h, sigma)) / (2.0 * h);
            let ds2 = (f(rho, sigma + h) - f(rho, sigma - h)) / (2.0 * h);
            assert!((dr - dr2).abs() < 1e-5, "{dr} vs {dr2}");
            assert!((ds - ds2).abs() < 1e-5, "{ds} vs {ds2}");
        }
    }

    #[test]
    fn correlation_h_term_positive() {
        // gradient correction H ≥ 0 reduces |ε_c|
        let rho = 0.3;
        let ec0 = pbe_exc(rho, 0.0) - eps_x_lda(rho) * 1.0; // F(0)=1
        let ec1 = pbe_exc(rho, 0.5)
            - eps_x_lda(rho) * {
                let pi = std::f64::consts::PI;
                let kf = (3.0 * pi * pi * rho).powf(1.0 / 3.0);
                let s2 = 0.5 / (4.0 * kf * kf * rho * rho);
                1.0 + 0.804 - 0.804 / (1.0 + 0.219_514_972_764_517_1 * s2 / 0.804)
            };
        assert!(ec1 > ec0, "H must raise ε_c: {ec1} vs {ec0}");
    }
}
