//! `pt-xc` — semi-local exchange–correlation functionals.
//!
//! HSE06 (the paper's functional) is PBE plus 25 % short-range exact
//! exchange. This crate provides the semi-local side: LDA (Slater exchange
//! + PW92 correlation) and PBE (spin-unpolarized), evaluated on the real-
//!   space density grid, plus the White–Bird-style construction of the GGA
//!   potential `v_xc = ∂f/∂ρ − ∇·(2 ∂f/∂σ ∇ρ)` using G-space derivatives
//!   (σ = |∇ρ|²). The short-range Fock part lives in `pt-ham`.
//!
//! Derivative strategy: LDA derivatives are analytic; PBE derivatives use
//! high-order central differences of the (cheap, smooth) energy density.
//! This trades a few ulps of accuracy for immunity to transcription errors
//! in the long PBE derivative chains — the derivative consistency is
//! enforced by tests instead of by hand algebra.

mod functional;
mod grid;

pub use functional::{lda_exc_vxc, pbe_exc, XcKind};
pub use grid::XcGridEvaluator;
