//! Grid evaluation of the XC energy and potential.
//!
//! The paper's "others" component (§3.4) includes exactly this work: FFTs
//! for the gradient of the electron density, the semi-local XC evaluation
//! (via Libxc there, in-crate here), and the assembly of the potential.

use crate::functional::{lda_exc_vxc, pbe_derivatives, pbe_exc, XcKind};
use pt_fft::Fft3;
use pt_lattice::GridGVectors;
use pt_num::c64;

/// Evaluator bound to one density grid.
pub struct XcGridEvaluator {
    kind: XcKind,
    fft: Fft3,
    g: GridGVectors,
    volume: f64,
}

impl XcGridEvaluator {
    /// Create an evaluator for `kind` on the density grid described by `g`.
    pub fn new(kind: XcKind, g: GridGVectors, volume: f64) -> Self {
        let (n1, n2, n3) = g.dims;
        XcGridEvaluator {
            kind,
            fft: Fft3::new(n1, n2, n3),
            g,
            volume,
        }
    }

    /// Which functional this evaluator computes.
    pub fn kind(&self) -> XcKind {
        self.kind
    }

    /// Gradient of a real field via G-space: ∂f/∂x_d = IFFT(i G_d FFT(f)).
    fn gradient(&self, field: &[f64]) -> [Vec<f64>; 3] {
        let n = field.len();
        let mut fg: Vec<c64> = field.iter().map(|&v| c64::real(v)).collect();
        self.fft.forward(&mut fg);
        let mut out = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
        for (d, od) in out.iter_mut().enumerate() {
            let mut tmp: Vec<c64> = fg
                .iter()
                .enumerate()
                .map(|(idx, &v)| v.mul_i().scale(self.g.g_cart[idx][d]))
                .collect();
            self.fft.inverse(&mut tmp);
            for (o, z) in od.iter_mut().zip(&tmp) {
                *o = z.re;
            }
        }
        out
    }

    /// Divergence of a real vector field via G-space.
    fn divergence(&self, field: &[Vec<f64>; 3]) -> Vec<f64> {
        let n = field[0].len();
        let mut acc = vec![c64::ZERO; n];
        for (d, comp) in field.iter().enumerate() {
            let mut fg: Vec<c64> = comp.iter().map(|&v| c64::real(v)).collect();
            self.fft.forward(&mut fg);
            for (idx, (a, v)) in acc.iter_mut().zip(&fg).enumerate() {
                *a += v.mul_i().scale(self.g.g_cart[idx][d]);
            }
        }
        self.fft.inverse(&mut acc);
        acc.iter().map(|z| z.re).collect()
    }

    /// Evaluate `(E_xc, v_xc(r))` for the density `rho` (real grid values).
    pub fn evaluate(&self, rho: &[f64]) -> (f64, Vec<f64>) {
        assert_eq!(rho.len(), self.g.len());
        let n = rho.len();
        let dv = self.volume / n as f64;
        match self.kind {
            XcKind::Lda => {
                let mut e = 0.0;
                let mut v = vec![0.0; n];
                for (i, &r) in rho.iter().enumerate() {
                    let (eps, vi) = lda_exc_vxc(r.max(0.0));
                    e += r.max(0.0) * eps;
                    v[i] = vi;
                }
                (e * dv, v)
            }
            XcKind::Pbe => {
                let grad = self.gradient(rho);
                let mut e = 0.0;
                let mut dfdr = vec![0.0; n];
                let mut w = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
                for i in 0..n {
                    let r = rho[i].max(0.0);
                    let sigma =
                        grad[0][i] * grad[0][i] + grad[1][i] * grad[1][i] + grad[2][i] * grad[2][i];
                    e += r * pbe_exc(r, sigma);
                    let (dr, ds) = pbe_derivatives(r, sigma);
                    dfdr[i] = dr;
                    for d in 0..3 {
                        w[d][i] = 2.0 * ds * grad[d][i];
                    }
                }
                let div = self.divergence(&w);
                let v: Vec<f64> = dfdr.iter().zip(&div).map(|(a, b)| a - b).collect();
                (e * dv, v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::{Cell, GridGVectors};

    fn setup(kind: XcKind, n: usize, l: f64) -> XcGridEvaluator {
        let cell = Cell::cubic(l);
        let g = GridGVectors::new(&cell, (n, n, n));
        XcGridEvaluator::new(kind, g, cell.volume())
    }

    fn smooth_density(n: usize, l: f64) -> Vec<f64> {
        // strictly positive, periodic, non-trivial
        let mut rho = vec![0.0; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let (x, y, z) = (
                        ix as f64 / n as f64 * 2.0 * std::f64::consts::PI,
                        iy as f64 / n as f64 * 2.0 * std::f64::consts::PI,
                        iz as f64 / n as f64 * 2.0 * std::f64::consts::PI,
                    );
                    rho[ix + n * (iy + n * iz)] =
                        0.2 + 0.1 * x.sin() * y.cos() + 0.05 * (z.sin() * x.cos());
                }
            }
        }
        let _ = l;
        rho
    }

    #[test]
    fn uniform_density_lda_closed_form() {
        let n = 8;
        let ev = setup(XcKind::Lda, n, 10.0);
        let rho = vec![0.3; n * n * n];
        let (e, v) = ev.evaluate(&rho);
        let (eps, vv) = lda_exc_vxc(0.3);
        let want_e = 0.3 * eps * 1000.0;
        assert!((e - want_e).abs() < 1e-10 * want_e.abs());
        for &vi in &v {
            assert!((vi - vv).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_density_pbe_equals_lda() {
        let n = 8;
        let ev_p = setup(XcKind::Pbe, n, 10.0);
        let ev_l = setup(XcKind::Lda, n, 10.0);
        let rho = vec![0.25; n * n * n];
        let (ep, vp) = ev_p.evaluate(&rho);
        let (el, vl) = ev_l.evaluate(&rho);
        assert!((ep - el).abs() < 1e-8 * el.abs(), "{ep} vs {el}");
        for (a, b) in vp.iter().zip(&vl) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn functional_derivative_consistency() {
        // The fundamental test of the GGA potential assembly:
        // dE[ρ + λ δρ]/dλ |_{λ=0} == ∫ v_xc δρ dr, including the
        // ∇·(∂f/∂∇ρ) term.
        for kind in [XcKind::Lda, XcKind::Pbe] {
            let n = 10;
            let l = 8.0;
            let ev = setup(kind, n, l);
            let rho = smooth_density(n, l);
            let m = n * n * n;
            let dv = l * l * l / m as f64;
            // smooth perturbation
            let drho: Vec<f64> = (0..m)
                .map(|i| {
                    let ix = i % n;
                    let iy = (i / n) % n;
                    0.01 * ((ix as f64 / n as f64 * 2.0 * std::f64::consts::PI).cos()
                        + (iy as f64 / n as f64 * 2.0 * std::f64::consts::PI).sin())
                })
                .collect();
            let lam = 1e-5;
            let rp: Vec<f64> = rho.iter().zip(&drho).map(|(a, b)| a + lam * b).collect();
            let rm: Vec<f64> = rho.iter().zip(&drho).map(|(a, b)| a - lam * b).collect();
            let (ep, _) = ev.evaluate(&rp);
            let (em, _) = ev.evaluate(&rm);
            let dnum = (ep - em) / (2.0 * lam);
            let (_, v) = ev.evaluate(&rho);
            let dan: f64 = v.iter().zip(&drho).map(|(a, b)| a * b).sum::<f64>() * dv;
            assert!(
                (dnum - dan).abs() < 2e-6 * (1.0 + dan.abs()),
                "{kind:?}: {dnum} vs {dan}"
            );
        }
    }

    #[test]
    fn gradient_of_plane_wave_is_exact() {
        let n = 12;
        let l = 6.0;
        let ev = setup(XcKind::Pbe, n, l);
        let k = 2.0 * std::f64::consts::PI / l;
        let mut f = vec![0.0; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    f[ix + n * (iy + n * iz)] = (k * (ix as f64) * l / n as f64).sin();
                }
            }
        }
        let g = ev.gradient(&f);
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let want = k * (k * ix as f64 * l / n as f64).cos();
                    let got = g[0][ix + n * (iy + n * iz)];
                    assert!((got - want).abs() < 1e-10, "{got} vs {want}");
                    assert!(g[1][ix + n * (iy + n * iz)].abs() < 1e-10);
                }
            }
        }
    }
}
