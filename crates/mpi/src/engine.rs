//! The persistent rank engine: spawn-once rank teams parked on channels.
//!
//! The paper's execution model keeps one MPI rank per GPU alive for the
//! whole propagation. [`super::run_ranks_pinned`] re-creates its rank
//! threads and their pinned compute pools on *every* call — fine for a
//! one-shot collective, wasteful inside the PT-CN fixed point where HΨ is
//! applied dozens of times per step. [`RankEngine`] is the rank analogue
//! of the install-around-the-loop pool pattern: rank threads and their
//! pinned [`ThreadPool`]s are created exactly once, park on a job channel
//! between work items, and answer through a single mpsc fan-in, so the
//! per-job cost is a channel round-trip instead of thread creation.
//!
//! Fault semantics match `run_ranks`: a rank panic mid-job poisons peers
//! blocked in a receive (no deadlock), the job aborts by re-raising the
//! first *original* panic payload in rank order, and the engine is dead
//! afterwards — further [`RankEngine::run`] calls return the typed
//! [`EnginePoisoned`] error instead of hanging on a half-dead world.

use crate::comm::{note_rank_thread_spawned, Comm, Envelope, PeerDied, Wire};
use crate::stats::{CommStats, StatsSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pt_par::{RankLayout, ThreadPool};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

type BoxedAny = Box<dyn Any + Send>;
type JobFn = dyn Fn(&mut Comm) -> BoxedAny + Sync;
type RankReport = (usize, Result<BoxedAny, BoxedAny>);

/// A typed work item for a parked rank thread.
enum RankMsg {
    /// Run this closure on the rank's pinned pool and report the result.
    /// The reference is lifetime-erased by [`RankEngine::run`], which
    /// blocks until every rank has reported — the borrow outlives its use.
    Job(&'static JobFn),
    /// Exit the rank loop (engine drop / post-failure teardown).
    Shutdown,
}

/// Typed error for submitting work to an engine whose world died.
///
/// After a rank panic the surviving ranks were shut down and the panic
/// was re-raised to the caller; a *later* submission cannot run (the
/// world is gone) and must not hang, so it reports this error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnginePoisoned {
    /// Panic message of the rank failure that killed the engine.
    pub cause: String,
}

impl std::fmt::Display for EnginePoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank engine is dead after an earlier rank failure: {}",
            self.cause
        )
    }
}

impl std::error::Error for EnginePoisoned {}

/// Persistent rank team: `layout.ranks` threads, each with its own
/// `layout.threads_per_rank`-wide pinned [`ThreadPool`] and a live
/// [`Comm`] world, all spawned once in [`RankEngine::new`] and parked
/// between [`RankEngine::run`] calls.
pub struct RankEngine {
    layout: RankLayout,
    wire: Wire,
    stats: Arc<CommStats>,
    job_txs: Vec<Sender<RankMsg>>,
    results_rx: Receiver<RankReport>,
    handles: Vec<JoinHandle<()>>,
    poisoned: Option<String>,
}

impl std::fmt::Debug for RankEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankEngine")
            .field("layout", &self.layout)
            .field("wire", &self.wire)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl RankEngine {
    /// Spawn the rank team. Each rank thread builds its pinned pool
    /// immediately and parks on its job channel; the world channels are
    /// wired exactly like `run_ranks`, so every collective behaves
    /// identically on the engine.
    pub fn new(layout: RankLayout, wire: Wire) -> Self {
        let np = layout.ranks;
        assert!(np > 0, "engine needs at least one rank");
        assert!(
            layout.threads_per_rank > 0,
            "engine ranks need at least one thread"
        );
        let stats = Arc::new(CommStats::default());
        let mut world_txs = Vec::with_capacity(np);
        let mut world_rxs = Vec::with_capacity(np);
        for _ in 0..np {
            let (tx, rx) = unbounded::<Envelope>();
            world_txs.push(tx);
            world_rxs.push(rx);
        }
        let (results_tx, results_rx) = unbounded::<RankReport>();
        let mut job_txs = Vec::with_capacity(np);
        let mut handles = Vec::with_capacity(np);
        for (rank, world_rx) in world_rxs.into_iter().enumerate() {
            let (job_tx, job_rx) = unbounded::<RankMsg>();
            job_txs.push(job_tx);
            let world_txs = world_txs.clone();
            let stats = Arc::clone(&stats);
            let results_tx = results_tx.clone();
            let threads = layout.threads_per_rank;
            note_rank_thread_spawned();
            let handle = std::thread::Builder::new()
                .name(format!("pt-rank-{rank}"))
                .spawn(move || {
                    rank_main(
                        rank,
                        np,
                        threads,
                        wire,
                        world_txs,
                        world_rx,
                        stats,
                        &job_rx,
                        &results_tx,
                    )
                })
                .expect("spawn rank thread");
            handles.push(handle);
        }
        RankEngine {
            layout,
            wire,
            stats,
            job_txs,
            results_rx,
            handles,
            poisoned: None,
        }
    }

    /// The layout this engine was spawned with.
    pub fn layout(&self) -> RankLayout {
        self.layout
    }

    /// Wire precision of the engine's world.
    pub fn wire(&self) -> Wire {
        self.wire
    }

    /// Whether a rank failure has killed this engine.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The panic message that killed the engine, if any.
    pub fn poison_cause(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Cumulative communication counters of the engine's world.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Submit `f` to every rank and collect the results in rank order,
    /// plus the communication delta of exactly this job.
    ///
    /// Blocks until every rank has reported. If any rank panics, the
    /// survivors are poisoned awake / shut down, the engine is marked
    /// dead, and the first original panic payload (rank order) is
    /// re-raised — the same abort contract as `run_ranks`, so failure
    /// injection observes identical messages on both paths. A dead
    /// engine returns [`EnginePoisoned`] instead.
    pub fn run<T, F>(&mut self, f: F) -> Result<(Vec<T>, StatsSnapshot), EnginePoisoned>
    where
        T: Send + 'static,
        F: Fn(&mut Comm) -> T + Sync,
    {
        if let Some(cause) = &self.poisoned {
            return Err(EnginePoisoned {
                cause: cause.clone(),
            });
        }
        let np = self.layout.ranks;
        let before = self.stats.snapshot();
        let boxed = |comm: &mut Comm| -> BoxedAny { Box::new(f(comm)) };
        let job: &(dyn Fn(&mut Comm) -> BoxedAny + Sync) = &boxed;
        // SAFETY: lifetime erasure to ship the borrow into persistent
        // threads — sound because this function does not return (or
        // unwind) before every rank has reported for this job, so the
        // parked rank threads never hold `job` past this frame; same
        // argument as ThreadPool::run, which blocks on wait_done.
        let job: &'static JobFn = unsafe { std::mem::transmute(job) };
        for tx in &self.job_txs {
            tx.send(RankMsg::Job(job))
                .expect("healthy engine rank hung up");
        }
        let mut oks: Vec<Option<BoxedAny>> = (0..np).map(|_| None).collect();
        let mut errs: Vec<Option<BoxedAny>> = (0..np).map(|_| None).collect();
        for _ in 0..np {
            let (rank, report) = self
                .results_rx
                .recv()
                .expect("engine results channel broken");
            match report {
                Ok(v) => oks[rank] = Some(v),
                Err(p) => errs[rank] = Some(p),
            }
        }
        if errs.iter().any(Option::is_some) {
            // Same re-raise policy as run_ranks: the first (rank-order)
            // *original* payload wins over PeerDied cascades, and a pure
            // cascade is unwrapped so its message stays assertable.
            let mut first_original: Option<BoxedAny> = None;
            let mut first_cascade: Option<BoxedAny> = None;
            for payload in errs.into_iter().flatten() {
                if payload.downcast_ref::<PeerDied>().is_none() {
                    first_original.get_or_insert(payload);
                } else {
                    first_cascade.get_or_insert(payload);
                }
            }
            let payload = first_original
                .or(first_cascade)
                .expect("a rank failure was recorded");
            self.poisoned = Some(panic_message(payload.as_ref()));
            self.shutdown_and_join();
            match payload.downcast::<PeerDied>() {
                Ok(peer_died) => resume_unwind(Box::new(peer_died.0)),
                Err(payload) => resume_unwind(payload),
            }
        }
        let out = oks
            .into_iter()
            .map(|v| {
                *v.expect("every rank reported")
                    .downcast::<T>()
                    .expect("engine job result type")
            })
            .collect();
        Ok((out, self.stats.snapshot().delta_since(&before)))
    }

    /// Ask surviving ranks to exit and join every rank thread. Ranks that
    /// died with a job have already exited (their job receiver is gone, so
    /// the send fails silently — by design).
    fn shutdown_and_join(&mut self) {
        for tx in &self.job_txs {
            let _ = tx.send(RankMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RankEngine {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

/// The parked rank loop: build the pinned pool once, then serve jobs
/// until shutdown. A panicking job poisons the peers, reports the
/// original payload through the fan-in, and ends this rank for good.
#[allow(clippy::too_many_arguments)]
fn rank_main(
    rank: usize,
    np: usize,
    threads: usize,
    wire: Wire,
    world_txs: Vec<Sender<Envelope>>,
    world_rx: Receiver<Envelope>,
    stats: Arc<CommStats>,
    job_rx: &Receiver<RankMsg>,
    results_tx: &Sender<RankReport>,
) {
    pt_trace::register_thread(&format!("pt-rank-{rank}"));
    let pool = ThreadPool::new(threads);
    let mut comm = Comm::from_parts(rank, np, world_txs, world_rx, stats, wire);
    while let Ok(RankMsg::Job(job)) = job_rx.recv() {
        match catch_unwind(AssertUnwindSafe(|| pool.install(|| job(&mut comm)))) {
            Ok(v) => {
                let _ = results_tx.send((rank, Ok(v)));
            }
            Err(payload) => {
                // a dead rank can never answer its peers: poison them so
                // blocked receives abort the job instead of deadlocking,
                // then report the original defect and leave the world
                comm.poison_peers();
                let _ = results_tx.send((rank, Err(payload)));
                return;
            }
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(peer_died) = payload.downcast_ref::<PeerDied>() {
        peer_died.0.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_ranks_pinned;
    use pt_num::c64;

    #[test]
    fn engine_runs_collectives_and_matches_run_ranks_bits() {
        let layout = RankLayout::new(3, 2);
        let job = |comm: &mut Comm| {
            let mut data = if comm.rank() == 0 {
                (0..64)
                    .map(|i| c64::new((i as f64).sin(), (i as f64).cos()))
                    .collect()
            } else {
                Vec::new()
            };
            comm.bcast_c64(0, &mut data);
            let mut sum = vec![comm.rank() as f64 + 0.125];
            comm.allreduce_sum_f64(&mut sum);
            (data, sum[0])
        };
        let (want, _) = run_ranks_pinned(layout, Wire::F64, job);
        let mut engine = RankEngine::new(layout, Wire::F64);
        let (got, delta) = engine.run(job).unwrap();
        assert_eq!(got.len(), want.len());
        for ((gd, gs), (wd, ws)) in got.iter().zip(&want) {
            assert_eq!(gs.to_bits(), ws.to_bits());
            assert_eq!(gd.len(), wd.len());
            for (a, b) in gd.iter().zip(wd) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
        assert_eq!(delta.bcast_calls, 3);
        assert_eq!(delta.allreduce_calls, 3);
    }

    #[test]
    fn engine_reuses_one_rank_team_across_many_jobs() {
        // spawn-count deltas live in tests/engine_spawn_once.rs (the
        // counters are process-global, so they need their own binary);
        // here: ten jobs through one world stay correct and ordered
        let mut engine = RankEngine::new(RankLayout::new(4, 1), Wire::F64);
        for step in 0..10 {
            let (out, _) = engine
                .run(|comm| {
                    let mut v = vec![comm.rank() as f64 + 1.0];
                    comm.allreduce_sum_f64(&mut v);
                    v[0] + step as f64
                })
                .unwrap();
            assert_eq!(out, vec![10.0 + step as f64; 4]);
        }
    }

    #[test]
    fn engine_pins_a_pool_per_rank_for_its_lifetime() {
        let mut engine = RankEngine::new(RankLayout::new(2, 3), Wire::F64);
        for _ in 0..5 {
            let (widths, _) = engine
                .run(|comm| {
                    comm.barrier();
                    pt_par::current_num_threads()
                })
                .unwrap();
            assert_eq!(widths, vec![3, 3]);
        }
    }

    #[test]
    fn per_job_stats_delta_isolates_each_job() {
        let mut engine = RankEngine::new(RankLayout::new(2, 1), Wire::F64);
        let job = |comm: &mut Comm| {
            let mut data = if comm.rank() == 0 {
                vec![c64::new(1.0, -1.0); 25]
            } else {
                Vec::new()
            };
            comm.bcast_c64(0, &mut data);
            data.len()
        };
        let (_, first) = engine.run(job).unwrap();
        let (_, second) = engine.run(job).unwrap();
        assert_eq!(first, second, "identical jobs must report identical deltas");
        assert_eq!(first.bcast_bytes, 25 * 16);
        // the engine-lifetime counters keep accumulating underneath
        assert_eq!(engine.stats().bcast_bytes, 2 * 25 * 16);
    }

    #[test]
    #[should_panic(expected = "engine rank blew a capacitor")]
    fn rank_panic_mid_job_aborts_with_the_original_payload() {
        let mut engine = RankEngine::new(RankLayout::new(3, 1), Wire::F64);
        // ranks 0 and 2 park inside a receive that only rank 1 could
        // answer; rank 1's death must poison them awake and the original
        // payload must win over the PeerDied cascades
        let _ = engine.run(|comm| {
            if comm.rank() == 1 {
                panic!("engine rank blew a capacitor");
            }
            comm.recv_c64(1, 42).len()
        });
    }

    #[test]
    fn dead_engine_reports_a_typed_error_not_a_hang() {
        let mut engine = RankEngine::new(RankLayout::new(3, 1), Wire::F64);
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            let _ = engine.run(|comm| {
                if comm.rank() == 0 {
                    panic!("injected engine failure");
                }
                comm.recv_c64(0, 7).len()
            });
        }));
        assert!(aborted.is_err(), "the failing job must panic out");
        assert!(engine.is_poisoned());
        // the next submission must neither run nor deadlock
        let err = engine.run(|comm| comm.rank()).unwrap_err();
        assert_eq!(
            err.cause, "injected engine failure",
            "the typed error carries the original cause"
        );
        assert!(err.to_string().contains("injected engine failure"));
    }

    #[test]
    fn panic_while_peers_are_parked_between_jobs_does_not_deadlock() {
        let mut engine = RankEngine::new(RankLayout::new(3, 1), Wire::F64);
        // ranks 0 and 2 finish instantly and go back to parking on the
        // job channel; rank 1 panics afterwards. The driver must still
        // collect all three reports and abort with the original payload.
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            let _ = engine.run(|comm| {
                if comm.rank() == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    panic!("late failure with parked peers");
                }
                comm.rank()
            });
        }));
        let payload = aborted.expect_err("job must abort");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("original payload survives");
        assert_eq!(msg, "late failure with parked peers");
        assert!(engine.run(|comm| comm.rank()).is_err());
    }

    #[test]
    fn first_original_payload_wins_in_rank_order_on_the_engine() {
        let mut engine = RankEngine::new(RankLayout::new(4, 1), Wire::F64);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = engine.run(|comm| match comm.rank() {
                1 => panic!("engine failure on rank 1"),
                3 => panic!("engine failure on rank 3"),
                _ => comm.rank(),
            });
        }));
        let payload = r.expect_err("job must abort");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("panic payload is a string");
        assert_eq!(msg, "engine failure on rank 1");
    }
}
