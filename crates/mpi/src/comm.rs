//! Rank threads, point-to-point messaging and collectives.

use crate::stats::CommStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pt_num::{c32, c64};
use std::collections::HashMap;
use std::sync::Arc;

/// Wire precision for complex payloads (§3.2 optimization 4: sending
/// wavefunctions in single precision halves the broadcast volume; values
/// are converted back to f64 before any computation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Wire {
    /// Full double precision on the wire.
    F64,
    /// Single-precision wire format (half the bytes, ~1e-7 relative loss).
    F32,
}

/// A tagged message between ranks.
enum Payload {
    C64(Vec<c64>),
    C32(Vec<c32>),
    F64(Vec<f64>),
}

struct Envelope {
    src: usize,
    tag: u64,
    payload: Payload,
}

/// Per-rank communicator handle (the `MPI_COMM_WORLD` of a virtual run).
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// out-of-order message stash
    stash: HashMap<(usize, u64), Vec<Payload>>,
    stats: Arc<CommStats>,
    wire: Wire,
}

/// Spawn `np` rank threads running `f(comm)` and return their results in
/// rank order. Panics in any rank propagate (failure injection semantics:
/// a dead rank aborts the whole virtual job, like a real MPI fault).
pub fn run_ranks<T, F>(np: usize, wire: Wire, f: F) -> (Vec<T>, crate::StatsSnapshot)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(np > 0);
    let stats = Arc::new(CommStats::default());
    let mut txs = Vec::with_capacity(np);
    let mut rxs = Vec::with_capacity(np);
    for _ in 0..np {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut results: Vec<Option<T>> = (0..np).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(np);
        for (rank, (rx, slot)) in rxs.drain(..).zip(results.iter_mut()).enumerate() {
            let txs = txs.clone();
            let stats = Arc::clone(&stats);
            let fref = &f;
            handles.push(scope.spawn(move |_| {
                let mut comm = Comm {
                    rank,
                    size: np,
                    senders: txs,
                    receiver: rx,
                    stash: HashMap::new(),
                    stats,
                    wire,
                };
                *slot = Some(fref(&mut comm));
            }));
        }
        for h in handles {
            h.join().expect("rank thread panicked");
        }
    })
    .expect("virtual MPI scope failed");
    let out = results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect();
    let snap = stats.snapshot();
    (out, snap)
}

impl Comm {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wire precision in force for complex payloads.
    #[inline]
    pub fn wire(&self) -> Wire {
        self.wire
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> crate::StatsSnapshot {
        self.stats.snapshot()
    }

    fn send_payload(&self, dst: usize, tag: u64, payload: Payload) {
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver hung up");
    }

    fn recv_payload(&mut self, src: usize, tag: u64) -> Payload {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if !q.is_empty() {
                return q.remove(0);
            }
        }
        loop {
            let env = self.receiver.recv().expect("sender hung up");
            if env.src == src && env.tag == tag {
                return env.payload;
            }
            self.stash
                .entry((env.src, env.tag))
                .or_default()
                .push(env.payload);
        }
    }

    /// Point-to-point send of complex data (wire conversion applied).
    pub fn send_c64(&self, dst: usize, tag: u64, data: &[c64]) {
        let bytes = self.c64_wire_bytes(data.len());
        self.stats.add(&self.stats.p2p_bytes, bytes);
        match self.wire {
            Wire::F64 => self.send_payload(dst, tag, Payload::C64(data.to_vec())),
            Wire::F32 => self.send_payload(
                dst,
                tag,
                Payload::C32(data.iter().map(|z| z.to_c32()).collect()),
            ),
        }
    }

    /// Point-to-point receive of complex data.
    pub fn recv_c64(&mut self, src: usize, tag: u64) -> Vec<c64> {
        match self.recv_payload(src, tag) {
            Payload::C64(v) => v,
            Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
            Payload::F64(_) => panic!("type mismatch: expected complex payload"),
        }
    }

    fn c64_wire_bytes(&self, n: usize) -> u64 {
        match self.wire {
            Wire::F64 => 16 * n as u64,
            Wire::F32 => 8 * n as u64,
        }
    }

    /// Binomial-tree broadcast of complex data from `root` (the Alg. 2
    /// wavefunction broadcast). Counts received bytes like the paper's §7
    /// receiving-side analysis.
    pub fn bcast_c64(&mut self, root: usize, data: &mut Vec<c64>) {
        self.stats.add(&self.stats.bcast_calls, 1);
        let p = self.size;
        if p == 1 {
            return;
        }
        // relative rank
        let r = (self.rank + p - root) % p;
        // receive phase: the lowest set bit of r determines the parent
        if r != 0 {
            let lsb = r & r.wrapping_neg();
            let parent = (r - lsb + root) % p;
            let got = self.recv_payload(parent, TAG_BCAST);
            *data = match got {
                Payload::C64(v) => v,
                Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
                _ => panic!("bcast type mismatch"),
            };
            self.stats
                .add(&self.stats.bcast_bytes, self.c64_wire_bytes(data.len()));
        }
        // send phase: forward to children r + mask for mask < lsb(r)
        let lsb = if r == 0 {
            p.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lsb && r + mask < p {
                let child = (r + mask + root) % p;
                match self.wire {
                    Wire::F64 => self.send_payload(child, TAG_BCAST, Payload::C64(data.clone())),
                    Wire::F32 => self.send_payload(
                        child,
                        TAG_BCAST,
                        Payload::C32(data.iter().map(|z| z.to_c32()).collect()),
                    ),
                }
            }
            mask <<= 1;
        }
    }

    /// Allreduce (sum) of f64 data: binomial reduce to rank 0 + broadcast.
    pub fn allreduce_sum_f64(&mut self, data: &mut [f64]) {
        self.stats.add(&self.stats.allreduce_calls, 1);
        let p = self.size;
        if p == 1 {
            return;
        }
        let bytes = 8 * data.len() as u64;
        // reduce to 0 along a binomial tree
        let mut mask = 1usize;
        while mask < p {
            if self.rank & mask != 0 {
                let dst = self.rank & !mask;
                self.send_payload(dst, TAG_REDUCE, Payload::F64(data.to_vec()));
                self.stats.add(&self.stats.allreduce_bytes, bytes);
                break;
            } else if (self.rank | mask) < p {
                let src = self.rank | mask;
                match self.recv_payload(src, TAG_REDUCE) {
                    Payload::F64(v) => {
                        for (d, s) in data.iter_mut().zip(v) {
                            *d += s;
                        }
                    }
                    _ => panic!("allreduce type mismatch"),
                }
            }
            mask <<= 1;
        }
        // broadcast result (counted as allreduce traffic, matching how the
        // paper lumps the whole MPI_Allreduce in one class)
        let mut tmp = if self.rank == 0 {
            data.to_vec()
        } else {
            Vec::new()
        };
        self.bcast_f64_internal(0, &mut tmp, TAG_REDUCE_BC, bytes);
        data.copy_from_slice(&tmp);
    }

    fn bcast_f64_internal(&mut self, root: usize, data: &mut Vec<f64>, tag: u64, bytes: u64) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let r = (self.rank + p - root) % p;
        if r != 0 {
            let lsb = r & r.wrapping_neg();
            let parent = (r - lsb + root) % p;
            match self.recv_payload(parent, tag) {
                Payload::F64(v) => *data = v,
                _ => panic!("bcast type mismatch"),
            }
            self.stats.add(&self.stats.allreduce_bytes, bytes);
        }
        let lsb = if r == 0 {
            p.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lsb && r + mask < p {
                let child = (r + mask + root) % p;
                self.send_payload(child, tag, Payload::F64(data.clone()));
            }
            mask <<= 1;
        }
    }

    /// Allreduce (sum) of complex data (overlap matrices, Alg. 3 line 3).
    pub fn allreduce_sum_c64(&mut self, data: &mut [c64]) {
        // reuse the f64 path over the interleaved representation
        let mut flat: Vec<f64> = Vec::with_capacity(2 * data.len());
        for z in data.iter() {
            flat.push(z.re);
            flat.push(z.im);
        }
        self.allreduce_sum_f64(&mut flat);
        for (z, ch) in data.iter_mut().zip(flat.chunks_exact(2)) {
            *z = c64::new(ch[0], ch[1]);
        }
    }

    /// Pairwise `MPI_Alltoallv` for complex data: `send[j]` goes to rank
    /// `j`; returns the received blocks indexed by source rank. Used for
    /// the band-index ↔ G-space layout flips (Alg. 3 lines 1 and 6).
    pub fn alltoallv_c64(&mut self, send: Vec<Vec<c64>>) -> Vec<Vec<c64>> {
        assert_eq!(send.len(), self.size);
        self.stats.add(&self.stats.alltoallv_calls, 1);
        let p = self.size;
        let mut recv: Vec<Vec<c64>> = (0..p).map(|_| Vec::new()).collect();
        recv[self.rank] = send[self.rank].clone();
        for round in 1..p {
            let dst = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            let bytes = self.c64_wire_bytes(send[dst].len());
            self.stats.add(&self.stats.alltoallv_bytes, bytes);
            match self.wire {
                Wire::F64 => {
                    self.send_payload(dst, TAG_A2A + round as u64, Payload::C64(send[dst].clone()))
                }
                Wire::F32 => self.send_payload(
                    dst,
                    TAG_A2A + round as u64,
                    Payload::C32(send[dst].iter().map(|z| z.to_c32()).collect()),
                ),
            }
            let got = self.recv_payload(src, TAG_A2A + round as u64);
            recv[src] = match got {
                Payload::C64(v) => v,
                Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
                _ => panic!("alltoallv type mismatch"),
            };
        }
        recv
    }

    /// `MPI_Allgatherv` for f64 data: every rank contributes a block, all
    /// ranks receive all blocks (used after the XC potential evaluation,
    /// §3.4 / Table 2).
    pub fn allgatherv_f64(&mut self, mine: &[f64]) -> Vec<Vec<f64>> {
        self.stats.add(&self.stats.allgatherv_calls, 1);
        let p = self.size;
        let mut out: Vec<Vec<f64>> = (0..p).map(|_| Vec::new()).collect();
        out[self.rank] = mine.to_vec();
        for round in 1..p {
            let dst = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            self.stats
                .add(&self.stats.allgatherv_bytes, 8 * mine.len() as u64);
            self.send_payload(dst, TAG_AGV + round as u64, Payload::F64(mine.to_vec()));
            match self.recv_payload(src, TAG_AGV + round as u64) {
                Payload::F64(v) => out[src] = v,
                _ => panic!("allgatherv type mismatch"),
            }
        }
        out
    }

    /// Full barrier (reduce + broadcast of an empty token).
    pub fn barrier(&mut self) {
        let mut token = [0.0f64; 1];
        self.allreduce_sum_f64(&mut token);
    }
}

const TAG_BCAST: u64 = 1 << 32;
const TAG_REDUCE: u64 = 2 << 32;
const TAG_REDUCE_BC: u64 = 3 << 32;
const TAG_A2A: u64 = 4 << 32;
const TAG_AGV: u64 = 5 << 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_delivers_to_all_ranks() {
        for np in [1usize, 2, 3, 4, 5, 8] {
            for root in [0, np - 1] {
                let (out, stats) = run_ranks(np, Wire::F64, |comm| {
                    let mut data = if comm.rank() == root {
                        vec![c64::new(1.5, -2.5); 100]
                    } else {
                        Vec::new()
                    };
                    comm.bcast_c64(root, &mut data);
                    data
                });
                for v in &out {
                    assert_eq!(v.len(), 100);
                    assert_eq!(v[0], c64::new(1.5, -2.5));
                }
                // received volume: (np − 1) receivers × 1600 bytes
                assert_eq!(stats.bcast_bytes, (np as u64 - 1) * 1600, "np={np}");
            }
        }
    }

    #[test]
    fn bcast_f32_wire_halves_volume_and_loses_little() {
        let (out, stats) = run_ranks(4, Wire::F32, |comm| {
            let mut data = if comm.rank() == 0 {
                vec![c64::new(0.123456789, 9.87654321); 50]
            } else {
                Vec::new()
            };
            comm.bcast_c64(0, &mut data);
            data
        });
        assert_eq!(stats.bcast_bytes, 3 * 50 * 8);
        for v in out {
            assert!((v[0] - c64::new(0.123456789, 9.87654321)).abs() < 1e-6);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for np in [1usize, 2, 3, 5, 7] {
            let (out, _) = run_ranks(np, Wire::F64, |comm| {
                let mut data = vec![comm.rank() as f64 + 1.0, 10.0];
                comm.allreduce_sum_f64(&mut data);
                data
            });
            let want0 = (1..=np).sum::<usize>() as f64;
            for v in out {
                assert_eq!(v[0], want0);
                assert_eq!(v[1], 10.0 * np as f64);
            }
        }
    }

    #[test]
    fn allreduce_c64_matches_serial_sum() {
        let (out, _) = run_ranks(6, Wire::F64, |comm| {
            let r = comm.rank() as f64;
            let mut data = vec![c64::new(r, -r), c64::new(1.0, 1.0)];
            comm.allreduce_sum_c64(&mut data);
            data
        });
        for v in out {
            assert_eq!(v[0], c64::new(15.0, -15.0));
            assert_eq!(v[1], c64::new(6.0, 6.0));
        }
    }

    #[test]
    fn alltoallv_transposes_blocks() {
        let np = 5;
        let (out, _) = run_ranks(np, Wire::F64, |comm| {
            let r = comm.rank();
            let send: Vec<Vec<c64>> = (0..np)
                .map(|j| vec![c64::new(r as f64, j as f64); j + 1])
                .collect();
            comm.alltoallv_c64(send)
        });
        for (r, recv) in out.iter().enumerate() {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(block.len(), r + 1, "rank {r} from {src}");
                assert_eq!(block[0], c64::new(src as f64, r as f64));
            }
        }
    }

    #[test]
    fn allgatherv_collects_everything() {
        let (out, _) = run_ranks(4, Wire::F64, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgatherv_f64(&mine)
        });
        for recv in out {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(block.len(), src + 1);
                assert!(block.iter().all(|&v| v == src as f64));
            }
        }
    }

    #[test]
    fn barrier_and_out_of_order_tags() {
        // ranks exchange p2p messages in a crossing pattern while using
        // collectives, exercising the stash
        let (out, _) = run_ranks(3, Wire::F64, |comm| {
            let r = comm.rank();
            let next = (r + 1) % 3;
            let prev = (r + 2) % 3;
            comm.send_c64(next, 7, &[c64::real(r as f64)]);
            comm.barrier();
            let v = comm.recv_c64(prev, 7);
            v[0].re
        });
        assert_eq!(out, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_failure_aborts_job() {
        let _ = run_ranks(3, Wire::F64, |comm| {
            if comm.rank() == 1 {
                panic!("injected rank failure");
            }
            // others would block forever waiting on the dead rank if the
            // scope didn't propagate; they return immediately here.
            comm.rank()
        });
    }
}
