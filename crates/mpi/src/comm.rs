//! Rank threads, point-to-point messaging and collectives.

use crate::stats::CommStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pt_num::{c32, c64};
use pt_par::{RankLayout, ThreadPool};
use std::any::Any;
// pt-analyze: allow(nondeterministic-iteration) — HashMap is keyed-lookup-only here (the Comm stash below); it is never iterated
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Panic payload of a rank that aborted because a *peer* died (the poison
/// cascade below). Kept distinguishable from real failures so the job
/// re-raises the original defect, not a secondary "peer died" panic.
pub(crate) struct PeerDied(pub(crate) String);

/// Process-wide count of rank threads ever spawned, by the `run_ranks`
/// family and by [`crate::RankEngine`] alike. Spawn-once acceptance tests
/// read this through [`rank_threads_spawned`] to prove a multi-step run
/// created its rank team exactly once.
static RANK_THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total rank threads spawned by this process so far (monotone counter;
/// take a delta around the region under test).
pub fn rank_threads_spawned() -> usize {
    RANK_THREADS_SPAWNED.load(Ordering::Relaxed)
}

pub(crate) fn note_rank_thread_spawned() {
    RANK_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
}

/// Wire precision for complex payloads (§3.2 optimization 4: sending
/// wavefunctions in single precision halves the broadcast volume; values
/// are converted back to f64 before any computation).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Wire {
    /// Full double precision on the wire.
    F64,
    /// Single-precision wire format (half the bytes, ~1e-7 relative loss).
    F32,
}

/// A tagged message between ranks.
pub(crate) enum Payload {
    C64(Vec<c64>),
    C32(Vec<c32>),
    F64(Vec<f64>),
}

pub(crate) struct Envelope {
    src: usize,
    tag: u64,
    payload: Payload,
}

/// Per-rank communicator handle (the `MPI_COMM_WORLD` of a virtual run).
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// out-of-order message stash (FIFO per (src, tag) key)
    // pt-analyze: allow(nondeterministic-iteration) — accessed only by exact (src, tag) key (entry/get_mut/remove); no code path iterates the map, so its order can't leak into results
    stash: HashMap<(usize, u64), VecDeque<Payload>>,
    stats: Arc<CommStats>,
    wire: Wire,
}

/// Spawn `np` rank threads running `f(comm)` and return their results in
/// rank order. Panics in any rank propagate with their original payload
/// (failure injection semantics: a dead rank aborts the whole virtual job,
/// like a real MPI fault, and the panic message survives for tests to
/// assert on); peers blocked in a receive are poisoned awake, so the job
/// aborts instead of deadlocking. Each rank inherits the caller's compute
/// pool; use [`run_ranks_pinned`] to give every rank its own dedicated
/// pool.
pub fn run_ranks<T, F>(np: usize, wire: Wire, f: F) -> (Vec<T>, crate::StatsSnapshot)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_ranks_impl(np, wire, None, f)
}

/// [`run_ranks`] with rank-pinned compute pools: spawn `layout.ranks` rank
/// threads and install a dedicated `layout.threads_per_rank`-wide
/// [`ThreadPool`] on each for the whole lifetime of its closure — the
/// in-process analogue of the paper's one-GPU-plus-CPU-slice per MPI rank.
/// Every `pt_par` primitive (and hence every parallel hot path in the
/// distributed Alg. 2/3 routines) reached from `f` on that rank runs on
/// its own pool, so ranks never contend for the global pool's workers.
pub fn run_ranks_pinned<T, F>(
    layout: RankLayout,
    wire: Wire,
    f: F,
) -> (Vec<T>, crate::StatsSnapshot)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    run_ranks_impl(layout.ranks, wire, Some(layout.threads_per_rank), f)
}

fn run_ranks_impl<T, F>(
    np: usize,
    wire: Wire,
    threads_per_rank: Option<usize>,
    f: F,
) -> (Vec<T>, crate::StatsSnapshot)
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(np > 0);
    let stats = Arc::new(CommStats::default());
    let mut txs = Vec::with_capacity(np);
    let mut rxs = Vec::with_capacity(np);
    for _ in 0..np {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let mut results: Vec<Option<T>> = (0..np).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(np);
        for (rank, (rx, slot)) in rxs.drain(..).zip(results.iter_mut()).enumerate() {
            let txs = txs.clone();
            let stats = Arc::clone(&stats);
            let fref = &f;
            note_rank_thread_spawned();
            handles.push(scope.spawn(move |_| {
                let mut comm = Comm::from_parts(rank, np, txs, rx, stats, wire);
                let r = catch_unwind(AssertUnwindSafe(|| match threads_per_rank {
                    // the pool lives exactly as long as the rank closure:
                    // built before, installed around, dropped after
                    Some(n) => ThreadPool::new(n).install(|| fref(&mut comm)),
                    None => fref(&mut comm),
                }));
                match r {
                    Ok(v) => *slot = Some(v),
                    Err(payload) => {
                        // a dead rank can never answer its peers: poison
                        // them so blocked receives abort the job (a real
                        // MPI fault) instead of deadlocking it
                        comm.poison_peers();
                        resume_unwind(payload);
                    }
                }
            }));
        }
        // Join every rank before re-raising so no handle leaks, then
        // propagate the first (rank-order) *original* panic — `expect`
        // would replace the injected message with a generic one (and a
        // secondary PeerDied cascade would mask the root cause), so
        // failure-injection tests couldn't assert on it.
        let mut first_original: Option<Box<dyn Any + Send>> = None;
        let mut first_cascade: Option<Box<dyn Any + Send>> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                if payload.downcast_ref::<PeerDied>().is_none() {
                    first_original.get_or_insert(payload);
                } else {
                    first_cascade.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_original.or(first_cascade) {
            match payload.downcast::<PeerDied>() {
                // unwrap the cascade marker so the message stays visible
                Ok(peer_died) => resume_unwind(Box::new(peer_died.0)),
                Err(payload) => resume_unwind(payload),
            }
        }
    })
    .expect("virtual MPI scope failed");
    let out = results
        .into_iter()
        .map(|r| r.expect("rank produced no result"))
        .collect();
    let snap = stats.snapshot();
    (out, snap)
}

impl Comm {
    /// Assemble a communicator handle from pre-wired world channels. The
    /// `run_ranks` family and the persistent [`crate::RankEngine`] build
    /// their worlds through this single constructor so both share the
    /// exact same messaging semantics (stash, poison, stats).
    pub(crate) fn from_parts(
        rank: usize,
        size: usize,
        senders: Vec<Sender<Envelope>>,
        receiver: Receiver<Envelope>,
        stats: Arc<CommStats>,
        wire: Wire,
    ) -> Self {
        Comm {
            rank,
            size,
            senders,
            receiver,
            stash: HashMap::new(), // pt-analyze: allow(nondeterministic-iteration) — construction of the keyed-lookup-only stash above
            stats,
            wire,
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wire precision in force for complex payloads.
    #[inline]
    pub fn wire(&self) -> Wire {
        self.wire
    }

    /// Shared statistics handle.
    pub fn stats(&self) -> crate::StatsSnapshot {
        self.stats.snapshot()
    }

    fn send_payload(&self, dst: usize, tag: u64, payload: Payload) {
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                payload,
            })
            .expect("receiver hung up");
    }

    fn recv_payload(&mut self, src: usize, tag: u64) -> Payload {
        if let Some(q) = self.stash.get_mut(&(src, tag)) {
            if let Some(p) = q.pop_front() {
                return p;
            }
        }
        loop {
            let env = self.receiver.recv().expect("sender hung up");
            if env.tag == TAG_POISON {
                // a peer died; abort this rank too (see poison_peers)
                panic_any(PeerDied(format!(
                    "virtual MPI: rank {} died while rank {} was waiting for rank {src}, tag {tag:#x}",
                    env.src, self.rank
                )));
            }
            if env.src == src && env.tag == tag {
                return env.payload;
            }
            self.stash
                .entry((env.src, env.tag))
                .or_default()
                .push_back(env.payload);
        }
    }

    /// Wake every peer that might be blocked waiting on this rank: called
    /// when this rank's closure panicked, so a blocked `recv` turns into
    /// a job abort instead of a deadlock. Sends are best-effort (a peer
    /// that already finished has dropped its receiver).
    pub(crate) fn poison_peers(&self) {
        for (dst, tx) in self.senders.iter().enumerate() {
            if dst != self.rank {
                let _ = tx.send(Envelope {
                    src: self.rank,
                    tag: TAG_POISON,
                    payload: Payload::F64(Vec::new()),
                });
            }
        }
    }

    /// Point-to-point send of complex data (wire conversion applied).
    pub fn send_c64(&self, dst: usize, tag: u64, data: &[c64]) {
        let bytes = self.c64_wire_bytes(data.len());
        self.stats.add(&self.stats.p2p_bytes, bytes);
        match self.wire {
            Wire::F64 => self.send_payload(dst, tag, Payload::C64(data.to_vec())),
            Wire::F32 => self.send_payload(
                dst,
                tag,
                Payload::C32(data.iter().map(|z| z.to_c32()).collect()),
            ),
        }
    }

    /// Point-to-point receive of complex data.
    pub fn recv_c64(&mut self, src: usize, tag: u64) -> Vec<c64> {
        match self.recv_payload(src, tag) {
            Payload::C64(v) => v,
            Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
            Payload::F64(_) => panic!("type mismatch: expected complex payload"),
        }
    }

    fn c64_wire_bytes(&self, n: usize) -> u64 {
        match self.wire {
            Wire::F64 => 16 * n as u64,
            Wire::F32 => 8 * n as u64,
        }
    }

    /// Binomial-tree broadcast of complex data from `root` (the Alg. 2
    /// wavefunction broadcast). Counts received bytes like the paper's §7
    /// receiving-side analysis.
    pub fn bcast_c64(&mut self, root: usize, data: &mut Vec<c64>) {
        self.stats.add(&self.stats.bcast_calls, 1);
        let p = self.size;
        if p == 1 {
            return;
        }
        // relative rank
        let r = (self.rank + p - root) % p;
        // receive phase: the lowest set bit of r determines the parent
        if r != 0 {
            let lsb = r & r.wrapping_neg();
            let parent = (r - lsb + root) % p;
            let got = self.recv_payload(parent, TAG_BCAST);
            *data = match got {
                Payload::C64(v) => v,
                Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
                _ => panic!("bcast type mismatch"),
            };
            self.stats
                .add(&self.stats.bcast_bytes, self.c64_wire_bytes(data.len()));
        }
        // send phase: forward to children r + mask for mask < lsb(r)
        let lsb = if r == 0 {
            p.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lsb && r + mask < p {
                let child = (r + mask + root) % p;
                match self.wire {
                    Wire::F64 => self.send_payload(child, TAG_BCAST, Payload::C64(data.clone())),
                    Wire::F32 => self.send_payload(
                        child,
                        TAG_BCAST,
                        Payload::C32(data.iter().map(|z| z.to_c32()).collect()),
                    ),
                }
            }
            mask <<= 1;
        }
    }

    /// Allreduce (sum) of f64 data: binomial reduce to rank 0 + broadcast.
    pub fn allreduce_sum_f64(&mut self, data: &mut [f64]) {
        self.stats.add(&self.stats.allreduce_calls, 1);
        let p = self.size;
        if p == 1 {
            return;
        }
        let bytes = 8 * data.len() as u64;
        // reduce to 0 along a binomial tree
        let mut mask = 1usize;
        while mask < p {
            if self.rank & mask != 0 {
                let dst = self.rank & !mask;
                self.send_payload(dst, TAG_REDUCE, Payload::F64(data.to_vec()));
                self.stats.add(&self.stats.allreduce_bytes, bytes);
                break;
            } else if (self.rank | mask) < p {
                let src = self.rank | mask;
                match self.recv_payload(src, TAG_REDUCE) {
                    Payload::F64(v) => {
                        for (d, s) in data.iter_mut().zip(v) {
                            *d += s;
                        }
                    }
                    _ => panic!("allreduce type mismatch"),
                }
            }
            mask <<= 1;
        }
        // broadcast result (counted as allreduce traffic, matching how the
        // paper lumps the whole MPI_Allreduce in one class)
        let mut tmp = if self.rank == 0 {
            data.to_vec()
        } else {
            Vec::new()
        };
        self.bcast_f64_internal(0, &mut tmp, TAG_REDUCE_BC, bytes);
        data.copy_from_slice(&tmp);
    }

    fn bcast_f64_internal(&mut self, root: usize, data: &mut Vec<f64>, tag: u64, bytes: u64) {
        let p = self.size;
        if p == 1 {
            return;
        }
        let r = (self.rank + p - root) % p;
        if r != 0 {
            let lsb = r & r.wrapping_neg();
            let parent = (r - lsb + root) % p;
            match self.recv_payload(parent, tag) {
                Payload::F64(v) => *data = v,
                _ => panic!("bcast type mismatch"),
            }
            self.stats.add(&self.stats.allreduce_bytes, bytes);
        }
        let lsb = if r == 0 {
            p.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lsb && r + mask < p {
                let child = (r + mask + root) % p;
                self.send_payload(child, tag, Payload::F64(data.clone()));
            }
            mask <<= 1;
        }
    }

    /// Allreduce (sum) of complex data (overlap matrices, Alg. 3 line 3).
    pub fn allreduce_sum_c64(&mut self, data: &mut [c64]) {
        // reuse the f64 path over the interleaved representation
        let mut flat: Vec<f64> = Vec::with_capacity(2 * data.len());
        for z in data.iter() {
            flat.push(z.re);
            flat.push(z.im);
        }
        self.allreduce_sum_f64(&mut flat);
        for (z, ch) in data.iter_mut().zip(flat.chunks_exact(2)) {
            *z = c64::new(ch[0], ch[1]);
        }
    }

    /// Pairwise `MPI_Alltoallv` for complex data: `send[j]` goes to rank
    /// `j`; returns the received blocks indexed by source rank. Used for
    /// the band-index ↔ G-space layout flips (Alg. 3 lines 1 and 6).
    pub fn alltoallv_c64(&mut self, send: Vec<Vec<c64>>) -> Vec<Vec<c64>> {
        assert_eq!(send.len(), self.size);
        self.stats.add(&self.stats.alltoallv_calls, 1);
        let p = self.size;
        let mut recv: Vec<Vec<c64>> = (0..p).map(|_| Vec::new()).collect();
        recv[self.rank] = send[self.rank].clone();
        for round in 1..p {
            let dst = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            let bytes = self.c64_wire_bytes(send[dst].len());
            self.stats.add(&self.stats.alltoallv_bytes, bytes);
            match self.wire {
                Wire::F64 => {
                    self.send_payload(dst, TAG_A2A + round as u64, Payload::C64(send[dst].clone()))
                }
                Wire::F32 => self.send_payload(
                    dst,
                    TAG_A2A + round as u64,
                    Payload::C32(send[dst].iter().map(|z| z.to_c32()).collect()),
                ),
            }
            let got = self.recv_payload(src, TAG_A2A + round as u64);
            recv[src] = match got {
                Payload::C64(v) => v,
                Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
                _ => panic!("alltoallv type mismatch"),
            };
        }
        recv
    }

    /// `MPI_Allgatherv` for f64 data: every rank contributes a block, all
    /// ranks receive all blocks (used after the XC potential evaluation,
    /// §3.4 / Table 2).
    pub fn allgatherv_f64(&mut self, mine: &[f64]) -> Vec<Vec<f64>> {
        self.stats.add(&self.stats.allgatherv_calls, 1);
        let p = self.size;
        let mut out: Vec<Vec<f64>> = (0..p).map(|_| Vec::new()).collect();
        out[self.rank] = mine.to_vec();
        for round in 1..p {
            let dst = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            self.stats
                .add(&self.stats.allgatherv_bytes, 8 * mine.len() as u64);
            self.send_payload(dst, TAG_AGV + round as u64, Payload::F64(mine.to_vec()));
            match self.recv_payload(src, TAG_AGV + round as u64) {
                Payload::F64(v) => out[src] = v,
                _ => panic!("allgatherv type mismatch"),
            }
        }
        out
    }

    /// `MPI_Allgatherv` for complex data: every rank contributes a block,
    /// all ranks receive all blocks indexed by source rank. Wire
    /// conversion applies like every other complex collective (an
    /// [`Wire::F32`] wire halves the volume at ~1e-7 relative loss). Used
    /// by the fixed-chunk overlap reduction of Alg. 3, where the *receiver*
    /// re-associates the partial sums in a rank-count-independent order.
    pub fn allgatherv_c64(&mut self, mine: &[c64]) -> Vec<Vec<c64>> {
        self.stats.add(&self.stats.allgatherv_calls, 1);
        let p = self.size;
        let mut out: Vec<Vec<c64>> = (0..p).map(|_| Vec::new()).collect();
        out[self.rank] = mine.to_vec();
        for round in 1..p {
            let dst = (self.rank + round) % p;
            let src = (self.rank + p - round) % p;
            self.stats.add(
                &self.stats.allgatherv_bytes,
                self.c64_wire_bytes(mine.len()),
            );
            match self.wire {
                Wire::F64 => {
                    self.send_payload(dst, TAG_AGV + round as u64, Payload::C64(mine.to_vec()))
                }
                Wire::F32 => self.send_payload(
                    dst,
                    TAG_AGV + round as u64,
                    Payload::C32(mine.iter().map(|z| z.to_c32()).collect()),
                ),
            }
            out[src] = match self.recv_payload(src, TAG_AGV + round as u64) {
                Payload::C64(v) => v,
                Payload::C32(v) => v.into_iter().map(|z| z.to_c64()).collect(),
                _ => panic!("allgatherv type mismatch"),
            };
        }
        out
    }

    /// Tree-structured replacement for the Alg. 3 chunk-overlap
    /// `allgatherv_c64` + linear combine: every rank contributes the
    /// partial sums of its *contiguous ascending* run of fixed-size
    /// chunks (`mine.len() / block` chunks of `block` elements each, in
    /// global chunk order), and every rank receives the full element-wise
    /// sum `0 ⊕ T_0 ⊕ T_1 ⊕ …` over all chunks of all ranks.
    ///
    /// Association is the whole contract. The old path gathered every
    /// rank's chunk list everywhere (O(n_chunks × block) received per
    /// rank) and re-folded ascending on each receiver. Here the pairwise
    /// tree over chunk indices is aligned with that ownership: each
    /// rank's local ascending fold is one subtree, subtrees are joined in
    /// a rank-ascending prefix chain (rank r adds its chunks onto the
    /// prefix over all chunks owned by ranks < r, starting from the same
    /// zeros), and the final sum is redistributed along a binomial tree
    /// from the last rank. The element-wise addition sequence is
    /// *identical* to the linear combine's, so the result is bit-for-bit
    /// the same while each rank now receives at most 2 × `block` values —
    /// O(block) instead of O(n_chunks × block), with O(log np) broadcast
    /// hops.
    ///
    /// Reduction traffic stays full f64 precision regardless of the wire
    /// (re-quantizing compounded prefix sums at every hop would degrade
    /// with rank count, and the volume is only `block` per hop); both
    /// bit-exactness across layouts and the [`Wire::F32`] volume savings
    /// on the bulk wavefunction traffic are preserved.
    pub fn tree_reduce_chunks_c64(&mut self, mine: &[c64], block: usize) -> Vec<c64> {
        assert!(block > 0, "chunk block size must be nonzero");
        assert_eq!(
            mine.len() % block,
            0,
            "partials must be whole chunks of the block size"
        );
        self.stats.add(&self.stats.tree_reduce_calls, 1);
        let p = self.size;
        // prefix phase: continue the ascending-chunk fold started by rank 0
        let mut acc = vec![c64::new(0.0, 0.0); block];
        if self.rank > 0 {
            match self.recv_payload(self.rank - 1, TAG_TREE) {
                Payload::C64(v) => acc = v,
                _ => panic!("tree reduce type mismatch"),
            }
            self.stats
                .add(&self.stats.tree_reduce_bytes, 16 * block as u64);
        }
        for chunk in mine.chunks_exact(block) {
            for (a, v) in acc.iter_mut().zip(chunk) {
                *a += *v;
            }
        }
        if self.rank + 1 < p {
            self.send_payload(self.rank + 1, TAG_TREE, Payload::C64(acc.clone()));
        }
        // redistribution phase: binomial broadcast from the last rank,
        // which is the only one holding the full sum
        let root = p - 1;
        let r = (self.rank + p - root) % p;
        if r != 0 {
            let lsb = r & r.wrapping_neg();
            let parent = (r - lsb + root) % p;
            match self.recv_payload(parent, TAG_TREE_BC) {
                Payload::C64(v) => acc = v,
                _ => panic!("tree reduce type mismatch"),
            }
            self.stats
                .add(&self.stats.tree_reduce_bytes, 16 * block as u64);
        }
        let lsb = if r == 0 {
            p.next_power_of_two()
        } else {
            r & r.wrapping_neg()
        };
        let mut mask = 1usize;
        while mask < p {
            if mask < lsb && r + mask < p {
                let child = (r + mask + root) % p;
                self.send_payload(child, TAG_TREE_BC, Payload::C64(acc.clone()));
            }
            mask <<= 1;
        }
        acc
    }

    /// Full barrier (reduce + broadcast of an empty token).
    pub fn barrier(&mut self) {
        let mut token = [0.0f64; 1];
        self.allreduce_sum_f64(&mut token);
    }
}

/// Rank count requested via `PT_NUM_RANKS` (default 1). The CI matrix and
/// the `bench_ranks_threads` sweep use this the way `PT_NUM_THREADS` sizes
/// the global compute pool — one knob per axis of the ranks × threads
/// composition.
pub fn env_ranks() -> usize {
    std::env::var("PT_NUM_RANKS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

const TAG_BCAST: u64 = 1 << 32;
const TAG_REDUCE: u64 = 2 << 32;
const TAG_REDUCE_BC: u64 = 3 << 32;
const TAG_A2A: u64 = 4 << 32;
const TAG_AGV: u64 = 5 << 32;
const TAG_TREE: u64 = 6 << 32;
const TAG_TREE_BC: u64 = 7 << 32;
/// Reserved control tag: "the sending rank is dead" (never stashed).
const TAG_POISON: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_delivers_to_all_ranks() {
        for np in [1usize, 2, 3, 4, 5, 8] {
            for root in [0, np - 1] {
                let (out, stats) = run_ranks(np, Wire::F64, |comm| {
                    let mut data = if comm.rank() == root {
                        vec![c64::new(1.5, -2.5); 100]
                    } else {
                        Vec::new()
                    };
                    comm.bcast_c64(root, &mut data);
                    data
                });
                for v in &out {
                    assert_eq!(v.len(), 100);
                    assert_eq!(v[0], c64::new(1.5, -2.5));
                }
                // received volume: (np − 1) receivers × 1600 bytes
                assert_eq!(stats.bcast_bytes, (np as u64 - 1) * 1600, "np={np}");
            }
        }
    }

    #[test]
    fn bcast_f32_wire_halves_volume_and_loses_little() {
        let (out, stats) = run_ranks(4, Wire::F32, |comm| {
            let mut data = if comm.rank() == 0 {
                vec![c64::new(0.123456789, 9.87654321); 50]
            } else {
                Vec::new()
            };
            comm.bcast_c64(0, &mut data);
            data
        });
        assert_eq!(stats.bcast_bytes, 3 * 50 * 8);
        for v in out {
            assert!((v[0] - c64::new(0.123456789, 9.87654321)).abs() < 1e-6);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for np in [1usize, 2, 3, 5, 7] {
            let (out, _) = run_ranks(np, Wire::F64, |comm| {
                let mut data = vec![comm.rank() as f64 + 1.0, 10.0];
                comm.allreduce_sum_f64(&mut data);
                data
            });
            let want0 = (1..=np).sum::<usize>() as f64;
            for v in out {
                assert_eq!(v[0], want0);
                assert_eq!(v[1], 10.0 * np as f64);
            }
        }
    }

    #[test]
    fn allreduce_c64_matches_serial_sum() {
        let (out, _) = run_ranks(6, Wire::F64, |comm| {
            let r = comm.rank() as f64;
            let mut data = vec![c64::new(r, -r), c64::new(1.0, 1.0)];
            comm.allreduce_sum_c64(&mut data);
            data
        });
        for v in out {
            assert_eq!(v[0], c64::new(15.0, -15.0));
            assert_eq!(v[1], c64::new(6.0, 6.0));
        }
    }

    #[test]
    fn alltoallv_transposes_blocks() {
        let np = 5;
        let (out, _) = run_ranks(np, Wire::F64, |comm| {
            let r = comm.rank();
            let send: Vec<Vec<c64>> = (0..np)
                .map(|j| vec![c64::new(r as f64, j as f64); j + 1])
                .collect();
            comm.alltoallv_c64(send)
        });
        for (r, recv) in out.iter().enumerate() {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(block.len(), r + 1, "rank {r} from {src}");
                assert_eq!(block[0], c64::new(src as f64, r as f64));
            }
        }
    }

    #[test]
    fn allgatherv_collects_everything() {
        let (out, _) = run_ranks(4, Wire::F64, |comm| {
            let mine = vec![comm.rank() as f64; comm.rank() + 1];
            comm.allgatherv_f64(&mine)
        });
        for recv in out {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(block.len(), src + 1);
                assert!(block.iter().all(|&v| v == src as f64));
            }
        }
    }

    #[test]
    fn allgatherv_c64_collects_everything_and_respects_the_wire() {
        let (out, stats) = run_ranks(3, Wire::F64, |comm| {
            let mine = vec![c64::new(comm.rank() as f64, -1.0); comm.rank() + 2];
            comm.allgatherv_c64(&mine)
        });
        for recv in out {
            for (src, block) in recv.iter().enumerate() {
                assert_eq!(block.len(), src + 2);
                assert!(block.iter().all(|&z| z == c64::new(src as f64, -1.0)));
            }
        }
        // each rank sends its block to p−1 peers at 16 bytes per c64
        assert_eq!(stats.allgatherv_bytes, 2 * (2 + 3 + 4) * 16);
        // f32 wire halves the volume
        let (_, stats32) = run_ranks(3, Wire::F32, |comm| {
            let mine = vec![c64::new(comm.rank() as f64, -1.0); comm.rank() + 2];
            comm.allgatherv_c64(&mine)
        });
        assert_eq!(stats32.allgatherv_bytes, 2 * (2 + 3 + 4) * 8);
    }

    #[test]
    fn tree_reduce_chunks_is_bit_identical_to_the_linear_combine() {
        let block = 4usize;
        for np in [1usize, 2, 3, 5, 8] {
            for nc in [0usize, 1, 3, 7, 16] {
                // deterministic chunk data with nontrivial rounding
                let chunks: Vec<Vec<c64>> = (0..nc)
                    .map(|c| {
                        (0..block)
                            .map(|i| {
                                let x = ((c * 31 + i * 7 + 1) as f64).sin() * 1e3;
                                let y = ((c * 17 + i * 13 + 2) as f64).cos() / 3.0;
                                c64::new(x, y)
                            })
                            .collect()
                    })
                    .collect();
                // reference: the zeros-initialized ascending linear fold
                // the old allgatherv combine performed on every receiver
                let mut want = vec![c64::new(0.0, 0.0); block];
                for ch in &chunks {
                    for (w, v) in want.iter_mut().zip(ch) {
                        *w += *v;
                    }
                }
                let (base, rem) = (nc / np, nc % np);
                let (out, stats) = run_ranks(np, Wire::F64, |comm| {
                    let r = comm.rank();
                    let start = r * base + r.min(rem);
                    let count = base + usize::from(r < rem);
                    let mine: Vec<c64> = chunks[start..start + count]
                        .iter()
                        .flatten()
                        .copied()
                        .collect();
                    comm.tree_reduce_chunks_c64(&mine, block)
                });
                for got in &out {
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.re.to_bits(), w.re.to_bits(), "np={np} nc={nc}");
                        assert_eq!(g.im.to_bits(), w.im.to_bits(), "np={np} nc={nc}");
                    }
                }
                // received volume: one prefix hop into each rank > 0 plus
                // one broadcast delivery to each non-root
                let hops = 2 * (np as u64 - 1);
                assert_eq!(stats.tree_reduce_bytes, hops * block as u64 * 16);
                assert_eq!(stats.tree_reduce_calls, np as u64);
            }
        }
    }

    #[test]
    fn barrier_and_out_of_order_tags() {
        // ranks exchange p2p messages in a crossing pattern while using
        // collectives, exercising the stash
        let (out, _) = run_ranks(3, Wire::F64, |comm| {
            let r = comm.rank();
            let next = (r + 1) % 3;
            let prev = (r + 2) % 3;
            comm.send_c64(next, 7, &[c64::real(r as f64)]);
            comm.barrier();
            let v = comm.recv_c64(prev, 7);
            v[0].re
        });
        assert_eq!(out, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "injected rank failure")]
    fn rank_failure_aborts_job_with_original_payload() {
        // the panic that aborts the job must carry the injected message
        // (not a generic "rank thread panicked") so failure-injection
        // tests can assert on what actually went wrong
        let _ = run_ranks(3, Wire::F64, |comm| {
            if comm.rank() == 1 {
                panic!("injected rank failure");
            }
            // others would block forever waiting on the dead rank if the
            // scope didn't propagate; they return immediately here.
            comm.rank()
        });
    }

    #[test]
    #[should_panic(expected = "rank 1 hardware fault")]
    fn rank_panic_unblocks_peers_waiting_on_it() {
        // ranks 0 and 2 block on a message only rank 1 could send; rank
        // 1's death must poison them awake and the job must re-raise the
        // *original* defect, not the secondary peer-died cascade
        let _ = run_ranks(3, Wire::F64, |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 hardware fault");
            }
            let v = comm.recv_c64(1, 99);
            v.len()
        });
    }

    #[test]
    fn first_rank_panic_payload_wins_in_rank_order() {
        // two ranks die with different messages; the re-raised payload is
        // rank 0's (deterministic pick, independent of finish order)
        let r = std::panic::catch_unwind(|| {
            run_ranks(4, Wire::F64, |comm| {
                match comm.rank() {
                    0 => panic!("failure on rank 0"),
                    2 => panic!("failure on rank 2"),
                    _ => {}
                }
                comm.rank()
            })
        });
        let payload = r.expect_err("job must abort");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .expect("panic payload is a string");
        assert_eq!(msg, "failure on rank 0");
    }

    #[test]
    fn stash_preserves_fifo_order_per_tag() {
        // rank 0 sends a burst of same-tag messages to rank 1 while rank 1
        // first drains a *different* tag, forcing the whole burst through
        // the out-of-order stash; FIFO order must survive
        let (out, _) = run_ranks(2, Wire::F64, |comm| {
            if comm.rank() == 0 {
                for i in 0..32 {
                    comm.send_c64(1, 7, &[c64::real(i as f64)]);
                }
                comm.send_c64(1, 9, &[c64::real(-1.0)]);
                Vec::new()
            } else {
                // tag 9 arrives last, so every tag-7 message gets stashed
                let sentinel = comm.recv_c64(0, 9);
                assert_eq!(sentinel[0].re, -1.0);
                (0..32).map(|_| comm.recv_c64(0, 7)[0].re).collect()
            }
        });
        assert_eq!(out[1], (0..32).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn pinned_ranks_get_their_own_pools() {
        use pt_par::current_num_threads;
        let layout = RankLayout::new(3, 2);
        let (widths, _) = run_ranks_pinned(layout, Wire::F64, |comm| {
            // the rank closure sees its dedicated pool, not the global one
            let w = current_num_threads();
            comm.barrier();
            w
        });
        assert_eq!(widths, vec![2, 2, 2]);
        // and the collectives still work under pinned pools
        let (sums, _) = run_ranks_pinned(RankLayout::new(2, 3), Wire::F64, |comm| {
            let mut v = vec![comm.rank() as f64 + 1.0];
            comm.allreduce_sum_f64(&mut v);
            v[0]
        });
        assert_eq!(sums, vec![3.0, 3.0]);
    }
}
