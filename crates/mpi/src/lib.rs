//! `pt-mpi` — a virtual MPI runtime for in-process distributed execution.
//!
//! The paper's parallel structure (§3) is MPI + CUDA: wavefunctions are
//! distributed by band index, `MPI_Bcast` streams one orbital at a time
//! through the Fock exchange loop (Alg. 2), `MPI_Alltoallv` flips between
//! band-index and G-space layouts (Alg. 3), `MPI_Allreduce` assembles
//! overlap matrices and densities, and the wire format is optionally
//! single precision (§3.2 optimization 4).
//!
//! This crate reproduces that substrate in-process: every rank is a thread
//! (with [`run_ranks_pinned`], a thread owning its own pinned `pt-par`
//! compute pool — the paper's one-GPU-plus-CPU-slice per rank),
//! point-to-point messages are crossbeam channels, and the collectives use
//! the same algorithms real MPI implementations use for large messages
//! (binomial-tree broadcast, reduce+bcast allreduce, pairwise alltoallv).
//! Data movement is *real* — bytes are copied between rank-local buffers,
//! optionally through an f32 wire — so the distributed Fock operator and
//! residual algorithms in `pt-ham` run exactly the communication pattern of
//! the paper, and the per-class byte counters let tests verify the paper's
//! communication-volume formulas (e.g. N_p·N_G·N_e for Alg. 2).

mod comm;
mod engine;
mod stats;

pub use comm::{env_ranks, rank_threads_spawned, run_ranks, run_ranks_pinned, Comm, Wire};
pub use engine::{EnginePoisoned, RankEngine};
pub use stats::{CommStats, StatsSnapshot};
