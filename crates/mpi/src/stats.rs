//! Per-operation-class communication counters.
//!
//! Table 2 of the paper breaks total time into `MPI_Bcast`, `MPI_Alltoallv`,
//! `MPI_Allreduce`, `MPI_AllGatherv` and memcpy classes; these counters
//! collect the corresponding *volumes* (bytes) and call counts so that
//! integration tests can check the closed-form communication model the
//! paper states in §3.2 and §7.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters (one instance per communicator world).
#[derive(Debug, Default)]
pub struct CommStats {
    /// Bytes moved by broadcast operations (summed over receivers).
    pub bcast_bytes: AtomicU64,
    /// Broadcast call count (per-rank calls).
    pub bcast_calls: AtomicU64,
    /// Bytes moved by allreduce (summed over the reduce+bcast tree).
    pub allreduce_bytes: AtomicU64,
    /// Allreduce call count.
    pub allreduce_calls: AtomicU64,
    /// Bytes moved by alltoallv.
    pub alltoallv_bytes: AtomicU64,
    /// Alltoallv call count.
    pub alltoallv_calls: AtomicU64,
    /// Bytes moved by allgatherv.
    pub allgatherv_bytes: AtomicU64,
    /// Allgatherv call count.
    pub allgatherv_calls: AtomicU64,
    /// Bytes moved by the tree chunk reduction (received side).
    pub tree_reduce_bytes: AtomicU64,
    /// Tree chunk reduction call count (per-rank calls).
    pub tree_reduce_calls: AtomicU64,
    /// Bytes moved by raw point-to-point sends.
    pub p2p_bytes: AtomicU64,
}

/// A plain-old-data copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Bcast bytes.
    pub bcast_bytes: u64,
    /// Bcast calls.
    pub bcast_calls: u64,
    /// Allreduce bytes.
    pub allreduce_bytes: u64,
    /// Allreduce calls.
    pub allreduce_calls: u64,
    /// Alltoallv bytes.
    pub alltoallv_bytes: u64,
    /// Alltoallv calls.
    pub alltoallv_calls: u64,
    /// Allgatherv bytes.
    pub allgatherv_bytes: u64,
    /// Allgatherv calls.
    pub allgatherv_calls: u64,
    /// Tree chunk reduction bytes (received side).
    pub tree_reduce_bytes: u64,
    /// Tree chunk reduction calls.
    pub tree_reduce_calls: u64,
    /// Point-to-point bytes.
    pub p2p_bytes: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self − earlier`: the traffic of whatever
    /// ran between two [`CommStats::snapshot`] reads. The persistent rank
    /// engine uses this to report per-job volumes from its long-lived
    /// world counters.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bcast_bytes: self.bcast_bytes - earlier.bcast_bytes,
            bcast_calls: self.bcast_calls - earlier.bcast_calls,
            allreduce_bytes: self.allreduce_bytes - earlier.allreduce_bytes,
            allreduce_calls: self.allreduce_calls - earlier.allreduce_calls,
            alltoallv_bytes: self.alltoallv_bytes - earlier.alltoallv_bytes,
            alltoallv_calls: self.alltoallv_calls - earlier.alltoallv_calls,
            allgatherv_bytes: self.allgatherv_bytes - earlier.allgatherv_bytes,
            allgatherv_calls: self.allgatherv_calls - earlier.allgatherv_calls,
            tree_reduce_bytes: self.tree_reduce_bytes - earlier.tree_reduce_bytes,
            tree_reduce_calls: self.tree_reduce_calls - earlier.tree_reduce_calls,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
        }
    }

    /// Total bytes moved across every operation class — the single "wire
    /// bytes" figure per-job telemetry folds into its counters.
    pub fn total_bytes(&self) -> u64 {
        self.bcast_bytes
            + self.allreduce_bytes
            + self.alltoallv_bytes
            + self.allgatherv_bytes
            + self.tree_reduce_bytes
            + self.p2p_bytes
    }
}

impl CommStats {
    /// Read all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bcast_bytes: self.bcast_bytes.load(Ordering::Relaxed),
            bcast_calls: self.bcast_calls.load(Ordering::Relaxed),
            allreduce_bytes: self.allreduce_bytes.load(Ordering::Relaxed),
            allreduce_calls: self.allreduce_calls.load(Ordering::Relaxed),
            alltoallv_bytes: self.alltoallv_bytes.load(Ordering::Relaxed),
            alltoallv_calls: self.alltoallv_calls.load(Ordering::Relaxed),
            allgatherv_bytes: self.allgatherv_bytes.load(Ordering::Relaxed),
            allgatherv_calls: self.allgatherv_calls.load(Ordering::Relaxed),
            tree_reduce_bytes: self.tree_reduce_bytes.load(Ordering::Relaxed),
            tree_reduce_calls: self.tree_reduce_calls.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
        }
    }

    /// Add `n` bytes to a class counter.
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}
