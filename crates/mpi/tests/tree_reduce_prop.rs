//! Property test for the tree chunk reduction (the Alg. 3 combine).
//!
//! The contract under test: for any rank count and any ragged chunk
//! geometry — including worlds with fewer chunks than ranks (ng < np·64)
//! and fewer bands than ranks — the tree result is bit-identical to the
//! old linear path (`allgatherv_c64` of all partials + zeros-initialized
//! ascending fold on every receiver) and to the serial np = 1 reference.
//! Float addition is non-associative, so this only holds because the
//! tree's subtrees are aligned with the contiguous ascending chunk
//! ownership; the property test is what pins that alignment.

use proptest::prelude::*;
use pt_mpi::{run_ranks, Wire};
use pt_num::c64;

/// The fixed Alg. 3 chunk height (pt-ham's `OVERLAP_CHUNK_ROWS`).
const CHUNK_ROWS: usize = 64;

/// Contiguous ascending chunk deal, mirroring `BandDistribution::g_rows`:
/// rank `r` owns `base + (r < rem)` chunks starting at `r·base + min(r, rem)`.
fn chunk_range(nc: usize, np: usize, rank: usize) -> (usize, usize) {
    let (base, rem) = (nc / np, nc % np);
    let start = rank * base + rank.min(rem);
    (start, base + usize::from(rank < rem))
}

/// Deterministic per-chunk partial overlap blocks (nb × nb each).
fn chunk_partials(nc: usize, nb: usize, seed: u64) -> Vec<Vec<c64>> {
    let mut rng = pt_num::rng::XorShift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    (0..nc)
        .map(|_| {
            (0..nb * nb)
                .map(|_| c64::new(rng.next_centered() * 1e2, rng.next_centered() / 7.0))
                .collect()
        })
        .collect()
}

/// The old combine, verbatim: gather every rank's flattened chunk list,
/// then fold all chunks ascending into a zeros matrix on the receiver.
fn linear_combine(gathered: &[Vec<c64>], nb: usize) -> Vec<c64> {
    let mut s = vec![c64::new(0.0, 0.0); nb * nb];
    for blk in gathered {
        for t in blk.chunks_exact(nb * nb) {
            for (acc, v) in s.iter_mut().zip(t) {
                *acc += *v;
            }
        }
    }
    s
}

fn assert_bits_eq(got: &[c64], want: &[c64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what} length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.re.to_bits(), w.re.to_bits(), "{what}[{i}].re");
        assert_eq!(g.im.to_bits(), w.im.to_bits(), "{what}[{i}].im");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn tree_matches_linear_combine_and_serial_reference(
        np in 1usize..9,
        ng in 0usize..600,
        nb in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        // ng < np·64 cases leave some ranks chunkless; nb < np is the
        // more-ranks-than-bands shape the residual hits at scale
        let nc = ng.div_ceil(CHUNK_ROWS);
        let chunks = chunk_partials(nc, nb, seed);

        // serial np = 1 reference: fold everything locally
        let want: Vec<Vec<c64>> = vec![chunks.concat()];
        let reference = linear_combine(&want, nb);

        // linear path: allgatherv of per-rank flats + receiver-side fold
        let (linear, _) = run_ranks(np, Wire::F64, |comm| {
            let (start, count) = chunk_range(nc, np, comm.rank());
            let mine: Vec<c64> = chunks[start..start + count].concat();
            let gathered = comm.allgatherv_c64(&mine);
            linear_combine(&gathered, nb)
        });

        // tree path: prefix chain + binomial redistribution
        let (tree, _) = run_ranks(np, Wire::F64, |comm| {
            let (start, count) = chunk_range(nc, np, comm.rank());
            let mine: Vec<c64> = chunks[start..start + count].concat();
            comm.tree_reduce_chunks_c64(&mine, nb * nb)
        });

        prop_assert_eq!(linear.len(), np);
        prop_assert_eq!(tree.len(), np);
        for rank in 0..np {
            assert_bits_eq(&linear[rank], &reference, "linear vs serial");
            assert_bits_eq(&tree[rank], &reference, "tree vs serial");
            assert_bits_eq(&tree[rank], &linear[rank], "tree vs linear");
        }
    }
}
