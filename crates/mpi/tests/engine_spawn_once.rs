//! Spawn-once instrumentation for the persistent rank engine.
//!
//! The counters are process-global monotone totals, so this test lives
//! alone in its own binary: concurrent tests in a shared binary would
//! perturb the deltas. One engine serving many jobs must spawn its rank
//! threads, pools and pool workers exactly once — a per-job spawn would
//! multiply every delta by the job count.

use pt_mpi::{rank_threads_spawned, run_ranks_pinned, RankEngine, Wire};
use pt_par::{pools_built, worker_threads_spawned, RankLayout};

#[test]
fn twenty_jobs_spawn_one_rank_team() {
    let layout = RankLayout::new(3, 2);
    let job = |comm: &mut pt_mpi::Comm| {
        let mut v = vec![comm.rank() as f64 + 1.0];
        comm.allreduce_sum_f64(&mut v);
        v[0]
    };

    let ranks_before = rank_threads_spawned();
    let pools_before = pools_built();
    let workers_before = worker_threads_spawned();
    let mut engine = RankEngine::new(layout, Wire::F64);
    for step in 0..20 {
        let (out, _) = engine.run(job).unwrap();
        assert_eq!(out, vec![6.0; 3], "step {step}");
    }
    assert_eq!(rank_threads_spawned() - ranks_before, 3);
    assert_eq!(pools_built() - pools_before, 3);
    // each 2-wide pinned pool spawns exactly one worker
    assert_eq!(worker_threads_spawned() - workers_before, 3);
    drop(engine);

    // the per-call baseline really does pay the spawn every time
    let ranks_mid = rank_threads_spawned();
    let pools_mid = pools_built();
    for _ in 0..4 {
        let (out, _) = run_ranks_pinned(layout, Wire::F64, job);
        assert_eq!(out, vec![6.0; 3]);
    }
    assert_eq!(rank_threads_spawned() - ranks_mid, 4 * 3);
    assert_eq!(pools_built() - pools_mid, 4 * 3);
}
