//! The two plane-wave grids and the transforms between spaces.
//!
//! Orbitals live as coefficient vectors over the wavefunction G-sphere
//! (`ψ(r) = Ω^{-1/2} Σ_G c_G e^{iG·r}`, `|G|²/2 ≤ E_cut`) — the `N_G` of
//! the paper. Two FFT grids serve them:
//!
//! * the **wavefunction grid** (holds the E_cut sphere) — where Alg. 2
//!   solves its Poisson-like equations,
//! * the **dense grid** (2× linear size, 4·E_cut sphere) — where the
//!   density, Hartree and XC potentials live alias-free.
//!
//! With this coefficient normalization, plane-wave coefficient vectors are
//! orthonormal under the plain ℓ² inner product, so all `pt-linalg` overlap
//! machinery applies unchanged.

use pt_fft::Fft3;
use pt_lattice::{fft_dims_for_cutoff, GSphere, GridGVectors, Structure};
use pt_num::c64;

/// Grids, spheres and FFT plans for one structure + cutoff.
pub struct PwGrids {
    /// Kinetic cutoff (Ha).
    pub ecut: f64,
    /// Cell volume (bohr³).
    pub volume: f64,
    /// Wavefunction G-sphere (coefficients of every orbital).
    pub sphere: GSphere,
    /// Wavefunction-grid FFT.
    pub fft_wfc: Fft3,
    /// G vectors over the full wavefunction grid (exchange kernel).
    pub gv_wfc: GridGVectors,
    /// Dense-grid FFT (density/potentials).
    pub fft_dense: Fft3,
    /// G vectors over the full dense grid.
    pub gv_dense: GridGVectors,
    /// Sphere → dense-grid scatter indices.
    pub sphere_in_dense: Vec<usize>,
}

impl PwGrids {
    /// Build grids for `structure` at cutoff `ecut`.
    pub fn new(structure: &Structure, ecut: f64) -> Self {
        let wdims = fft_dims_for_cutoff(&structure.cell, ecut);
        let ddims = fft_dims_for_cutoff(&structure.cell, 4.0 * ecut);
        let sphere = GSphere::new(&structure.cell, ecut, wdims);
        let sphere_in_dense = sphere.fft_index_in(ddims);
        PwGrids {
            ecut,
            volume: structure.cell.volume(),
            fft_wfc: Fft3::new(wdims.0, wdims.1, wdims.2),
            gv_wfc: GridGVectors::new(&structure.cell, wdims),
            fft_dense: Fft3::new(ddims.0, ddims.1, ddims.2),
            gv_dense: GridGVectors::new(&structure.cell, ddims),
            sphere_in_dense,
            sphere,
        }
    }

    /// Number of plane waves (paper's N_G).
    #[inline]
    pub fn ng(&self) -> usize {
        self.sphere.len()
    }

    /// Points on the wavefunction grid.
    #[inline]
    pub fn n_wfc(&self) -> usize {
        self.fft_wfc.len()
    }

    /// Points on the dense grid.
    #[inline]
    pub fn n_dense(&self) -> usize {
        self.fft_dense.len()
    }

    /// Real-space orbital values on the **wavefunction grid** (serial FFT;
    /// used inside batched loops).
    pub fn to_real_wfc(&self, coeffs: &[c64], out: &mut [c64]) {
        debug_assert_eq!(coeffs.len(), self.ng());
        debug_assert_eq!(out.len(), self.n_wfc());
        out.fill(c64::ZERO);
        for (c, &idx) in coeffs.iter().zip(&self.sphere.fft_index) {
            out[idx] = *c;
        }
        self.fft_wfc.forward_scaled_inverse(out, self.volume);
    }

    /// Gather real-space values on the wavefunction grid back to sphere
    /// coefficients (adjoint of [`PwGrids::to_real_wfc`]).
    pub fn to_coeffs_wfc(&self, values: &mut [c64], out: &mut [c64]) {
        debug_assert_eq!(values.len(), self.n_wfc());
        debug_assert_eq!(out.len(), self.ng());
        self.fft_wfc.forward_serial(values);
        let scale = self.volume.sqrt() / self.n_wfc() as f64;
        for (o, &idx) in out.iter_mut().zip(&self.sphere.fft_index) {
            *o = values[idx].scale(scale);
        }
    }

    /// Real-space orbital values on the **dense grid**.
    pub fn to_real_dense(&self, coeffs: &[c64], out: &mut [c64]) {
        debug_assert_eq!(coeffs.len(), self.ng());
        debug_assert_eq!(out.len(), self.n_dense());
        out.fill(c64::ZERO);
        for (c, &idx) in coeffs.iter().zip(&self.sphere_in_dense) {
            out[idx] = *c;
        }
        self.fft_dense.forward_scaled_inverse(out, self.volume);
    }

    /// Gather dense-grid real-space values to sphere coefficients.
    pub fn to_coeffs_dense(&self, values: &mut [c64], out: &mut [c64]) {
        debug_assert_eq!(values.len(), self.n_dense());
        debug_assert_eq!(out.len(), self.ng());
        self.fft_dense.forward_serial(values);
        let scale = self.volume.sqrt() / self.n_dense() as f64;
        for (o, &idx) in out.iter_mut().zip(&self.sphere_in_dense) {
            *o = values[idx].scale(scale);
        }
    }
}

/// Extension trait hook: a "scaled inverse" that turns scattered sphere
/// coefficients into Ω^{-1/2}-normalized real-space values in one pass.
trait ScaledInverse {
    fn forward_scaled_inverse(&self, data: &mut [c64], volume: f64);
}

impl ScaledInverse for Fft3 {
    fn forward_scaled_inverse(&self, data: &mut [c64], volume: f64) {
        // values(r_j) = Ω^{-1/2} Σ_G c_G e^{iG r_j} = (N/√Ω) · inverse(c)
        self.inverse_serial(data);
        let s = self.len() as f64 / volume.sqrt();
        for z in data.iter_mut() {
            *z = z.scale(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;

    fn norm_block(n: usize, seed: u64) -> Vec<c64> {
        pt_linalg::CMat::rand_normalized(n, 1, seed).col(0).to_vec()
    }

    #[test]
    fn roundtrip_wfc_and_dense() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 4.0);
        let c = norm_block(g.ng(), 5);
        let mut real = vec![c64::ZERO; g.n_wfc()];
        g.to_real_wfc(&c, &mut real);
        let mut back = vec![c64::ZERO; g.ng()];
        g.to_coeffs_wfc(&mut real.clone(), &mut back);
        let err = c
            .iter()
            .zip(&back)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "wfc roundtrip {err}");

        let mut rd = vec![c64::ZERO; g.n_dense()];
        g.to_real_dense(&c, &mut rd);
        let mut back2 = vec![c64::ZERO; g.ng()];
        g.to_coeffs_dense(&mut rd.clone(), &mut back2);
        let err2 = c
            .iter()
            .zip(&back2)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max);
        assert!(err2 < 1e-12, "dense roundtrip {err2}");
    }

    #[test]
    fn parseval_normalization() {
        // unit-norm coefficients ⇒ ∫|ψ|² dr = (Ω/N) Σ_j |ψ(r_j)|² = 1,
        // on both grids
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 4.0);
        let c = norm_block(g.ng(), 17);
        let mut real = vec![c64::ZERO; g.n_wfc()];
        g.to_real_wfc(&c, &mut real);
        let int_w: f64 =
            real.iter().map(|z| z.norm_sqr()).sum::<f64>() * g.volume / g.n_wfc() as f64;
        assert!((int_w - 1.0).abs() < 1e-11, "wfc norm {int_w}");
        let mut rd = vec![c64::ZERO; g.n_dense()];
        g.to_real_dense(&c, &mut rd);
        let int_d: f64 =
            rd.iter().map(|z| z.norm_sqr()).sum::<f64>() * g.volume / g.n_dense() as f64;
        assert!((int_d - 1.0).abs() < 1e-11, "dense norm {int_d}");
    }

    #[test]
    fn constant_orbital_is_g0() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 2.0);
        let mut c = vec![c64::ZERO; g.ng()];
        c[0] = c64::ONE; // sphere is sorted: G=0 first
        let mut real = vec![c64::ZERO; g.n_wfc()];
        g.to_real_wfc(&c, &mut real);
        let want = 1.0 / g.volume.sqrt();
        for z in &real {
            assert!((z.re - want).abs() < 1e-12 && z.im.abs() < 1e-13);
        }
    }
}
