//! `KsSystem` — the static problem definition plus potential/energy
//! assembly from a density.

use crate::density::density_from_orbitals;
use crate::fock::{FockMode, FockOperator, ScreenedKernel};
use crate::grids::PwGrids;
use crate::hamiltonian::Hamiltonian;
use crate::hartree::hartree_potential;
use pt_lattice::{ewald_energy, Structure};
use pt_linalg::CMat;
use pt_num::c64;
use pt_pseudo::{LocalPotential, NonlocalPs};
use pt_xc::{XcGridEvaluator, XcKind};
use std::sync::Arc;

/// Hybrid-functional configuration (HSE06-like: α = 0.25, ω = 0.11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridConfig {
    /// Fock mixing fraction α.
    pub alpha: f64,
    /// Screening parameter ω (bohr⁻¹); 0 = unscreened (PBE0-like).
    pub omega: f64,
}

impl HybridConfig {
    /// The paper's functional: HSE06 (α = 0.25, ω = 0.11 bohr⁻¹).
    pub fn hse06() -> Self {
        HybridConfig { alpha: 0.25, omega: 0.11 }
    }
}

/// Potentials and energy pieces derived from one density.
pub struct Potentials {
    /// Total local potential on the dense grid (pseudo + Hartree + XC).
    pub v_total: Vec<f64>,
    /// Hartree energy.
    pub e_hartree: f64,
    /// Semi-local XC energy.
    pub e_xc: f64,
    /// ∫ v_xc ρ (double-counting correction bookkeeping).
    pub int_vxc_rho: f64,
    /// ∫ v_ps,loc ρ.
    pub e_loc_ps: f64,
}

/// Energy breakdown of a state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Energies {
    /// Kinetic.
    pub kinetic: f64,
    /// Local pseudopotential.
    pub local_ps: f64,
    /// Nonlocal pseudopotential.
    pub nonlocal: f64,
    /// Hartree.
    pub hartree: f64,
    /// Semi-local XC.
    pub xc: f64,
    /// Fock exchange (α-scaled, screened).
    pub fock: f64,
    /// Ewald ion–ion.
    pub ewald: f64,
}

impl Energies {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.local_ps + self.nonlocal + self.hartree + self.xc + self.fock
            + self.ewald
    }
}

/// The static Kohn–Sham problem: structure, grids, pseudopotentials,
/// functional choice.
pub struct KsSystem {
    /// Geometry.
    pub structure: Structure,
    /// Plane-wave grids.
    pub grids: Arc<PwGrids>,
    /// Local pseudopotential (dense-grid real space).
    pub vps_loc_r: Vec<f64>,
    /// Nonlocal pseudopotential.
    pub nonlocal: Arc<NonlocalPs>,
    /// Semi-local XC evaluator.
    pub xc: XcGridEvaluator,
    /// Hybrid configuration (None = pure semi-local).
    pub hybrid: Option<HybridConfig>,
    /// Screened exchange kernel (precomputed when hybrid).
    pub kernel: Option<ScreenedKernel>,
    /// Ewald ion–ion energy (geometry constant).
    pub e_ewald: f64,
    /// Occupations (2.0 per doubly occupied band).
    pub occupations: Vec<f64>,
}

impl KsSystem {
    /// Build the full problem for `structure` at cutoff `ecut`.
    pub fn new(structure: Structure, ecut: f64, xc_kind: XcKind, hybrid: Option<HybridConfig>) -> Self {
        let grids = Arc::new(PwGrids::new(&structure, ecut));
        // local PS: G-space assembly → dense-grid real values
        let lp = LocalPotential::new(&structure, &grids.gv_dense);
        let n = grids.n_dense();
        let mut arr: Vec<c64> = lp.coeffs.iter().map(|c| c.scale(n as f64)).collect();
        grids.fft_dense.inverse(&mut arr);
        let vps_loc_r: Vec<f64> = arr.iter().map(|z| z.re).collect();
        let nonlocal = Arc::new(NonlocalPs::new(&structure, &grids.sphere));
        let xc = XcGridEvaluator::new(xc_kind, grids.gv_dense.clone(), structure.cell.volume());
        let kernel = hybrid.map(|h| ScreenedKernel::new(&grids, h.omega));
        let e_ewald = ewald_energy(&structure);
        let nb = structure.n_occupied_bands();
        KsSystem {
            structure,
            grids,
            vps_loc_r,
            nonlocal,
            xc,
            hybrid,
            kernel,
            e_ewald,
            occupations: vec![2.0; nb],
        }
    }

    /// Number of occupied bands.
    pub fn n_bands(&self) -> usize {
        self.occupations.len()
    }

    /// Assemble potentials from a density.
    pub fn potentials(&self, rho: &[f64]) -> Potentials {
        let g = &self.grids;
        let (vh, e_hartree) = hartree_potential(rho, &g.fft_dense, &g.gv_dense, g.volume);
        let (e_xc, vxc) = self.xc.evaluate(rho);
        let dv = g.volume / g.n_dense() as f64;
        let mut v_total = vec![0.0; g.n_dense()];
        let mut int_vxc_rho = 0.0;
        let mut e_loc_ps = 0.0;
        for i in 0..g.n_dense() {
            v_total[i] = self.vps_loc_r[i] + vh[i] + vxc[i];
            int_vxc_rho += vxc[i] * rho[i];
            e_loc_ps += self.vps_loc_r[i] * rho[i];
        }
        Potentials {
            v_total,
            e_hartree,
            e_xc,
            int_vxc_rho: int_vxc_rho * dv,
            e_loc_ps: e_loc_ps * dv,
        }
    }

    /// Build a Hamiltonian from a density and (for hybrids) the orbitals Φ
    /// defining the exchange operator.
    pub fn hamiltonian(&self, rho: &[f64], phi: Option<&CMat>, a_field: [f64; 3]) -> Hamiltonian {
        let pots = self.potentials(rho);
        let fock = match (&self.hybrid, phi) {
            (Some(h), Some(phi)) => Some(Arc::new(FockOperator::new(
                &self.grids,
                phi,
                h.alpha,
                self.kernel.clone().expect("kernel built with hybrid"),
                FockMode::Batched,
            ))),
            (Some(_), None) => panic!("hybrid functional requires defining orbitals"),
            _ => None,
        };
        Hamiltonian {
            grids: Arc::clone(&self.grids),
            vloc_r: pots.v_total,
            nonlocal: Arc::clone(&self.nonlocal),
            fock,
            a_field,
        }
    }

    /// Density of an orbital block under this system's occupations.
    pub fn density(&self, orbitals: &CMat) -> Vec<f64> {
        density_from_orbitals(&self.grids, orbitals, &self.occupations)
    }

    /// Total-energy breakdown for orbitals + their density.
    pub fn energies(&self, orbitals: &CMat, rho: &[f64], a_field: [f64; 3]) -> Energies {
        let g = &self.grids;
        let pots = self.potentials(rho);
        // kinetic
        let kin_diag: Vec<f64> = g
            .sphere
            .g_cart
            .iter()
            .map(|gc| {
                0.5 * ((gc[0] + a_field[0]).powi(2)
                    + (gc[1] + a_field[1]).powi(2)
                    + (gc[2] + a_field[2]).powi(2))
            })
            .collect();
        let mut kinetic = 0.0;
        for (j, &f) in self.occupations.iter().enumerate() {
            let col = orbitals.col(j);
            kinetic += f * col
                .iter()
                .zip(&kin_diag)
                .map(|(c, k)| k * c.norm_sqr())
                .sum::<f64>();
        }
        let nonlocal = self
            .nonlocal
            .energy(orbitals.data(), g.ng(), &self.occupations);
        let fock = match (&self.hybrid, &self.kernel) {
            (Some(h), Some(k)) => {
                let op = FockOperator::new(&self.grids, orbitals, h.alpha, k.clone(), FockMode::Batched);
                op.energy(&self.grids, orbitals, &self.occupations)
            }
            _ => 0.0,
        };
        Energies {
            kinetic,
            local_ps: pots.e_loc_ps,
            nonlocal,
            hartree: pots.e_hartree,
            xc: pots.e_xc,
            fock,
            ewald: self.e_ewald,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;

    #[test]
    fn system_builds_and_charges_balance() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::new(s, 2.0, XcKind::Lda, None);
        assert_eq!(sys.n_bands(), 16);
        assert!((sys.occupations.iter().sum::<f64>() - 32.0).abs() < 1e-12);
        assert!(sys.e_ewald < 0.0, "bulk Si Ewald energy is negative");
    }

    #[test]
    fn potentials_from_uniform_density() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::new(s, 2.0, XcKind::Lda, None);
        let n = sys.grids.n_dense();
        let ne = 32.0;
        let rho = vec![ne / sys.grids.volume; n];
        let p = sys.potentials(&rho);
        // uniform density: Hartree energy = 0 in jellium convention
        assert!(p.e_hartree.abs() < 1e-8, "{}", p.e_hartree);
        // XC energy should equal Ω ρ ε_xc(ρ)
        let (eps, _v) = pt_xc::lda_exc_vxc(ne / sys.grids.volume);
        let want = ne * eps;
        assert!((p.e_xc - want).abs() < 1e-8 * want.abs(), "{} vs {want}", p.e_xc);
    }

    #[test]
    fn hybrid_system_builds_kernel() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let sys = KsSystem::new(s, 2.0, XcKind::Pbe, Some(HybridConfig::hse06()));
        assert!(sys.kernel.is_some());
        let k = sys.kernel.as_ref().unwrap();
        assert!((k.values[0] - std::f64::consts::PI / (0.11 * 0.11)).abs() < 1e-9);
    }
}
