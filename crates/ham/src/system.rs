//! `KsSystem` — the static problem definition plus potential/energy
//! assembly from a density.

use crate::density::density_from_orbitals;
use crate::distributed::DistributedConfig;
use crate::error::PtError;
use crate::fock::{FockMode, FockOperator, ScreenedKernel};
use crate::grids::PwGrids;
use crate::hamiltonian::Hamiltonian;
use crate::hartree::hartree_potential;
use pt_lattice::{ewald_energy, Structure};
use pt_linalg::CMat;
use pt_num::c64;
use pt_par::{Parallelism, ThreadPool};
use pt_pseudo::{LocalPotential, NonlocalPs};
use pt_xc::{XcGridEvaluator, XcKind};
use std::sync::Arc;

/// Hybrid-functional configuration (HSE06-like: α = 0.25, ω = 0.11).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HybridConfig {
    /// Fock mixing fraction α.
    pub alpha: f64,
    /// Screening parameter ω (bohr⁻¹); 0 = unscreened (PBE0-like).
    pub omega: f64,
}

impl HybridConfig {
    /// The paper's functional: HSE06 (α = 0.25, ω = 0.11 bohr⁻¹).
    pub fn hse06() -> Self {
        HybridConfig {
            alpha: 0.25,
            omega: 0.11,
        }
    }
}

/// How the exchange contribution is evaluated during propagation.
///
/// `Full` is the paper's Summit configuration: the screened Fock operator
/// is rebuilt from the live orbitals and applied with the pair-FFT loop on
/// every PT-CN fixed-point iteration. `Ace` is the companion paper's CPU
/// configuration (Jia & Lin, arXiv:1809.09609): the ACE projector
/// `ξ = W L^{-H}` is refreshed from Ψ_n every `refresh_interval` steps and
/// the rank-N_φ `−ξ(ξ^H ψ)` stands in for the Fock loop inside the fixed
/// point. `AceMts` additionally runs each outer step as `inner_substeps`
/// PT-CN substeps of `dt / inner_substeps` sharing one frozen ξ — the
/// exchange rides a coarser time grid than the local parts
/// (arXiv:2110.07670).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Exact pair-FFT Fock on every fixed-point iteration.
    #[default]
    Full,
    /// ACE projector refreshed every `refresh_interval` outer steps.
    Ace {
        /// Steps between projector rebuilds (1 = refresh every step).
        refresh_interval: usize,
    },
    /// ACE + multiple time stepping: `inner_substeps` local substeps per
    /// outer step, exchange frozen across them.
    AceMts {
        /// Outer steps between projector rebuilds.
        refresh_interval: usize,
        /// Local-part substeps per outer step (≥ 1).
        inner_substeps: usize,
    },
}

impl ExchangeMode {
    /// Check the intervals; [`PtError::InvalidConfig`] on zero counts.
    pub fn validate(&self) -> Result<(), PtError> {
        match *self {
            ExchangeMode::Full => Ok(()),
            ExchangeMode::Ace { refresh_interval } => {
                if refresh_interval == 0 {
                    return Err(PtError::InvalidConfig(
                        "ace_refresh_interval must be at least 1".into(),
                    ));
                }
                Ok(())
            }
            ExchangeMode::AceMts {
                refresh_interval,
                inner_substeps,
            } => {
                if refresh_interval == 0 {
                    return Err(PtError::InvalidConfig(
                        "ace_refresh_interval must be at least 1".into(),
                    ));
                }
                if inner_substeps == 0 {
                    return Err(PtError::InvalidConfig(
                        "ace_inner_substeps must be at least 1".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Steps between ACE projector rebuilds (`None` for [`ExchangeMode::Full`]).
    pub fn refresh_interval(&self) -> Option<usize> {
        match *self {
            ExchangeMode::Full => None,
            ExchangeMode::Ace { refresh_interval }
            | ExchangeMode::AceMts {
                refresh_interval, ..
            } => Some(refresh_interval),
        }
    }

    /// Local-part substeps per outer step (1 unless MTS).
    pub fn inner_substeps(&self) -> usize {
        match *self {
            ExchangeMode::AceMts { inner_substeps, .. } => inner_substeps,
            _ => 1,
        }
    }
}

/// Potentials and energy pieces derived from one density.
pub struct Potentials {
    /// Total local potential on the dense grid (pseudo + Hartree + XC).
    pub v_total: Vec<f64>,
    /// Hartree energy.
    pub e_hartree: f64,
    /// Semi-local XC energy.
    pub e_xc: f64,
    /// ∫ v_xc ρ (double-counting correction bookkeeping).
    pub int_vxc_rho: f64,
    /// ∫ v_ps,loc ρ.
    pub e_loc_ps: f64,
}

/// Energy breakdown of a state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Energies {
    /// Kinetic.
    pub kinetic: f64,
    /// Local pseudopotential.
    pub local_ps: f64,
    /// Nonlocal pseudopotential.
    pub nonlocal: f64,
    /// Hartree.
    pub hartree: f64,
    /// Semi-local XC.
    pub xc: f64,
    /// Fock exchange (α-scaled, screened).
    pub fock: f64,
    /// Ewald ion–ion.
    pub ewald: f64,
}

impl Energies {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic
            + self.local_ps
            + self.nonlocal
            + self.hartree
            + self.xc
            + self.fock
            + self.ewald
    }
}

/// The static Kohn–Sham problem: structure, grids, pseudopotentials,
/// functional choice.
pub struct KsSystem {
    /// Geometry.
    pub structure: Structure,
    /// Plane-wave grids.
    pub grids: Arc<PwGrids>,
    /// Local pseudopotential (dense-grid real space).
    pub vps_loc_r: Vec<f64>,
    /// Nonlocal pseudopotential.
    pub nonlocal: Arc<NonlocalPs>,
    /// Semi-local XC evaluator.
    pub xc: XcGridEvaluator,
    /// Hybrid configuration (None = pure semi-local).
    pub hybrid: Option<HybridConfig>,
    /// Screened exchange kernel (precomputed when hybrid).
    pub kernel: Option<ScreenedKernel>,
    /// Ewald ion–ion energy (geometry constant).
    pub e_ewald: f64,
    /// Occupations (2.0 per doubly occupied band).
    pub occupations: Vec<f64>,
    /// Dedicated thread pool (None = inherit the surrounding pool /
    /// `PT_NUM_THREADS`). Set via [`KsSystemBuilder::parallelism`].
    pub pool: Option<Arc<ThreadPool>>,
    /// Ranks × threads decomposition for distributed drivers (None =
    /// everything runs in-process on the pool above). Set via
    /// [`KsSystemBuilder::distributed`]; `pt-core`'s distributed PT-CN
    /// propagator reads it to spawn virtual-MPI ranks with pinned pools.
    pub distributed: Option<DistributedConfig>,
    /// How propagation evaluates the exchange contribution (only
    /// meaningful for hybrid systems). Set via
    /// [`KsSystemBuilder::exchange_mode`]; propagators resolve it at step
    /// time (an explicit mode on the propagator overrides it).
    pub exchange_mode: ExchangeMode,
}

/// Builder for [`KsSystem`] — the validated entry point of the setup path.
///
/// ```no_run
/// # use pt_ham::{KsSystem, HybridConfig};
/// # use pt_lattice::silicon_cubic_supercell;
/// # use pt_xc::XcKind;
/// let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
///     .ecut(2.5)
///     .xc(XcKind::Pbe)
///     .hybrid(HybridConfig::hse06())
///     .build()
///     .expect("valid configuration");
/// ```
///
/// Misuse (non-positive cutoff, empty structure, bad occupations, out-of-
/// range hybrid parameters) returns [`PtError`] instead of panicking.
#[derive(Clone, Debug)]
pub struct KsSystemBuilder {
    structure: Structure,
    ecut: f64,
    xc_kind: XcKind,
    hybrid: Option<HybridConfig>,
    occupations: Option<Vec<f64>>,
    parallelism: Parallelism,
    distributed: Option<DistributedConfig>,
    exchange_mode: ExchangeMode,
}

impl KsSystemBuilder {
    /// Start a builder for `structure` with the defaults: `ecut` 10 Ha (the
    /// paper's production cutoff), PBE, no hybrid, closed-shell occupations.
    pub fn new(structure: Structure) -> Self {
        KsSystemBuilder {
            structure,
            ecut: 10.0,
            xc_kind: XcKind::Pbe,
            hybrid: None,
            occupations: None,
            parallelism: Parallelism::inherit(),
            distributed: None,
            exchange_mode: ExchangeMode::Full,
        }
    }

    /// Kinetic cutoff in Ha.
    pub fn ecut(mut self, ecut: f64) -> Self {
        self.ecut = ecut;
        self
    }

    /// Semi-local XC functional.
    pub fn xc(mut self, kind: XcKind) -> Self {
        self.xc_kind = kind;
        self
    }

    /// Enable hybrid exchange with `cfg` (e.g. [`HybridConfig::hse06`]).
    pub fn hybrid(mut self, cfg: HybridConfig) -> Self {
        self.hybrid = Some(cfg);
        self
    }

    /// Threading for everything driven through this system
    /// (`Parallelism::threads(n)` pins a dedicated n-thread pool; the
    /// default inherits the surrounding pool, i.e. `PT_NUM_THREADS`).
    /// `scf_loop` and `Simulation::run` install the pool around their
    /// whole loops, so every FFT/GEMM/Fock kernel inherits it.
    /// `Parallelism::ranks_threads(r, t)` additionally implies a
    /// full-precision [`KsSystemBuilder::distributed`] config when none
    /// is set explicitly.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Run distributed drivers as `cfg.ranks` virtual-MPI rank threads,
    /// each with its own pinned `cfg.threads_per_rank`-wide pool — the
    /// paper's one-GPU-plus-CPU-slice per MPI rank, in process. With this
    /// set, `SimulationBuilder` defaults to the distributed PT-CN
    /// propagator, so a hybrid run is driven as ranks × threads straight
    /// from the builder API. Validated in [`KsSystemBuilder::build`].
    pub fn distributed(mut self, cfg: DistributedConfig) -> Self {
        self.distributed = Some(cfg);
        self
    }

    /// How propagation evaluates the exchange contribution (default:
    /// [`ExchangeMode::Full`]). `Ace`/`AceMts` require a hybrid functional
    /// — requesting them on a semi-local system is rejected in
    /// [`KsSystemBuilder::build`].
    pub fn exchange_mode(mut self, mode: ExchangeMode) -> Self {
        self.exchange_mode = mode;
        self
    }

    /// Override the closed-shell default occupations (one entry per band).
    ///
    /// The sum of `occ` *is* the electron count of the simulation. If it
    /// differs from the structure's valence charge the cell is charged:
    /// the Hartree term uses the jellium (neutralizing-background)
    /// convention, while the Ewald ion–ion energy still assumes the full
    /// ionic charges — total energies are then only comparable between
    /// runs with the same occupations, not to the neutral cell.
    pub fn occupations(mut self, occ: Vec<f64>) -> Self {
        self.occupations = Some(occ);
        self
    }

    /// Validate and assemble the [`KsSystem`].
    pub fn build(self) -> Result<KsSystem, PtError> {
        if self.structure.atoms.is_empty() {
            return Err(PtError::InvalidConfig("structure has no atoms".into()));
        }
        if !self.ecut.is_finite() || self.ecut <= 0.0 {
            return Err(PtError::InvalidConfig(format!(
                "cutoff must be positive and finite, got {}",
                self.ecut
            )));
        }
        if let Some(h) = &self.hybrid {
            if !(0.0..=1.0).contains(&h.alpha) || !h.alpha.is_finite() {
                return Err(PtError::InvalidConfig(format!(
                    "hybrid mixing fraction alpha must lie in [0, 1], got {}",
                    h.alpha
                )));
            }
            if !h.omega.is_finite() || h.omega < 0.0 {
                return Err(PtError::InvalidConfig(format!(
                    "screening parameter omega must be nonnegative, got {}",
                    h.omega
                )));
            }
        }
        self.exchange_mode.validate()?;
        if self.exchange_mode != ExchangeMode::Full && self.hybrid.is_none() {
            return Err(PtError::InvalidConfig(
                "ACE exchange modes require a hybrid functional (there is no \
                 exchange operator to compress on a semi-local system)"
                    .into(),
            ));
        }
        // `Parallelism::ranks_threads` is the pt-par view of the same
        // decomposition: without an explicit DistributedConfig it implies
        // one (full-precision wire), so the layout actually drives rank
        // spawning instead of silently degrading to a plain pool
        let distributed = self.distributed.or(self
            .parallelism
            .rank_layout
            .map(|l| DistributedConfig::new(l.ranks, l.threads_per_rank)));
        if let Some(d) = &distributed {
            d.validate()?;
        }
        let occupations = match self.occupations {
            Some(occ) => {
                if occ.is_empty() {
                    return Err(PtError::InvalidConfig(
                        "occupations must be nonempty".into(),
                    ));
                }
                if occ.iter().any(|&f| !f.is_finite() || f < 0.0) {
                    return Err(PtError::InvalidConfig(
                        "occupations must be finite and nonnegative".into(),
                    ));
                }
                occ
            }
            None => {
                // closed-shell default: requires an even electron count
                // (Structure::n_occupied_bands would assert and panic)
                let ne = self.structure.n_electrons();
                let nb = (ne / 2.0).round() as usize;
                if (ne - 2.0 * nb as f64).abs() > 1e-9 {
                    return Err(PtError::InvalidConfig(format!(
                        "default occupations need an even electron count, got N_elec = {ne}; \
                         pass explicit .occupations(..) for open-shell or charged systems"
                    )));
                }
                vec![2.0; nb]
            }
        };

        let structure = self.structure;
        let grids = Arc::new(PwGrids::new(&structure, self.ecut));
        if occupations.len() > grids.ng() {
            // more bands than basis vectors: the orbital block is singular
            // by construction and every solver downstream breaks
            return Err(PtError::InvalidConfig(format!(
                "{} bands exceed the {} plane waves at cutoff {} Ha; raise ecut or trim occupations",
                occupations.len(),
                grids.ng(),
                self.ecut
            )));
        }
        // local PS: G-space assembly → dense-grid real values
        let lp = LocalPotential::new(&structure, &grids.gv_dense);
        let n = grids.n_dense();
        let mut arr: Vec<c64> = lp.coeffs.iter().map(|c| c.scale(n as f64)).collect();
        grids.fft_dense.inverse(&mut arr);
        let vps_loc_r: Vec<f64> = arr.iter().map(|z| z.re).collect();
        let nonlocal = Arc::new(
            NonlocalPs::new(&structure, &grids.sphere)
                .map_err(|e| PtError::InvalidConfig(e.to_string()))?,
        );
        let xc = XcGridEvaluator::new(
            self.xc_kind,
            grids.gv_dense.clone(),
            structure.cell.volume(),
        );
        let kernel = self.hybrid.map(|h| ScreenedKernel::new(&grids, h.omega));
        let e_ewald = ewald_energy(&structure);
        Ok(KsSystem {
            structure,
            grids,
            vps_loc_r,
            nonlocal,
            xc,
            hybrid: self.hybrid,
            kernel,
            e_ewald,
            occupations,
            pool: self.parallelism.build_pool(),
            distributed,
            exchange_mode: self.exchange_mode,
        })
    }
}

/// The shape fingerprint of a [`KsSystem`] — what a run snapshot records
/// so that resuming it against a *different* problem (other cell, cutoff,
/// band count) fails with a typed error instead of producing garbage.
/// The cell volume is compared bit-exactly: two systems that agree on all
/// extents but sit in different cells are still different problems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemSignature {
    /// Plane waves in the wavefunction sphere.
    pub ng: usize,
    /// Dense density-grid points.
    pub n_dense: usize,
    /// Occupied bands.
    pub n_bands: usize,
    /// Atoms in the cell.
    pub n_atoms: usize,
    /// `f64::to_bits` of the cell volume.
    pub volume_bits: u64,
}

impl SystemSignature {
    /// Serialize as a fixed word list (the snapshot `sig` section).
    pub fn to_words(&self) -> [u64; 5] {
        [
            self.ng as u64,
            self.n_dense as u64,
            self.n_bands as u64,
            self.n_atoms as u64,
            self.volume_bits,
        ]
    }

    /// Rebuild from [`SystemSignature::to_words`] output; `None` when the
    /// word list has the wrong arity.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        match *words {
            [ng, n_dense, n_bands, n_atoms, volume_bits] => Some(SystemSignature {
                ng: ng as usize,
                n_dense: n_dense as usize,
                n_bands: n_bands as usize,
                n_atoms: n_atoms as usize,
                volume_bits,
            }),
            _ => None,
        }
    }
}

impl KsSystem {
    /// Start a [`KsSystemBuilder`] for `structure`.
    pub fn builder(structure: Structure) -> KsSystemBuilder {
        KsSystemBuilder::new(structure)
    }

    /// This system's [`SystemSignature`] (recorded in run snapshots and
    /// re-checked on resume).
    pub fn signature(&self) -> SystemSignature {
        SystemSignature {
            ng: self.grids.ng(),
            n_dense: self.grids.n_dense(),
            n_bands: self.n_bands(),
            n_atoms: self.structure.atoms.len(),
            volume_bits: self.grids.volume.to_bits(),
        }
    }

    /// Run `f` under this system's configured pool (a no-op wrapper when
    /// no dedicated pool was requested — `f` then inherits the caller's
    /// pool, ultimately `PT_NUM_THREADS`). The SCF and simulation drivers
    /// wrap their loops in this.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(p) => p.install(f),
            None => f(),
        }
    }

    /// Number of occupied bands.
    pub fn n_bands(&self) -> usize {
        self.occupations.len()
    }

    /// Assemble potentials from a density.
    pub fn potentials(&self, rho: &[f64]) -> Potentials {
        let g = &self.grids;
        let (vh, e_hartree) = hartree_potential(rho, &g.fft_dense, &g.gv_dense, g.volume);
        let (e_xc, vxc) = self.xc.evaluate(rho);
        let dv = g.volume / g.n_dense() as f64;
        let mut v_total = vec![0.0; g.n_dense()];
        let mut int_vxc_rho = 0.0;
        let mut e_loc_ps = 0.0;
        for i in 0..g.n_dense() {
            v_total[i] = self.vps_loc_r[i] + vh[i] + vxc[i];
            int_vxc_rho += vxc[i] * rho[i];
            e_loc_ps += self.vps_loc_r[i] * rho[i];
        }
        Potentials {
            v_total,
            e_hartree,
            e_xc,
            int_vxc_rho: int_vxc_rho * dv,
            e_loc_ps: e_loc_ps * dv,
        }
    }

    /// Build a Hamiltonian from a density and (for hybrids) the orbitals Φ
    /// defining the exchange operator.
    ///
    /// Misuse is reported as [`PtError`]: a hybrid system without `phi`
    /// yields [`PtError::MissingExchangeOrbitals`]; a density or orbital
    /// block of the wrong extent yields [`PtError::ShapeMismatch`].
    pub fn hamiltonian(
        &self,
        rho: &[f64],
        phi: Option<&CMat>,
        a_field: [f64; 3],
    ) -> Result<Hamiltonian, PtError> {
        if let Some(p) = phi {
            if p.nrows() != self.grids.ng() {
                return Err(PtError::ShapeMismatch {
                    context: "exchange orbital rows (plane waves)",
                    expected: self.grids.ng(),
                    got: p.nrows(),
                });
            }
        }
        let mut h = self.local_hamiltonian(rho, a_field)?;
        h.fock = match (&self.hybrid, phi) {
            (Some(hy), Some(phi)) => {
                let kernel = self.exchange_kernel()?.clone();
                Some(Arc::new(FockOperator::new(
                    &self.grids,
                    phi,
                    hy.alpha,
                    kernel,
                    FockMode::Batched,
                )))
            }
            (Some(_), None) => return Err(PtError::MissingExchangeOrbitals),
            _ => None,
        };
        Ok(h)
    }

    /// The Fock-free part of the Hamiltonian (kinetic + local + nonlocal)
    /// assembled from a density — what every virtual-MPI rank applies to
    /// its own bands while the exchange part goes through the distributed
    /// Alg. 2 broadcast loop. [`KsSystem::hamiltonian`] builds on this and
    /// attaches the in-process Fock operator.
    pub fn local_hamiltonian(
        &self,
        rho: &[f64],
        a_field: [f64; 3],
    ) -> Result<Hamiltonian, PtError> {
        if rho.len() != self.grids.n_dense() {
            return Err(PtError::ShapeMismatch {
                context: "density on the dense grid",
                expected: self.grids.n_dense(),
                got: rho.len(),
            });
        }
        let pots = self.potentials(rho);
        Ok(Hamiltonian {
            grids: Arc::clone(&self.grids),
            vloc_r: pots.v_total,
            nonlocal: Arc::clone(&self.nonlocal),
            fock: None,
            a_field,
        })
    }

    /// The screened exchange kernel of a hybrid system (typed error when
    /// the system was assembled without one).
    pub fn exchange_kernel(&self) -> Result<&ScreenedKernel, PtError> {
        self.kernel.as_ref().ok_or_else(|| {
            PtError::InvalidConfig(
                "hybrid functional configured but the screened exchange kernel is missing (KsSystem built by hand?)"
                    .into(),
            )
        })
    }

    /// Density of an orbital block under this system's occupations.
    pub fn density(&self, orbitals: &CMat) -> Vec<f64> {
        density_from_orbitals(&self.grids, orbitals, &self.occupations)
    }

    /// Total-energy breakdown for orbitals + their density.
    pub fn energies(&self, orbitals: &CMat, rho: &[f64], a_field: [f64; 3]) -> Energies {
        let g = &self.grids;
        let pots = self.potentials(rho);
        // kinetic
        let kin_diag: Vec<f64> = g
            .sphere
            .g_cart
            .iter()
            .map(|gc| {
                0.5 * ((gc[0] + a_field[0]).powi(2)
                    + (gc[1] + a_field[1]).powi(2)
                    + (gc[2] + a_field[2]).powi(2))
            })
            .collect();
        let mut kinetic = 0.0;
        for (j, &f) in self.occupations.iter().enumerate() {
            let col = orbitals.col(j);
            kinetic += f * pt_num::reduce::sum_f64(
                col.iter().zip(&kin_diag).map(|(c, k)| k * c.norm_sqr()),
            );
        }
        let nonlocal = self
            .nonlocal
            .energy(orbitals.data(), g.ng(), &self.occupations);
        let fock = match (&self.hybrid, &self.kernel) {
            (Some(h), Some(k)) => {
                let op =
                    FockOperator::new(&self.grids, orbitals, h.alpha, k.clone(), FockMode::Batched);
                op.energy(&self.grids, orbitals, &self.occupations)
            }
            _ => 0.0,
        };
        Energies {
            kinetic,
            local_ps: pots.e_loc_ps,
            nonlocal,
            hartree: pots.e_hartree,
            xc: pots.e_xc,
            fock,
            ewald: self.e_ewald,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;

    fn si8(ecut: f64, xc: XcKind, hybrid: Option<HybridConfig>) -> KsSystem {
        let mut b = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(ecut)
            .xc(xc);
        if let Some(h) = hybrid {
            b = b.hybrid(h);
        }
        b.build().expect("valid test system")
    }

    #[test]
    fn system_builds_and_charges_balance() {
        let sys = si8(2.0, XcKind::Lda, None);
        assert_eq!(sys.n_bands(), 16);
        assert!((sys.occupations.iter().sum::<f64>() - 32.0).abs() < 1e-12);
        assert!(sys.e_ewald < 0.0, "bulk Si Ewald energy is negative");
    }

    #[test]
    fn builder_rejects_misuse() {
        let s = silicon_cubic_supercell(1, 1, 1);
        assert!(matches!(
            KsSystem::builder(s.clone()).ecut(-1.0).build(),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            KsSystem::builder(s.clone()).ecut(f64::NAN).build(),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            KsSystem::builder(s.clone())
                .hybrid(HybridConfig {
                    alpha: 1.5,
                    omega: 0.11
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            KsSystem::builder(s.clone())
                .hybrid(HybridConfig {
                    alpha: 0.25,
                    omega: -0.1
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            KsSystem::builder(s.clone())
                .occupations(vec![2.0, -1.0])
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // more bands than plane waves: the orbital block would be singular
        let ng = KsSystem::builder(s.clone())
            .ecut(2.0)
            .build()
            .unwrap()
            .grids
            .ng();
        assert!(matches!(
            KsSystem::builder(s)
                .ecut(2.0)
                .occupations(vec![2.0; ng + 1])
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn exchange_mode_is_validated_and_requires_hybrid() {
        let s = silicon_cubic_supercell(1, 1, 1);
        // ACE without a hybrid functional: nothing to compress
        assert!(matches!(
            KsSystem::builder(s.clone())
                .ecut(2.0)
                .exchange_mode(ExchangeMode::Ace {
                    refresh_interval: 1
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // zero intervals are rejected
        assert!(matches!(
            KsSystem::builder(s.clone())
                .ecut(2.0)
                .hybrid(HybridConfig::hse06())
                .exchange_mode(ExchangeMode::Ace {
                    refresh_interval: 0
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        assert!(matches!(
            KsSystem::builder(s.clone())
                .ecut(2.0)
                .hybrid(HybridConfig::hse06())
                .exchange_mode(ExchangeMode::AceMts {
                    refresh_interval: 2,
                    inner_substeps: 0
                })
                .build(),
            Err(PtError::InvalidConfig(_))
        ));
        // a well-formed ACE config lands on the system
        let sys = KsSystem::builder(s)
            .ecut(2.0)
            .hybrid(HybridConfig::hse06())
            .exchange_mode(ExchangeMode::AceMts {
                refresh_interval: 2,
                inner_substeps: 3,
            })
            .build()
            .unwrap();
        assert_eq!(sys.exchange_mode.refresh_interval(), Some(2));
        assert_eq!(sys.exchange_mode.inner_substeps(), 3);
        assert_eq!(ExchangeMode::default(), ExchangeMode::Full);
    }

    #[test]
    fn builder_rejects_odd_electron_default_occupations() {
        let h1 = pt_lattice::Structure {
            cell: pt_lattice::Cell::cubic(10.0),
            atoms: vec![pt_lattice::Atom {
                species: pt_lattice::Species::H,
                frac: [0.0, 0.0, 0.0],
            }],
        };
        assert!(matches!(
            KsSystem::builder(h1).ecut(2.0).xc(XcKind::Lda).build(),
            Err(PtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_with_custom_occupations_accepts_odd_electron_structures() {
        // a single H atom (N_elec = 1) panics in n_occupied_bands; with
        // explicit occupations the builder must not touch that path
        let h1 = pt_lattice::Structure {
            cell: pt_lattice::Cell::cubic(10.0),
            atoms: vec![pt_lattice::Atom {
                species: pt_lattice::Species::H,
                frac: [0.0, 0.0, 0.0],
            }],
        };
        let sys = KsSystem::builder(h1)
            .ecut(2.0)
            .xc(XcKind::Lda)
            .occupations(vec![1.0])
            .build()
            .expect("custom occupations bypass the closed-shell assert");
        assert_eq!(sys.n_bands(), 1);
        assert!((sys.occupations[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rank_layout_parallelism_implies_a_distributed_config() {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::ranks_threads(2, 2))
            .build()
            .unwrap();
        assert_eq!(sys.distributed, Some(DistributedConfig::new(2, 2)));
        // an explicit config wins over the layout-derived one
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .parallelism(Parallelism::ranks_threads(2, 2))
            .distributed(DistributedConfig::new(3, 1))
            .build()
            .unwrap();
        assert_eq!(sys.distributed, Some(DistributedConfig::new(3, 1)));
    }

    #[test]
    fn builder_accepts_custom_occupations() {
        let sys = KsSystem::builder(silicon_cubic_supercell(1, 1, 1))
            .ecut(2.0)
            .xc(XcKind::Lda)
            .occupations(vec![2.0; 4])
            .build()
            .unwrap();
        assert_eq!(sys.n_bands(), 4);
    }

    #[test]
    fn hamiltonian_misuse_returns_typed_errors() {
        let sys = si8(2.0, XcKind::Pbe, Some(HybridConfig::hse06()));
        let rho = vec![32.0 / sys.grids.volume; sys.grids.n_dense()];
        // hybrid without Φ
        assert_eq!(
            sys.hamiltonian(&rho, None, [0.0; 3]).err(),
            Some(PtError::MissingExchangeOrbitals)
        );
        // wrong density extent
        assert!(matches!(
            sys.hamiltonian(&rho[..10], None, [0.0; 3]),
            Err(PtError::ShapeMismatch { .. })
        ));
        // wrong orbital extent
        let bad_phi = CMat::zeros(3, 2);
        assert!(matches!(
            sys.hamiltonian(&rho, Some(&bad_phi), [0.0; 3]),
            Err(PtError::ShapeMismatch { .. })
        ));
        // well-formed call succeeds
        let phi = CMat::from_fn(sys.grids.ng(), sys.n_bands(), |i, j| {
            if i == j {
                c64::ONE
            } else {
                c64::ZERO
            }
        });
        assert!(sys.hamiltonian(&rho, Some(&phi), [0.0; 3]).is_ok());
    }

    #[test]
    fn potentials_from_uniform_density() {
        let sys = si8(2.0, XcKind::Lda, None);
        let n = sys.grids.n_dense();
        let ne = 32.0;
        let rho = vec![ne / sys.grids.volume; n];
        let p = sys.potentials(&rho);
        // uniform density: Hartree energy = 0 in jellium convention
        assert!(p.e_hartree.abs() < 1e-8, "{}", p.e_hartree);
        // XC energy should equal Ω ρ ε_xc(ρ)
        let (eps, _v) = pt_xc::lda_exc_vxc(ne / sys.grids.volume);
        let want = ne * eps;
        assert!(
            (p.e_xc - want).abs() < 1e-8 * want.abs(),
            "{} vs {want}",
            p.e_xc
        );
    }

    #[test]
    fn hybrid_system_builds_kernel() {
        let sys = si8(2.0, XcKind::Pbe, Some(HybridConfig::hse06()));
        assert!(sys.kernel.is_some());
        let k = sys.kernel.as_ref().unwrap();
        assert!((k.values[0] - std::f64::consts::PI / (0.11 * 0.11)).abs() < 1e-9);
    }
}
