//! `pt-ham` — the plane-wave Kohn–Sham Hamiltonian with hybrid functional.
//!
//! This is the substrate PWDFT provides in the paper: everything needed to
//! apply `H[P] Ψ` (Eq. 2) to a block of orbitals —
//!
//! * kinetic term `½|G + A(t)|²` (velocity-gauge vector potential for the
//!   laser coupling),
//! * total local potential (local pseudopotential + Hartree + semi-local
//!   XC + scalar external) on the dense density grid,
//! * Kleinman–Bylander nonlocal pseudopotential,
//! * the **Fock exchange operator** `V_X[P]` (Eq. 3), evaluated exactly as
//!   Alg. 2: one Poisson-like FFT solve per orbital pair on the
//!   wavefunction grid, with band-by-band / band-pair-batched (pt-par
//!   threads) / distributed (pt-mpi) execution paths mirroring the paper's
//!   optimization stages,
//! * total-energy assembly including the Ewald ion–ion term,
//! * the distributed layout flips (band-index ↔ G-space) and residual
//!   evaluation of Alg. 3.

mod ace;
mod density;
mod distributed;
mod error;
mod fock;
mod grids;
mod hamiltonian;
mod hartree;
mod system;

pub use ace::AceOperator;
pub use density::{density_from_orbitals, density_residual, integrate};
pub use distributed::{
    distributed_fock_apply, distributed_residual, serial_fock_reference, BandDistribution,
    DistributedConfig, OVERLAP_CHUNK_ROWS,
};
pub use error::PtError;
pub use fock::{FockMode, FockOperator, ScreenedKernel};
pub use grids::PwGrids;
pub use hamiltonian::Hamiltonian;
pub use hartree::hartree_potential;
pub use system::{
    Energies, ExchangeMode, HybridConfig, KsSystem, KsSystemBuilder, Potentials, SystemSignature,
};
