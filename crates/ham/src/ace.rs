//! Adaptively Compressed Exchange (ACE; Lin, JCTC 12, 2242 (2016) —
//! reference [24] of the paper).
//!
//! ACE compresses the Fock operator into a rank-N_φ projector
//! `V_ACE = −ξ ξ^H` with `ξ = W L^{-H}`, `W = V_X Φ`, `−Φ^H W = L L^H`.
//! Applying it costs two skinny GEMMs instead of N_e Poisson solves, but
//! building it costs one full exchange application over Φ.
//!
//! The paper's finding (§1): on CPUs, PT-CN + ACE wins (ref [22]); with
//! GPU-accelerated FFTs, plain PT wins on Summit because the exchange
//! application is cheap enough and ACE's construction cannot be amortized
//! across the few SCF iterations of a PT-CN step. This module exists to
//! make that trade-off measurable (see the `ace` criterion bench).

use crate::fock::FockOperator;
use crate::grids::PwGrids;
use pt_linalg::{cholesky_in_place, gemm, CMat, Op};
use pt_num::c64;

/// The compressed exchange operator.
pub struct AceOperator {
    /// The adaptively compressed projector columns ξ (N_G × N_φ).
    xi: CMat,
}

impl AceOperator {
    /// Build from the exact operator and its defining orbitals Φ:
    /// one exact exchange application over the block, one small Cholesky.
    pub fn new(grids: &PwGrids, fock: &FockOperator, phi: &CMat) -> Self {
        let (ng, nb) = (phi.nrows(), phi.ncols());
        let mut w = CMat::zeros(ng, nb);
        fock.apply_block(grids, phi, &mut w);
        // M = −Φ^H W is Hermitian positive semi-definite (V_X ⪯ 0)
        let mut m = CMat::zeros(nb, nb);
        gemm(
            -c64::ONE,
            phi,
            Op::ConjTrans,
            &w,
            Op::None,
            c64::ZERO,
            &mut m,
        );
        // tiny ridge for rank-deficient Φ (e.g. orbitals outside the
        // screened interaction range)
        for i in 0..nb {
            m[(i, i)] += c64::real(1e-14);
        }
        let mut l = m;
        cholesky_in_place(&mut l);
        // ξ = W L^{-H}: solve L ξ^H-column systems; equivalently apply the
        // right-triangular solve used for orthogonalization
        let mut xi = w;
        pt_linalg::trsm_right_lh(&mut xi, &l);
        AceOperator { xi }
    }

    /// Apply: `out += V_ACE ψ = −ξ (ξ^H ψ)` for a block of orbitals.
    pub fn apply_block(&self, psi: &CMat, out: &mut CMat) {
        let nb = self.xi.ncols();
        let mut proj = CMat::zeros(nb, psi.ncols());
        gemm(
            c64::ONE,
            &self.xi,
            Op::ConjTrans,
            psi,
            Op::None,
            c64::ZERO,
            &mut proj,
        );
        gemm(
            -c64::ONE,
            &self.xi,
            Op::None,
            &proj,
            Op::None,
            c64::ONE,
            out,
        );
    }

    /// Exchange energy of orbitals under the compressed operator.
    pub fn energy(&self, psi: &CMat, occ: &[f64]) -> f64 {
        let mut v = CMat::zeros(psi.nrows(), psi.ncols());
        self.apply_block(psi, &mut v);
        (0..psi.ncols())
            .map(|j| 0.5 * occ[j] * pt_num::complex::zdotc(psi.col(j), v.col(j)).re)
            .sum()
    }

    /// Rank of the compression (N_φ).
    pub fn rank(&self) -> usize {
        self.xi.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{FockMode, ScreenedKernel};
    use pt_lattice::silicon_cubic_supercell;

    fn setup() -> (PwGrids, CMat, FockOperator) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 4;
        let mut rng = pt_num::rng::XorShift64::new(11u64);
        let mut phi = CMat::from_fn(ng, nb, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        });
        pt_linalg::orthonormalize_columns(&mut phi, 0.0);
        let kern = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &phi, 0.25, kern, FockMode::Batched);
        (grids, phi, fock)
    }

    #[test]
    fn ace_is_exact_on_the_defining_orbitals() {
        // The ACE identity: V_ACE Φ = V_X Φ exactly.
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi);
        let mut exact = CMat::zeros(phi.nrows(), phi.ncols());
        fock.apply_block(&grids, &phi, &mut exact);
        let mut compressed = CMat::zeros(phi.nrows(), phi.ncols());
        ace.apply_block(&phi, &mut compressed);
        let err = exact.max_diff(&compressed);
        assert!(err < 1e-9, "ACE must reproduce V_X on span(Φ): {err}");
    }

    #[test]
    fn ace_energy_matches_exact_exchange_energy() {
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi);
        let occ = vec![2.0; phi.ncols()];
        let e_exact = fock.energy(&grids, &phi, &occ);
        let e_ace = ace.energy(&phi, &occ);
        assert!(
            (e_exact - e_ace).abs() < 1e-9 * e_exact.abs(),
            "{e_exact} vs {e_ace}"
        );
        assert!(e_exact < 0.0);
    }

    #[test]
    fn ace_is_negative_semidefinite_everywhere() {
        // off span(Φ), V_ACE underestimates |V_X| but never changes sign
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi);
        let ng = grids.ng();
        let mut rng = pt_num::rng::XorShift64::new(99u64);
        for trial in 0..5 {
            let v = CMat::from_fn(ng, 1, |_, _| {
                c64::new(rng.next_centered(), rng.next_centered())
            });
            let mut out = CMat::zeros(ng, 1);
            ace.apply_block(&v, &mut out);
            let q = pt_num::complex::zdotc(v.col(0), out.col(0)).re;
            assert!(q <= 1e-10, "trial {trial}: ⟨v|V_ACE v⟩ = {q} > 0");
        }
        assert_eq!(ace.rank(), phi.ncols());
    }
}
