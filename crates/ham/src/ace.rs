//! Adaptively Compressed Exchange (ACE; Lin, JCTC 12, 2242 (2016) —
//! reference [24] of the paper).
//!
//! ACE compresses the Fock operator into a rank-N_φ projector
//! `V_ACE = −ξ ξ^H` with `ξ = W L^{-H}`, `W = V_X Φ`, `−Φ^H W = L L^H`.
//! Applying it costs two skinny GEMMs instead of N_e Poisson solves, but
//! building it costs one full exchange application over Φ.
//!
//! The paper's finding (§1): on CPUs, PT-CN + ACE wins (ref [22]); with
//! GPU-accelerated FFTs, plain PT wins on Summit because the exchange
//! application is cheap enough and ACE's construction cannot be amortized
//! across the few SCF iterations of a PT-CN step. On this CPU runtime the
//! CPU trade-off applies: the PT-CN propagator refreshes ξ once per
//! `ace_refresh_interval` steps and applies `V_ACE` inside every
//! fixed-point iteration (`ExchangeMode::Ace`/`AceMts` in `system.rs`).

use crate::error::PtError;
use crate::fock::FockOperator;
use crate::grids::PwGrids;
use pt_linalg::{gemm, try_cholesky_in_place, CMat, Op};
use pt_num::c64;

/// The compressed exchange operator.
#[derive(Clone, Debug)]
pub struct AceOperator {
    /// The adaptively compressed projector columns ξ (N_G × N_φ).
    xi: CMat,
}

impl AceOperator {
    /// Build from the exact operator and its defining orbitals Φ:
    /// one exact exchange application over the block, one small Cholesky.
    ///
    /// Fails with [`PtError::InvalidConfig`] when `−Φ^H W` is not positive
    /// definite (rank-deficient / degenerate Φ) — the Cholesky pivot and
    /// offending column are reported instead of panicking.
    pub fn new(grids: &PwGrids, fock: &FockOperator, phi: &CMat) -> Result<Self, PtError> {
        let (ng, nb) = (phi.nrows(), phi.ncols());
        let mut w = CMat::zeros(ng, nb);
        fock.apply_block(grids, phi, &mut w);
        Self::from_w(phi, w)
    }

    /// Build from a precomputed `W = V_X Φ` (columns matching `phi`).
    /// This is the seam the distributed path uses: the rank team computes
    /// W with the Alg. 2 broadcast loop, the driver factors it here.
    pub fn from_w(phi: &CMat, w: CMat) -> Result<Self, PtError> {
        let nb = phi.ncols();
        if w.nrows() != phi.nrows() || w.ncols() != nb {
            return Err(PtError::ShapeMismatch {
                context: "ACE W block",
                expected: phi.nrows() * nb,
                got: w.nrows() * w.ncols(),
            });
        }
        // M = −Φ^H W is Hermitian positive semi-definite (V_X ⪯ 0)
        let mut m = CMat::zeros(nb, nb);
        gemm(
            -c64::ONE,
            phi,
            Op::ConjTrans,
            &w,
            Op::None,
            c64::ZERO,
            &mut m,
        );
        // tiny ridge for rank-deficient Φ (e.g. orbitals outside the
        // screened interaction range)
        for i in 0..nb {
            m[(i, i)] += c64::real(1e-14);
        }
        let mut l = m;
        if let Err((col, pivot)) = try_cholesky_in_place(&mut l) {
            return Err(PtError::InvalidConfig(format!(
                "ACE build failed: -Phi^H W is not positive definite \
                 (Cholesky pivot {pivot:.3e} at column {col}) — the defining \
                 orbitals Phi are rank-deficient or degenerate"
            )));
        }
        // ξ = W L^{-H}: solve L ξ^H-column systems; equivalently apply the
        // right-triangular solve used for orthogonalization
        let mut xi = w;
        pt_linalg::trsm_right_lh(&mut xi, &l);
        Ok(AceOperator { xi })
    }

    /// Reconstruct from previously captured projector columns (checkpoint
    /// restore): resuming mid-refresh-window must reuse the exact ξ that
    /// was live, not one rebuilt from the restored Ψ.
    pub fn from_xi(xi: CMat) -> Self {
        AceOperator { xi }
    }

    /// The projector columns ξ (N_G × N_φ).
    pub fn xi(&self) -> &CMat {
        &self.xi
    }

    /// Apply: `out += V_ACE ψ = −ξ (ξ^H ψ)` for a block of orbitals.
    ///
    /// Band-parallel on the installed pool: each output column `j` owns
    /// its own projections `ξ^H ψ_j` and its own rank-N_φ update, so the
    /// work is self-contained per column and the results are bit-identical
    /// for every thread count (and, because the distributed path splits by
    /// whole bands, every rank count).
    pub fn apply_block(&self, psi: &CMat, out: &mut CMat) {
        assert_eq!(psi.nrows(), self.xi.nrows(), "ACE apply: row mismatch");
        assert_eq!(out.nrows(), psi.nrows());
        assert_eq!(out.ncols(), psi.ncols());
        let ng = self.xi.nrows();
        let nb = self.xi.ncols();
        pt_par::parallel_chunks_mut(out.data_mut(), ng, |j, ocol| {
            let psi_j = psi.col(j);
            for i in 0..nb {
                let xi_i = self.xi.col(i);
                let p = pt_num::complex::zdotc(xi_i, psi_j);
                for (o, x) in ocol.iter_mut().zip(xi_i) {
                    *o -= *x * p;
                }
            }
        });
    }

    /// Exchange energy of orbitals under the compressed operator.
    pub fn energy(&self, psi: &CMat, occ: &[f64]) -> f64 {
        let mut v = CMat::zeros(psi.nrows(), psi.ncols());
        self.apply_block(psi, &mut v);
        pt_num::reduce::sum_f64(
            (0..psi.ncols())
                .map(|j| 0.5 * occ[j] * pt_num::complex::zdotc(psi.col(j), v.col(j)).re),
        )
    }

    /// Rank of the compression (N_φ).
    pub fn rank(&self) -> usize {
        self.xi.ncols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{FockMode, ScreenedKernel};
    use pt_lattice::silicon_cubic_supercell;

    fn setup() -> (PwGrids, CMat, FockOperator) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 4;
        let mut rng = pt_num::rng::XorShift64::new(11u64);
        let mut phi = CMat::from_fn(ng, nb, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        });
        pt_linalg::orthonormalize_columns(&mut phi, 0.0);
        let kern = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &phi, 0.25, kern, FockMode::Batched);
        (grids, phi, fock)
    }

    #[test]
    fn ace_is_exact_on_the_defining_orbitals() {
        // The ACE identity: V_ACE Φ = V_X Φ exactly.
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi).unwrap();
        let mut exact = CMat::zeros(phi.nrows(), phi.ncols());
        fock.apply_block(&grids, &phi, &mut exact);
        let mut compressed = CMat::zeros(phi.nrows(), phi.ncols());
        ace.apply_block(&phi, &mut compressed);
        let err = exact.max_diff(&compressed);
        assert!(err < 1e-9, "ACE must reproduce V_X on span(Φ): {err}");
    }

    #[test]
    fn ace_energy_matches_exact_exchange_energy() {
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi).unwrap();
        let occ = vec![2.0; phi.ncols()];
        let e_exact = fock.energy(&grids, &phi, &occ);
        let e_ace = ace.energy(&phi, &occ);
        assert!(
            (e_exact - e_ace).abs() < 1e-9 * e_exact.abs(),
            "{e_exact} vs {e_ace}"
        );
        assert!(e_exact < 0.0);
    }

    #[test]
    fn ace_is_negative_semidefinite_everywhere() {
        // off span(Φ), V_ACE underestimates |V_X| but never changes sign
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi).unwrap();
        let ng = grids.ng();
        let mut rng = pt_num::rng::XorShift64::new(99u64);
        for trial in 0..5 {
            let v = CMat::from_fn(ng, 1, |_, _| {
                c64::new(rng.next_centered(), rng.next_centered())
            });
            let mut out = CMat::zeros(ng, 1);
            ace.apply_block(&v, &mut out);
            let q = pt_num::complex::zdotc(v.col(0), out.col(0)).re;
            assert!(q <= 1e-10, "trial {trial}: ⟨v|V_ACE v⟩ = {q} > 0");
        }
        assert_eq!(ace.rank(), phi.ncols());
    }

    #[test]
    fn rank_deficient_phi_is_a_typed_error() {
        // Duplicated columns make P = ΦΦ* rank-deficient; scaled up they
        // push the Gram matrix past the 1e-14 ridge into a non-positive
        // Cholesky pivot. This used to panic inside cholesky_in_place.
        let (grids, phi, _fock) = setup();
        let ng = grids.ng();
        let mut bad = CMat::zeros(ng, 3);
        for i in 0..ng {
            let v = phi[(i, 0)].scale(1e4);
            bad[(i, 0)] = v;
            bad[(i, 1)] = v;
            bad[(i, 2)] = v;
        }
        let kern = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &bad, 0.25, kern, FockMode::Batched);
        let err = AceOperator::new(&grids, &fock, &bad).unwrap_err();
        match err {
            PtError::InvalidConfig(msg) => {
                assert!(
                    msg.contains("rank-deficient") && msg.contains("pivot"),
                    "unexpected message: {msg}"
                );
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn from_w_rejects_mismatched_shapes() {
        let (grids, phi, _fock) = setup();
        let w = CMat::zeros(grids.ng(), phi.ncols() + 1);
        assert!(matches!(
            AceOperator::from_w(&phi, w),
            Err(PtError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn apply_block_is_bit_identical_across_thread_counts() {
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi).unwrap();
        let psi = CMat::rand_normalized(grids.ng(), 3, 42);
        let run = |threads: usize| {
            let pool = pt_par::ThreadPool::new(threads);
            pool.install(|| {
                let mut out = CMat::rand_normalized(grids.ng(), 3, 7);
                ace.apply_block(&psi, &mut out);
                out
            })
        };
        let o1 = run(1);
        let o4 = run(4);
        for (a, b) in o1.data().iter().zip(o4.data()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn xi_round_trips_through_from_xi() {
        let (grids, phi, fock) = setup();
        let ace = AceOperator::new(&grids, &fock, &phi).unwrap();
        let restored = AceOperator::from_xi(ace.xi().clone());
        let psi = CMat::rand_normalized(grids.ng(), 2, 5);
        let mut a = CMat::zeros(grids.ng(), 2);
        let mut b = CMat::zeros(grids.ng(), 2);
        ace.apply_block(&psi, &mut a);
        restored.apply_block(&psi, &mut b);
        assert_eq!(a.max_diff(&b), 0.0, "from_xi must reproduce bits");
    }
}
