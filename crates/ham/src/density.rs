//! Electron density from a block of orbitals.
//!
//! `ρ(r) = Σ_i f_i |ψ_i(r)|²`, evaluated on the dense grid (paper §3.4:
//! band-index layout makes this embarrassingly parallel over bands followed
//! by one `MPI_Allreduce` — here a rayon fold/reduce).

use crate::grids::PwGrids;
use pt_linalg::CMat;
use pt_num::c64;
use rayon::prelude::*;

/// Compute the density on the dense grid. `orbitals` columns are sphere
/// coefficient vectors; `occ[i]` their occupations (2.0 for closed shell).
pub fn density_from_orbitals(grids: &PwGrids, orbitals: &CMat, occ: &[f64]) -> Vec<f64> {
    assert_eq!(orbitals.nrows(), grids.ng());
    assert_eq!(orbitals.ncols(), occ.len());
    let nd = grids.n_dense();
    (0..orbitals.ncols())
        .into_par_iter()
        // pt-analyze: allow(float-fold-order) — the rayon shim drives this fold as ONE band-ordered sequential accumulator (scratch reuse, not a reduction tree); a real-rayon swap must reroute it through pt_par::parallel_reduce
        .fold(
            || (vec![0.0f64; nd], vec![c64::ZERO; nd]),
            |(mut acc, mut work), i| {
                grids.to_real_dense(orbitals.col(i), &mut work);
                let f = occ[i];
                for (a, z) in acc.iter_mut().zip(&work) {
                    *a += f * z.norm_sqr();
                }
                (acc, work)
            },
        )
        .map(|(acc, _)| acc)
        .reduce(
            || vec![0.0f64; nd],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
}

/// ∫ρ dr (electron-count check).
pub fn integrate(grids: &PwGrids, rho: &[f64]) -> f64 {
    pt_num::reduce::sum_f64(rho.iter().copied()) * grids.volume / grids.n_dense() as f64
}

/// The convergence metric used throughout the stack (PT-CN fixed point,
/// ground-state SCF, Φ-stationarity): `max_r |ρ_new(r) − ρ_old(r)| · Ω`,
/// i.e. the max pointwise density change scaled to electron units
/// (`Ω = dv · N_dense`). One definition, shared, so every loop converges
/// against the same number.
pub fn density_residual(rho_new: &[f64], rho_old: &[f64], volume: f64) -> f64 {
    debug_assert_eq!(rho_new.len(), rho_old.len());
    pt_num::reduce::max_f64(rho_new.iter().zip(rho_old).map(|(a, b)| (a - b).abs())) * volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;

    #[test]
    fn density_integrates_to_electron_count() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 3.0);
        let ng = g.ng();
        let nb = 4;
        // random orthonormal-ish block: normalize each column
        let mut rng = pt_num::rng::XorShift64::new(3u64);
        let mut orb = CMat::zeros(ng, nb);
        for j in 0..nb {
            let col = orb.col_mut(j);
            for z in col.iter_mut() {
                *z = c64::new(rng.next_centered(), rng.next_centered());
            }
            let n = pt_num::complex::znrm2(col);
            for z in col.iter_mut() {
                *z = z.scale(1.0 / n);
            }
        }
        let occ = vec![2.0; nb];
        let rho = density_from_orbitals(&g, &orb, &occ);
        let ne = integrate(&g, &rho);
        assert!((ne - 8.0).abs() < 1e-10, "{ne}");
        assert!(
            rho.iter().all(|&v| v >= -1e-12),
            "density must be nonnegative"
        );
    }

    #[test]
    fn uniform_orbital_gives_uniform_density() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 2.0);
        let mut orb = CMat::zeros(g.ng(), 1);
        orb[(0, 0)] = c64::ONE; // G = 0 plane wave
        let rho = density_from_orbitals(&g, &orb, &[2.0]);
        let want = 2.0 / g.volume;
        for &v in &rho {
            assert!((v - want).abs() < 1e-12);
        }
    }
}
