//! Hartree potential by G-space Poisson solve on the dense grid.

use pt_fft::Fft3;
use pt_lattice::GridGVectors;
use pt_num::c64;

/// Solve `∇² v_H = −4π ρ` on the dense grid: returns `(v_H(r), E_H)` with
/// `E_H = ½ ∫ v_H ρ`. The G = 0 component is dropped (jellium convention —
/// it cancels against the pseudopotential α-term and the Ewald background).
pub fn hartree_potential(
    rho: &[f64],
    fft: &Fft3,
    gv: &GridGVectors,
    volume: f64,
) -> (Vec<f64>, f64) {
    assert_eq!(rho.len(), gv.len());
    let n = rho.len();
    let mut work: Vec<c64> = rho.iter().map(|&v| c64::real(v)).collect();
    fft.forward(&mut work);
    // v_H = IFFT( 4π/G² · FFT(ρ) ), with our scaling conventions
    for (idx, z) in work.iter_mut().enumerate() {
        let g2 = gv.g2[idx];
        *z = if g2 > 1e-12 {
            z.scale(4.0 * std::f64::consts::PI / g2)
        } else {
            c64::ZERO
        };
    }
    fft.inverse(&mut work);
    let vh: Vec<f64> = work.iter().map(|z| z.re).collect();
    let dv = volume / n as f64;
    let eh = 0.5 * pt_num::reduce::sum_f64(vh.iter().zip(rho).map(|(v, r)| v * r)) * dv;
    (vh, eh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::{Cell, GridGVectors};

    #[test]
    fn plane_wave_density_analytic() {
        // ρ(r) = cos(G₀·x): v_H must be (4π/G₀²) cos(G₀·x)
        let l = 10.0;
        let n = 16;
        let cell = Cell::cubic(l);
        let gv = GridGVectors::new(&cell, (n, n, n));
        let fft = Fft3::new(n, n, n);
        let g0 = 2.0 * std::f64::consts::PI / l;
        let mut rho = vec![0.0; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    rho[ix + n * (iy + n * iz)] = (g0 * ix as f64 * l / n as f64).cos();
                }
            }
        }
        let (vh, eh) = hartree_potential(&rho, &fft, &gv, cell.volume());
        let scale = 4.0 * std::f64::consts::PI / (g0 * g0);
        for (i, &v) in vh.iter().enumerate() {
            let ix = i % n;
            let want = scale * (g0 * ix as f64 * l / n as f64).cos();
            assert!((v - want).abs() < 1e-10, "{v} vs {want}");
        }
        // E_H = ½ ∫ vρ = ½·scale·(Ω/2)
        let want_e = 0.5 * scale * cell.volume() / 2.0;
        assert!((eh - want_e).abs() < 1e-8 * want_e, "{eh} vs {want_e}");
    }

    #[test]
    fn gaussian_charge_matches_erf_solution() {
        // ρ(r) = q (a/π)^{3/2} e^{−a r²} (periodized): v_H(r) ≈ q erf(√a r)/r
        // near the center of a large box, up to the uniform-background const.
        let l = 24.0;
        let n = 48;
        let a = 2.0;
        let q = 1.0;
        let cell = Cell::cubic(l);
        let gv = GridGVectors::new(&cell, (n, n, n));
        let fft = Fft3::new(n, n, n);
        let norm = q * (a / std::f64::consts::PI).powf(1.5);
        let c = l / 2.0;
        let mut rho = vec![0.0; n * n * n];
        for iz in 0..n {
            for iy in 0..n {
                for ix in 0..n {
                    let dx = ix as f64 * l / n as f64 - c;
                    let dy = iy as f64 * l / n as f64 - c;
                    let dz = iz as f64 * l / n as f64 - c;
                    let r2 = dx * dx + dy * dy + dz * dz;
                    rho[ix + n * (iy + n * iz)] = norm * (-a * r2).exp();
                }
            }
        }
        let (vh, _eh) = hartree_potential(&rho, &fft, &gv, cell.volume());
        // compare differences of v_H (kills the G=0 constant) at two radii
        let at = |fx: f64| {
            let ix = (fx * n as f64).round() as usize;
            let iy = n / 2;
            let iz = n / 2;
            let r = (ix as f64 * l / n as f64 - c).abs();
            (vh[ix + n * (iy + n * iz)], r)
        };
        let (v1, r1) = at(0.58);
        let (v2, r2) = at(0.70);
        let exact = |r: f64| q * pt_num::erf(a.sqrt() * r) / r;
        let want = exact(r1) - exact(r2);
        let got = v1 - v2;
        assert!(
            (got - want).abs() < 6e-3,
            "images+grid residual too large: {got} vs {want}"
        );
    }
}
