//! The assembled Kohn–Sham Hamiltonian and its application `HΨ`.

use crate::fock::FockOperator;
use crate::grids::PwGrids;
use pt_linalg::CMat;
use pt_num::c64;
use pt_pseudo::NonlocalPs;
use std::sync::Arc;

/// `H = ½|G+A|² + V_loc(r) + V_NL + V_X[P]` bound to fixed potentials.
///
/// The local potential lives on the dense grid; applying it costs one
/// dense-grid FFT round trip per band. The Fock part is optional (None =
/// semi-local functional) — and in the ACE propagation modes the PT-CN
/// step assembles the Fock-free Hamiltonian (`KsSystem::local_hamiltonian`)
/// and adds the frozen rank-N_φ [`crate::AceOperator`] projector instead,
/// so this operator's pair-FFT loop runs only at projector refreshes.
pub struct Hamiltonian {
    /// Shared grids.
    pub grids: Arc<PwGrids>,
    /// Total local potential on the dense grid (pseudo + Hartree + XC).
    pub vloc_r: Vec<f64>,
    /// Nonlocal pseudopotential.
    pub nonlocal: Arc<NonlocalPs>,
    /// Exchange operator (hybrid functionals).
    pub fock: Option<Arc<FockOperator>>,
    /// Velocity-gauge vector potential A(t) (laser coupling).
    pub a_field: [f64; 3],
}

impl Hamiltonian {
    /// Kinetic factors ½|G+A|² over the sphere.
    pub fn kinetic_diag(&self) -> Vec<f64> {
        self.grids
            .sphere
            .g_cart
            .iter()
            .map(|g| {
                let kx = g[0] + self.a_field[0];
                let ky = g[1] + self.a_field[1];
                let kz = g[2] + self.a_field[2];
                0.5 * (kx * kx + ky * ky + kz * kz)
            })
            .collect()
    }

    /// Apply to one orbital: `out = H ψ` (sphere coefficients).
    pub fn apply(&self, psi: &[c64], out: &mut [c64]) {
        let kin = self.kinetic_diag();
        self.apply_with_kin(psi, out, &kin);
    }

    fn apply_with_kin(&self, psi: &[c64], out: &mut [c64], kin: &[f64]) {
        self.apply_serial_local(psi, out, kin);
        if let Some(f) = &self.fock {
            f.apply(&self.grids, psi, out);
        }
    }

    /// Apply to a block, parallel over bands (band-index layout of §3.1):
    /// kinetic + local + nonlocal run one band per pool task with serial
    /// FFTs inside, then the Fock part (if any) is applied band-pair
    /// parallel at the block level by [`FockOperator::apply_block`].
    pub fn apply_block(&self, psi: &CMat, out: &mut CMat) {
        assert_eq!(psi.nrows(), self.grids.ng());
        assert_eq!(out.nrows(), psi.nrows());
        assert_eq!(out.ncols(), psi.ncols());
        let kin = self.kinetic_diag();
        let ng = self.grids.ng();
        pt_par::parallel_chunks_mut(out.data_mut(), ng, |j, ocol| {
            self.apply_serial_local(psi.col(j), ocol, &kin);
        });
        if let Some(f) = &self.fock {
            f.apply_block(&self.grids, psi, out);
        }
    }

    /// Single-band kinetic/local/nonlocal application with serial FFTs:
    /// the shared body of the single-orbital `apply` and of `apply_block`,
    /// which runs it one band per pool task.
    fn apply_serial_local(&self, psi: &[c64], out: &mut [c64], kin: &[f64]) {
        let g = &self.grids;
        for ((o, p), k) in out.iter_mut().zip(psi).zip(kin) {
            *o = p.scale(*k);
        }
        let mut dense = vec![c64::ZERO; g.n_dense()];
        g.to_real_dense(psi, &mut dense);
        for (z, &v) in dense.iter_mut().zip(&self.vloc_r) {
            *z = z.scale(v);
        }
        let mut vloc_psi = vec![c64::ZERO; g.ng()];
        g.to_coeffs_dense(&mut dense, &mut vloc_psi);
        for (o, v) in out.iter_mut().zip(&vloc_psi) {
            *o += *v;
        }
        self.nonlocal.apply(psi, out);
    }

    /// Rayleigh quotients `⟨ψ_j|H|ψ_j⟩` for a block.
    pub fn band_energies(&self, psi: &CMat) -> Vec<f64> {
        let mut hpsi = CMat::zeros(psi.nrows(), psi.ncols());
        self.apply_block(psi, &mut hpsi);
        (0..psi.ncols())
            .map(|j| pt_num::complex::zdotc(psi.col(j), hpsi.col(j)).re)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{FockMode, ScreenedKernel};
    use pt_lattice::{silicon_cubic_supercell, GSphere};

    fn make_h(with_fock: bool) -> (Arc<PwGrids>, Hamiltonian) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = Arc::new(PwGrids::new(&s, 2.5));
        let sphere: &GSphere = &grids.sphere;
        let _ = sphere;
        let nl = Arc::new(pt_pseudo::NonlocalPs::new(&s, &grids.sphere).unwrap());
        // a smooth local potential
        let vloc: Vec<f64> = (0..grids.n_dense())
            .map(|i| 0.05 * ((i % 7) as f64 - 3.0))
            .collect();
        let fock = if with_fock {
            let phi = rand_block(grids.ng(), 2, 5);
            let kern = ScreenedKernel::new(&grids, 0.11);
            Some(Arc::new(FockOperator::new(
                &grids,
                &phi,
                0.25,
                kern,
                FockMode::Batched,
            )))
        } else {
            None
        };
        let h = Hamiltonian {
            grids: Arc::clone(&grids),
            vloc_r: vloc,
            nonlocal: nl,
            fock,
            a_field: [0.0; 3],
        };
        (grids, h)
    }

    fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
        CMat::rand_normalized(ng, nb, seed)
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        for with_fock in [false, true] {
            let (g, h) = make_h(with_fock);
            let a = rand_block(g.ng(), 1, 1);
            let b = rand_block(g.ng(), 1, 2);
            let mut ha = vec![c64::ZERO; g.ng()];
            let mut hb = vec![c64::ZERO; g.ng()];
            h.apply(a.col(0), &mut ha);
            h.apply(b.col(0), &mut hb);
            let lhs = pt_num::complex::zdotc(a.col(0), &hb);
            let rhs = pt_num::complex::zdotc(&ha, b.col(0));
            assert!(
                (lhs - rhs).abs() < 1e-9,
                "fock={with_fock}: {lhs:?} vs {rhs:?}"
            );
        }
    }

    #[test]
    fn block_apply_matches_single() {
        let (g, h) = make_h(true);
        let psi = rand_block(g.ng(), 3, 9);
        let mut out = CMat::zeros(g.ng(), 3);
        h.apply_block(&psi, &mut out);
        for j in 0..3 {
            let mut col = vec![c64::ZERO; g.ng()];
            h.apply(psi.col(j), &mut col);
            let err = col
                .iter()
                .zip(out.col(j))
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-11, "band {j}: {err}");
        }
    }

    #[test]
    fn vector_potential_shifts_kinetic() {
        let (g, mut h) = make_h(false);
        h.a_field = [0.1, -0.2, 0.05];
        let kin = h.kinetic_diag();
        for (k, gc) in kin.iter().zip(&g.sphere.g_cart) {
            let want =
                0.5 * ((gc[0] + 0.1).powi(2) + (gc[1] - 0.2).powi(2) + (gc[2] + 0.05).powi(2));
            assert!((k - want).abs() < 1e-14);
        }
    }

    #[test]
    fn band_energies_real_and_bounded_below() {
        let (g, h) = make_h(false);
        let psi = rand_block(g.ng(), 4, 21);
        let e = h.band_energies(&psi);
        // kinetic is ≥ 0; local is bounded by max|V|; NL by Σ|h|·‖β‖² — just
        // check the values are finite and not absurd
        for v in e {
            assert!(v.is_finite() && v.abs() < 1e3);
        }
        let _ = g;
    }
}
