//! The Fock exchange operator `V_X[P]` — Eq. (3) / Alg. 2 of the paper.
//!
//! `(V_X ψ_j)(r) = −α Σ_i φ_i(r) ∫ K(r−r') φ_i*(r') ψ_j(r') dr'`
//!
//! Each (i, j) pair costs one forward + one inverse FFT on the wavefunction
//! grid (a "Poisson-like equation"); a full application is N_φ × N_ψ such
//! solves — the N_e² scaling that makes hybrid functionals ~95 % of CPU
//! time. The screened HSE kernel
//! `K(G) = 4π (1 − e^{−G²/4ω²})/G²` has the finite limit `π/ω²` at G = 0,
//! so Γ-point calculations need no divergence correction.
//!
//! [`FockMode`] selects the execution layout, mirroring the paper's GPU
//! optimization stages (§3.2): `BandByBand` parallelizes inside one 3-D
//! FFT at a time (stage 1); `Batched` runs many pair-FFTs concurrently
//! (stage 2, the batched-CUFFT analogue).
//!
//! In the PT-CN hot path this operator is rarely applied directly: the
//! [ACE compression](crate::AceOperator) spends one block application
//! (`W = V_X Φ`) per projector refresh and replaces every subsequent
//! exchange apply with two rank-N_φ GEMMs — see [`crate::ace`] and
//! `ExchangeMode` on the system builder for the refresh policy.

use crate::grids::PwGrids;
use pt_linalg::CMat;
use pt_num::c64;
use rayon::prelude::*;

/// The (possibly screened) electron–electron interaction kernel in G-space.
#[derive(Clone, Debug)]
pub struct ScreenedKernel {
    /// Kernel values at every wavefunction-grid G point.
    pub values: Vec<f64>,
    /// Screening parameter ω (bohr⁻¹); 0 = bare Coulomb.
    pub omega: f64,
}

impl ScreenedKernel {
    /// Tabulate the kernel on the wavefunction grid. `omega > 0` gives the
    /// short-range erfc-screened interaction of HSE (G = 0 value π/ω²);
    /// `omega = 0` gives the bare 4π/G² with the G = 0 term dropped
    /// (the simple Γ-point convention, exposed for ablations).
    pub fn new(grids: &PwGrids, omega: f64) -> Self {
        let pi = std::f64::consts::PI;
        let values = grids
            .gv_wfc
            .g2
            .iter()
            .map(|&g2| {
                if g2 > 1e-12 {
                    if omega > 0.0 {
                        4.0 * pi / g2 * (1.0 - (-g2 / (4.0 * omega * omega)).exp())
                    } else {
                        4.0 * pi / g2
                    }
                } else if omega > 0.0 {
                    pi / (omega * omega)
                } else {
                    0.0
                }
            })
            .collect();
        ScreenedKernel { values, omega }
    }
}

/// Execution layout for the pair-FFT loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FockMode {
    /// One pair at a time, parallelism inside each 3-D FFT (paper stage 1).
    BandByBand,
    /// All pairs of one `ψ_j` batched, parallel across pairs (stage 2+).
    Batched,
}

/// The exchange operator with a frozen set of defining orbitals Φ.
pub struct FockOperator {
    /// Real-space values of the defining orbitals on the wavefunction grid
    /// (precomputed once per Φ update — N_φ × N_wfc).
    phi_real: Vec<Vec<c64>>,
    /// Mixing fraction α (0.25 for HSE06).
    pub alpha: f64,
    kernel: ScreenedKernel,
    mode: FockMode,
}

impl FockOperator {
    /// Freeze `phi` (columns = orbitals, sphere coefficients) as the
    /// density-matrix factor of `V_X[P]`, P = Φ Φ*.
    pub fn new(
        grids: &PwGrids,
        phi: &CMat,
        alpha: f64,
        kernel: ScreenedKernel,
        mode: FockMode,
    ) -> Self {
        assert_eq!(phi.nrows(), grids.ng());
        let phi_real: Vec<Vec<c64>> = (0..phi.ncols())
            .into_par_iter()
            .map(|i| {
                let mut r = vec![c64::ZERO; grids.n_wfc()];
                grids.to_real_wfc(phi.col(i), &mut r);
                r
            })
            .collect();
        FockOperator {
            phi_real,
            alpha,
            kernel,
            mode,
        }
    }

    /// Number of defining orbitals N_φ.
    pub fn n_phi(&self) -> usize {
        self.phi_real.len()
    }

    /// Execution mode.
    pub fn mode(&self) -> FockMode {
        self.mode
    }

    /// Change the execution mode (used by the stage-ablation benches).
    pub fn set_mode(&mut self, mode: FockMode) {
        self.mode = mode;
    }

    /// Apply to one orbital: `out += (V_X ψ)` in sphere coefficients.
    pub fn apply(&self, grids: &PwGrids, psi: &[c64], out: &mut [c64]) {
        let nw = grids.n_wfc();
        let mut psi_real = vec![c64::ZERO; nw];
        grids.to_real_wfc(psi, &mut psi_real);
        let acc_real = self.apply_real(grids, &psi_real);
        // back to sphere coefficients and accumulate
        let mut acc = acc_real;
        let mut coeffs = vec![c64::ZERO; grids.ng()];
        grids.to_coeffs_wfc(&mut acc, &mut coeffs);
        for (o, c) in out.iter_mut().zip(&coeffs) {
            *o += *c;
        }
    }

    /// Core pair loop on real-space input, returning `(V_X ψ)(r)` on the
    /// wavefunction grid. Exposed for the distributed Alg. 2 driver.
    pub fn apply_real(&self, grids: &PwGrids, psi_real: &[c64]) -> Vec<c64> {
        let nw = grids.n_wfc();
        // one Poisson-like solve per defining orbital, either mode
        pt_trace::counter_add(pt_trace::Counter::PairFfts, self.phi_real.len() as u64);
        match self.mode {
            FockMode::BandByBand => {
                let mut acc = vec![c64::ZERO; nw];
                let mut pair = vec![c64::ZERO; nw];
                for phi in &self.phi_real {
                    // charge-like quantity φ_i*(r) ψ(r)
                    for ((p, f), s) in pair.iter_mut().zip(phi).zip(psi_real) {
                        *p = f.conj() * *s;
                    }
                    // Poisson-like solve with the screened kernel
                    grids.fft_wfc.forward(&mut pair);
                    for (z, &k) in pair.iter_mut().zip(&self.kernel.values) {
                        *z = z.scale(k);
                    }
                    grids.fft_wfc.inverse(&mut pair);
                    // accumulate −α φ_i(r) v_i(r); the grid convolution
                    // IFFT(K·FFT(pair)) is the exact integral, no volume
                    // factor (see uniform-orbital test for the pinning)
                    for ((o, f), v) in acc.iter_mut().zip(phi).zip(&pair) {
                        *o += (*f * *v).scale(-self.alpha);
                    }
                }
                acc
            }
            FockMode::Batched => self
                .phi_real
                .par_iter()
                // pt-analyze: allow(float-fold-order) — the rayon shim drives this fold as ONE φ-ordered sequential accumulator (pair-FFT scratch reuse); a real-rayon swap must reroute it through pt_par::parallel_reduce
                .fold(
                    || (vec![c64::ZERO; nw], vec![c64::ZERO; nw]),
                    |(mut acc, mut pair), phi| {
                        for ((p, f), s) in pair.iter_mut().zip(phi).zip(psi_real) {
                            *p = f.conj() * *s;
                        }
                        grids.fft_wfc.forward_serial(&mut pair);
                        for (z, &k) in pair.iter_mut().zip(&self.kernel.values) {
                            *z = z.scale(k);
                        }
                        grids.fft_wfc.inverse_serial(&mut pair);
                        for ((o, f), v) in acc.iter_mut().zip(phi).zip(&pair) {
                            *o += (*f * *v).scale(-self.alpha);
                        }
                        (acc, pair)
                    },
                )
                .map(|(acc, _)| acc)
                .reduce(
                    || vec![c64::ZERO; nw],
                    |mut a, b| {
                        for (x, y) in a.iter_mut().zip(&b) {
                            *x += *y;
                        }
                        a
                    },
                ),
        }
    }

    /// Apply to a block: `out[:, j] += V_X ψ_j`.
    ///
    /// In [`FockMode::Batched`] this is **band-pair parallel**: the
    /// N_φ × N_ψ pair solves are cut into `(ψ-band, φ-chunk)` pool tasks
    /// (the paper's batched-CUFFT stage over Alg. 2's pair loop), each
    /// running its FFTs serially. The φ-chunking depends only on the two
    /// band counts, and per-band partials are combined in φ-chunk order,
    /// so results are bit-identical for every thread count.
    /// [`FockMode::BandByBand`] keeps the stage-1 layout: one pair at a
    /// time with parallelism inside each 3-D FFT.
    pub fn apply_block(&self, grids: &PwGrids, psi: &CMat, out: &mut CMat) {
        assert_eq!(psi.nrows(), grids.ng());
        assert_eq!(out.nrows(), psi.nrows());
        assert_eq!(out.ncols(), psi.ncols());
        if self.mode == FockMode::BandByBand {
            for j in 0..psi.ncols() {
                // split borrow: copy column out, apply, write back
                let mut col = out.col(j).to_vec();
                self.apply(grids, psi.col(j), &mut col);
                out.col_mut(j).copy_from_slice(&col);
            }
            return;
        }
        let n_psi = psi.ncols();
        let n_phi = self.phi_real.len();
        if n_psi == 0 || n_phi == 0 {
            return;
        }
        let nw = grids.n_wfc();
        let ng = grids.ng();
        pt_trace::counter_add(pt_trace::Counter::PairFfts, (n_phi * n_psi) as u64);
        // ψ_j → real space, band-parallel
        let psi_real: Vec<Vec<c64>> = pt_par::parallel_map(n_psi, |j| {
            let mut r = vec![c64::ZERO; nw];
            grids.to_real_wfc(psi.col(j), &mut r);
            r
        });
        // pair solves: task (j, c) owns ψ_j against the c-th φ-chunk
        let kc = pair_phi_chunks(n_phi, n_psi);
        let partials: Vec<Vec<c64>> = pt_par::parallel_map(n_psi * kc, |t| {
            let (j, c) = (t / kc, t % kc);
            let mut acc = vec![c64::ZERO; nw];
            let mut pair = vec![c64::ZERO; nw];
            for i in pt_par::chunk_range(n_phi, kc, c) {
                let phi = &self.phi_real[i];
                for ((p, f), s) in pair.iter_mut().zip(phi).zip(&psi_real[j]) {
                    *p = f.conj() * *s;
                }
                grids.fft_wfc.forward_serial(&mut pair);
                for (z, &k) in pair.iter_mut().zip(&self.kernel.values) {
                    *z = z.scale(k);
                }
                grids.fft_wfc.inverse_serial(&mut pair);
                for ((o, f), v) in acc.iter_mut().zip(phi).zip(&pair) {
                    *o += (*f * *v).scale(-self.alpha);
                }
            }
            acc
        });
        // per band: combine φ-chunks in order, back to sphere coefficients
        pt_par::parallel_chunks_mut(out.data_mut(), ng, |j, ocol| {
            let mut acc = vec![c64::ZERO; nw];
            for part in &partials[j * kc..(j + 1) * kc] {
                for (x, y) in acc.iter_mut().zip(part) {
                    *x += *y;
                }
            }
            let mut coeffs = vec![c64::ZERO; ng];
            grids.to_coeffs_wfc(&mut acc, &mut coeffs);
            for (o, z) in ocol.iter_mut().zip(&coeffs) {
                *o += *z;
            }
        });
    }

    /// Exchange energy `E_x = ½ Σ_j f_j ⟨ψ_j|V_X ψ_j⟩` for the orbitals
    /// that define the operator (with occupations `occ`).
    pub fn energy(&self, grids: &PwGrids, psi: &CMat, occ: &[f64]) -> f64 {
        assert_eq!(psi.ncols(), occ.len());
        let mut v = CMat::zeros(grids.ng(), psi.ncols());
        self.apply_block(grids, psi, &mut v);
        pt_num::reduce::sum_f64(
            (0..psi.ncols())
                .map(|j| 0.5 * occ[j] * pt_num::complex::zdotc(psi.col(j), v.col(j)).re),
        )
    }
}

/// Number of φ-chunks the pair loop is cut into. Depends only on the band
/// counts (never the thread count) so chunk-ordered accumulation stays
/// bit-deterministic; sized so a full block application yields ~64 tasks.
fn pair_phi_chunks(n_phi: usize, n_psi: usize) -> usize {
    (64 / n_psi.max(1)).clamp(1, n_phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::silicon_cubic_supercell;

    fn grids() -> (pt_lattice::Structure, PwGrids) {
        let s = silicon_cubic_supercell(1, 1, 1);
        let g = PwGrids::new(&s, 2.5);
        (s, g)
    }

    fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
        CMat::rand_normalized(ng, nb, seed)
    }

    #[test]
    fn kernel_g0_limit_is_pi_over_omega_sq() {
        let (_s, g) = grids();
        let k = ScreenedKernel::new(&g, 0.11);
        // G = 0 is grid index 0
        let want = std::f64::consts::PI / (0.11 * 0.11);
        assert!((k.values[0] - want).abs() < 1e-10);
        // for large G the screened kernel approaches bare Coulomb
        let kbare = ScreenedKernel::new(&g, 0.0);
        let idx = g
            .gv_wfc
            .g2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((k.values[idx] / kbare.values[idx] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn modes_agree() {
        let (_s, g) = grids();
        let phi = rand_block(g.ng(), 3, 11);
        let psi = rand_block(g.ng(), 2, 22);
        let kern = ScreenedKernel::new(&g, 0.11);
        let f1 = FockOperator::new(&g, &phi, 0.25, kern.clone(), FockMode::BandByBand);
        let f2 = FockOperator::new(&g, &phi, 0.25, kern, FockMode::Batched);
        let mut o1 = CMat::zeros(g.ng(), 2);
        let mut o2 = CMat::zeros(g.ng(), 2);
        f1.apply_block(&g, &psi, &mut o1);
        f2.apply_block(&g, &psi, &mut o2);
        assert!(o1.max_diff(&o2) < 1e-11, "{}", o1.max_diff(&o2));
    }

    #[test]
    fn operator_is_hermitian_and_negative() {
        let (_s, g) = grids();
        let phi = rand_block(g.ng(), 4, 33);
        let kern = ScreenedKernel::new(&g, 0.2);
        let f = FockOperator::new(&g, &phi, 0.25, kern, FockMode::Batched);
        let a = rand_block(g.ng(), 1, 44);
        let b = rand_block(g.ng(), 1, 55);
        let mut va = vec![c64::ZERO; g.ng()];
        let mut vb = vec![c64::ZERO; g.ng()];
        f.apply(&g, a.col(0), &mut va);
        f.apply(&g, b.col(0), &mut vb);
        let lhs = pt_num::complex::zdotc(a.col(0), &vb);
        let rhs = pt_num::complex::zdotc(&va, b.col(0));
        assert!((lhs - rhs).abs() < 1e-10, "hermiticity: {lhs:?} vs {rhs:?}");
        // negative semidefinite: ⟨ψ|V_X ψ⟩ ≤ 0 (K > 0, α > 0)
        let diag = pt_num::complex::zdotc(a.col(0), &va).re;
        assert!(diag <= 1e-12, "⟨ψ|V_X ψ⟩ = {diag} must be ≤ 0");
    }

    #[test]
    fn exchange_energy_invariant_under_unitary_rotation() {
        // E_x depends only on the density matrix P = ΦΦ*, a gauge/rotation
        // invariant — the foundation of the parallel-transport idea.
        let (_s, g) = grids();
        let mut phi_o = rand_block(g.ng(), 3, 66);
        pt_linalg::orthonormalize_columns(&mut phi_o, 0.0);
        // random unitary from eigendecomposition of a Hermitian matrix
        let h = {
            let a = rand_block(3, 3, 77);
            let mut h = CMat::zeros(3, 3);
            for j in 0..3 {
                for i in 0..3 {
                    h[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
                }
            }
            h
        };
        let (_w, u) = pt_linalg::eigh(&h);
        let mut phi_rot = CMat::zeros(g.ng(), 3);
        pt_linalg::gemm(
            c64::ONE,
            &phi_o,
            pt_linalg::Op::None,
            &u,
            pt_linalg::Op::None,
            c64::ZERO,
            &mut phi_rot,
        );
        let kern = ScreenedKernel::new(&g, 0.11);
        let occ = vec![2.0; 3];
        let f1 = FockOperator::new(&g, &phi_o, 0.25, kern.clone(), FockMode::Batched);
        let f2 = FockOperator::new(&g, &phi_rot, 0.25, kern, FockMode::Batched);
        let e1 = f1.energy(&g, &phi_o, &occ);
        let e2 = f2.energy(&g, &phi_rot, &occ);
        assert!((e1 - e2).abs() < 1e-9 * e1.abs(), "{e1} vs {e2}");
        assert!(e1 < 0.0, "exchange energy must be negative");
    }

    #[test]
    fn uniform_orbital_exchange_known_value() {
        // Single constant orbital ψ = Ω^{-1/2}: pair density is uniform,
        // only G = 0 survives: V_X ψ = −α K(0) / Ω · ψ.
        let (_s, g) = grids();
        let mut phi = CMat::zeros(g.ng(), 1);
        phi[(0, 0)] = c64::ONE;
        let omega = 0.3;
        let kern = ScreenedKernel::new(&g, omega);
        let f = FockOperator::new(&g, &phi, 0.25, kern, FockMode::Batched);
        let mut out = vec![c64::ZERO; g.ng()];
        f.apply(&g, phi.col(0), &mut out);
        let want = -0.25 * std::f64::consts::PI / (omega * omega) / g.volume;
        assert!(
            (out[0].re - want).abs() < 1e-10 * want.abs(),
            "{} vs {want}",
            out[0].re
        );
        for (k, z) in out.iter().enumerate().skip(1) {
            assert!(z.abs() < 1e-10, "G component {k} should vanish, got {z:?}");
        }
    }
}
