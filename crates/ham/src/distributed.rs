//! Distributed execution of Alg. 2 over the virtual MPI runtime.
//!
//! Wavefunctions are distributed by **band index** (§3.1): rank p owns
//! bands `p, p+N_p, p+2N_p, …` (the cyclic map keeps loads balanced when
//! N_e % N_p ≠ 0). The Fock exchange loop broadcasts one owner's orbital at
//! a time (`MPI_Bcast`, optionally f32 on the wire) while every rank solves
//! the Poisson-like equations for its local bands — exactly Alg. 2.
//!
//! The total broadcast volume is `N_p × N_G × N_e × sizeof(wire scalar)`
//! summed over receivers (§3.2) — asserted by the `val-comm` integration
//! test against the byte counters of `pt-mpi`.
//!
//! Both distributed hot paths thread their rank-local compute over the
//! calling thread's current pool — under
//! [`pt_mpi::run_ranks_pinned`] that is the rank's own pinned pool, so a
//! `ranks × threads_per_rank` layout maps each rank's band loop onto its
//! dedicated core slice (the paper's one-GPU-per-rank analogue).

use crate::error::PtError;
use crate::fock::FockOperator;
use crate::grids::PwGrids;
use pt_linalg::CMat;
use pt_mpi::{Comm, Wire};
use pt_num::c64;
use pt_num::complex::zdotc;
use pt_par::RankLayout;
use std::ops::Range;

/// Row width of one overlap-reduction chunk — the fixed grid the Alg. 3
/// allreduce is re-associated over. Shape-only (independent of rank and
/// thread counts), so the grouping of the floating-point sums that
/// assemble the overlap matrix `S = Ψ_f^H (H_f Ψ_f)` is identical for
/// every layout, making [`distributed_residual`] bit-deterministic across
/// rank counts, not just thread counts.
pub const OVERLAP_CHUNK_ROWS: usize = 64;

/// Cyclic band ownership map: `owner(i) = i % n_ranks` (§3.1), so loads
/// differ by at most one band when `n_bands % n_ranks ≠ 0`.
#[derive(Clone, Copy, Debug)]
pub struct BandDistribution {
    /// Total number of bands.
    pub n_bands: usize,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl BandDistribution {
    /// Owner rank of band `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        i % self.n_ranks
    }

    /// Local (column) index of band `i` on its owner rank — the O(1)
    /// inverse of [`BandDistribution::local_bands`]: with cyclic ownership
    /// the owner's bands ascend as `owner, owner + n_ranks, …`, so band
    /// `i` sits at position `i / n_ranks`.
    #[inline]
    pub fn local_index(&self, i: usize) -> usize {
        i / self.n_ranks
    }

    /// Number of bands owned by `rank`.
    #[inline]
    pub fn n_local(&self, rank: usize) -> usize {
        if rank >= self.n_ranks || rank >= self.n_bands {
            // more ranks than bands (or an out-of-range rank): the tail
            // ranks own nothing
            0
        } else {
            (self.n_bands - rank).div_ceil(self.n_ranks)
        }
    }

    /// Bands owned by `rank`, in ascending order.
    pub fn local_bands(&self, rank: usize) -> Vec<usize> {
        (0..self.n_bands)
            .filter(|i| self.owner(*i) == rank)
            .collect()
    }

    /// The sphere rows rank `rank` owns in the G-space layout of Alg. 3:
    /// contiguous, **chunk-aligned** slices of `[0, ng)`. The row space is
    /// first cut into fixed [`OVERLAP_CHUNK_ROWS`]-row chunks (a
    /// shape-only grid: it depends on `ng`, never on the rank count), and
    /// whole chunks are dealt to ranks with counts differing by at most
    /// one — so every chunk has exactly one owner on *any* rank count,
    /// which is what lets the overlap reduction of
    /// [`distributed_residual`] re-associate its floating-point sums
    /// identically across layouts. Ranks beyond the chunk count get an
    /// empty range (the `ng < n_ranks` edge case).
    pub fn g_rows(&self, ng: usize, rank: usize) -> Range<usize> {
        let np = self.n_ranks;
        let nc = ng.div_ceil(OVERLAP_CHUNK_ROWS);
        let base = nc / np;
        let rem = nc % np;
        let c_start = rank * base + rank.min(rem);
        let c_end = c_start + base + usize::from(rank < rem);
        (c_start * OVERLAP_CHUNK_ROWS).min(ng)..(c_end * OVERLAP_CHUNK_ROWS).min(ng)
    }

    /// Extract `rank`'s local columns of a band-major matrix (a test and
    /// driver convenience: the band-layout "scatter" of a replicated
    /// block).
    pub fn take_local(&self, rank: usize, m: &CMat) -> CMat {
        let mine = self.local_bands(rank);
        let mut lm = CMat::zeros(m.nrows(), mine.len());
        for (lj, &b) in mine.iter().enumerate() {
            lm.col_mut(lj).copy_from_slice(m.col(b));
        }
        lm
    }
}

/// How a distributed run decomposes the host: how many virtual-MPI ranks,
/// how wide each rank's pinned compute pool is, and the wire precision of
/// the collectives. Surfaced on `KsSystemBuilder::distributed` so a hybrid
/// PT-CN run can be driven as ranks × threads from the public API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistributedConfig {
    /// Number of virtual-MPI ranks (one OS thread each).
    pub ranks: usize,
    /// Width of each rank's pinned [`pt_par::ThreadPool`].
    pub threads_per_rank: usize,
    /// Wire precision for the Alg. 2 broadcasts (`Wire::F32` halves the
    /// volume at ~1e-7 relative loss — observables then differ across
    /// layouts at that level instead of being bit-identical).
    pub wire: Wire,
}

impl Default for DistributedConfig {
    /// One rank, one thread, full precision — the serial-equivalent
    /// layout every other layout is measured against.
    fn default() -> Self {
        DistributedConfig {
            ranks: 1,
            threads_per_rank: 1,
            wire: Wire::F64,
        }
    }
}

impl DistributedConfig {
    /// A `ranks × threads_per_rank` config with full-precision wire.
    pub fn new(ranks: usize, threads_per_rank: usize) -> Self {
        DistributedConfig {
            ranks,
            threads_per_rank,
            wire: Wire::F64,
        }
    }

    /// Switch the collective wire format.
    pub fn wire(mut self, wire: Wire) -> Self {
        self.wire = wire;
        self
    }

    /// The `pt_par` view of the decomposition.
    pub fn layout(&self) -> RankLayout {
        RankLayout {
            ranks: self.ranks,
            threads_per_rank: self.threads_per_rank,
        }
    }

    /// Validate extents (both must be nonzero). Oversubscribing the host
    /// is allowed — it cannot change results, only wall time; see
    /// [`RankLayout::fits_host`].
    pub fn validate(&self) -> Result<(), PtError> {
        self.layout()
            .validate()
            .map_err(|msg| PtError::InvalidConfig(format!("distributed config: {msg}")))
    }
}

/// Distributed Fock exchange application (Alg. 2).
///
/// `fock` must have been built with the same Φ on every rank (its defining
/// orbitals are broadcast band-by-band *inside* this routine, so callers
/// pass the **local** slice of Φ and receive `V_X ψ` for their local ψ
/// bands). Returns the local output block (columns ↔ `dist.local_bands`).
///
/// The per-band accumulate loop — the (φ_i, ψ_j) FFT/kernel work that is
/// ~95 % of a hybrid step — runs on the calling thread's current pool
/// (the rank's pinned pool under [`pt_mpi::run_ranks_pinned`]). Band
/// chunking depends only on the local band count and each band's
/// accumulator is owned by exactly one task that folds the broadcast
/// order `i = 0..n_bands` sequentially, so the output bits depend on
/// neither the thread count nor the rank count (with a `Wire::F64` wire).
pub fn distributed_fock_apply(
    comm: &mut Comm,
    grids: &PwGrids,
    dist: BandDistribution,
    phi_local: &CMat,
    psi_local: &CMat,
    alpha: f64,
    kernel: &crate::fock::ScreenedKernel,
) -> CMat {
    let ng = grids.ng();
    let nw = grids.n_wfc();
    assert_eq!(phi_local.nrows(), ng);
    assert_eq!(psi_local.nrows(), ng);
    let nb_local = dist.n_local(comm.rank());
    assert_eq!(phi_local.ncols(), nb_local);
    assert_eq!(psi_local.ncols(), nb_local);

    // local ψ in real space (reused across the i loop), band-parallel
    let psi_real: Vec<Vec<c64>> = pt_par::parallel_map(nb_local, |j| {
        let mut r = vec![c64::ZERO; nw];
        grids.to_real_wfc(psi_local.col(j), &mut r);
        r
    });

    // shape-only chunking: one task owns a contiguous run of local bands
    // (min 1 so the zero-local-bands edge case keeps a valid chunk size).
    // Each chunk carries its band accumulators AND its pair-FFT scratch
    // buffer, so the broadcast loop allocates nothing per iteration.
    let band_chunk = nb_local
        .div_ceil(pt_par::chunk_count(nb_local.max(1)))
        .max(1);
    struct BandChunk {
        /// First local band of this chunk.
        start: usize,
        /// One accumulator per band in the chunk (real-space V_X ψ_j).
        accs: Vec<Vec<c64>>,
        /// Scratch for the pair density / Poisson solve.
        pair: Vec<c64>,
    }
    let mut chunks: Vec<BandChunk> = (0..nb_local.div_ceil(band_chunk))
        .map(|c| {
            let start = c * band_chunk;
            let end = (start + band_chunk).min(nb_local);
            BandChunk {
                start,
                accs: (start..end).map(|_| vec![c64::ZERO; nw]).collect(),
                pair: vec![c64::ZERO; nw],
            }
        })
        .collect();

    // Alg. 2: for every band i, the owner broadcasts φ_i, everyone
    // accumulates onto its local (V_X ψ_j).
    pt_trace::counter_add(
        pt_trace::Counter::PairFfts,
        (dist.n_bands * nb_local) as u64,
    );
    let mut phi_real = vec![c64::ZERO; nw];
    for i in 0..dist.n_bands {
        let owner = dist.owner(i);
        let mut phi_i: Vec<c64> = if owner == comm.rank() {
            phi_local.col(dist.local_index(i)).to_vec()
        } else {
            Vec::new()
        };
        comm.bcast_c64(owner, &mut phi_i);
        // φ_i to real space once per rank (buffer hoisted out of the loop;
        // to_real_wfc overwrites it fully)
        grids.to_real_wfc(&phi_i, &mut phi_real);
        let phi_real = &phi_real;
        let psi_real = &psi_real;
        pt_par::parallel_chunks_mut(&mut chunks, 1, |_c, chunk| {
            let BandChunk { start, accs, pair } = &mut chunk[0];
            for (dj, acc_j) in accs.iter_mut().enumerate() {
                let j = *start + dj;
                for ((p, f), s) in pair.iter_mut().zip(phi_real).zip(&psi_real[j]) {
                    *p = f.conj() * *s;
                }
                grids.fft_wfc.forward_serial(pair);
                for (z, &k) in pair.iter_mut().zip(&kernel.values) {
                    *z = z.scale(k);
                }
                grids.fft_wfc.inverse_serial(pair);
                for ((o, f), v) in acc_j.iter_mut().zip(phi_real).zip(pair.iter()) {
                    *o += (*f * *v).scale(-alpha);
                }
            }
        });
    }
    // gather back to sphere coefficients, band-parallel (each accumulator
    // is replaced by its coefficient vector in place)
    pt_par::parallel_chunks_mut(&mut chunks, 1, |_c, chunk| {
        for acc_j in chunk[0].accs.iter_mut() {
            let mut coeffs = vec![c64::ZERO; ng];
            grids.to_coeffs_wfc(acc_j, &mut coeffs);
            *acc_j = coeffs;
        }
    });
    let mut out = CMat::zeros(ng, nb_local);
    for chunk in &chunks {
        for (dj, coeffs) in chunk.accs.iter().enumerate() {
            out.col_mut(chunk.start + dj).copy_from_slice(coeffs);
        }
    }
    out
}

/// Distributed PT residual evaluation (Alg. 3).
///
/// Inputs are in the band-index layout (each rank owns its block-cyclic
/// bands of Ψ_f, H_f Ψ_f and Ψ_{n+1/2}); the routine flips to the G-space
/// layout with `MPI_Alltoallv`, forms per-chunk overlap partials
/// `T_c = Ψ_f[c]^H (H_f Ψ_f)[c]` on the fixed [`OVERLAP_CHUNK_ROWS`]-row
/// grid, reduces `S = Σ_c T_c` in ascending chunk order through the
/// ownership-aligned tree ([`Comm::tree_reduce_chunks_c64`] — O(nb²)
/// received per rank instead of the old allgatherv-everything's
/// O(ng/64 × nb²)), applies the rotation `Ψ_f S` locally, assembles
/// `R_f = Ψ_f + i·dt/2·(H_f Ψ_f − Ψ_f S) − Ψ_{n+1/2}` and flips back.
///
/// Row partition: [`BandDistribution::g_rows`] — contiguous chunk-aligned
/// slices (whole chunks per rank, counts differing by at most one),
/// covering the `ng < N_p` and `n_bands < N_p` edge cases.
///
/// # Determinism across the full layout grid
///
/// Every chunk partial is a fixed sequential dot product over that chunk's
/// rows, computed by the chunk's single owner; the global combine walks
/// the chunks in ascending index order on every rank. Both the chunk grid
/// and the combine order depend only on `ng` — never on the rank or
/// thread count — so with a [`Wire::F64`] wire the residual bits are
/// **identical for every ranks × threads layout** (the fixed-chunk
/// reduction tree that closed the old ~1e-12 cross-rank gap). A
/// [`Wire::F32`] wire quantizes the alltoallv layout flips and gives that
/// up (the tree reduction itself always moves full-precision partials).
pub fn distributed_residual(
    comm: &mut Comm,
    dist: BandDistribution,
    ng: usize,
    psi_f: &CMat,
    hpsi_f: &CMat,
    psi_half: &CMat,
    dt: f64,
) -> CMat {
    use pt_linalg::{gemm, Op};
    let np = comm.size();
    assert_eq!(np, dist.n_ranks, "communicator vs distribution size");
    let nb_local = dist.n_local(comm.rank());
    assert_eq!(psi_f.ncols(), nb_local);
    let rows_of = |r: usize| -> Range<usize> { dist.g_rows(ng, r) };

    // line 1: band → G-space layout for the three blocks
    let flip_to_g = |comm: &mut Comm, m: &CMat| -> CMat {
        let send: Vec<Vec<c64>> = (0..np)
            .map(|dst| {
                let rows = rows_of(dst);
                let mut blk = Vec::with_capacity(rows.len() * nb_local);
                for j in 0..nb_local {
                    blk.extend_from_slice(&m.col(j)[rows.clone()]);
                }
                blk
            })
            .collect();
        let recv = comm.alltoallv_c64(send);
        // my rows × all bands, band-major columns ordered by global band id
        let nrows = rows_of(comm.rank()).len();
        let mut out = CMat::zeros(nrows, dist.n_bands);
        for (src, blk) in recv.iter().enumerate() {
            let src_bands = dist.local_bands(src);
            for (bj, &b) in src_bands.iter().enumerate() {
                out.col_mut(b)
                    .copy_from_slice(&blk[bj * nrows..(bj + 1) * nrows]);
            }
        }
        out
    };
    let gp = flip_to_g(comm, psi_f);
    let gh = flip_to_g(comm, hpsi_f);
    let ghalf = flip_to_g(comm, psi_half);

    // lines 2-3: per-chunk overlap partials on the fixed row grid, then a
    // chunk-ordered re-association (see the determinism note above). Each
    // local chunk's nb×nb partial is one pool task (chunks are independent
    // and internally sequential, so bits are thread-count-free too).
    let nb = dist.n_bands;
    let my_rows = rows_of(comm.rank());
    let n_my_chunks = my_rows.len().div_ceil(OVERLAP_CHUNK_ROWS);
    let partials: Vec<CMat> = pt_par::parallel_map(n_my_chunks, |c| {
        let r0 = c * OVERLAP_CHUNK_ROWS;
        let r1 = (r0 + OVERLAP_CHUNK_ROWS).min(my_rows.len());
        let mut t = CMat::zeros(nb, nb);
        for j in 0..nb {
            let ghj = &gh.col(j)[r0..r1];
            for i in 0..nb {
                t[(i, j)] = zdotc(&gp.col(i)[r0..r1], ghj);
            }
        }
        t
    });
    let flat: Vec<c64> = partials.iter().flat_map(|t| t.data().to_vec()).collect();
    // ranks ascend ⇒ global chunk index ascends: the tree reduction joins
    // the per-rank ascending folds in a rank-ascending prefix chain, which
    // is exactly the fixed `(((T_0 + T_1) + T_2) + …)` association the old
    // allgatherv-everything combine used — same bits, but each rank now
    // receives O(nb²) instead of O(ng/64 × nb²)
    let summed = comm.tree_reduce_chunks_c64(&flat, nb * nb);
    let mut s_global = CMat::zeros(nb, nb);
    s_global.data_mut().copy_from_slice(&summed);

    // lines 4-5: rotation and residual on my rows
    let mut rot = CMat::zeros(gp.nrows(), nb);
    gemm(
        c64::ONE,
        &gp,
        Op::None,
        &s_global,
        Op::None,
        c64::ZERO,
        &mut rot,
    );
    let nrows = gp.nrows();
    let mut resid_g = CMat::zeros(nrows, nb);
    // element-wise assembly, one column per pool task (bit-deterministic:
    // every element is computed independently)
    pt_par::parallel_chunks_mut(resid_g.data_mut(), nrows.max(1), |j, rcol| {
        let (gpc, ghc, rotc, ghalfc) = (gp.col(j), gh.col(j), rot.col(j), ghalf.col(j));
        for (i, r) in rcol.iter_mut().enumerate() {
            let rhs = ghc[i] - rotc[i];
            *r = gpc[i] + rhs.mul_i().scale(0.5 * dt) - ghalfc[i];
        }
    });

    // line 6: back to band layout
    let send_back: Vec<Vec<c64>> = (0..np)
        .map(|dst| {
            let bands = dist.local_bands(dst);
            let mut blk = Vec::with_capacity(bands.len() * resid_g.nrows());
            for &b in &bands {
                blk.extend_from_slice(resid_g.col(b));
            }
            blk
        })
        .collect();
    let recv = comm.alltoallv_c64(send_back);
    let mut out = CMat::zeros(ng, nb_local);
    for (src, blk) in recv.iter().enumerate() {
        let rows = rows_of(src);
        let nrows = rows.len();
        for j in 0..nb_local {
            out.col_mut(j)[rows.clone()].copy_from_slice(&blk[j * nrows..(j + 1) * nrows]);
        }
    }
    out
}

/// Serial reference: apply a [`FockOperator`] built from the full Φ to the
/// full Ψ (used by tests to validate the distributed path).
pub fn serial_fock_reference(grids: &PwGrids, fock: &FockOperator, psi: &CMat) -> CMat {
    let mut out = CMat::zeros(psi.nrows(), psi.ncols());
    fock.apply_block(grids, psi, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{FockMode, FockOperator, ScreenedKernel};
    use pt_lattice::silicon_cubic_supercell;
    use pt_mpi::{run_ranks, Wire};

    fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
        CMat::rand_normalized(ng, nb, seed)
    }

    #[test]
    fn cyclic_distribution_covers_all_bands() {
        let d = BandDistribution {
            n_bands: 7,
            n_ranks: 3,
        };
        let mut seen = [false; 7];
        for r in 0..3 {
            let bands = d.local_bands(r);
            assert_eq!(bands.len(), d.n_local(r));
            for b in bands {
                assert!(!seen[b]);
                seen[b] = true;
                assert_eq!(d.owner(b), r);
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn local_index_is_the_o1_inverse_of_local_bands() {
        for (nb, np) in [(7, 3), (6, 6), (2, 5), (16, 4), (1, 1)] {
            let d = BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            for r in 0..np {
                for (pos, &b) in d.local_bands(r).iter().enumerate() {
                    assert_eq!(d.local_index(b), pos, "nb={nb} np={np} band {b}");
                }
                assert_eq!(
                    d.n_local(r),
                    d.local_bands(r).len(),
                    "nb={nb} np={np} r={r}"
                );
            }
        }
    }

    #[test]
    fn g_rows_are_chunk_aligned_balanced_and_cover_every_row() {
        for (ng, np) in [
            (10usize, 3usize),
            (64, 4),
            (7, 7),
            (3, 5),
            (0, 2),
            (100, 1),
            (1000, 3),
            (64 * 5 + 17, 4),
        ] {
            let d = BandDistribution {
                n_bands: 1,
                n_ranks: np,
            };
            let nc = ng.div_ceil(OVERLAP_CHUNK_ROWS);
            let mut covered = 0;
            for r in 0..np {
                let rows = d.g_rows(ng, r);
                assert_eq!(rows.start, covered, "ng={ng} np={np} r={r}");
                covered = rows.end;
                // whole chunks per rank: boundaries sit on the fixed grid
                // (empty tail ranges are clamped to ng and own no chunk)
                assert!(
                    rows.start.is_multiple_of(OVERLAP_CHUNK_ROWS) || rows.is_empty(),
                    "ng={ng} np={np} r={r}: start off the chunk grid"
                );
                assert!(rows.end.is_multiple_of(OVERLAP_CHUNK_ROWS) || rows.end == ng);
                // balanced to within one chunk
                let chunks = rows.len().div_ceil(OVERLAP_CHUNK_ROWS);
                assert!(
                    chunks <= nc / np + usize::from(nc % np != 0),
                    "ng={ng} np={np} r={r}: {chunks} chunks"
                );
            }
            assert_eq!(covered, ng);
        }
    }

    #[test]
    fn distributed_config_validates_and_carries_the_layout() {
        let cfg = DistributedConfig::new(2, 3).wire(Wire::F32);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.layout(), RankLayout::new(2, 3));
        assert_eq!(cfg.wire, Wire::F32);
        assert_eq!(DistributedConfig::default(), DistributedConfig::new(1, 1));
        let bad = DistributedConfig {
            ranks: 0,
            threads_per_rank: 1,
            wire: Wire::F64,
        };
        assert!(matches!(bad.validate(), Err(PtError::InvalidConfig(_))));
    }

    #[test]
    fn distributed_matches_serial() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 6;
        let phi = rand_block(ng, nb, 3);
        let psi = rand_block(ng, nb, 4);
        let kernel = ScreenedKernel::new(&grids, 0.11);
        // serial reference
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        let want = serial_fock_reference(&grids, &fock, &psi);
        // distributed over 3 ranks
        let np = 3;
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: np,
        };
        let grids_ref = &grids;
        let phi_ref = &phi;
        let psi_ref = &psi;
        let kern_ref = &kernel;
        let (outs, stats) = run_ranks(np, Wire::F64, move |comm| {
            let rank = comm.rank();
            let mine = dist.local_bands(rank);
            let take = |m: &CMat| dist.take_local(rank, m);
            let out = distributed_fock_apply(
                comm,
                grids_ref,
                dist,
                &take(phi_ref),
                &take(psi_ref),
                0.25,
                kern_ref,
            );
            (mine, out)
        });
        let mut err = 0.0f64;
        for (mine, out) in outs {
            for (lj, &b) in mine.iter().enumerate() {
                for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                    err = err.max((*x - *y).abs());
                }
            }
        }
        assert!(err < 1e-11, "distributed vs serial: {err}");
        // §3.2 volume: receivers = (N_p−1) per bcast, N_e bcasts of N_G c64
        let want_bytes = (np as u64 - 1) * nb as u64 * ng as u64 * 16;
        assert_eq!(stats.bcast_bytes, want_bytes);
        assert_eq!(stats.bcast_calls, (np * nb) as u64);
    }

    #[test]
    fn f32_wire_error_is_small() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 4;
        let phi = rand_block(ng, nb, 7);
        let psi = rand_block(ng, nb, 8);
        let kernel = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        let want = serial_fock_reference(&grids, &fock, &psi);
        let np = 2;
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: np,
        };
        let (grids_ref, phi_ref, psi_ref, kern_ref) = (&grids, &phi, &psi, &kernel);
        let (outs, stats) = run_ranks(np, Wire::F32, move |comm| {
            let rank = comm.rank();
            let mine = dist.local_bands(rank);
            let take = |m: &CMat| dist.take_local(rank, m);
            let out = distributed_fock_apply(
                comm,
                grids_ref,
                dist,
                &take(phi_ref),
                &take(psi_ref),
                0.25,
                kern_ref,
            );
            (mine, out)
        });
        // volume is halved relative to f64
        assert_eq!(
            stats.bcast_bytes,
            (np as u64 - 1) * nb as u64 * ng as u64 * 8
        );
        let mut err = 0.0f64;
        for (mine, out) in outs {
            for (lj, &b) in mine.iter().enumerate() {
                for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                    err = err.max((*x - *y).abs());
                }
            }
        }
        // f32 wire: ~1e-7 relative loss on the broadcast orbitals (§3.2:
        // "negligible changes in the accuracy")
        assert!(err < 1e-5, "f32 wire error too large: {err}");
        assert!(err > 1e-12, "error suspiciously zero — wire not exercised?");
    }

    #[test]
    fn distributed_residual_matches_serial() {
        use pt_linalg::{gemm, Op};
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 6;
        let psi = rand_block(ng, nb, 21);
        let hpsi = rand_block(ng, nb, 22);
        let half = rand_block(ng, nb, 23);
        let dt = 0.7;
        // serial reference: R = Ψ + i dt/2 (HΨ − Ψ(Ψ^H HΨ)) − Ψ_half
        let mut sg = CMat::zeros(nb, nb);
        gemm(
            c64::ONE,
            &psi,
            Op::ConjTrans,
            &hpsi,
            Op::None,
            c64::ZERO,
            &mut sg,
        );
        let mut rot = CMat::zeros(ng, nb);
        gemm(c64::ONE, &psi, Op::None, &sg, Op::None, c64::ZERO, &mut rot);
        let mut want = CMat::zeros(ng, nb);
        for j in 0..nb {
            for i in 0..ng {
                let rhs = hpsi[(i, j)] - rot[(i, j)];
                want[(i, j)] = psi[(i, j)] + rhs.mul_i().scale(0.5 * dt) - half[(i, j)];
            }
        }
        for np in [2usize, 3] {
            let dist = BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            let (p_, h_, f_) = (&psi, &hpsi, &half);
            let (outs, stats) = run_ranks(np, Wire::F64, move |comm| {
                let rank = comm.rank();
                let mine = dist.local_bands(rank);
                let take = |m: &CMat| dist.take_local(rank, m);
                let r = distributed_residual(comm, dist, ng, &take(p_), &take(h_), &take(f_), dt);
                (mine, r)
            });
            // three forward flips + one backward per rank
            assert_eq!(stats.alltoallv_calls, 4 * np as u64);
            // the overlap partials travel by the tree reduction now — the
            // allgatherv-everything path is gone, and the received volume
            // is the O(nb²)-per-rank law: one prefix hop plus one
            // broadcast delivery for every rank but one of each
            assert_eq!(stats.allgatherv_calls, 0);
            assert_eq!(stats.tree_reduce_calls, np as u64);
            assert_eq!(
                stats.tree_reduce_bytes,
                2 * (np as u64 - 1) * (nb * nb) as u64 * 16
            );
            let mut err = 0.0f64;
            for (mine, out) in outs {
                for (lj, &b) in mine.iter().enumerate() {
                    for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                        err = err.max((*x - *y).abs());
                    }
                }
            }
            assert!(err < 1e-11, "np={np}: distributed residual error {err}");
        }
    }

    /// Pure-algebra helper: the serial PT residual reference for random
    /// blocks of any (ng, nb) extent.
    fn serial_residual(ng: usize, nb: usize, seeds: [u64; 3], dt: f64) -> (CMat, CMat, CMat, CMat) {
        use pt_linalg::{gemm, Op};
        let psi = rand_block(ng, nb, seeds[0]);
        let hpsi = rand_block(ng, nb, seeds[1]);
        let half = rand_block(ng, nb, seeds[2]);
        let mut sg = CMat::zeros(nb, nb);
        gemm(
            c64::ONE,
            &psi,
            Op::ConjTrans,
            &hpsi,
            Op::None,
            c64::ZERO,
            &mut sg,
        );
        let mut rot = CMat::zeros(ng, nb);
        gemm(c64::ONE, &psi, Op::None, &sg, Op::None, c64::ZERO, &mut rot);
        let mut want = CMat::zeros(ng, nb);
        for j in 0..nb {
            for i in 0..ng {
                let rhs = hpsi[(i, j)] - rot[(i, j)];
                want[(i, j)] = psi[(i, j)] + rhs.mul_i().scale(0.5 * dt) - half[(i, j)];
            }
        }
        (psi, hpsi, half, want)
    }

    #[test]
    fn distributed_residual_is_bit_identical_across_rank_counts() {
        // the fixed-chunk reduction tree: same bits for every rank count,
        // including sizes that straddle chunk boundaries unevenly
        for (ng, nb) in [(200usize, 5usize), (64, 3), (65, 2), (700, 4)] {
            let dt = 0.7;
            let (psi, hpsi, half, _) = serial_residual(ng, nb, [61, 62, 63], dt);
            let mut reference: Option<CMat> = None;
            for np in [1usize, 2, 3, 5] {
                let dist = BandDistribution {
                    n_bands: nb,
                    n_ranks: np,
                };
                let (p_, h_, f_) = (&psi, &hpsi, &half);
                let (outs, _) = run_ranks(np, Wire::F64, move |comm| {
                    let rank = comm.rank();
                    let mine = dist.local_bands(rank);
                    let take = |m: &CMat| dist.take_local(rank, m);
                    let r =
                        distributed_residual(comm, dist, ng, &take(p_), &take(h_), &take(f_), dt);
                    (mine, r)
                });
                let mut full = CMat::zeros(ng, nb);
                for (mine, out) in outs {
                    for (lj, &b) in mine.iter().enumerate() {
                        full.col_mut(b).copy_from_slice(out.col(lj));
                    }
                }
                match &reference {
                    None => reference = Some(full),
                    Some(want) => {
                        for (i, (x, y)) in want.data().iter().zip(full.data()).enumerate() {
                            assert!(
                                x.re.to_bits() == y.re.to_bits()
                                    && x.im.to_bits() == y.im.to_bits(),
                                "ng={ng} nb={nb} np={np} [{i}]: {x:?} vs {y:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn distributed_residual_edge_cases_more_ranks_than_rows_or_bands() {
        // ng < np: some ranks own zero sphere rows; nb < np: some ranks
        // own zero bands. Both must still reproduce the serial residual.
        let dt = 0.3;
        for (ng, nb, np) in [(3usize, 2usize, 5usize), (8, 2, 4), (5, 7, 6), (1, 1, 3)] {
            let (psi, hpsi, half, want) = serial_residual(ng, nb, [31, 32, 33], dt);
            let dist = BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            let (p_, h_, f_) = (&psi, &hpsi, &half);
            let (outs, _) = run_ranks(np, Wire::F64, move |comm| {
                let rank = comm.rank();
                let mine = dist.local_bands(rank);
                let take = |m: &CMat| dist.take_local(rank, m);
                let r = distributed_residual(comm, dist, ng, &take(p_), &take(h_), &take(f_), dt);
                (mine, r)
            });
            let mut err = 0.0f64;
            for (mine, out) in outs {
                for (lj, &b) in mine.iter().enumerate() {
                    for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                        err = err.max((*x - *y).abs());
                    }
                }
            }
            assert!(err < 1e-12, "ng={ng} nb={nb} np={np}: residual error {err}");
        }
    }

    #[test]
    fn distributed_fock_handles_more_ranks_than_bands() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 2;
        let np = 4;
        let phi = rand_block(ng, nb, 41);
        let psi = rand_block(ng, nb, 42);
        let kernel = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        let want = serial_fock_reference(&grids, &fock, &psi);
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: np,
        };
        let (g, ph, ps, k) = (&grids, &phi, &psi, &kernel);
        let (outs, _) = run_ranks(np, Wire::F64, move |comm| {
            let rank = comm.rank();
            let mine = dist.local_bands(rank);
            let out = distributed_fock_apply(
                comm,
                g,
                dist,
                &dist.take_local(rank, ph),
                &dist.take_local(rank, ps),
                0.25,
                k,
            );
            (mine, out)
        });
        let mut err = 0.0f64;
        for (mine, out) in outs {
            for (lj, &b) in mine.iter().enumerate() {
                for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                    err = err.max((*x - *y).abs());
                }
            }
        }
        assert!(err < 1e-11, "bandless ranks broke Alg. 2: {err}");
    }
}
