//! Distributed execution of Alg. 2 over the virtual MPI runtime.
//!
//! Wavefunctions are distributed by **band index** (§3.1): rank p owns
//! bands `p, p+N_p, p+2N_p, …` (block-cyclic keeps loads balanced when
//! N_e % N_p ≠ 0). The Fock exchange loop broadcasts one owner's orbital at
//! a time (`MPI_Bcast`, optionally f32 on the wire) while every rank solves
//! the Poisson-like equations for its local bands — exactly Alg. 2.
//!
//! The total broadcast volume is `N_p × N_G × N_e × sizeof(wire scalar)`
//! summed over receivers (§3.2) — asserted by the `val-comm` integration
//! test against the byte counters of `pt-mpi`.

use crate::fock::FockOperator;
use crate::grids::PwGrids;
use pt_linalg::CMat;
use pt_mpi::Comm;
use pt_num::c64;

/// Block-cyclic band ownership map.
#[derive(Clone, Copy, Debug)]
pub struct BandDistribution {
    /// Total number of bands.
    pub n_bands: usize,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl BandDistribution {
    /// Owner rank of band `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        i % self.n_ranks
    }

    /// Bands owned by `rank`, in ascending order.
    pub fn local_bands(&self, rank: usize) -> Vec<usize> {
        (0..self.n_bands)
            .filter(|i| self.owner(*i) == rank)
            .collect()
    }
}

/// Distributed Fock exchange application (Alg. 2).
///
/// `fock` must have been built with the same Φ on every rank (its defining
/// orbitals are broadcast band-by-band *inside* this routine, so callers
/// pass the **local** slice of Φ and receive `V_X ψ` for their local ψ
/// bands). Returns the local output block (columns ↔ `dist.local_bands`).
pub fn distributed_fock_apply(
    comm: &mut Comm,
    grids: &PwGrids,
    dist: BandDistribution,
    phi_local: &CMat,
    psi_local: &CMat,
    alpha: f64,
    kernel: &crate::fock::ScreenedKernel,
) -> CMat {
    let ng = grids.ng();
    let nw = grids.n_wfc();
    assert_eq!(phi_local.nrows(), ng);
    assert_eq!(psi_local.nrows(), ng);
    let my_bands = dist.local_bands(comm.rank());
    assert_eq!(phi_local.ncols(), my_bands.len());
    assert_eq!(psi_local.ncols(), my_bands.len());

    // local ψ in real space (reused across the i loop)
    let psi_real: Vec<Vec<c64>> = (0..psi_local.ncols())
        .map(|j| {
            let mut r = vec![c64::ZERO; nw];
            grids.to_real_wfc(psi_local.col(j), &mut r);
            r
        })
        .collect();
    let mut acc: Vec<Vec<c64>> = (0..psi_local.ncols())
        .map(|_| vec![c64::ZERO; nw])
        .collect();

    // Alg. 2: for every band i, the owner broadcasts φ_i, everyone
    // accumulates onto its local (V_X ψ_j).
    let mut pair = vec![c64::ZERO; nw];
    for i in 0..dist.n_bands {
        let owner = dist.owner(i);
        let mut phi_i: Vec<c64> = if owner == comm.rank() {
            let local_idx = my_bands.iter().position(|&b| b == i).unwrap();
            phi_local.col(local_idx).to_vec()
        } else {
            Vec::new()
        };
        comm.bcast_c64(owner, &mut phi_i);
        // φ_i to real space once per rank
        let mut phi_real = vec![c64::ZERO; nw];
        grids.to_real_wfc(&phi_i, &mut phi_real);
        for (j, acc_j) in acc.iter_mut().enumerate() {
            for ((p, f), s) in pair.iter_mut().zip(&phi_real).zip(&psi_real[j]) {
                *p = f.conj() * *s;
            }
            grids.fft_wfc.forward(&mut pair);
            for (z, &k) in pair.iter_mut().zip(&kernel.values) {
                *z = z.scale(k);
            }
            grids.fft_wfc.inverse(&mut pair);
            for ((o, f), v) in acc_j.iter_mut().zip(&phi_real).zip(&pair) {
                *o += (*f * *v).scale(-alpha);
            }
        }
    }
    // gather back to sphere coefficients
    let mut out = CMat::zeros(ng, psi_local.ncols());
    for (j, mut acc_j) in acc.into_iter().enumerate() {
        let mut coeffs = vec![c64::ZERO; ng];
        grids.to_coeffs_wfc(&mut acc_j, &mut coeffs);
        out.col_mut(j).copy_from_slice(&coeffs);
    }
    out
}

/// Distributed PT residual evaluation (Alg. 3).
///
/// Inputs are in the band-index layout (each rank owns its block-cyclic
/// bands of Ψ_f, H_f Ψ_f and Ψ_{n+1/2}); the routine flips to the G-space
/// layout with `MPI_Alltoallv`, forms the local overlap contribution
/// `S_temp = Ψ_f^H (H_f Ψ_f)`, `MPI_Allreduce`s it into the global S,
/// applies the rotation `Ψ_f S` locally, assembles
/// `R_f = Ψ_f + i·dt/2·(H_f Ψ_f − Ψ_f S) − Ψ_{n+1/2}` and flips back.
///
/// Row partition: rank r owns sphere rows `[r·N_G/N_p, (r+1)·N_G/N_p)`
/// (remainder rows go to the last rank).
pub fn distributed_residual(
    comm: &mut Comm,
    dist: BandDistribution,
    ng: usize,
    psi_f: &CMat,
    hpsi_f: &CMat,
    psi_half: &CMat,
    dt: f64,
) -> CMat {
    use pt_linalg::{gemm, Op};
    let np = comm.size();
    let my_bands = dist.local_bands(comm.rank());
    let nb_local = my_bands.len();
    assert_eq!(psi_f.ncols(), nb_local);
    let rows_of = |r: usize| -> (usize, usize) {
        let base = ng / np;
        let start = r * base;
        let end = if r + 1 == np { ng } else { start + base };
        (start, end)
    };

    // line 1: band → G-space layout for the three blocks
    let flip_to_g = |comm: &mut Comm, m: &CMat| -> CMat {
        let send: Vec<Vec<c64>> = (0..np)
            .map(|dst| {
                let (s, e) = rows_of(dst);
                let mut blk = Vec::with_capacity((e - s) * nb_local);
                for j in 0..nb_local {
                    blk.extend_from_slice(&m.col(j)[s..e]);
                }
                blk
            })
            .collect();
        let recv = comm.alltoallv_c64(send);
        // my rows × all bands, band-major columns ordered by global band id
        let (s, e) = rows_of(comm.rank());
        let nrows = e - s;
        let mut out = CMat::zeros(nrows, dist.n_bands);
        for (src, blk) in recv.iter().enumerate() {
            let src_bands = dist.local_bands(src);
            for (bj, &b) in src_bands.iter().enumerate() {
                out.col_mut(b)
                    .copy_from_slice(&blk[bj * nrows..(bj + 1) * nrows]);
            }
        }
        out
    };
    let gp = flip_to_g(comm, psi_f);
    let gh = flip_to_g(comm, hpsi_f);
    let ghalf = flip_to_g(comm, psi_half);

    // lines 2-3: local overlap + allreduce
    let nb = dist.n_bands;
    let mut s_local = CMat::zeros(nb, nb);
    gemm(
        c64::ONE,
        &gp,
        Op::ConjTrans,
        &gh,
        Op::None,
        c64::ZERO,
        &mut s_local,
    );
    let mut s_data = s_local.data().to_vec();
    comm.allreduce_sum_c64(&mut s_data);
    let s_global = CMat::from_vec(nb, nb, s_data);

    // lines 4-5: rotation and residual on my rows
    let mut rot = CMat::zeros(gp.nrows(), nb);
    gemm(
        c64::ONE,
        &gp,
        Op::None,
        &s_global,
        Op::None,
        c64::ZERO,
        &mut rot,
    );
    let mut resid_g = CMat::zeros(gp.nrows(), nb);
    for j in 0..nb {
        for i in 0..gp.nrows() {
            let rhs = gh[(i, j)] - rot[(i, j)];
            resid_g[(i, j)] = gp[(i, j)] + rhs.mul_i().scale(0.5 * dt) - ghalf[(i, j)];
        }
    }

    // line 6: back to band layout
    let send_back: Vec<Vec<c64>> = (0..np)
        .map(|dst| {
            let bands = dist.local_bands(dst);
            let mut blk = Vec::with_capacity(bands.len() * resid_g.nrows());
            for &b in &bands {
                blk.extend_from_slice(resid_g.col(b));
            }
            blk
        })
        .collect();
    let recv = comm.alltoallv_c64(send_back);
    let mut out = CMat::zeros(ng, nb_local);
    for (src, blk) in recv.iter().enumerate() {
        let (s, e) = rows_of(src);
        let nrows = e - s;
        for j in 0..nb_local {
            out.col_mut(j)[s..e].copy_from_slice(&blk[j * nrows..(j + 1) * nrows]);
        }
    }
    out
}

/// Serial reference: apply a [`FockOperator`] built from the full Φ to the
/// full Ψ (used by tests to validate the distributed path).
pub fn serial_fock_reference(grids: &PwGrids, fock: &FockOperator, psi: &CMat) -> CMat {
    let mut out = CMat::zeros(psi.nrows(), psi.ncols());
    fock.apply_block(grids, psi, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::{FockMode, FockOperator, ScreenedKernel};
    use pt_lattice::silicon_cubic_supercell;
    use pt_mpi::{run_ranks, Wire};

    fn rand_block(ng: usize, nb: usize, seed: u64) -> CMat {
        CMat::rand_normalized(ng, nb, seed)
    }

    #[test]
    fn block_cyclic_distribution_covers_all_bands() {
        let d = BandDistribution {
            n_bands: 7,
            n_ranks: 3,
        };
        let mut seen = [false; 7];
        for r in 0..3 {
            for b in d.local_bands(r) {
                assert!(!seen[b]);
                seen[b] = true;
                assert_eq!(d.owner(b), r);
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn distributed_matches_serial() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 6;
        let phi = rand_block(ng, nb, 3);
        let psi = rand_block(ng, nb, 4);
        let kernel = ScreenedKernel::new(&grids, 0.11);
        // serial reference
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        let want = serial_fock_reference(&grids, &fock, &psi);
        // distributed over 3 ranks
        let np = 3;
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: np,
        };
        let grids_ref = &grids;
        let phi_ref = &phi;
        let psi_ref = &psi;
        let kern_ref = &kernel;
        let (outs, stats) = run_ranks(np, Wire::F64, move |comm| {
            let mine = dist.local_bands(comm.rank());
            let take = |m: &CMat| {
                let mut lm = CMat::zeros(ng, mine.len());
                for (lj, &b) in mine.iter().enumerate() {
                    lm.col_mut(lj).copy_from_slice(m.col(b));
                }
                lm
            };
            let out = distributed_fock_apply(
                comm,
                grids_ref,
                dist,
                &take(phi_ref),
                &take(psi_ref),
                0.25,
                kern_ref,
            );
            (mine, out)
        });
        let mut err = 0.0f64;
        for (mine, out) in outs {
            for (lj, &b) in mine.iter().enumerate() {
                for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                    err = err.max((*x - *y).abs());
                }
            }
        }
        assert!(err < 1e-11, "distributed vs serial: {err}");
        // §3.2 volume: receivers = (N_p−1) per bcast, N_e bcasts of N_G c64
        let want_bytes = (np as u64 - 1) * nb as u64 * ng as u64 * 16;
        assert_eq!(stats.bcast_bytes, want_bytes);
        assert_eq!(stats.bcast_calls, (np * nb) as u64);
    }

    #[test]
    fn f32_wire_error_is_small() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 4;
        let phi = rand_block(ng, nb, 7);
        let psi = rand_block(ng, nb, 8);
        let kernel = ScreenedKernel::new(&grids, 0.11);
        let fock = FockOperator::new(&grids, &phi, 0.25, kernel.clone(), FockMode::Batched);
        let want = serial_fock_reference(&grids, &fock, &psi);
        let np = 2;
        let dist = BandDistribution {
            n_bands: nb,
            n_ranks: np,
        };
        let (grids_ref, phi_ref, psi_ref, kern_ref) = (&grids, &phi, &psi, &kernel);
        let (outs, stats) = run_ranks(np, Wire::F32, move |comm| {
            let mine = dist.local_bands(comm.rank());
            let take = |m: &CMat| {
                let mut lm = CMat::zeros(ng, mine.len());
                for (lj, &b) in mine.iter().enumerate() {
                    lm.col_mut(lj).copy_from_slice(m.col(b));
                }
                lm
            };
            let out = distributed_fock_apply(
                comm,
                grids_ref,
                dist,
                &take(phi_ref),
                &take(psi_ref),
                0.25,
                kern_ref,
            );
            (mine, out)
        });
        // volume is halved relative to f64
        assert_eq!(
            stats.bcast_bytes,
            (np as u64 - 1) * nb as u64 * ng as u64 * 8
        );
        let mut err = 0.0f64;
        for (mine, out) in outs {
            for (lj, &b) in mine.iter().enumerate() {
                for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                    err = err.max((*x - *y).abs());
                }
            }
        }
        // f32 wire: ~1e-7 relative loss on the broadcast orbitals (§3.2:
        // "negligible changes in the accuracy")
        assert!(err < 1e-5, "f32 wire error too large: {err}");
        assert!(err > 1e-12, "error suspiciously zero — wire not exercised?");
    }

    #[test]
    fn distributed_residual_matches_serial() {
        use pt_linalg::{gemm, Op};
        let s = silicon_cubic_supercell(1, 1, 1);
        let grids = PwGrids::new(&s, 2.0);
        let ng = grids.ng();
        let nb = 6;
        let psi = rand_block(ng, nb, 21);
        let hpsi = rand_block(ng, nb, 22);
        let half = rand_block(ng, nb, 23);
        let dt = 0.7;
        // serial reference: R = Ψ + i dt/2 (HΨ − Ψ(Ψ^H HΨ)) − Ψ_half
        let mut sg = CMat::zeros(nb, nb);
        gemm(
            c64::ONE,
            &psi,
            Op::ConjTrans,
            &hpsi,
            Op::None,
            c64::ZERO,
            &mut sg,
        );
        let mut rot = CMat::zeros(ng, nb);
        gemm(c64::ONE, &psi, Op::None, &sg, Op::None, c64::ZERO, &mut rot);
        let mut want = CMat::zeros(ng, nb);
        for j in 0..nb {
            for i in 0..ng {
                let rhs = hpsi[(i, j)] - rot[(i, j)];
                want[(i, j)] = psi[(i, j)] + rhs.mul_i().scale(0.5 * dt) - half[(i, j)];
            }
        }
        for np in [2usize, 3] {
            let dist = BandDistribution {
                n_bands: nb,
                n_ranks: np,
            };
            let (p_, h_, f_) = (&psi, &hpsi, &half);
            let (outs, stats) = run_ranks(np, Wire::F64, move |comm| {
                let mine = dist.local_bands(comm.rank());
                let take = |m: &CMat| {
                    let mut lm = CMat::zeros(ng, mine.len());
                    for (lj, &b) in mine.iter().enumerate() {
                        lm.col_mut(lj).copy_from_slice(m.col(b));
                    }
                    lm
                };
                let r = distributed_residual(comm, dist, ng, &take(p_), &take(h_), &take(f_), dt);
                (mine, r)
            });
            // three forward flips + one backward per rank
            assert_eq!(stats.alltoallv_calls, 4 * np as u64);
            assert!(stats.allreduce_calls >= np as u64);
            let mut err = 0.0f64;
            for (mine, out) in outs {
                for (lj, &b) in mine.iter().enumerate() {
                    for (x, y) in out.col(lj).iter().zip(want.col(b)) {
                        err = err.max((*x - *y).abs());
                    }
                }
            }
            assert!(err < 1e-11, "np={np}: distributed residual error {err}");
        }
    }
}
