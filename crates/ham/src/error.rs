//! The workspace-wide typed error: every fallible public setup or solver
//! path returns [`PtError`] instead of panicking.

use std::fmt;

/// Errors surfaced by the pwdft-rt public API.
///
/// The seed code panicked on misuse (`KsSystem::hamiltonian` on a hybrid
/// system without defining orbitals, shape mismatches caught by `assert!`).
/// Setup and solver entry points now report these as values so callers —
/// services, batch drivers, parameter sweeps — can recover or log instead
/// of unwinding.
#[derive(Clone, Debug, PartialEq)]
pub enum PtError {
    /// A hybrid-functional Hamiltonian was requested without the defining
    /// orbitals Φ of the exchange operator `V_X[P]`, P = ΦΦ*.
    MissingExchangeOrbitals,
    /// An iterative solver (ground-state SCF, PT-CN fixed point) stopped
    /// above its tolerance.
    NotConverged {
        /// What was iterating.
        context: &'static str,
        /// Final residual reached.
        residual: f64,
        /// Requested tolerance.
        tol: f64,
        /// Iterations spent.
        iterations: usize,
    },
    /// A block or grid array had the wrong dimensions.
    ShapeMismatch {
        /// Which argument/operation mismatched.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        got: usize,
    },
    /// A builder or options struct was given an invalid value.
    InvalidConfig(String),
    /// A filesystem operation on a run artifact (snapshot, export) failed.
    Io {
        /// Path involved.
        path: String,
        /// OS-level reason.
        reason: String,
    },
    /// A snapshot/artifact file is malformed: bad magic, unsupported
    /// format version, CRC mismatch, truncation, or a missing/mistyped
    /// section.
    SnapshotFormat {
        /// Path of the offending file.
        path: String,
        /// What exactly was wrong.
        reason: String,
    },
    /// The run was cooperatively cancelled via its `CancelToken` — not a
    /// failure: the state up to the cancellation is intact (and, when
    /// checkpointing was armed, persisted for a bit-exact resume).
    Cancelled {
        /// Steps completed before the cancellation was honored.
        completed_steps: usize,
    },
    /// The persistent rank engine behind a distributed propagator died
    /// from an earlier rank failure: its world is gone, so later work on
    /// it is refused with this typed error instead of hanging.
    EngineDown {
        /// Panic message of the rank failure that killed the engine.
        cause: String,
    },
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::MissingExchangeOrbitals => write!(
                f,
                "hybrid functional requires defining orbitals Phi for the exchange operator"
            ),
            PtError::NotConverged { context, residual, tol, iterations } => write!(
                f,
                "{context} did not converge: residual {residual:.3e} > tol {tol:.3e} after {iterations} iterations"
            ),
            PtError::ShapeMismatch { context, expected, got } => {
                write!(f, "shape mismatch in {context}: expected {expected}, got {got}")
            }
            PtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PtError::Io { path, reason } => write!(f, "i/o error on {path}: {reason}"),
            PtError::SnapshotFormat { path, reason } => {
                write!(f, "malformed snapshot {path}: {reason}")
            }
            PtError::Cancelled { completed_steps } => {
                write!(f, "run cancelled after {completed_steps} completed steps")
            }
            PtError::EngineDown { cause } => {
                write!(f, "rank engine is dead after an earlier rank failure: {cause}")
            }
        }
    }
}

impl std::error::Error for PtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = PtError::NotConverged {
            context: "SCF",
            residual: 1e-3,
            tol: 1e-6,
            iterations: 60,
        };
        let s = e.to_string();
        assert!(s.contains("SCF") && s.contains("60"));
        assert!(PtError::MissingExchangeOrbitals.to_string().contains("Phi"));
        let m = PtError::ShapeMismatch {
            context: "orbitals",
            expected: 16,
            got: 8,
        };
        assert!(m.to_string().contains("16"));
        let io = PtError::Io {
            path: "/tmp/run.ptio".into(),
            reason: "permission denied".into(),
        };
        assert!(io.to_string().contains("/tmp/run.ptio"));
        let snap = PtError::SnapshotFormat {
            path: "ckpt.ptio".into(),
            reason: "crc mismatch in section 'psi'".into(),
        };
        assert!(snap.to_string().contains("crc mismatch"));
    }
}
