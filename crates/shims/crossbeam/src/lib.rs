//! Offline stand-in for [crossbeam](https://crates.io/crates/crossbeam),
//! backed entirely by `std`.
//!
//! The build environment has no network access; this shim provides the two
//! pieces the virtual-MPI crate uses, with matching semantics:
//!
//! * [`channel::unbounded`] — `std::sync::mpsc` channels (unbounded, same
//!   `send`/`recv` Result API);
//! * [`thread::scope`] — `std::thread::scope` wrapped in crossbeam's
//!   `Result`-returning signature, with `Scope::spawn` closures receiving
//!   the scope handle as their argument.

/// Unbounded MPMC-ish channels (std's mpsc is MPSC, which is all the
/// virtual-MPI runtime needs: every rank owns its receiver).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads in crossbeam's API shape over `std::thread::scope`.
pub mod thread {
    /// Handle for spawning scoped threads; `Copy` so it can be handed to
    /// child closures.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread; `Err` carries the child's panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to `'env`; the closure receives the scope
        /// handle (crossbeam convention), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me: Scope<'scope, 'env> = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&me)),
            }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Unlike crossbeam, an unjoined child panic propagates
    /// as a panic (std semantics) rather than an `Err` — the workspace
    /// joins every handle explicitly, so the difference is unobservable.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn channels_deliver_in_order() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
