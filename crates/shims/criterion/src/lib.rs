//! Minimal offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this shim supplies the
//! small API subset the workspace benches use (`criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`). It
//! runs each closure a fixed number of timed iterations with
//! `std::time::Instant` and prints `name: median time` — enough to keep
//! `cargo bench` compiling, running, and producing readable numbers,
//! without statistical analysis or HTML reports.

use std::time::Instant;

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Drives the timed closure.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample wall-clock times (seconds).
    times: Vec<f64>,
}

impl Bencher {
    /// Time `f` over `samples` runs, recording each run's duration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // one warm-up run, not recorded
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            self.times.push(t.elapsed().as_secs_f64());
        }
    }
}

fn report(name: &str, times: &mut [f64]) {
    if times.is_empty() {
        return;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let (value, unit) = if median >= 1.0 {
        (median, "s")
    } else if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!(
        "{name:<40} {value:>10.3} {unit}  (median of {})",
        times.len()
    );
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.times);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &mut b.times);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.to_string(),
            samples,
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.times);
        self
    }
}

/// Re-export matching criterion's `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function running each listed bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main()` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
