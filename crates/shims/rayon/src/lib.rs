//! Threaded stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors this drop-in shim instead of the real crate. Unlike
//! the original sequential stand-in, it **executes on real threads**: every
//! pipeline is driven by the `pt-par` fixed-worker pool (sized by
//! `PT_NUM_THREADS`, overridable with `pt_par::ThreadPool::install`). The
//! API surface is the subset the pwdft-rt crates use:
//!
//! * `(a..b).into_par_iter()`, `slice.par_iter()`, `slice.par_chunks(n)`,
//!   `slice.par_chunks_mut(n)`;
//! * adaptors `map`, `zip`, `enumerate`;
//! * consumers `for_each`, `for_each_init`, `collect`, `sum`, `count`, and
//!   the rayon-style `fold(init, f)` → `reduce(identity, op)` pair.
//!
//! [`ParallelIterator`] is a real trait (not a marker): it carries the
//! adaptors and consumers with rayon-shaped bounds, so generic code
//! written against `P: ParallelIterator<Item = T>` — and rustdoc links to
//! the methods — compile the same way as against crates.io rayon.
//!
//! # Execution model and determinism
//!
//! Items are delivered in fixed contiguous chunks whose decomposition
//! depends only on the item count (`pt_par::chunk_count`), each chunk is
//! processed in index order on one thread, and `fold`/`reduce`/`sum`
//! combine partial results in chunk order. Results are therefore
//! bit-identical for every thread count — a stronger guarantee than real
//! rayon (whose `fold` chunking is nondeterministic), and one valid rayon
//! schedule, so swapping in crates.io `rayon = "1"` (delete the shim entry
//! from `[workspace.dependencies]`) stays semantically correct.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::Mutex;

/// The rayon prelude: import all iterator extension traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Internal delivery target of a driven pipeline.
///
/// Contract (what [`ParallelIterator::drive`] guarantees): `accept` is
/// called exactly once per item; all items of one `chunk` arrive from a
/// single thread, in ascending `index` order; the chunk decomposition is
/// `pt_par::chunk_count(len)` / `pt_par::chunk_range`.
#[doc(hidden)]
pub trait Sink<T>: Sync {
    fn accept(&self, chunk: usize, index: usize, item: T);
}

/// Parallel iterator: mirrors `rayon::iter::ParallelIterator` (plus the
/// indexed-iterator methods `zip`/`enumerate`, which this shim's concrete
/// types all support).
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Exact number of items this pipeline will produce.
    #[doc(hidden)]
    fn len(&self) -> usize;

    /// Whether the pipeline will produce no items.
    #[doc(hidden)]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute the pipeline, pushing every item into `sink` (see [`Sink`]
    /// for the delivery contract). The closure stages of the pipeline run
    /// on the current `pt-par` pool.
    #[doc(hidden)]
    fn drive<S: Sink<Self::Item>>(self, sink: &S);

    /// Map each item through `f` (applied in parallel).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pair lock-step with a second parallel iterator (truncates to the
    /// shorter of the two).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Attach each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Consume every item with `f`, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        struct ForEach<'f, F>(&'f F);
        impl<T, F: Fn(T) + Sync> Sink<T> for ForEach<'_, F> {
            fn accept(&self, _chunk: usize, _index: usize, item: T) {
                (self.0)(item)
            }
        }
        self.drive(&ForEach(&f));
    }

    /// rayon's `for_each_init`: `init` runs once per worker chunk and the
    /// state is reused, in order, across that chunk's items.
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        T: Send,
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) + Sync,
    {
        struct ForEachInit<'f, T, INIT, F> {
            slots: Vec<Mutex<Option<T>>>,
            init: &'f INIT,
            f: &'f F,
        }
        impl<T, I, INIT, F> Sink<I> for ForEachInit<'_, T, INIT, F>
        where
            T: Send,
            INIT: Fn() -> T + Sync,
            F: Fn(&mut T, I) + Sync,
        {
            fn accept(&self, chunk: usize, _index: usize, item: I) {
                // uncontended: one thread owns a chunk for its whole life
                let mut slot = self.slots[chunk].lock().unwrap();
                let state = slot.get_or_insert_with(self.init);
                (self.f)(state, item);
            }
        }
        let slots = (0..pt_par::chunk_count(self.len()))
            .map(|_| Mutex::new(None))
            .collect();
        self.drive(&ForEachInit {
            slots,
            init: &init,
            f: &f,
        });
    }

    /// rayon's splittable `fold`: one accumulator per worker chunk, items
    /// folded in index order within the chunk. Executes eagerly; the
    /// returned iterator holds the per-chunk accumulators in chunk order.
    fn fold<T, INIT, F>(self, init: INIT, f: F) -> ParIter<T>
    where
        T: Send,
        INIT: Fn() -> T + Sync,
        F: Fn(T, Self::Item) -> T + Sync,
    {
        struct Fold<'f, T, INIT, F> {
            slots: Vec<Mutex<Option<T>>>,
            init: &'f INIT,
            f: &'f F,
        }
        impl<T, I, INIT, F> Sink<I> for Fold<'_, T, INIT, F>
        where
            T: Send,
            INIT: Fn() -> T + Sync,
            F: Fn(T, I) -> T + Sync,
        {
            fn accept(&self, chunk: usize, _index: usize, item: I) {
                let mut slot = self.slots[chunk].lock().unwrap();
                let acc = slot.take().unwrap_or_else(self.init);
                *slot = Some((self.f)(acc, item));
            }
        }
        let sink = Fold {
            slots: (0..pt_par::chunk_count(self.len()))
                .map(|_| Mutex::new(None))
                .collect(),
            init: &init,
            f: &f,
        };
        self.drive(&sink);
        ParIter {
            items: sink
                .slots
                .into_iter()
                .filter_map(|m| m.into_inner().unwrap())
                .collect(),
        }
    }

    /// rayon's `reduce`: combine all items starting from the identity, in
    /// deterministic chunk order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        self.materialize().into_iter().fold(identity(), op)
    }

    /// Collect into any `FromIterator` collection, preserving item order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.materialize().into_iter().collect()
    }

    /// Sum all items (the upstream pipeline runs in parallel; the final
    /// summation is sequential in item order, hence deterministic).
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.materialize().into_iter().sum()
    }

    /// Like [`ParallelIterator::collect_vec`], but skips the pool pass
    /// when the items are already materialized (the base iterator).
    #[doc(hidden)]
    fn materialize(self) -> Vec<Self::Item> {
        self.collect_vec()
    }

    /// Number of items. Like rayon's, this *consumes* the pipeline — all
    /// upstream stages (and their side effects) execute.
    fn count(self) -> usize {
        struct Drain;
        impl<T> Sink<T> for Drain {
            fn accept(&self, _chunk: usize, _index: usize, _item: T) {}
        }
        let n = self.len();
        self.drive(&Drain);
        n
    }

    /// Execute the pipeline in parallel, materializing the items in order.
    #[doc(hidden)]
    fn collect_vec(self) -> Vec<Self::Item> {
        let n = self.len();
        struct Collect<T> {
            base: RawBuf<T>,
        }
        impl<T: Send> Sink<T> for Collect<T> {
            fn accept(&self, _chunk: usize, index: usize, item: T) {
                // SAFETY: disjoint writes — `drive` delivers each `index`
                // exactly once and `index < n`, the buffer's length below.
                unsafe { self.base.0.add(index).write(MaybeUninit::new(item)) };
            }
        }
        let mut out: Vec<MaybeUninit<Self::Item>> = Vec::with_capacity(n);
        // SAFETY: MaybeUninit needs no initialization.
        unsafe { out.set_len(n) };
        self.drive(&Collect {
            base: RawBuf(out.as_mut_ptr()),
        });
        let mut out = ManuallyDrop::new(out);
        // SAFETY: drive delivered (and Collect wrote) every index once.
        unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<Self::Item>(), n, out.capacity()) }
    }
}

/// Raw buffer pointer for disjoint cross-thread writes.
struct RawBuf<T>(*mut MaybeUninit<T>);
// SAFETY: points into a `T: Send` buffer that `collect_vec` keeps alive
// while `drive` blocks; tasks write disjoint indices (one delivery per
// index), so sending the pointer across pool threads races nothing.
unsafe impl<T: Send> Send for RawBuf<T> {}
// SAFETY: shared use is address arithmetic plus those disjoint writes —
// no two threads ever touch the same slot.
unsafe impl<T: Send> Sync for RawBuf<T> {}

/// The base parallel iterator: a materialized list of items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn drive<S: Sink<T>>(self, sink: &S) {
        let n = self.items.len();
        let items = ManuallyDrop::new(self.items);
        let base = RawItems(items.as_ptr().cast_mut());
        pt_par::parallel_for_chunks(n, |chunk, range| {
            for i in range {
                // SAFETY: each index is read exactly once (disjoint chunks);
                // the ManuallyDrop above prevents a double drop. If a task
                // panics, unread items leak — safe, on a panicking path.
                let item = unsafe { std::ptr::read(base.get().add(i)) };
                sink.accept(chunk, i, item);
            }
        });
        // SAFETY: reconstitute the allocation with length 0 to free it —
        // every item was moved out by `ptr::read` above (or leaked on a
        // panicking path before we get here), so no element drops twice.
        drop(unsafe { Vec::from_raw_parts(base.get(), 0, items.capacity()) });
    }

    fn materialize(self) -> Vec<T> {
        self.items
    }
}

struct RawItems<T>(*mut T);
// SAFETY: points into the ManuallyDrop'd source Vec of a `drive` call,
// which outlives the blocking pool run; items are `T: Send` and each is
// `ptr::read` exactly once (disjoint chunk ranges).
unsafe impl<T: Send> Send for RawItems<T> {}
// SAFETY: shared use is disjoint single reads per index — never two
// threads at one slot.
unsafe impl<T: Send> Sync for RawItems<T> {}
impl<T> RawItems<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Adaptor returned by [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn drive<S: Sink<R>>(self, sink: &S) {
        struct MapSink<'f, F, S> {
            f: &'f F,
            inner: &'f S,
        }
        impl<T, R, F, S> Sink<T> for MapSink<'_, F, S>
        where
            F: Fn(T) -> R + Sync,
            S: Sink<R>,
        {
            fn accept(&self, chunk: usize, index: usize, item: T) {
                self.inner.accept(chunk, index, (self.f)(item));
            }
        }
        self.base.drive(&MapSink {
            f: &self.f,
            inner: sink,
        });
    }
}

/// Adaptor returned by [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn drive<S: Sink<(usize, P::Item)>>(self, sink: &S) {
        struct EnumSink<'f, S> {
            inner: &'f S,
        }
        impl<T, S: Sink<(usize, T)>> Sink<T> for EnumSink<'_, S> {
            fn accept(&self, chunk: usize, index: usize, item: T) {
                self.inner.accept(chunk, index, (index, item));
            }
        }
        self.base.drive(&EnumSink { inner: sink });
    }
}

/// Adaptor returned by [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn drive<S: Sink<(A::Item, B::Item)>>(self, sink: &S) {
        // materialize both sides (in parallel if they carry pipeline
        // stages, for free if they are base iterators), then drive the
        // pairs in one pool pass
        let a = self.a.materialize();
        let b = self.b.materialize();
        ParIter {
            items: a.into_iter().zip(b).collect(),
        }
        .drive(sink);
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<C: IntoIterator> IntoParallelIterator for C
where
    C::Item: Send,
{
    type Item = C::Item;
    type Iter = ParIter<C::Item>;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping `&[T]` chunks.
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping `&mut [T]` chunks.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn fold_then_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 4950);
    }

    #[test]
    fn chunks_mut_and_zip() {
        let mut a = vec![0i32; 6];
        let b = [1i32, 2, 3, 4, 5, 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks(2))
            .for_each(|(ca, cb)| {
                for (x, y) in ca.iter_mut().zip(cb) {
                    *x = 10 * y;
                }
            });
        assert_eq!(a, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn range_into_par_iter_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn enumerate_indices_are_stable_under_map() {
        let data = [10i64, 20, 30, 40];
        let v: Vec<(usize, i64)> = data.par_iter().map(|&x| x + 1).enumerate().collect();
        assert_eq!(v, vec![(0, 11), (1, 21), (2, 31), (3, 41)]);
    }

    #[test]
    fn for_each_init_initializes_once_per_chunk() {
        let inits = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        let data: Vec<usize> = (0..200).collect();
        data.par_iter().for_each_init(
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |state, &x| {
                *state += 1;
                sum.fetch_add(x, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 199 * 200 / 2);
        assert!(inits.load(Ordering::Relaxed) <= pt_par::chunk_count(200));
    }

    #[test]
    fn collect_preserves_order_in_parallel() {
        let pool = pt_par::ThreadPool::new(4);
        let v: Vec<usize> = pool.install(|| (0..500usize).into_par_iter().map(|i| 2 * i).collect());
        assert_eq!(v, (0..500).map(|i| 2 * i).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_is_bit_deterministic_across_thread_counts() {
        let run = |threads: usize| -> f64 {
            pt_par::ThreadPool::new(threads).install(|| {
                (0..5000usize)
                    .into_par_iter()
                    .map(|i| 1.0 / (1.0 + i as f64))
                    .fold(|| 0.0f64, |a, x| a + x)
                    .reduce(|| 0.0, |a, b| a + b)
            })
        };
        assert_eq!(run(1).to_bits(), run(4).to_bits());
    }

    #[test]
    fn generic_code_compiles_against_the_trait() {
        // the satellite regression: a generic bound on ParallelIterator
        // must expose the adaptors, exactly as with crates.io rayon
        fn doubled_sum<P: ParallelIterator<Item = u64>>(p: P) -> u64 {
            p.map(|x| 2 * x).sum()
        }
        assert_eq!(doubled_sum((0u64..10).into_par_iter()), 90);
    }

    #[test]
    fn mutable_chunks_see_every_chunk_once() {
        let seen = Mutex::new(Vec::new());
        let mut data = [0u8; 23];
        data.par_chunks_mut(5).enumerate().for_each(|(i, c)| {
            seen.lock().unwrap().push((i, c.len()));
        });
        let mut s = seen.into_inner().unwrap();
        s.sort_unstable();
        assert_eq!(s, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 3)]);
    }
}
