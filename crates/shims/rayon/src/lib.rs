//! Sequential stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors this drop-in shim instead of the real crate. It
//! implements — with identical *semantics*, minus the parallelism — exactly
//! the subset of rayon's parallel-iterator API that the pwdft-rt crates
//! use:
//!
//! * `(a..b).into_par_iter()`, `slice.par_iter()`, `slice.par_chunks(n)`,
//!   `slice.par_chunks_mut(n)`;
//! * adaptors `map`, `zip`, `enumerate`;
//! * consumers `for_each`, `for_each_init`, `collect`, `sum`, and the
//!   rayon-style `fold(init, f)` → `reduce(identity, op)` pair.
//!
//! Because execution is sequential, `fold` produces a single accumulator
//! and `reduce` simply folds it into the identity — numerically this is one
//! valid rayon schedule (the one-thread one), so results are bit-identical
//! to `rayon` with `RAYON_NUM_THREADS=1`.
//!
//! To restore real parallelism, delete the `rayon` entry from
//! `[workspace.dependencies]` in the workspace `Cargo.toml` and depend on
//! crates.io `rayon = "1"` instead; no source changes are needed.

/// The rayon prelude: import all iterator extension traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A "parallel" iterator — here a thin wrapper over a sequential one.
pub struct ParIter<I>(I);

/// Marker/extension trait mirroring `rayon::iter::ParallelIterator`.
///
/// The shim exposes the adaptors as inherent methods on [`ParIter`]; this
/// trait exists so `use rayon::prelude::*` keeps importing a name of the
/// same shape as the real crate.
pub trait ParallelIterator {}
impl<I: Iterator> ParallelIterator for ParIter<I> {}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// The wrapped sequential iterator type.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type SeqIter = C::IntoIter;
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T> {
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Sequential stand-in for `rayon`'s `par_chunks`.
    fn par_chunks(&self, chunk: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, chunk: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk))
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Sequential stand-in for `rayon`'s `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk))
    }
}

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Pair with a second parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Attach indices.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Consume with a side-effecting closure.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's `for_each_init`: the init value is created once per worker —
    /// sequentially, exactly once, reused across all items.
    pub fn for_each_init<T, Init, F>(self, mut init: Init, mut f: F)
    where
        Init: FnMut() -> T,
        F: FnMut(&mut T, I::Item),
    {
        let mut state = init();
        self.0.for_each(|item| f(&mut state, item));
    }

    /// rayon's splittable `fold`: yields one accumulator per worker chunk.
    /// Sequentially there is one chunk, hence one accumulator.
    pub fn fold<T, Init, F>(self, mut init: Init, f: F) -> ParIter<std::iter::Once<T>>
    where
        Init: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(init(), f)))
    }

    /// rayon's `reduce`: combine all items starting from the identity.
    pub fn reduce<Id, Op>(self, mut identity: Id, op: Op) -> I::Item
    where
        Id: FnMut() -> I::Item,
        Op: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum all items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_then_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let s: u64 = v
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 4950);
    }

    #[test]
    fn chunks_mut_and_zip() {
        let mut a = vec![0i32; 6];
        let b = [1i32, 2, 3, 4, 5, 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks(2))
            .for_each(|(ca, cb)| {
                for (x, y) in ca.iter_mut().zip(cb) {
                    *x = 10 * y;
                }
            });
        assert_eq!(a, vec![10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn range_into_par_iter_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn for_each_init_reuses_state() {
        let mut out = Vec::new();
        let data = [1, 2, 3];
        data.par_iter().for_each_init(
            || 100,
            |state, &x| {
                *state += x;
                out.push(*state);
            },
        );
        assert_eq!(out, vec![101, 103, 106]);
    }
}
