//! Minimal offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this shim supplies the
//! subset the workspace's property tests use: the `proptest!` macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! integer-range strategies (`1usize..80`), and `prop_assert!` /
//! `prop_assert_eq!`. Each property runs over `N` deterministic
//! xorshift-sampled cases (default 64) — no shrinking, no persistence, but
//! the same "run the body over many sampled inputs" semantics.

/// Run-count configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic xorshift64* sampler seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (the property's name).
    pub fn new(seed_str: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in seed_str.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A sampleable input domain (integer ranges only — all this workspace uses).
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

/// Everything the `proptest!` macro body needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property (no early-return Result plumbing in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@items ($cfg:expr)) => {};
    (@items ($cfg:expr)
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!{ @items ($cfg) $($rest)* }
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @items ($cfg) $($rest)* }
    };
    (#[test] $($rest:tt)*) => {
        $crate::proptest!{ @items ($crate::ProptestConfig::default()) #[test] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn samples_stay_in_range(n in 3usize..10, seed in 0u64..100) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(seed < 100);
        }

        #[test]
        fn arithmetic_property(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new("x");
        let mut b = TestRng::new("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
