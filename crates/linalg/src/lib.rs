//! `pt-linalg` — dense complex linear algebra for the plane-wave stack.
//!
//! The paper's matrix work splits into two shapes:
//!
//! * **tall-skinny** `N_G × N_e` wavefunction blocks: overlap matrices
//!   `S = Ψ^H (HΨ)` (Alg. 3 line 2), subspace rotations `Ψ S`, and the
//!   Cholesky-based re-orthogonalization at the end of every PT-CN step
//!   (§3.4). These are [`gemm`]/[`herk`]-style kernels, panel-parallel
//!   over the `pt-par` pool (standing in for CUBLAS on the V100s).
//! * **tiny** `≤ 20×20` Anderson least-squares problems and `N_e × N_e`
//!   subspace eigenproblems, handled by [`lstsq`] (regularized normal
//!   equations) and [`eigh`] (cyclic complex Jacobi).

mod eig;
mod mat;
mod solve;

pub use eig::eigh;
pub use mat::{CMat, Op};
pub use solve::{
    cholesky_in_place, lstsq, orthonormalize_columns, solve_lower, solve_upper_conj, trsm_right_lh,
    try_cholesky_in_place,
};

pub use mat::{gemm, herk};
