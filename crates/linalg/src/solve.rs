//! Triangular factorizations and solves.
//!
//! The PT-CN step ends with re-orthogonalization (paper §3.4): form the
//! overlap `S = Ψ^H Ψ`, Cholesky-factor it on one rank (cuSOLVER in the
//! paper), then apply `Ψ ← Ψ L^{-H}` with a triangular solve (`Trsm`).
//! [`lstsq`] solves the tiny (≤ 20 unknowns) Anderson mixing problems.

use crate::mat::CMat;
use pt_num::c64;

/// In-place lower Cholesky factorization `A = L L^H` of a Hermitian
/// positive-definite matrix. On return the lower triangle (incl. diagonal)
/// holds `L`; the strict upper triangle is zeroed. Panics if a pivot is not
/// positive (matrix not PD — e.g. linearly dependent orbitals).
pub fn cholesky_in_place(a: &mut CMat) {
    if let Err((j, d)) = try_cholesky_in_place(a) {
        panic!("cholesky: non-positive pivot {d:.3e} at column {j} (matrix not PD)");
    }
}

/// Fallible variant of [`cholesky_in_place`]: returns `Err((column, pivot))`
/// at the first non-positive pivot instead of panicking, so callers feeding
/// possibly rank-deficient matrices (e.g. the ACE Gram matrix of degenerate
/// orbitals) can surface a typed error. On `Err` the matrix contents are
/// unspecified (partially factored).
pub fn try_cholesky_in_place(a: &mut CMat) -> Result<(), (usize, f64)> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "cholesky: square matrix required");
    for j in 0..n {
        // diagonal pivot
        let mut d = a[(j, j)].re;
        for k in 0..j {
            d -= a[(j, k)].norm_sqr();
        }
        // a NaN pivot (from non-finite input) must fail like a non-positive one
        if d.is_nan() || d <= 0.0 {
            return Err((j, d));
        }
        let ljj = d.sqrt();
        a[(j, j)] = c64::real(ljj);
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= a[(i, k)] * a[(j, k)].conj();
            }
            a[(i, j)] = v / ljj;
        }
        for i in 0..j {
            a[(i, j)] = c64::ZERO;
        }
    }
    Ok(())
}

/// Solve `L y = b` with `L` lower triangular (forward substitution).
pub fn solve_lower(l: &CMat, b: &[c64]) -> Vec<c64> {
    let n = l.nrows();
    assert_eq!(b.len(), n);
    let mut y = vec![c64::ZERO; n];
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= l[(i, k)] * y[k];
        }
        y[i] = v / l[(i, i)];
    }
    y
}

/// Solve `L^H x = y` with `L` lower triangular (back substitution on the
/// conjugate transpose).
pub fn solve_upper_conj(l: &CMat, y: &[c64]) -> Vec<c64> {
    let n = l.nrows();
    assert_eq!(y.len(), n);
    let mut x = vec![c64::ZERO; n];
    for i in (0..n).rev() {
        let mut v = y[i];
        for k in (i + 1)..n {
            v -= l[(k, i)].conj() * x[k];
        }
        x[i] = v / l[(i, i)].conj();
    }
    x
}

/// Right triangular solve `X ← X · L^{-H}` (i.e. solve `X_new · L^H = X`)
/// with `L` lower triangular. This is exactly the orthogonalization rotation
/// `Ψ ← Ψ L^{-H}` after Cholesky of the overlap matrix.
pub fn trsm_right_lh(x: &mut CMat, l: &CMat) {
    let n = l.nrows();
    assert_eq!(n, l.ncols());
    assert_eq!(x.ncols(), n, "trsm: X columns must match L order");
    let m = x.nrows();
    // (X L^H)[:,j] = Σ_{i<=j} X[:,i] conj(L[j,i]);
    // solve columns in increasing j.
    for j in 0..n {
        // subtract contributions of already-solved columns
        for i in 0..j {
            let coef = l[(j, i)].conj();
            if coef != c64::ZERO {
                // X[:,j] -= X[:,i] * coef — need split borrows
                let (lo, hi) = x.data_mut().split_at_mut(j * m);
                let xi = &lo[i * m..(i + 1) * m];
                let xj = &mut hi[..m];
                for (a, b) in xj.iter_mut().zip(xi) {
                    *a -= *b * coef;
                }
            }
        }
        let d = l[(j, j)].conj();
        for v in x.col_mut(j) {
            *v = *v / d;
        }
    }
}

/// Orthonormalize the columns of `x` in place: overlap `S = X^H X`,
/// Cholesky `S = L L^H`, then `X ← X L^{-H}` (paper §3.4). `ridge` is
/// added to the diagonal of `S` before factoring; pass 0 for exact
/// orthonormalization of a well-conditioned block, or a tiny shift
/// (e.g. 1e-12) to keep nearly linearly dependent columns factorable.
pub fn orthonormalize_columns(x: &mut CMat, ridge: f64) {
    let n = x.ncols();
    let mut s = CMat::zeros(n, n);
    crate::mat::gemm(
        c64::ONE,
        x,
        crate::mat::Op::ConjTrans,
        x,
        crate::mat::Op::None,
        c64::ZERO,
        &mut s,
    );
    if ridge != 0.0 {
        for i in 0..n {
            s[(i, i)] += c64::real(ridge);
        }
    }
    cholesky_in_place(&mut s);
    trsm_right_lh(x, &s);
}

/// Least squares `min_x ‖A x − b‖₂` via regularized normal equations
/// `(A^H A + ridge·I) x = A^H b`.
///
/// Used for Anderson mixing (history ≤ 20, so normal equations are cheap
/// and the ridge keeps nearly linearly dependent histories harmless —
/// PWDFT does the same with its up-to-20-deep mixing memory).
pub fn lstsq(a: &CMat, b: &[c64], ridge: f64) -> Vec<c64> {
    let k = a.ncols();
    assert_eq!(a.nrows(), b.len());
    let mut g = CMat::zeros(k, k);
    crate::mat::gemm(
        c64::ONE,
        a,
        crate::mat::Op::ConjTrans,
        a,
        crate::mat::Op::None,
        c64::ZERO,
        &mut g,
    );
    // scale-aware ridge
    let trace: f64 = pt_num::reduce::sum_f64((0..k).map(|i| g[(i, i)].re));
    let eps = ridge * (trace / k.max(1) as f64).max(1e-300);
    for i in 0..k {
        g[(i, i)] += c64::real(eps);
    }
    let mut rhs = vec![c64::ZERO; k];
    for (i, r) in rhs.iter_mut().enumerate() {
        *r = pt_num::complex::zdotc(a.col(i), b);
    }
    cholesky_in_place(&mut g);
    let y = solve_lower(&g, &rhs);
    solve_upper_conj(&g, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::{gemm, Op};

    fn randm(nr: usize, nc: usize, seed: u64) -> CMat {
        let mut rng = pt_num::rng::XorShift64::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        CMat::from_fn(nr, nc, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        })
    }

    fn rand_hpd(n: usize, seed: u64) -> CMat {
        let a = randm(n + 3, n, seed);
        let mut g = CMat::zeros(n, n);
        gemm(c64::ONE, &a, Op::ConjTrans, &a, Op::None, c64::ZERO, &mut g);
        for i in 0..n {
            g[(i, i)] += c64::real(0.5);
        }
        g
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = rand_hpd(7, 11);
        let mut l = a.clone();
        cholesky_in_place(&mut l);
        // L L^H == A
        let lh = l.dagger();
        let mut back = CMat::zeros(7, 7);
        gemm(c64::ONE, &l, Op::None, &lh, Op::None, c64::ZERO, &mut back);
        assert!(back.max_diff(&a) < 1e-11, "diff {}", back.max_diff(&a));
    }

    #[test]
    #[should_panic(expected = "non-positive pivot")]
    fn cholesky_rejects_indefinite() {
        let mut a = CMat::eye(3);
        a[(2, 2)] = c64::real(-1.0);
        cholesky_in_place(&mut a);
    }

    #[test]
    fn try_cholesky_reports_column_and_pivot() {
        let mut a = CMat::eye(3);
        a[(2, 2)] = c64::real(-1.5);
        let (j, d) = try_cholesky_in_place(&mut a).unwrap_err();
        assert_eq!(j, 2);
        assert!((d + 1.5).abs() < 1e-12, "pivot {d}");
        // a PD matrix still factors through the fallible path
        let good = rand_hpd(5, 17);
        let mut l = good.clone();
        try_cholesky_in_place(&mut l).unwrap();
        let lh = l.dagger();
        let mut back = CMat::zeros(5, 5);
        gemm(c64::ONE, &l, Op::None, &lh, Op::None, c64::ZERO, &mut back);
        assert!(back.max_diff(&good) < 1e-11);
    }

    #[test]
    fn triangular_solves_invert() {
        let a = rand_hpd(6, 5);
        let mut l = a.clone();
        cholesky_in_place(&mut l);
        let b: Vec<c64> = (0..6)
            .map(|i| c64::new(i as f64 + 0.5, -(i as f64)))
            .collect();
        let y = solve_lower(&l, &b);
        let x = solve_upper_conj(&l, &y);
        // A x should equal b
        let xm = CMat::from_vec(6, 1, x);
        let mut ax = CMat::zeros(6, 1);
        gemm(c64::ONE, &a, Op::None, &xm, Op::None, c64::ZERO, &mut ax);
        for i in 0..6 {
            assert!((ax[(i, 0)] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn trsm_orthogonalizes() {
        // Ψ ← Ψ L^{-H} with S = Ψ^H Ψ = L L^H must give Ψ^H Ψ = I
        let mut psi = randm(40, 6, 21);
        orthonormalize_columns(&mut psi, 0.0);
        let mut id = CMat::zeros(6, 6);
        gemm(
            c64::ONE,
            &psi,
            Op::ConjTrans,
            &psi,
            Op::None,
            c64::ZERO,
            &mut id,
        );
        assert!(
            id.max_diff(&CMat::eye(6)) < 1e-11,
            "{}",
            id.max_diff(&CMat::eye(6))
        );
    }

    #[test]
    fn ridge_keeps_nearly_dependent_columns_factorable() {
        // two almost-parallel columns: exact Cholesky of the overlap is on
        // the edge of a non-positive pivot; the ridge keeps it factorable
        let base = randm(40, 1, 33);
        let mut x = CMat::zeros(40, 2);
        for i in 0..40 {
            x[(i, 0)] = base[(i, 0)];
            x[(i, 1)] = base[(i, 0)].scale(1.0 + 1e-9) + c64::new(1e-9 * (i as f64), 0.0);
        }
        orthonormalize_columns(&mut x, 1e-12);
        for j in 0..2 {
            let nrm = pt_num::complex::znrm2(x.col(j));
            assert!(nrm.is_finite() && nrm > 0.0);
        }
    }

    #[test]
    fn lstsq_exact_on_consistent_system() {
        let a = randm(10, 4, 31);
        let xtrue: Vec<c64> = (0..4)
            .map(|i| c64::new(1.0 + i as f64, -0.5 * i as f64))
            .collect();
        let xm = CMat::from_vec(4, 1, xtrue.clone());
        let mut bm = CMat::zeros(10, 1);
        gemm(c64::ONE, &a, Op::None, &xm, Op::None, c64::ZERO, &mut bm);
        let x = lstsq(&a, bm.col(0), 0.0);
        for i in 0..4 {
            assert!(
                (x[i] - xtrue[i]).abs() < 1e-9,
                "{:?} vs {:?}",
                x[i],
                xtrue[i]
            );
        }
    }

    #[test]
    fn lstsq_ridge_handles_dependent_columns() {
        // two identical columns: without a ridge the normal equations are
        // singular; with it the solve must not panic and must fit b.
        let mut a = randm(8, 2, 41);
        let c0: Vec<c64> = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&c0);
        let b: Vec<c64> = a.col(0).to_vec();
        let x = lstsq(&a, &b, 1e-10);
        // residual should be ~0: x0 + x1 ≈ 1
        let s = x[0] + x[1];
        assert!((s - c64::ONE).abs() < 1e-4, "{s:?}");
    }
}
