//! Hermitian eigensolver (cyclic complex Jacobi).
//!
//! PWDFT's subspace problems are small — `N_e × N_e` Rayleigh–Ritz matrices
//! in the ground-state solver and `Ψ^H H Ψ` projections in the PT residual —
//! so a robust O(n³)-per-sweep Jacobi iteration is the right tool: simple,
//! unconditionally stable, and it delivers orthonormal eigenvectors to
//! machine precision, which the Cholesky-based orthogonalization downstream
//! relies on.
//!
//! Rotation construction: for the pivot pair (p, q) with `g = M[p,q] =
//! |g| e^{iφ}`, the unitary
//! `J = [[c, s·e^{iφ}], [−s·e^{−iφ}, c]]` (c, s real from the usual real
//! Jacobi tangent with `τ = (M_qq − M_pp) / 2|g|`) annihilates the
//! off-diagonal entry of the (p, q) block of `J^H M J`.

use crate::mat::CMat;
use pt_num::c64;

/// Eigendecomposition of a Hermitian matrix: returns `(eigenvalues
/// ascending, eigenvectors as columns)` with `A ≈ V diag(λ) V^H`.
///
/// The input is symmetrized (`(A + A^H)/2`) first, so tiny Hermiticity
/// violations from accumulated roundoff are tolerated.
pub fn eigh(a: &CMat) -> (Vec<f64>, CMat) {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh: square matrix required");
    let mut m = CMat::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            m[(i, j)] = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
        }
    }
    let mut v = CMat::eye(n);
    let scale = 1.0 + m.norm_fro();
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for j in 0..n {
            for i in 0..j {
                off += m[(i, j)].norm_sqr();
            }
        }
        if off.sqrt() < 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                rotate(&mut m, &mut v, p, q);
            }
        }
    }
    // extract and sort ascending
    let mut idx: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&a, &b| evals[a].partial_cmp(&evals[b]).unwrap());
    let mut lam = Vec::with_capacity(n);
    let mut vecs = CMat::zeros(n, n);
    for (new_j, &old_j) in idx.iter().enumerate() {
        lam.push(evals[old_j]);
        let src: Vec<c64> = v.col(old_j).to_vec();
        vecs.col_mut(new_j).copy_from_slice(&src);
    }
    (lam, vecs)
}

/// One two-sided Jacobi rotation on the (p, q) pivot.
fn rotate(m: &mut CMat, v: &mut CMat, p: usize, q: usize) {
    let n = m.nrows();
    let g = m[(p, q)];
    let gabs = g.abs();
    if gabs < 1e-300 {
        return;
    }
    let app = m[(p, p)].re;
    let aqq = m[(q, q)].re;
    let phase = g.scale(1.0 / gabs); // e^{iφ}
    let tau = (aqq - app) / (2.0 * gabs);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    let s_phase = phase.scale(s); // s e^{iφ}
    let s_phase_c = phase.conj().scale(s); // s e^{-iφ}

    // M ← M J   (columns p, q)
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = mkp.scale(c) - mkq * s_phase_c;
        m[(k, q)] = mkp * s_phase + mkq.scale(c);
    }
    // M ← J^H M (rows p, q)
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = mpk.scale(c) - mqk * s_phase;
        m[(q, k)] = mpk * s_phase_c + mqk.scale(c);
    }
    // keep the pivot block exactly Hermitian against roundoff drift
    m[(p, q)] = c64::ZERO;
    m[(q, p)] = c64::ZERO;
    let dp = m[(p, p)].re;
    let dq = m[(q, q)].re;
    m[(p, p)] = c64::real(dp);
    m[(q, q)] = c64::real(dq);

    // V ← V J
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = vkp.scale(c) - vkq * s_phase_c;
        v[(k, q)] = vkp * s_phase + vkq.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::{gemm, Op};

    fn rand_herm(n: usize, seed: u64) -> CMat {
        let mut rng = pt_num::rng::XorShift64::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let raw = CMat::from_fn(n, n, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        });
        let mut h = CMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                h[(i, j)] = (raw[(i, j)] + raw[(j, i)].conj()).scale(0.5);
            }
        }
        h
    }

    #[test]
    fn diagonal_matrix_is_its_own_answer() {
        let mut d = CMat::zeros(4, 4);
        for (i, val) in [3.0, -1.0, 2.0, 0.5].into_iter().enumerate() {
            d[(i, i)] = c64::real(val);
        }
        let (lam, _v) = eigh(&d);
        assert_eq!(lam.len(), 4);
        let want = [-1.0, 0.5, 2.0, 3.0];
        for (a, b) in lam.iter().zip(want) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn known_2x2_complex() {
        // H = [[1, i], [-i, 1]] has eigenvalues 0 and 2.
        let mut h = CMat::zeros(2, 2);
        h[(0, 0)] = c64::ONE;
        h[(0, 1)] = c64::I;
        h[(1, 0)] = -c64::I;
        h[(1, 1)] = c64::ONE;
        let (lam, v) = eigh(&h);
        assert!((lam[0] - 0.0).abs() < 1e-14 && (lam[1] - 2.0).abs() < 1e-14);
        // check residual H v = λ v
        #[allow(clippy::needless_range_loop)] // j indexes v and lam together
        for j in 0..2 {
            let col = CMat::from_vec(2, 1, v.col(j).to_vec());
            let mut hv = CMat::zeros(2, 1);
            gemm(c64::ONE, &h, Op::None, &col, Op::None, c64::ZERO, &mut hv);
            for i in 0..2 {
                assert!((hv[(i, 0)] - col[(i, 0)].scale(lam[j])).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn random_hermitian_decomposition() {
        for n in [1usize, 2, 3, 5, 8, 13, 20] {
            let h = rand_herm(n, n as u64 * 7 + 1);
            let (lam, v) = eigh(&h);
            // ascending
            for w in lam.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            // V unitary
            let mut vhv = CMat::zeros(n, n);
            gemm(
                c64::ONE,
                &v,
                Op::ConjTrans,
                &v,
                Op::None,
                c64::ZERO,
                &mut vhv,
            );
            assert!(vhv.max_diff(&CMat::eye(n)) < 1e-11, "n={n}");
            // H V = V Λ
            let mut hv = CMat::zeros(n, n);
            gemm(c64::ONE, &h, Op::None, &v, Op::None, c64::ZERO, &mut hv);
            let mut vl = v.clone();
            #[allow(clippy::needless_range_loop)] // j indexes vl and lam together
            for j in 0..n {
                for z in vl.col_mut(j) {
                    *z = z.scale(lam[j]);
                }
            }
            assert!(hv.max_diff(&vl) < 1e-10, "n={n} resid {}", hv.max_diff(&vl));
        }
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let n = 9;
        let h = rand_herm(n, 77);
        let (lam, _) = eigh(&h);
        let tr: f64 = (0..n).map(|i| h[(i, i)].re).sum();
        let tr_l: f64 = lam.iter().sum();
        assert!((tr - tr_l).abs() < 1e-11);
        let fro2: f64 = h.data().iter().map(|z| z.norm_sqr()).sum();
        let fro2_l: f64 = lam.iter().map(|l| l * l).sum();
        assert!((fro2 - fro2_l).abs() < 1e-10 * (1.0 + fro2));
    }
}
