//! Column-major complex matrices and BLAS-3 style kernels.

use pt_num::c64;
use pt_num::complex::{zaxpy, zdotc};
use std::fmt;

/// How an operand enters a product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Use the matrix as stored.
    None,
    /// Use the conjugate transpose.
    ConjTrans,
}

/// Dense complex matrix, column-major (columns are contiguous — the natural
/// layout for band-index storage of wavefunctions, where each column is one
/// orbital's plane-wave coefficients).
#[derive(Clone, PartialEq)]
pub struct CMat {
    nrows: usize,
    ncols: usize,
    data: Vec<c64>,
}

impl CMat {
    /// Zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CMat {
            nrows,
            ncols,
            data: vec![c64::ZERO; nrows * ncols],
        }
    }

    /// Identity.
    pub fn eye(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64::ONE;
        }
        m
    }

    /// Build from a function of (row, col).
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> c64) -> Self {
        let mut m = CMat::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Wrap an existing column-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<c64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        CMat { nrows, ncols, data }
    }

    /// Deterministic random block with unit-norm columns — the standard
    /// stand-in for an orbital block in tests and benchmarks. Same seed,
    /// same block.
    pub fn rand_normalized(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = pt_num::rng::XorShift64::new(seed | 1);
        let mut m = CMat::from_fn(nrows, ncols, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        });
        for j in 0..ncols {
            let nrm = pt_num::complex::znrm2(m.col(j));
            for z in m.col_mut(j) {
                *z = z.scale(1.0 / nrm);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw column-major data.
    #[inline]
    pub fn data(&self) -> &[c64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [c64] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[c64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [c64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> CMat {
        let mut out = CMat::zeros(self.ncols, self.nrows);
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        pt_num::reduce::sum_f64(self.data.iter().map(|z| z.norm_sqr())).sqrt()
    }

    /// Max |A - B| entry; panics on shape mismatch.
    pub fn max_diff(&self, other: &CMat) -> f64 {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        pt_num::reduce::max_f64(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (*a - *b).abs()),
        )
    }

    /// Hermitian deviation ‖A − A^H‖_max (for n×n matrices).
    pub fn hermiticity_error(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        let mut e = 0.0f64;
        for j in 0..self.ncols {
            for i in 0..=j {
                e = e.max((self[(i, j)] - self[(j, i)].conj()).abs());
            }
        }
        e
    }

    /// Scale every entry.
    pub fn scale_in_place(&mut self, s: f64) {
        for z in &mut self.data {
            *z = z.scale(s);
        }
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = c64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &c64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i + j * self.nrows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut c64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i + j * self.nrows]
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:?}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Width (in columns) of the output panels one GEMM pool task owns:
/// roughly four panels per pool thread for load balance, at least one
/// column. Each output column is computed independently and identically
/// whatever the panel width, so this may depend on the thread count
/// without breaking bit-determinism.
fn panel_cols(ncols: usize) -> usize {
    ncols.div_ceil(4 * pt_par::current_num_threads()).max(1)
}

/// General matrix multiply `C = alpha * op(A) * op(B) + beta * C`,
/// panel-parallel over blocks of output columns (each pool task owns a
/// contiguous panel of `C`, standing in for one CUBLAS stream of §3.2).
///
/// Supported op combinations: (None, None) — rotations like `Ψ S`; and
/// (ConjTrans, None) — overlap matrices like `Ψ^H (HΨ)`. These are the two
/// shapes PWDFT needs (Alg. 3); other combinations panic.
pub fn gemm(alpha: c64, a: &CMat, opa: Op, b: &CMat, opb: Op, beta: c64, c: &mut CMat) {
    // standard complex-GEMM flops model (8·m·n·k) for §7-style attribution
    let k = match opa {
        Op::None => a.ncols,
        Op::ConjTrans => a.nrows,
    };
    pt_trace::counter_add(
        pt_trace::Counter::GemmFlops,
        8 * (c.nrows as u64) * (c.ncols as u64) * (k as u64),
    );
    let panel = panel_cols(c.ncols);
    match (opa, opb) {
        (Op::None, Op::None) => {
            assert_eq!(a.ncols, b.nrows, "gemm nn: inner dims");
            assert_eq!(c.nrows, a.nrows);
            assert_eq!(c.ncols, b.ncols);
            let m = a.nrows;
            if m == 0 {
                // zero-row output (e.g. a rank owning no sphere rows in
                // the distributed G-space layout): nothing to compute
                return;
            }
            pt_par::parallel_chunks_mut(&mut c.data, m * panel, |p, cpanel| {
                for (dj, ccol) in cpanel.chunks_mut(m).enumerate() {
                    let j = p * panel + dj;
                    for z in ccol.iter_mut() {
                        *z *= beta;
                    }
                    for l in 0..a.ncols {
                        let blj = alpha * b[(l, j)];
                        if blj != c64::ZERO {
                            zaxpy(blj, a.col(l), ccol);
                        }
                    }
                }
            });
        }
        (Op::ConjTrans, Op::None) => {
            assert_eq!(a.nrows, b.nrows, "gemm cn: inner dims");
            assert_eq!(c.nrows, a.ncols);
            assert_eq!(c.ncols, b.ncols);
            let m = a.ncols;
            if m == 0 {
                return;
            }
            pt_par::parallel_chunks_mut(&mut c.data, m * panel, |p, cpanel| {
                for (dj, ccol) in cpanel.chunks_mut(m).enumerate() {
                    let bj = b.col(p * panel + dj);
                    for (i, z) in ccol.iter_mut().enumerate() {
                        *z = *z * beta + alpha * zdotc(a.col(i), bj);
                    }
                }
            });
        }
        _ => panic!("gemm: unsupported op combination {opa:?},{opb:?}"),
    }
}

/// Hermitian rank-k update `C = alpha * A^H A + beta * C` exploiting
/// Hermitian symmetry: the upper-triangle columns are computed in parallel
/// (one pool task per column, mirroring the GEMM panel split) and then
/// mirrored.
pub fn herk(alpha: f64, a: &CMat, beta: f64, c: &mut CMat) {
    assert_eq!(c.nrows, a.ncols);
    assert_eq!(c.ncols, a.ncols);
    let n = a.ncols;
    let cols: Vec<Vec<c64>> = pt_par::parallel_map(n, |j| {
        let aj = a.col(j);
        (0..=j).map(|i| zdotc(a.col(i), aj).scale(alpha)).collect()
    });
    for j in 0..n {
        for i in 0..=j {
            let v = cols[j][i] + c[(i, j)].scale(beta);
            c[(i, j)] = v;
            if i != j {
                c[(j, i)] = v.conj();
            } else {
                c[(i, j)] = c64::real(v.re); // enforce real diagonal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn randm(nr: usize, nc: usize, seed: u64) -> CMat {
        let mut rng =
            pt_num::rng::XorShift64::new(seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7));
        CMat::from_fn(nr, nc, |_, _| {
            c64::new(rng.next_centered(), rng.next_centered())
        })
    }

    fn naive_mul(a: &CMat, b: &CMat) -> CMat {
        let mut c = CMat::zeros(a.nrows(), b.ncols());
        for j in 0..b.ncols() {
            for i in 0..a.nrows() {
                let mut acc = c64::ZERO;
                for l in 0..a.ncols() {
                    acc += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let a = randm(13, 7, 1);
        let b = randm(7, 5, 2);
        let want = naive_mul(&a, &b);
        let mut c = CMat::zeros(13, 5);
        gemm(c64::ONE, &a, Op::None, &b, Op::None, c64::ZERO, &mut c);
        assert!(c.max_diff(&want) < 1e-12);
    }

    #[test]
    fn gemm_cn_matches_naive() {
        let a = randm(11, 4, 3);
        let b = randm(11, 6, 4);
        let want = naive_mul(&a.dagger(), &b);
        let mut c = CMat::zeros(4, 6);
        gemm(c64::ONE, &a, Op::ConjTrans, &b, Op::None, c64::ZERO, &mut c);
        assert!(c.max_diff(&want) < 1e-12);
    }

    #[test]
    fn gemm_handles_empty_extents() {
        // zero-row operands show up when a distributed rank owns no
        // sphere rows; gemm must be a no-op, not a panic
        let a0 = CMat::zeros(0, 3);
        let b0 = CMat::zeros(3, 2);
        let mut c_nn = CMat::zeros(0, 2);
        gemm(c64::ONE, &a0, Op::None, &b0, Op::None, c64::ZERO, &mut c_nn);
        let b_e = CMat::zeros(0, 2);
        let mut c_cn = CMat::zeros(3, 2);
        c_cn[(0, 0)] = c64::ONE;
        gemm(
            c64::ONE,
            &a0,
            Op::ConjTrans,
            &b_e,
            Op::None,
            c64::ZERO,
            &mut c_cn,
        );
        // empty inner dimension: beta still applied (here: zeroing)
        assert!(c_cn.data().iter().all(|z| *z == c64::ZERO));
        let a_c = CMat::zeros(4, 0);
        let b_c = CMat::zeros(4, 2);
        let mut c_0 = CMat::zeros(0, 2);
        gemm(
            c64::ONE,
            &a_c,
            Op::ConjTrans,
            &b_c,
            Op::None,
            c64::ZERO,
            &mut c_0,
        );
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = randm(6, 6, 5);
        let b = randm(6, 6, 6);
        let c0 = randm(6, 6, 7);
        let alpha = c64::new(0.5, -1.0);
        let beta = c64::new(-0.25, 0.75);
        let mut c = c0.clone();
        gemm(alpha, &a, Op::None, &b, Op::None, beta, &mut c);
        let mut want = naive_mul(&a, &b);
        for j in 0..6 {
            for i in 0..6 {
                want[(i, j)] = alpha * want[(i, j)] + beta * c0[(i, j)];
            }
        }
        assert!(c.max_diff(&want) < 1e-12);
    }

    #[test]
    fn herk_matches_gemm() {
        let a = randm(20, 5, 8);
        let mut c1 = CMat::zeros(5, 5);
        herk(2.0, &a, 0.0, &mut c1);
        let mut c2 = CMat::zeros(5, 5);
        gemm(
            c64::real(2.0),
            &a,
            Op::ConjTrans,
            &a,
            Op::None,
            c64::ZERO,
            &mut c2,
        );
        assert!(c1.max_diff(&c2) < 1e-12);
        assert!(c1.hermiticity_error() < 1e-15);
    }

    #[test]
    fn dagger_involution() {
        let a = randm(4, 9, 9);
        assert!(a.dagger().dagger().max_diff(&a) < 1e-15);
    }
}
