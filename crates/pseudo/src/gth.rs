//! GTH pseudopotential parameter sets (Goedecker–Teter–Hutter, PRB 54,
//! 1703 (1996), LDA-fitted).
//!
//! The local channel is
//! `V_loc(r) = −Z_ion/r · erf(r/(√2 r_loc)) + exp(−(r/r_loc)²/2) ·
//!  [C₁ + C₂ (r/r_loc)² + …]`
//! and each angular momentum `l` carries up to two separable Gaussian
//! projectors with coupling constants `h_i` (the '96 parametrization is
//! diagonal in `i`).

use pt_lattice::Species;

/// Parameters of one GTH pseudopotential.
#[derive(Clone, Debug, PartialEq)]
pub struct GthParams {
    /// Element these parameters describe.
    pub species: Species,
    /// Valence charge Z_ion.
    pub z_ion: f64,
    /// Local range r_loc (bohr).
    pub r_loc: f64,
    /// Local polynomial coefficients C₁..C₄ (unused entries zero).
    pub c: [f64; 4],
    /// Per-l channels: (l, r_l, [h₁, h₂]) with h₂ = 0 when absent.
    pub channels: Vec<(usize, f64, [f64; 2])>,
}

/// Published GTH'96 LDA parameters for the species used in this repo.
pub fn gth_parameters(species: Species) -> GthParams {
    match species {
        Species::H => GthParams {
            species,
            z_ion: 1.0,
            r_loc: 0.2,
            c: [-4.180_237, 0.725_075, 0.0, 0.0],
            channels: vec![],
        },
        Species::C => GthParams {
            species,
            z_ion: 4.0,
            r_loc: 0.346_473,
            c: [-8.575_33, 1.234_13, 0.0, 0.0],
            channels: vec![(0, 0.304_553, [9.534_188, 0.0])],
        },
        Species::Si => GthParams {
            species,
            z_ion: 4.0,
            r_loc: 0.44,
            c: [-7.336_103, 0.0, 0.0, 0.0],
            channels: vec![
                (0, 0.422_738, [5.906_928, 3.258_196]),
                (1, 0.484_278, [2.727_013, 0.0]),
            ],
        },
    }
}

impl GthParams {
    /// Local potential in real space, `V_loc(r)` (Ha), for testing the
    /// reciprocal-space construction against direct evaluation.
    pub fn v_loc_real(&self, r: f64) -> f64 {
        let rl = self.r_loc;
        let x = r / rl;
        let gauss = (-0.5 * x * x).exp();
        let poly = self.c[0] + self.c[1] * x * x + self.c[2] * x.powi(4) + self.c[3] * x.powi(6);
        let coulomb = if r < 1e-10 {
            // erf(y)/y → 2/√π as y → 0
            -self.z_ion * (2.0 / std::f64::consts::PI.sqrt()) / (2.0f64.sqrt() * rl)
        } else {
            -self.z_ion * pt_num::erf(r / (2.0f64.sqrt() * rl)) / r
        };
        coulomb + gauss * poly
    }

    /// Fourier transform of the local potential for |G| = g ≠ 0, per unit
    /// volume Ω (i.e. the plane-wave matrix element ⟨G|V|G'⟩ depends on
    /// this divided by Ω — the division is done by the caller).
    pub fn v_loc_g(&self, g: f64) -> f64 {
        assert!(g > 0.0);
        let rl = self.r_loc;
        let x2 = (g * rl) * (g * rl);
        let e = (-0.5 * x2).exp();
        let pref = (8.0 * std::f64::consts::PI.powi(3)).sqrt() * rl.powi(3);
        let poly = self.c[0]
            + self.c[1] * (3.0 - x2)
            + self.c[2] * (15.0 - 10.0 * x2 + x2 * x2)
            + self.c[3] * (105.0 - 105.0 * x2 + 21.0 * x2 * x2 - x2.powi(3));
        -4.0 * std::f64::consts::PI * self.z_ion / (g * g) * e + pref * e * poly
    }

    /// The G = 0 limit with the divergent Coulomb part removed:
    /// `∫ (V_loc(r) + Z_ion/r) d³r` — the "alpha Z" term entering the total
    /// energy through charge neutrality.
    pub fn v_loc_g0(&self) -> f64 {
        let rl = self.r_loc;
        let tps = (2.0 * std::f64::consts::PI).powf(1.5);
        2.0 * std::f64::consts::PI * self.z_ion * rl * rl
            + tps
                * rl.powi(3)
                * (self.c[0] + 3.0 * self.c[1] + 15.0 * self.c[2] + 105.0 * self.c[3])
    }

    /// Radial projector `p_{il}(r)` (GTH normalization: ∫ p² r² dr = 1).
    /// `i` is 1-based as in the paper.
    pub fn projector_radial(&self, i: usize, l: usize, rl: f64, r: f64) -> f64 {
        let n = l + 2 * (i - 1);
        let gamma = pt_num::gamma_half_int((2 * l + 4 * i - 1) as u32); // Γ(l + (4i−1)/2)
        let norm =
            2.0f64.sqrt() / (rl.powf(l as f64 + (4.0 * i as f64 - 1.0) / 2.0) * gamma.sqrt());
        norm * r.powi(n as i32) * (-0.5 * (r / rl) * (r / rl)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 400-point composite Simpson on [0, rmax].
    fn simpson(rmax: f64, f: impl Fn(f64) -> f64) -> f64 {
        let n = 400;
        let h = rmax / n as f64;
        let mut s = f(0.0) + f(rmax);
        for k in 1..n {
            let w = if k % 2 == 1 { 4.0 } else { 2.0 };
            s += w * f(k as f64 * h);
        }
        s * h / 3.0
    }

    #[test]
    fn projectors_are_normalized() {
        for sp in [Species::Si, Species::C] {
            let p = gth_parameters(sp);
            for &(l, rl, h) in &p.channels {
                for i in 1..=2 {
                    if i == 2 && h[1] == 0.0 {
                        continue;
                    }
                    let norm = simpson(12.0 * rl, |r| {
                        let v = p.projector_radial(i, l, rl, r);
                        v * v * r * r
                    });
                    assert!((norm - 1.0).abs() < 1e-8, "{sp:?} l={l} i={i} norm={norm}");
                }
            }
        }
    }

    #[test]
    fn v_loc_g_matches_quadrature() {
        // FT of the local potential: V(G) = 4π ∫ (V(r) + Z erf(r/√2 r_loc)/r)
        // ... easier: transform the *short-range remainder* V(r)+Z/r·erf(...)
        // directly is messy; instead check the full identity
        //   V(G) = 4π/G ∫ sin(Gr) r (V_loc(r) + Z/r) dr  −  4π Z/G² e^{−G²r²/2}
        // where the last term is the analytic FT of −Z erf(r/(√2 r_loc))/r.
        let p = gth_parameters(Species::Si);
        for g in [0.5f64, 1.0, 2.0, 4.0] {
            // numeric FT of the Gaussian-polynomial part only
            let short = |r: f64| {
                p.v_loc_real(r)
                    + p.z_ion * pt_num::erf(r / (2.0f64.sqrt() * p.r_loc)) / r.max(1e-12)
            };
            let num = 4.0 * std::f64::consts::PI / g
                * simpson(25.0, |r| {
                    if r < 1e-9 {
                        0.0
                    } else {
                        (g * r).sin() * r * short(r)
                    }
                });
            let coulomb_ft = -4.0 * std::f64::consts::PI * p.z_ion / (g * g)
                * (-0.5 * (g * p.r_loc).powi(2)).exp();
            let want = p.v_loc_g(g);
            let got = num + coulomb_ft;
            assert!(
                (got - want).abs() < 1e-6 * want.abs().max(1.0),
                "g={g}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn v_loc_g0_matches_quadrature() {
        let p = gth_parameters(Species::Si);
        let num = 4.0
            * std::f64::consts::PI
            * simpson(25.0, |r| {
                let vpz = p.v_loc_real(r)
                    + p.z_ion * pt_num::erf(r / (2.0f64.sqrt() * p.r_loc)) / r.max(1e-12);
                // add back the long-range tail difference: erf→1 beyond ~5 r_loc
                let tail =
                    p.z_ion * (1.0 - pt_num::erf(r / (2.0f64.sqrt() * p.r_loc))) / r.max(1e-12);
                (vpz + tail) * r * r
            });
        assert!(
            (num - p.v_loc_g0()).abs() < 1e-6,
            "{num} vs {}",
            p.v_loc_g0()
        );
    }

    #[test]
    fn local_potential_tends_to_coulomb() {
        let p = gth_parameters(Species::Si);
        for r in [3.0f64, 5.0, 8.0] {
            let v = p.v_loc_real(r);
            // residue = Z·erfc(r/√2 r_loc)/r + Gaussian tail, ~1e-9 at r = 3
            assert!((v + p.z_ion / r).abs() < 1e-8, "r={r} v={v}");
        }
    }
}
