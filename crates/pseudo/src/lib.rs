//! `pt-pseudo` — norm-conserving pseudopotentials.
//!
//! The paper uses SG15 ONCV pseudopotentials (Hamann 2013 / Schlipf–Gygi
//! 2015), which ship as numerical tables. To keep this reproduction fully
//! self-contained we substitute the **GTH analytic family**
//! (Goedecker–Teter–Hutter, PRB 54, 1703 (1996)): the same
//! norm-conserving, Kleinman–Bylander separable structure — a local
//! potential plus a small set of separable nonlocal projectors — but with
//! closed-form real- and reciprocal-space expressions, so no data files are
//! needed and every matrix element can be unit-tested against quadrature.
//! This substitution preserves everything the paper's evaluation exercises:
//! the cost structure of applying the pseudopotential (dense local multiply
//! + sparse real-space projectors, §3.2) and the physics of bulk silicon.
//!
//! Two application paths are provided, mirroring PWDFT:
//! * reciprocal space (reference implementation),
//! * **real space** sparse projectors (Wang, PRB 64, 201107 (2001)) — the
//!   paper stores all nonlocal projectors on every processor (~432 MB for
//!   1536 atoms) and applies them with zero communication.

mod gth;
mod local;
mod nonlocal;

pub use gth::{gth_parameters, GthParams};
pub use local::LocalPotential;
pub use nonlocal::{NonlocalPs, Projector, UnsupportedAngularMomentum, MAX_ANGULAR_MOMENTUM};
