//! Kleinman–Bylander separable nonlocal pseudopotential.
//!
//! `V_NL = Σ_{a,l,i,m} |β_{a,l,i,m}⟩ h^l_i ⟨β_{a,l,i,m}|`, with plane-wave
//! matrix elements
//! `β(G) = Ω^{-1/2} (−i)^l  p̃_{il}(|G|) Y_lm(Ĝ) e^{−iG·τ_a}`,
//! `p̃_{il}(g) = 4π ∫ p_{il}(r) j_l(gr) r² dr`.
//!
//! The radial transform is evaluated by quadrature at construction (exact
//! to ~1e-10 for these Gaussians), which sidesteps transcription errors in
//! the analytic GTH Fourier formulas; the quadrature itself is validated in
//! tests by Parseval's theorem.
//!
//! A real-space sparse application path ([`NonlocalPs::apply_real_space`])
//! mirrors the paper's choice (§3.2: real-space projectors stored as sparse
//! vectors on every processor, >5× faster than reciprocal space for
//! hundreds of atoms, zero communication).

use crate::gth::{gth_parameters, GthParams};
use pt_lattice::{GSphere, Species, Structure};
use pt_num::c64;
use rayon::prelude::*;
use std::fmt;

/// Highest angular momentum channel this implementation evaluates (the
/// GTH Si/C/H sets here stop at p channels).
pub const MAX_ANGULAR_MOMENTUM: usize = 1;

/// A pseudopotential requested an angular-momentum channel this
/// implementation does not evaluate (`l > 1`: no j_l / Y_lm tables).
/// Construction reports it as a value — `KsSystemBuilder::build` converts
/// it into `PtError::InvalidConfig`, so an exotic pseudopotential request
/// fails cleanly instead of aborting the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnsupportedAngularMomentum {
    /// Species whose parameter set carries the channel.
    pub species: Species,
    /// The offending angular momentum.
    pub l: usize,
}

impl fmt::Display for UnsupportedAngularMomentum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pseudopotential for {:?} requests an l = {} channel; this implementation evaluates l <= {}",
            self.species, self.l, MAX_ANGULAR_MOMENTUM
        )
    }
}

impl std::error::Error for UnsupportedAngularMomentum {}

/// Spherical Bessel functions j_0, j_1. Callers are guarded by the l ≤ 1
/// channel validation in [`NonlocalPs::with_parameters`].
fn sph_bessel(l: usize, x: f64) -> f64 {
    if x.abs() < 0.05 {
        // series to O(x⁴): avoids the 1/x − 1/x cancellation in the exact
        // j₁ formula, which loses ~6 digits below x ≈ 1e-5
        let x2 = x * x;
        return match l {
            0 => 1.0 - x2 / 6.0 + x2 * x2 / 120.0,
            _ => x / 3.0 * (1.0 - x2 / 10.0 + x2 * x2 / 280.0),
        };
    }
    match l {
        0 => x.sin() / x,
        _ => x.sin() / (x * x) - x.cos() / x,
    }
}

/// Real spherical harmonics with unit L² norm on the sphere
/// (Y_00 = 1/√4π, Y_1m = √(3/4π)·{x̂,ŷ,ẑ}). Callers are guarded by the
/// l ≤ 1 channel validation in [`NonlocalPs::with_parameters`].
fn real_ylm(l: usize, m: usize, ghat: [f64; 3]) -> f64 {
    let fourpi = 4.0 * std::f64::consts::PI;
    match (l, m) {
        (0, 0) => 1.0 / fourpi.sqrt(),
        (1, 0) => (3.0 / fourpi).sqrt() * ghat[0],
        (1, 1) => (3.0 / fourpi).sqrt() * ghat[1],
        _ => (3.0 / fourpi).sqrt() * ghat[2],
    }
}

/// One separable projector: its plane-wave coefficients and coupling h.
#[derive(Clone, Debug)]
pub struct Projector {
    /// Coefficients β(G) over the wavefunction sphere.
    pub beta: Vec<c64>,
    /// KB coupling constant h (Ha).
    pub h: f64,
    /// Owning atom index (for bookkeeping/diagnostics).
    pub atom: usize,
    /// Angular momentum l.
    pub l: usize,
}

/// The assembled nonlocal pseudopotential for a structure on a sphere.
#[derive(Clone, Debug)]
pub struct NonlocalPs {
    /// All separable projectors.
    pub projectors: Vec<Projector>,
}

impl NonlocalPs {
    /// Build every projector for `structure` over `sphere` using the
    /// built-in GTH parameter tables.
    pub fn new(
        structure: &Structure,
        sphere: &GSphere,
    ) -> Result<Self, UnsupportedAngularMomentum> {
        let params: Vec<GthParams> = structure
            .atoms
            .iter()
            .map(|a| gth_parameters(a.species))
            .collect();
        Self::with_parameters(structure, sphere, &params)
    }

    /// Build from explicit per-atom parameter sets (one entry per atom of
    /// `structure`, in order). Channels beyond the implemented angular
    /// momenta are rejected up front with a typed error — this is the
    /// validation gate behind which [`sph_bessel`] / [`real_ylm`] may
    /// assume `l ≤ 1`.
    pub fn with_parameters(
        structure: &Structure,
        sphere: &GSphere,
        per_atom: &[GthParams],
    ) -> Result<Self, UnsupportedAngularMomentum> {
        assert_eq!(
            per_atom.len(),
            structure.atoms.len(),
            "one GthParams entry per atom"
        );
        for params in per_atom {
            for &(l, _, _) in &params.channels {
                if l > MAX_ANGULAR_MOMENTUM {
                    return Err(UnsupportedAngularMomentum {
                        species: params.species,
                        l,
                    });
                }
            }
        }
        let vol = structure.cell.volume();
        let positions = structure.cart_positions();
        let mut projectors = Vec::new();
        for (ia, params) in per_atom.iter().enumerate() {
            let tau = positions[ia];
            for &(l, rl, h12) in &params.channels {
                for i in 1..=2usize {
                    let h = h12[i - 1];
                    if h == 0.0 {
                        continue;
                    }
                    // radial transform table: evaluate p̃(g) per unique |G|
                    // via 300-pt Simpson on [0, 12 r_l]
                    let radial = |g: f64| -> f64 {
                        let rmax = 12.0 * rl;
                        let n = 300;
                        let hstep = rmax / n as f64;
                        let mut s = 0.0;
                        for k in 0..=n {
                            let r = k as f64 * hstep;
                            let w = if k == 0 || k == n {
                                1.0
                            } else if k % 2 == 1 {
                                4.0
                            } else {
                                2.0
                            };
                            s += w
                                * params.projector_radial(i, l, rl, r)
                                * sph_bessel(l, g * r)
                                * r
                                * r;
                        }
                        4.0 * std::f64::consts::PI * s * hstep / 3.0
                    };
                    let nm = 2 * l + 1;
                    let mut betas: Vec<Vec<c64>> = vec![vec![c64::ZERO; sphere.len()]; nm];
                    let ptilde: Vec<f64> =
                        sphere.g2.par_iter().map(|&g2| radial(g2.sqrt())).collect();
                    let il = match l % 4 {
                        0 => c64::ONE,
                        1 => -c64::I, // (−i)^1
                        2 => -c64::ONE,
                        _ => c64::I,
                    };
                    for (k, (&g2, gv)) in sphere.g2.iter().zip(&sphere.g_cart).enumerate() {
                        let g = g2.sqrt();
                        let ghat = if g > 1e-12 {
                            [gv[0] / g, gv[1] / g, gv[2] / g]
                        } else {
                            [0.0, 0.0, 0.0]
                        };
                        let phase = c64::cis(-(gv[0] * tau[0] + gv[1] * tau[1] + gv[2] * tau[2]));
                        for (m, beta) in betas.iter_mut().enumerate() {
                            let y = if g > 1e-12 {
                                real_ylm(l, m, ghat)
                            } else if l == 0 {
                                real_ylm(0, 0, [0.0, 0.0, 1.0])
                            } else {
                                0.0
                            };
                            beta[k] = il * phase * (ptilde[k] * y / vol.sqrt());
                        }
                    }
                    for beta in betas {
                        projectors.push(Projector {
                            beta,
                            h,
                            atom: ia,
                            l,
                        });
                    }
                }
            }
        }
        Ok(NonlocalPs { projectors })
    }

    /// Apply `V_NL` to a single orbital's coefficients: `out += V_NL ψ`.
    pub fn apply(&self, psi: &[c64], out: &mut [c64]) {
        let contribs: Vec<(usize, c64)> = self
            .projectors
            .par_iter()
            .enumerate()
            .map(|(p, proj)| {
                let amp = pt_num::complex::zdotc(&proj.beta, psi).scale(proj.h);
                (p, amp)
            })
            .collect();
        for (p, amp) in contribs {
            pt_num::complex::zaxpy(amp, &self.projectors[p].beta, out);
        }
    }

    /// Apply to a block of orbitals (columns of length N_G stored
    /// contiguously), parallel over bands — the band-index layout of §3.1.
    pub fn apply_block(&self, psis: &[c64], out: &mut [c64], ng: usize) {
        assert_eq!(psis.len(), out.len());
        assert_eq!(psis.len() % ng, 0);
        out.par_chunks_mut(ng)
            .zip(psis.par_chunks(ng))
            .for_each(|(o, p)| {
                for proj in &self.projectors {
                    let amp = pt_num::complex::zdotc(&proj.beta, p).scale(proj.h);
                    pt_num::complex::zaxpy(amp, &proj.beta, o);
                }
            });
    }

    /// Nonlocal energy Σ_i f_i Σ_p h_p |⟨β_p|ψ_i⟩|².
    pub fn energy(&self, psis: &[c64], ng: usize, occ: &[f64]) -> f64 {
        // parallel per-band energies materialized in band order, then the
        // canonical serial sum — the reduction order stays pinned even if
        // the rayon shim is ever swapped for the real (work-stealing) crate
        let per_band: Vec<f64> = psis
            .par_chunks(ng)
            .zip(occ.par_iter())
            .map(|(p, &f)| {
                let mut e = 0.0;
                for proj in &self.projectors {
                    e += proj.h * pt_num::complex::zdotc(&proj.beta, p).norm_sqr();
                }
                f * e
            })
            .collect();
        pt_num::reduce::sum_f64(per_band)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_lattice::{fft_dims_for_cutoff, silicon_cubic_supercell};

    #[test]
    fn bessel_small_argument_series() {
        for x in [1e-8f64, 1e-7] {
            assert!((sph_bessel(0, x) - 1.0).abs() < 1e-12);
            assert!((sph_bessel(1, x) - x / 3.0).abs() < 1e-12);
        }
        // series matches the exact formula evaluated at the same x just
        // inside the switch (x = 0.04 < 0.05)
        let x = 0.04f64;
        assert!((sph_bessel(0, x) - x.sin() / x).abs() < 1e-12);
        assert!((sph_bessel(1, x) - (x.sin() / (x * x) - x.cos() / x)).abs() < 1e-9);
        // series matches exact formula just above the switch
        assert!((sph_bessel(0, 0.06) - (0.06f64.sin() / 0.06)).abs() < 1e-12);
        let j1 = 0.06f64.sin() / 0.0036 - 0.06f64.cos() / 0.06;
        assert!((sph_bessel(1, 0.06) - j1).abs() < 1e-12);
    }

    #[test]
    fn ylm_orthonormal_on_lebedev_like_grid() {
        // crude check: average of Y·Y' over many random directions ≈ δ/4π
        let mut rng = pt_num::rng::XorShift64::new(12345u64);
        let dirs: Vec<[f64; 3]> = (0..200_000)
            .map(|_| loop {
                let v = [
                    rng.next_centered(),
                    rng.next_centered(),
                    rng.next_centered(),
                ];
                let n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
                if n2 > 1e-4 && n2 < 0.25 {
                    let n = n2.sqrt();
                    return [v[0] / n, v[1] / n, v[2] / n];
                }
            })
            .collect();
        let pairs = [(0usize, 0usize), (1, 0), (1, 1), (1, 2)];
        for (a, &(la, ma)) in pairs.iter().enumerate() {
            for (b, &(lb, mb)) in pairs.iter().enumerate() {
                let avg: f64 = dirs
                    .iter()
                    .map(|&d| real_ylm(la, ma, d) * real_ylm(lb, mb, d))
                    .sum::<f64>()
                    / dirs.len() as f64;
                let want = if a == b {
                    1.0 / (4.0 * std::f64::consts::PI)
                } else {
                    0.0
                };
                assert!((avg - want).abs() < 4e-3, "({la}{ma})({lb}{mb}) avg={avg}");
            }
        }
    }

    #[test]
    fn projector_parseval() {
        // ∫ p̃(G)² G² dG = (2π)³ ∫ p(r)² r² dr = (2π)³ (normalized radials)
        let p = gth_parameters(pt_lattice::Species::Si);
        let (l, rl, _h) = p.channels[0];
        let radial_ft = |g: f64| {
            let rmax = 12.0 * rl;
            let n = 400;
            let h = rmax / n as f64;
            let mut s = 0.0;
            for k in 0..=n {
                let r = k as f64 * h;
                let w = if k == 0 || k == n {
                    1.0
                } else if k % 2 == 1 {
                    4.0
                } else {
                    2.0
                };
                s += w * p.projector_radial(1, l, rl, r) * sph_bessel(l, g * r) * r * r;
            }
            4.0 * std::f64::consts::PI * s * h / 3.0
        };
        // ∫₀^∞ p̃² g² dg by quadrature
        let gmax = 30.0 / rl.sqrt();
        let n = 600;
        let h = gmax / n as f64;
        let mut s = 0.0;
        for k in 0..=n {
            let g = k as f64 * h;
            let w = if k == 0 || k == n {
                1.0
            } else if k % 2 == 1 {
                4.0
            } else {
                2.0
            };
            let v = radial_ft(g);
            s += w * v * v * g * g;
        }
        s *= h / 3.0;
        let want = (2.0 * std::f64::consts::PI).powi(3);
        assert!((s / want - 1.0).abs() < 1e-6, "{s} vs {want}");
    }

    #[test]
    fn nonlocal_is_hermitian_and_low_rank() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 3.0);
        let sphere = GSphere::new(&s.cell, 3.0, dims);
        let nl = NonlocalPs::new(&s, &sphere).unwrap();
        // Si: 2 s-projectors + 3 p-projectors per atom = 5 × 8 atoms
        assert_eq!(nl.projectors.len(), 40);
        let ng = sphere.len();
        // Hermiticity: ⟨a|V b⟩ = ⟨V a|b⟩ for random vectors
        let mut rng = pt_num::rng::XorShift64::new(7u64);
        let a: Vec<c64> = (0..ng)
            .map(|_| c64::new(rng.next_centered(), rng.next_centered()))
            .collect();
        let b: Vec<c64> = (0..ng)
            .map(|_| c64::new(rng.next_centered(), rng.next_centered()))
            .collect();
        let mut va = vec![c64::ZERO; ng];
        let mut vb = vec![c64::ZERO; ng];
        nl.apply(&a, &mut va);
        nl.apply(&b, &mut vb);
        let lhs = pt_num::complex::zdotc(&a, &vb);
        let rhs = pt_num::complex::zdotc(&va, &b);
        assert!((lhs - rhs).abs() < 1e-10 * (1.0 + lhs.abs()));
    }

    #[test]
    fn apply_block_matches_apply() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 2.0);
        let sphere = GSphere::new(&s.cell, 2.0, dims);
        let nl = NonlocalPs::new(&s, &sphere).unwrap();
        let ng = sphere.len();
        let nb = 3;
        let mut rng = pt_num::rng::XorShift64::new(99u64);
        let psis: Vec<c64> = (0..ng * nb)
            .map(|_| c64::new(rng.next_centered(), rng.next_centered()))
            .collect();
        let mut out1 = vec![c64::ZERO; ng * nb];
        nl.apply_block(&psis, &mut out1, ng);
        let mut out2 = vec![c64::ZERO; ng * nb];
        for b in 0..nb {
            nl.apply(&psis[b * ng..(b + 1) * ng], &mut out2[b * ng..(b + 1) * ng]);
        }
        let err = out1
            .iter()
            .zip(&out2)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12);
    }

    #[test]
    fn exotic_angular_momentum_is_a_typed_error_not_a_panic() {
        // a d channel (l = 2) has no j_2 / Y_2m tables here; requesting it
        // must fail cleanly with the offending channel identified
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 2.0);
        let sphere = GSphere::new(&s.cell, 2.0, dims);
        let mut per_atom: Vec<GthParams> =
            s.atoms.iter().map(|a| gth_parameters(a.species)).collect();
        per_atom[0].channels.push((2, 0.4, [1.0, 0.0]));
        let err = NonlocalPs::with_parameters(&s, &sphere, &per_atom).unwrap_err();
        assert_eq!(err.l, 2);
        assert!(err.to_string().contains("l = 2"), "{err}");
        // the stock tables stay valid
        assert!(NonlocalPs::new(&s, &sphere).is_ok());
    }
}
