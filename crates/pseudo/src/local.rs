//! Crystal local pseudopotential on the density grid.

use crate::gth::gth_parameters;
use pt_lattice::{GridGVectors, Structure};
use pt_num::c64;

/// The structure's total local pseudopotential, assembled in reciprocal
/// space: `V_loc(G) = (1/Ω) Σ_a v_a(|G|) e^{−iG·τ_a}`.
///
/// The caller turns the coefficient array into a real-space potential with
/// one inverse FFT on the density grid.
#[derive(Clone, Debug)]
pub struct LocalPotential {
    /// Fourier coefficients c_G on the full density grid, such that
    /// `V(r) = Σ_G c_G e^{iG·r}` (c_0 holds the αZ neutrality term).
    pub coeffs: Vec<c64>,
    /// Σ_a ∫(v_a(r)+Z_a/r)d³r — the G = 0 "alpha" term (before 1/Ω).
    pub alpha_z_total: f64,
}

impl LocalPotential {
    /// Assemble the coefficients for `structure` on `grid`.
    pub fn new(structure: &Structure, grid: &GridGVectors) -> Self {
        let vol = structure.cell.volume();
        let positions = structure.cart_positions();
        let params: Vec<_> = structure
            .atoms
            .iter()
            .map(|a| gth_parameters(a.species))
            .collect();
        let mut coeffs = vec![c64::ZERO; grid.len()];
        let mut alpha_total = 0.0;
        for p in &params {
            alpha_total += p.v_loc_g0();
        }
        // G = 0: the Coulomb divergences cancel against Hartree + Ewald;
        // keep only the α-term average.
        coeffs[0] = c64::real(alpha_total / vol);
        for (idx, c) in coeffs.iter_mut().enumerate().skip(1) {
            let g2 = grid.g2[idx];
            if g2 < 1e-14 {
                continue; // only idx 0 has G = 0 on our grids
            }
            let g = g2.sqrt();
            let gv = grid.g_cart[idx];
            let mut acc = c64::ZERO;
            for (p, tau) in params.iter().zip(&positions) {
                let vg = p.v_loc_g(g) / vol;
                let phase = -(gv[0] * tau[0] + gv[1] * tau[1] + gv[2] * tau[2]);
                acc += c64::cis(phase).scale(vg);
            }
            *c = acc;
        }
        LocalPotential {
            coeffs,
            alpha_z_total: alpha_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pt_fft::Fft3;
    use pt_lattice::{fft_dims_for_cutoff, silicon_cubic_supercell, Atom, Species, Structure};

    #[test]
    fn potential_is_real_in_real_space() {
        let s = silicon_cubic_supercell(1, 1, 1);
        let dims = fft_dims_for_cutoff(&s.cell, 16.0);
        let grid = GridGVectors::new(&s.cell, dims);
        let vloc = LocalPotential::new(&s, &grid);
        // V(r) = Σ c_G e^{iGr}: inverse FFT of (N · c_G)
        let fft = Fft3::new(dims.0, dims.1, dims.2);
        let n = grid.len() as f64;
        let mut arr = vloc.coeffs.clone();
        for z in &mut arr {
            *z = z.scale(n);
        }
        fft.inverse(&mut arr);
        let max_im = arr.iter().map(|z| z.im.abs()).fold(0.0, f64::max);
        assert!(max_im < 1e-9, "imaginary residue {max_im}");
    }

    #[test]
    fn short_range_potential_matches_image_sum() {
        // Validate phases/conventions of the G-space assembly using only
        // the Gaussian-polynomial (short-range) part of the GTH local
        // potential, whose periodic image sum is absolutely convergent.
        // (The Coulomb part's Fourier transform is covered by the erf/FT
        // identity test in gth.rs.)
        let l = 12.0;
        let cell = pt_lattice::Cell::cubic(l);
        let s = Structure {
            cell,
            atoms: vec![Atom {
                species: Species::Si,
                frac: [0.3, 0.5, 0.6],
            }],
        };
        // r_loc = 0.44 bohr: the Gaussian's Fourier tail needs E_cut ≈ 100
        // for 1e-5 pointwise convergence of the real-space values
        let dims = fft_dims_for_cutoff(&s.cell, 100.0);
        let grid = GridGVectors::new(&s.cell, dims);
        let p = gth_parameters(Species::Si);
        let vol = s.cell.volume();
        let tau = s.cell.frac_to_cart([0.3, 0.5, 0.6]);
        // G-space: only the polynomial term of v_loc_g
        let mut coeffs = vec![c64::ZERO; grid.len()];
        let pref = (8.0 * std::f64::consts::PI.powi(3)).sqrt() * p.r_loc.powi(3);
        for (idx, c) in coeffs.iter_mut().enumerate() {
            let g2 = grid.g2[idx];
            let gv = grid.g_cart[idx];
            let x2 = g2 * p.r_loc * p.r_loc;
            let vg = pref * (-0.5 * x2).exp() * (p.c[0] + p.c[1] * (3.0 - x2)) / vol;
            let phase = -(gv[0] * tau[0] + gv[1] * tau[1] + gv[2] * tau[2]);
            *c = c64::cis(phase).scale(vg);
        }
        let fft = Fft3::new(dims.0, dims.1, dims.2);
        let n = grid.len() as f64;
        for z in &mut coeffs {
            *z = z.scale(n);
        }
        fft.inverse(&mut coeffs);
        // direct image sum of the short-range real-space part
        let short = |r: f64| {
            let x = r / p.r_loc;
            (-0.5 * x * x).exp() * (p.c[0] + p.c[1] * x * x)
        };
        for &(fx, fy, fz) in &[(0.3, 0.5, 0.6), (0.25, 0.5, 0.5), (0.0, 0.0, 0.0)] {
            let ix = (fx * dims.0 as f64).round() as usize % dims.0;
            let iy = (fy * dims.1 as f64).round() as usize % dims.1;
            let iz = (fz * dims.2 as f64).round() as usize % dims.2;
            let r = s.cell.frac_to_cart([
                ix as f64 / dims.0 as f64,
                iy as f64 / dims.1 as f64,
                iz as f64 / dims.2 as f64,
            ]);
            let mut v = 0.0;
            for mx in -2i32..=2 {
                for my in -2i32..=2 {
                    for mz in -2i32..=2 {
                        let d = [
                            r[0] - tau[0] + l * mx as f64,
                            r[1] - tau[1] + l * my as f64,
                            r[2] - tau[2] + l * mz as f64,
                        ];
                        v += short((d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt());
                    }
                }
            }
            let got = coeffs[ix + dims.0 * (iy + dims.1 * iz)].re;
            assert!(
                (got - v).abs() < 1e-5 * (1.0 + v.abs()),
                "at ({fx},{fy},{fz}): grid {got} vs sum {v}"
            );
        }
    }

    #[test]
    #[ignore = "conditionally convergent bare-Coulomb image sum; kept for manual study"]
    fn single_atom_potential_matches_realspace_sum() {
        // One H in a box: V(r) from the G sum must equal the periodic sum of
        // the real-space GTH potential over images.
        let cell = pt_lattice::Cell::cubic(12.0);
        let s = Structure {
            cell,
            atoms: vec![Atom {
                species: Species::H,
                frac: [0.5, 0.5, 0.5],
            }],
        };
        let dims = fft_dims_for_cutoff(&s.cell, 30.0);
        let grid = GridGVectors::new(&s.cell, dims);
        let vloc = LocalPotential::new(&s, &grid);
        let fft = Fft3::new(dims.0, dims.1, dims.2);
        let n = grid.len() as f64;
        let mut arr = vloc.coeffs.clone();
        for z in &mut arr {
            *z = z.scale(n);
        }
        fft.inverse(&mut arr);
        // compare at a few grid points against the direct image sum,
        // shifted by the average (the G=0 conventions differ by a constant)
        let p = gth_parameters(Species::H);
        let tau = s.cell.frac_to_cart([0.5, 0.5, 0.5]);
        let probe = |fx: f64, fy: f64, fz: f64| -> (usize, f64) {
            let ix = (fx * dims.0 as f64).round() as usize % dims.0;
            let iy = (fy * dims.1 as f64).round() as usize % dims.1;
            let iz = (fz * dims.2 as f64).round() as usize % dims.2;
            let r = s.cell.frac_to_cart([
                ix as f64 / dims.0 as f64,
                iy as f64 / dims.1 as f64,
                iz as f64 / dims.2 as f64,
            ]);
            let mut v = 0.0;
            for mx in -3i32..=3 {
                for my in -3i32..=3 {
                    for mz in -3i32..=3 {
                        let d = [
                            r[0] - tau[0] + 12.0 * mx as f64,
                            r[1] - tau[1] + 12.0 * my as f64,
                            r[2] - tau[2] + 12.0 * mz as f64,
                        ];
                        let rr = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                        v += p.v_loc_real(rr) + p.z_ion / rr.max(1e-12);
                        v -= p.z_ion / rr.max(1e-12); // keep the bare sum
                    }
                }
            }
            (ix + dims.0 * (iy + dims.1 * iz), v)
        };
        // The image sum of the full (−Z/r-tailed) potential diverges like a
        // Madelung constant; compare *differences* between two points, where
        // the constant (and the conditionally convergent part) cancels to
        // good accuracy at this box size.
        let (i1, v1) = probe(0.25, 0.5, 0.5);
        let (i2, v2) = probe(0.33, 0.5, 0.5);
        let dv_grid = arr[i1].re - arr[i2].re;
        let dv_direct = v1 - v2;
        assert!(
            (dv_grid - dv_direct).abs() < 2e-3,
            "ΔV grid {dv_grid} vs direct {dv_direct}"
        );
    }
}
