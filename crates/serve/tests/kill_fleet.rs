//! The headline durability test: a fleet of jobs (one hybrid 2 × 2, two
//! serial) is submitted to a real `pt-serve-server` process, tailed live,
//! then the server is killed with SIGKILL mid-run. A fresh server on the
//! same run directory must auto-resume every interrupted job from its
//! newest valid snapshot and finish the whole fleet with final series
//! **bit-identical** to uninterrupted in-process references.

use pt_par::RankLayout;
use pt_serve::{Client, JobSpec, JobState, LaserSpec, SystemSpec};
use pt_xc::XcKind;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(600);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pt_serve_kill_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn serial_spec(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 2.0,
            xc: XcKind::Lda,
            hybrid: false,
            bands: None,
            exchange: Default::default(),
        },
        laser: Some(LaserSpec {
            a0: 0.02,
            t0_as: 200.0,
            sigma_as: 100.0,
        }),
        dt_as: 25.0,
        steps,
        checkpoint_every: 1,
        layout: RankLayout::new(1, 1),
    }
}

fn hybrid_spec(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 2.0,
            xc: XcKind::Pbe,
            hybrid: true,
            bands: Some(4),
            exchange: Default::default(),
        },
        laser: Some(LaserSpec {
            a0: 0.02,
            t0_as: 200.0,
            sigma_as: 100.0,
        }),
        dt_as: 25.0,
        steps,
        checkpoint_every: 1,
        layout: RankLayout::new(2, 2),
    }
}

/// Start the real server binary on `run_dir` and wait for its
/// `LISTENING <addr>` line. The test waits (or SIGKILLs then waits)
/// every child it spawns.
#[allow(clippy::zombie_processes)]
fn spawn_server(run_dir: &Path, budget: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pt-serve-server"))
        .arg(run_dir)
        .arg(budget.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn pt-serve-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + WAIT;
    loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("LISTENING ") {
                    // keep draining stdout so the child never blocks on a
                    // full pipe
                    std::thread::spawn(move || for _ in lines.by_ref() {});
                    return (child, addr.trim().to_string());
                }
            }
            Some(Err(_)) | None => panic!("server exited before listening"),
        }
        assert!(Instant::now() < deadline, "server never announced its port");
    }
}

fn assert_bits_eq(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{label}[{i}]: {a:e} != {b:e} (kill/restart changed the numbers)"
        );
    }
}

#[test]
fn sigkill_mid_fleet_then_restart_completes_every_job_bit_exactly() {
    let dir = tmp_dir("fleet");
    let specs = [
        hybrid_spec("hybrid-2x2", 2),
        serial_spec("serial-long", 6),
        serial_spec("serial-short", 4),
    ];
    // uninterrupted in-process references, one per spec, computed before
    // any server exists
    let references: Vec<pt_io::Table> = specs
        .iter()
        .map(|s| s.run_reference().unwrap().to_table().unwrap())
        .collect();

    // budget 6 fits the whole fleet at once (4 + 1 + 1)
    let (mut server, addr) = spawn_server(&dir, 6);
    let mut client = Client::connect(&addr).unwrap();
    let ids: Vec<u64> = specs.iter().map(|s| client.submit(s).unwrap()).collect();

    // tail the long serial job live; SIGKILL the server the moment the
    // fleet has demonstrably committed steps (so snapshots exist and the
    // kill lands mid-run, not before the fleet starts)
    let mut rows_seen = 0usize;
    let tail_job = ids[1];
    let mut tail = Client::connect(&addr).unwrap();
    let _ = tail.tail(tail_job, "energy", 0, true, |chunk| {
        rows_seen += chunk.values.len();
        if rows_seen >= 2 {
            server.kill().expect("SIGKILL the server"); // SIGKILL on unix
        }
    });
    // the tail stream either ended cleanly (job finished first) or died
    // with the server — both are fine; what matters is the kill happened
    assert!(rows_seen >= 2, "never saw live steps before the kill path");
    let _ = server.wait();

    // restart on the same run dir: recovery re-enqueues interrupted jobs
    // and auto-resumes them from their newest valid snapshots
    let (mut server2, addr2) = spawn_server(&dir, 6);
    let mut client2 = Client::connect(&addr2).unwrap();
    for (i, (&id, spec)) in ids.iter().zip(&specs).enumerate() {
        let row = client2.wait_terminal(id, WAIT).unwrap();
        assert_eq!(
            row.state,
            JobState::Done,
            "job {i} ({}) after restart: {:?}",
            spec.name,
            row.error
        );
    }

    // every job's served result is bit-identical to its solo reference
    for ((&id, spec), reference) in ids.iter().zip(&specs).zip(&references) {
        let table = client2.fetch(id).unwrap();
        for column in ["t", "energy", "current_z", "n_electrons", "rho_residual"] {
            let got = Client::table_column(&table, column)
                .unwrap_or_else(|| panic!("{}: missing column {column}", spec.name));
            let want = reference.get(column).unwrap();
            assert_bits_eq(&format!("{} {column}", spec.name), &got, want);
        }
        assert_eq!(
            Client::table_column(&table, "t").unwrap().len(),
            spec.steps,
            "{}: wrong final step count",
            spec.name
        );
    }

    // a tail replayed after restart serves the full (rehydrated) history
    let mut replayed = 0usize;
    let state = client2
        .tail(ids[1], "energy", 0, false, |chunk| {
            replayed += chunk.values.len()
        })
        .unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(replayed, specs[1].steps);

    // clean shutdown this time
    client2.shutdown().unwrap();
    let status = server2.wait().unwrap();
    assert!(status.success(), "server exit after shutdown: {status:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
