//! Traced-server acceptance: a hybrid job on a `--trace`d server exports
//! a loadable Chrome `trace.json` and a `metrics.json` whose per-step
//! phase times sum to the step wall time, while a live `stats` stream
//! shows a nonzero step rate *mid-run*. One test function on purpose:
//! pt-trace's armed flag is process-global, so this binary holds exactly
//! one server.

use pt_io::Json;
use pt_par::RankLayout;
use pt_serve::{start, Client, JobSpec, JobState, LaserSpec, ServerConfig, SystemSpec};
use pt_xc::XcKind;
use std::path::PathBuf;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(600);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pt_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn hybrid_spec(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 2.0,
            xc: XcKind::Pbe,
            hybrid: true,
            bands: None,
            exchange: Default::default(),
        },
        laser: Some(LaserSpec {
            a0: 0.02,
            t0_as: 200.0,
            sigma_as: 100.0,
        }),
        dt_as: 25.0,
        steps,
        checkpoint_every: 2,
        layout: RankLayout::new(1, 1),
    }
}

#[test]
fn traced_hybrid_job_exports_artifacts_and_streams_live_stats() {
    let dir = tmp_dir("trace");
    let spec = hybrid_spec("traced-hybrid", 4);

    let handle = start(ServerConfig::new(&dir, 2).traced()).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(&spec).unwrap();

    // Live telemetry on a second connection: ride the stats stream until
    // every job is terminal, remembering whether any frame caught the job
    // stepping at a positive rate while it was still active.
    let stats_client = Client::connect(&addr).unwrap();
    let mut frames = 0usize;
    let mut saw_live_rate = false;
    let mut saw_counters = false;
    stats_client
        .stats(true, |f| {
            frames += 1;
            assert!(f.cores_in_use <= f.budget_cores, "scheduler oversubscribed");
            if f.jobs
                .iter()
                .any(|j| j.id == job && j.steps_per_second > 0.0)
            {
                saw_live_rate = true;
            }
            if f.counters
                .iter()
                .any(|(name, v)| name == "steps_committed" && *v > 0)
            {
                saw_counters = true;
            }
            true
        })
        .unwrap();
    assert!(frames > 0, "stats stream produced no frames");
    assert!(
        saw_live_rate,
        "no stats frame showed a positive per-job step rate mid-run"
    );
    assert!(saw_counters, "stats frames never carried live counters");

    let row = client.wait_terminal(job, WAIT).unwrap();
    assert_eq!(row.state, JobState::Done, "{:?}", row.error);

    // `status` mirrors the scheduler gauges for one-shot consumers
    let status = client.status().unwrap();
    assert!(status.iter().any(|r| r.id == job));

    let job_dir = dir.join("jobs").join(format!("job_{job:08}"));

    // trace.json: a Chrome trace-event array with real span events
    let trace_text = std::fs::read_to_string(job_dir.join("trace.json")).unwrap();
    let trace = Json::parse(&trace_text).expect("trace.json parses");
    let events = trace.as_arr().expect("chrome trace is a JSON array");
    assert!(!events.is_empty(), "trace.json carries no events");
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str);
        assert!(
            matches!(ph, Some("X") | Some("M")),
            "unexpected event phase {ph:?}"
        );
        assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
    }
    let span_named = |name: &str| {
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some(name))
    };
    // the per-job window opens when the job thread starts, so the spans
    // inside it are the job's own: ground-state SCF, then PT-CN steps
    assert!(span_named("scf_loop"), "no SCF span in trace.json");
    assert!(span_named("ptcn_step"), "no PT-CN step span in trace.json");
    assert!(span_named("h_apply"), "no HΨ span in trace.json");

    // metrics.json: counters + the per-step phase breakdown
    let metrics_text = std::fs::read_to_string(job_dir.join("metrics.json")).unwrap();
    let metrics = Json::parse(&metrics_text).expect("metrics.json parses");
    let counters = metrics.get("counters").expect("metrics carry counters");
    for key in [
        "pair_ffts",
        "fft_transforms",
        "steps_committed",
        "scf_iterations",
    ] {
        let v = counters
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("counter '{key}' missing"));
        assert!(v > 0.0, "counter '{key}' is zero for a hybrid run");
    }

    // phase times: every named phase + 'other' sums to the step wall time
    // within 5% (the acceptance tolerance; 'other' closes the budget by
    // construction, so this is really a schema + bookkeeping check)
    let phases = metrics.get("phases").expect("metrics carry phase table");
    let wall = Client::table_column(phases, "wall").expect("wall column");
    assert_eq!(wall.len(), spec.steps, "one phase row per step");
    let mut named_sum = vec![0.0f64; wall.len()];
    for col in [
        "h_apply",
        "residual",
        "mix",
        "density",
        "ortho",
        "ace_build",
        "other",
    ] {
        let vals = Client::table_column(phases, col)
            .unwrap_or_else(|| panic!("phase column '{col}' missing"));
        for (acc, v) in named_sum.iter_mut().zip(vals) {
            *acc += v;
        }
    }
    for (i, (&w, &s)) in wall.iter().zip(&named_sum).enumerate() {
        assert!(w > 0.0, "step {i}: zero wall time");
        assert!(
            (w - s).abs() <= 0.05 * w,
            "step {i}: phases sum to {s:.6}s but wall is {w:.6}s (>5% apart)"
        );
    }

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
