//! In-process server acceptance: concurrent jobs produce the same bits
//! as running alone, live tails agree with the final table, cancellation
//! is honored and resumable, and never-fitting jobs are refused up front.

use pt_par::RankLayout;
use pt_serve::{start, Client, JobSpec, JobState, LaserSpec, ServerConfig, SystemSpec};
use pt_xc::XcKind;
use std::path::PathBuf;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(600);

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pt_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn serial_spec(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 2.0,
            xc: XcKind::Lda,
            hybrid: false,
            bands: None,
            exchange: Default::default(),
        },
        laser: Some(LaserSpec {
            a0: 0.02,
            t0_as: 200.0,
            sigma_as: 100.0,
        }),
        dt_as: 25.0,
        steps,
        checkpoint_every: 1,
        layout: RankLayout::new(1, 1),
    }
}

/// Compare every column of a fetched table against a reference series,
/// bit for bit (the JSON writer emits shortest-round-trip floats, so the
/// wire preserves exact bits).
fn assert_table_matches_series(table: &pt_io::Json, series: &pt_core::TimeSeries) {
    let ref_table = series.to_table().unwrap();
    for name in ["t", "energy", "current_z", "rho_residual", "n_electrons"] {
        let got = Client::table_column(table, name)
            .unwrap_or_else(|| panic!("fetched table missing column '{name}'"));
        let want = ref_table
            .get(name)
            .unwrap_or_else(|| panic!("reference table missing column '{name}'"));
        assert_eq!(got.len(), want.len(), "column '{name}' length");
        for (i, (a, b)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "column '{name}'[{i}]: {a:e} != {b:e} (serving changed the numbers)"
            );
        }
    }
}

#[test]
fn concurrent_jobs_match_solo_references_and_live_tails() {
    let dir = tmp_dir("fleet");
    let spec_a = serial_spec("fleet-a", 4);
    let spec_b = serial_spec("fleet-b", 3);
    // references: the same specs run uninterrupted, in-process, no server
    let ref_a = spec_a.run_reference().unwrap();
    let ref_b = spec_b.run_reference().unwrap();

    // budget 2 → both 1-core jobs run concurrently
    let handle = start(ServerConfig::new(&dir, 2)).unwrap();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let job_a = client.submit(&spec_a).unwrap();
    let job_b = client.submit(&spec_b).unwrap();

    // live-tail job A's energy on a second connection while it runs
    let mut tail_client = Client::connect(&addr).unwrap();
    let mut tailed: Vec<f64> = Vec::new();
    let final_state = tail_client
        .tail(job_a, "energy", 0, true, |chunk| {
            assert_eq!(chunk.start, tailed.len(), "tail stream skipped rows");
            tailed.extend_from_slice(&chunk.values);
        })
        .unwrap();
    assert_eq!(final_state, JobState::Done);

    let row_a = client.wait_terminal(job_a, WAIT).unwrap();
    let row_b = client.wait_terminal(job_b, WAIT).unwrap();
    assert_eq!(row_a.state, JobState::Done, "{:?}", row_a.error);
    assert_eq!(row_b.state, JobState::Done, "{:?}", row_b.error);
    assert_eq!(row_a.steps_done, 4);

    // the scheduler never oversubscribed (it asserts internally too)
    // and the fetched tables carry exactly the solo-run bits
    let table_a = client.fetch(job_a).unwrap();
    let table_b = client.fetch(job_b).unwrap();
    assert_table_matches_series(&table_a, &ref_a);
    assert_table_matches_series(&table_b, &ref_b);

    // the live tail saw exactly the final energy column
    let energy_a = Client::table_column(&table_a, "energy").unwrap();
    assert_eq!(tailed.len(), energy_a.len());
    for (i, (a, b)) in tailed.iter().zip(&energy_a).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "tailed energy[{i}]");
    }

    // tail of a finished job replays from the requested cursor
    let mut replay: Vec<f64> = Vec::new();
    let state = tail_client
        .tail(job_a, "energy", 2, false, |chunk| {
            replay.extend_from_slice(&chunk.values)
        })
        .unwrap();
    assert_eq!(state, JobState::Done);
    assert_eq!(replay.len(), energy_a.len() - 2);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_job_resumes_on_restart_with_identical_bits() {
    let dir = tmp_dir("cancel");
    let spec = serial_spec("cancellable", 5);
    let reference = spec.run_reference().unwrap();

    let handle = start(ServerConfig::new(&dir, 2)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let job = client.submit(&spec).unwrap();
    // let at least one step commit so the cancel leaves a snapshot behind
    let mut seen = 0usize;
    let mut tail = Client::connect(&handle.addr().to_string()).unwrap();
    let _ = tail.tail(job, "t", 0, true, |chunk| {
        seen += chunk.t.len();
        if seen >= 1 && !chunk.state.is_terminal() {
            // request cancellation from inside the live tail
            let mut c = Client::connect(&handle.addr().to_string()).unwrap();
            let _ = c.cancel(job);
        }
    });
    let row = client.wait_terminal(job, WAIT).unwrap();
    let job_dir = dir.join("jobs").join(format!("job_{job:08}"));
    if row.state == JobState::Cancelled {
        assert!(job_dir.join("cancelled").exists(), "marker missing");
        assert!(
            row.steps_done < spec.steps,
            "cancel landed only after the job finished"
        );
        // the cancel wrote a final snapshot at the boundary it stopped on
        assert!(
            !pt_io::scan_snapshots(&job_dir).unwrap().valid.is_empty(),
            "no snapshot to resume from"
        );
        handle.stop();
        // clear the cancellation and restart the server on the same dir:
        // recovery re-enqueues the job and it resumes from its snapshot
        std::fs::remove_file(job_dir.join("cancelled")).unwrap();
        let handle2 = start(ServerConfig::new(&dir, 2)).unwrap();
        let mut client2 = Client::connect(&handle2.addr().to_string()).unwrap();
        let row2 = client2.wait_terminal(job, WAIT).unwrap();
        assert_eq!(row2.state, JobState::Done, "{:?}", row2.error);
        let table = client2.fetch(job).unwrap();
        assert_table_matches_series(&table, &reference);
        handle2.stop();
    } else {
        // tiny systems can finish before the cancel lands; the run must
        // then be a plain completed one with reference bits
        assert_eq!(row.state, JobState::Done, "{:?}", row.error);
        let table = client.fetch(job).unwrap();
        assert_table_matches_series(&table, &reference);
        handle.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hopeless_and_malformed_submissions_are_refused_up_front() {
    let dir = tmp_dir("refuse");
    let handle = start(ServerConfig::new(&dir, 2)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // wider than the whole budget: typed refusal at submit, never queued
    let mut wide = serial_spec("wide", 2);
    wide.layout = RankLayout::new(2, 2);
    let err = client.submit(&wide).unwrap_err().to_string();
    assert!(err.contains("can never run"), "{err}");
    assert!(
        client.status().unwrap().is_empty(),
        "refused job was queued"
    );

    // malformed spec: zero steps
    let mut broken = serial_spec("broken", 2);
    broken.steps = 0;
    assert!(client.submit(&broken).is_err());

    // operations on unknown jobs are typed errors, not hangs
    assert!(client.cancel(99).is_err());
    assert!(client.fetch(99).is_err());
    let err = client
        .tail(99, "energy", 0, false, |_| {})
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown job"), "{err}");

    // the connection survives all those errors
    assert!(client.status().unwrap().is_empty());
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
