//! Queue stress: hundreds of tiny jobs with mixed 1 × 1 and 2 × 2
//! layouts pushed through the core-packing scheduler at once. The pins:
//! the core budget is never oversubscribed at any observable instant,
//! every job reaches `done` with all its steps, and the queue fully
//! drains — no job is stranded behind the backfill window.

use pt_par::RankLayout;
use pt_serve::{start, Client, JobSpec, JobState, ServerConfig, SystemSpec};
use pt_xc::XcKind;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(600);
/// The full "hundreds of jobs" drain is sized for an optimized build
/// (CI runs this test `--release`); without `--release` each job's SCF
/// is ~25× slower, so the debug drain keeps the same mixed-layout shape
/// and every assertion at a count that still overflows the backfill
/// window many times over without blowing the deadline.
const JOBS: usize = if cfg!(debug_assertions) { 24 } else { 200 };
const BUDGET: usize = 4;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pt_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The smallest runnable job: 1 Lda step at a floor-level cutoff (the
/// per-job cost is all ground-state SCF, and it scales steeply with
/// `ecut` — 1.0 keeps a 200-job drain inside the deadline even on a
/// 1-core host), no laser. Every fifth job is a 4-core 2 × 2 (it must
/// run alone under budget 4), the rest are 1-core singles the packer
/// can run four abreast.
fn tiny_spec(i: usize) -> JobSpec {
    let layout = if i.is_multiple_of(5) {
        RankLayout::new(2, 2)
    } else {
        RankLayout::new(1, 1)
    };
    JobSpec {
        name: format!("tiny-{i:03}"),
        system: SystemSpec {
            supercell: [1, 1, 1],
            ecut: 1.0,
            xc: XcKind::Lda,
            hybrid: false,
            bands: None,
            exchange: Default::default(),
        },
        laser: None,
        dt_as: 25.0,
        steps: 1,
        checkpoint_every: 1,
        layout,
    }
}

#[test]
fn hundreds_of_tiny_mixed_jobs_drain_without_oversubscription() {
    let dir = tmp_dir("stress");
    let handle = start(ServerConfig::new(&dir, BUDGET)).unwrap();
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let ids: Vec<u64> = (0..JOBS)
        .map(|i| client.submit(&tiny_spec(i)).unwrap())
        .collect();
    assert_eq!(ids.len(), JOBS);

    // poll the whole drain: at every observed instant the active jobs'
    // cores fit the budget (the scheduler also asserts this internally)
    let mut poll = Client::connect(&addr).unwrap();
    let deadline = Instant::now() + WAIT;
    let mut peak = 0usize;
    loop {
        let rows = poll.status().unwrap();
        let active: usize = rows
            .iter()
            .filter(|r| r.state.is_active())
            .map(|r| r.cores)
            .sum();
        assert!(
            active <= BUDGET,
            "scheduler oversubscribed: {active} active cores > budget {BUDGET}"
        );
        peak = peak.max(active);
        if rows.len() == JOBS && rows.iter().all(|r| r.state.is_terminal()) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "queue did not drain: {} of {JOBS} jobs terminal",
            rows.iter().filter(|r| r.state.is_terminal()).count()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(peak > 0, "poller never observed a running job");

    // every job — both layouts — finished clean with all its steps
    let rows = client.status().unwrap();
    assert_eq!(rows.len(), JOBS, "status lost jobs");
    for r in &rows {
        assert_eq!(
            r.state,
            JobState::Done,
            "job {} ({}) ended {:?}: {:?}",
            r.id,
            r.name,
            r.state,
            r.error
        );
        assert_eq!(r.steps_done, 1, "job {} ran a partial step count", r.id);
    }

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runtime_failure_is_a_typed_failed_row_and_frees_its_cores() {
    let dir = tmp_dir("failrow");
    let handle = start(ServerConfig::new(&dir, 2)).unwrap();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    // passes submit-time validation but fails when the runner builds the
    // system: far more bands than plane waves exist at this cutoff
    let mut doomed = tiny_spec(1);
    doomed.name = "doomed".into();
    doomed.system.bands = Some(1000);
    let bad = client.submit(&doomed).unwrap();
    let good = client.submit(&tiny_spec(2)).unwrap();

    let row = client.wait_terminal(bad, WAIT).unwrap();
    assert_eq!(row.state, JobState::Failed, "expected a typed failure");
    let err = row.error.expect("failed row carries its error message");
    assert!(err.contains("exceed"), "unexpected failure text: {err}");

    // the failure freed its cores — the queue keeps draining
    let row = client.wait_terminal(good, WAIT).unwrap();
    assert_eq!(row.state, JobState::Done, "{:?}", row.error);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
